"""Unit tests for :mod:`repro.serve.resilience`.

Everything here is pure bookkeeping over injected clocks -- ``now`` is
always a parameter -- so the full admission / deadline / breaker state
space is driven without a single sleep or socket.
"""

from __future__ import annotations

import pytest

from repro.serve.resilience import (
    MODE_CACHE_ONLY,
    MODE_EXACT,
    MODE_NORMAL,
    MODE_SERIAL,
    AdmissionController,
    BreakerConfig,
    Deadline,
    ShardBreaker,
    earliest,
)


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_from_ms_and_remaining(self):
        d = Deadline.from_ms(100.0, 500.0)
        assert d.at == pytest.approx(100.5)
        assert d.remaining(100.0) == pytest.approx(0.5)
        assert d.remaining(100.6) == pytest.approx(-0.1)

    def test_expired(self):
        d = Deadline.from_ms(0.0, 1000.0)
        assert not d.expired(0.999)
        assert d.expired(1.0)
        assert d.expired(2.0)

    def test_earliest_prefers_tighter(self):
        a, b = Deadline(at=5.0), Deadline(at=3.0)
        assert earliest(a, b) is b
        assert earliest(b, a) is b

    def test_earliest_handles_none(self):
        d = Deadline(at=1.0)
        assert earliest(None, d) is d
        assert earliest(d, None) is d
        assert earliest(None, None) is None


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_sheds_exactly_at_cap(self):
        adm = AdmissionController(queue_cap=3, batch_max=2)
        for _ in range(3):
            assert not adm.would_shed()
            adm.admitted()
        assert adm.would_shed()
        adm.dequeued(1)
        assert not adm.would_shed()

    def test_peak_depth_gauge(self):
        adm = AdmissionController(queue_cap=10, batch_max=4)
        for _ in range(7):
            adm.admitted()
        adm.dequeued(5)
        adm.admitted()
        assert adm.depth == 3
        assert adm.peak_depth == 7

    def test_dequeue_never_goes_negative(self):
        adm = AdmissionController(queue_cap=4, batch_max=4)
        adm.admitted()
        adm.dequeued(10)
        assert adm.depth == 0

    def test_derived_watermarks(self):
        adm = AdmissionController(queue_cap=16, batch_max=4)
        assert adm.high_watermark == 8
        assert adm.low_watermark == 4

    def test_watermark_hysteresis(self):
        adm = AdmissionController(queue_cap=16, batch_max=4,
                                  high_watermark=8, low_watermark=4)
        for _ in range(7):
            adm.admitted()
        assert not adm.should_pause(False)  # 7 < high
        adm.admitted()
        assert adm.should_pause(False)      # 8 >= high: pause
        adm.dequeued(3)
        assert adm.should_pause(True)       # 5 > low: stay paused
        adm.dequeued(1)
        assert not adm.should_pause(True)   # 4 <= low: resume

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_cap=8, batch_max=4,
                                high_watermark=4, low_watermark=4)
        with pytest.raises(ValueError):
            AdmissionController(queue_cap=8, batch_max=4,
                                high_watermark=9, low_watermark=2)
        with pytest.raises(ValueError):
            AdmissionController(queue_cap=0, batch_max=4)

    def test_retry_hint_scales_with_backlog(self):
        adm = AdmissionController(queue_cap=64, batch_max=8, linger_ms=10.0)
        empty_hint = adm.retry_after_ms()
        for _ in range(32):
            adm.admitted()
        assert adm.retry_after_ms() > empty_hint

    def test_retry_hint_tracks_flush_ewma(self):
        adm = AdmissionController(queue_cap=8, batch_max=8, linger_ms=1.0)
        before = adm.retry_after_ms()
        for _ in range(20):
            adm.observe_flush(0.5)  # slow flushes
        assert adm.retry_after_ms() > before

    def test_retry_hint_clamped(self):
        adm = AdmissionController(queue_cap=8, batch_max=1, linger_ms=1.0)
        for _ in range(20):
            adm.observe_flush(3600.0)
        for _ in range(8):
            adm.admitted()
        assert adm.retry_after_ms() <= 30_000.0
        calm = AdmissionController(queue_cap=8, batch_max=8, linger_ms=0.0)
        assert calm.retry_after_ms() >= 1.0

    def test_stats_shape(self):
        adm = AdmissionController(queue_cap=8, batch_max=4)
        s = adm.stats()
        for key in ("depth", "peak_depth", "queue_cap", "high_watermark",
                    "low_watermark", "flush_ewma_ms", "retry_after_ms"):
            assert key in s


# ---------------------------------------------------------------------------
# circuit breaking
# ---------------------------------------------------------------------------


def _trip(breaker: ShardBreaker, now: float) -> None:
    """Feed ``threshold`` consecutive bad closed-state outcomes."""
    for _ in range(breaker.config.threshold):
        breaker.on_outcome(False, now)


class TestShardBreaker:
    def test_closed_by_default(self):
        b = ShardBreaker(0)
        assert b.state == ShardBreaker.CLOSED
        assert b.dispatch_mode(0.0) == (MODE_NORMAL, False)

    def test_trips_after_threshold(self):
        b = ShardBreaker(0, BreakerConfig(threshold=3, cooldown_base_s=1.0))
        assert not b.on_outcome(False, 0.0)
        assert not b.on_outcome(False, 0.0)
        assert b.on_outcome(False, 0.0)  # third consecutive: trip
        assert b.state == ShardBreaker.OPEN
        assert b.trips == 1

    def test_success_resets_consecutive_count(self):
        b = ShardBreaker(0, BreakerConfig(threshold=3))
        b.on_outcome(False, 0.0)
        b.on_outcome(False, 0.0)
        b.on_outcome(True, 0.0)
        assert not b.on_outcome(False, 0.0)
        assert b.state == ShardBreaker.CLOSED

    def test_degraded_ladder_by_trip_count(self):
        b = ShardBreaker(0, BreakerConfig(threshold=1, cooldown_base_s=1.0))
        b.on_outcome(False, 0.0)
        assert b.degraded_mode() == MODE_SERIAL
        b.on_outcome(False, b.open_until, probe=True)  # probe fails: deeper
        assert b.degraded_mode() == MODE_EXACT
        b.on_outcome(False, b.open_until, probe=True)
        assert b.degraded_mode() == MODE_CACHE_ONLY
        b.on_outcome(False, b.open_until, probe=True)  # stays on last rung
        assert b.degraded_mode() == MODE_CACHE_ONLY

    def test_open_serves_degraded_until_cooldown(self):
        b = ShardBreaker(0, BreakerConfig(threshold=1, cooldown_base_s=2.0))
        b.on_outcome(False, 10.0)
        assert b.dispatch_mode(10.5) == (MODE_SERIAL, False)
        assert b.dispatch_mode(11.9) == (MODE_SERIAL, False)

    def test_half_open_single_probe(self):
        b = ShardBreaker(0, BreakerConfig(threshold=1, cooldown_base_s=1.0))
        b.on_outcome(False, 0.0)
        mode, probe = b.dispatch_mode(1.5)  # cooldown elapsed
        assert (mode, probe) == (MODE_NORMAL, True)
        # A concurrent dispatch while the probe is in flight stays degraded.
        assert b.dispatch_mode(1.5) == (MODE_SERIAL, False)

    def test_probe_success_closes_fully(self):
        b = ShardBreaker(0, BreakerConfig(threshold=1, cooldown_base_s=1.0))
        b.on_outcome(False, 0.0)
        b.on_outcome(False, b.open_until, probe=True)  # deeper: trips=2
        _mode, probe = b.dispatch_mode(b.open_until)
        assert probe
        b.on_outcome(True, b.open_until, probe=True)
        assert b.state == ShardBreaker.CLOSED
        assert b.trips == 0
        assert b.dispatch_mode(100.0) == (MODE_NORMAL, False)

    def test_probe_failure_doubles_cooldown(self):
        cfg = BreakerConfig(threshold=1, cooldown_base_s=1.0,
                            cooldown_cap_s=30.0)
        b = ShardBreaker(0, cfg)
        b.on_outcome(False, 0.0)
        first_window = b.open_until - 0.0
        t = b.open_until
        b.on_outcome(False, t, probe=True)
        assert b.open_until - t == pytest.approx(2.0 * first_window)

    def test_cooldown_capped(self):
        cfg = BreakerConfig(threshold=1, cooldown_base_s=1.0,
                            cooldown_cap_s=4.0)
        assert cfg.cooldown(1) == 1.0
        assert cfg.cooldown(3) == 4.0
        assert cfg.cooldown(10) == 4.0

    def test_degraded_outcomes_ignored(self):
        b = ShardBreaker(0, BreakerConfig(threshold=1, cooldown_base_s=5.0))
        b.on_outcome(False, 0.0)
        trips = b.trips
        # Degraded (non-probe) dispatches landing badly must not deepen.
        b.on_outcome(False, 1.0)
        b.on_outcome(True, 1.0)
        assert b.trips == trips
        assert b.state == ShardBreaker.OPEN

    def test_outcome_is_bad_classification(self):
        bad = ShardBreaker.outcome_is_bad
        assert bad(RuntimeError("boom"), {})
        assert bad(None, {"worker_respawns": 1})
        assert bad(None, {"cell_timeouts": 2})
        assert bad(None, {"precision_escalations": 1})
        assert not bad(None, {"serve_errors": 5})       # client-fault errors
        assert not bad(None, {"cell_deadline_expired": 3})  # client budgets
        assert not bad(None, {})

    def test_retry_after_reports_remaining_cooldown(self):
        b = ShardBreaker(0, BreakerConfig(threshold=1, cooldown_base_s=2.0))
        b.on_outcome(False, 10.0)
        assert b.retry_after_ms(11.0) == pytest.approx(1000.0)
        assert b.retry_after_ms(20.0) == 0.0

    def test_stats_shape(self):
        b = ShardBreaker(3, BreakerConfig(threshold=1))
        _trip(b, 0.0)
        s = b.stats(0.5)
        assert s["state"] == ShardBreaker.OPEN
        assert s["mode"] == MODE_SERIAL
        assert s["trips"] == 1
        assert s["cooldown_remaining_s"] > 0
