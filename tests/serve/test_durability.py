"""The durability substrate: WAL recovery, snapshots, restart bit-identity.

Everything the crash soak relies on, pinned at unit scale: admissions
survive a reopen, settles retire them idempotently, a torn tail is
physically truncated while mid-file corruption and foreign fingerprints
refuse with the typed :class:`~repro.exceptions.DurabilityError`, and a
server restarted onto its durability directory serves bytes identical to
the incarnation that died -- from the restored snapshot and from replayed
journal admissions alike.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import EngineSpec
from repro.exceptions import DurabilityError, MalformedInputError
from repro.graphs.builders import random_ring
from repro.io import graph_to_dict
from repro.serve import ServeConfig, start_in_thread
from repro.serve.durability import (
    DurabilityConfig,
    RequestJournal,
    durability_fingerprint,
    load_snapshot,
    save_snapshot,
)
from repro.serve.solver import canonical_request, solve_cell

from .client import Client

FP = "test-fingerprint"


def _graph_dict(seed: int = 0, n: int = 6) -> dict:
    rng = np.random.default_rng(seed)
    return graph_to_dict(random_ring(n, rng, "loguniform", 0.1, 10.0))


def _canon(seed: int = 0) -> tuple[bytes, dict]:
    key, _order, canon = canonical_request(_graph_dict(seed))
    return key, canon


# -- the write-ahead request journal ---------------------------------------


def test_admit_settle_replay_and_compaction_on_open(tmp_path):
    path = tmp_path / "journal.wal"
    with RequestJournal.open(path, FP, fsync="off") as j:
        seqs = [j.admit(*_canon(s)) for s in range(3)]
        assert seqs == [1, 2, 3]
        assert j.settle(2) is True
        assert j.settle(2) is False  # idempotent: already retired
        assert len(j) == 2

    # Reopen: the settled admission is gone, the rest replay oldest-first,
    # and the settle record was compacted away (header + 2 admits remain).
    with RequestJournal.open(path, FP, fsync="off") as j:
        assert sorted(j.pending) == [1, 3]
        items = j.replay_items()
        assert [seq for seq, _k, _g in items] == [1, 3]
        key0, canon0 = _canon(0)
        assert items[0][1] == key0 and items[0][2] == canon0
        # Sequence numbers never rewind past compaction.
        assert j.admit(*_canon(9)) == 4
    assert len(path.read_text().splitlines()) == 1 + 3


def test_settle_unknown_sequence_is_a_silent_noop(tmp_path):
    path = tmp_path / "journal.wal"
    with RequestJournal.open(path, FP, fsync="off") as j:
        j.admit(*_canon(0))
        before = path.stat().st_size
        assert j.settle(99) is False
        j._fh.flush()
        assert path.stat().st_size == before  # no record appended


def test_torn_final_line_is_dropped_and_truncated(tmp_path):
    path = tmp_path / "journal.wal"
    with RequestJournal.open(path, FP, fsync="off") as j:
        j.admit(*_canon(0))
        j.admit(*_canon(1))
    clean = path.stat().st_size
    with open(path, "ab") as fh:
        fh.write(b'{"t":"a","q":3,"k":"de')  # crash mid-append
    with RequestJournal.open(path, FP, fsync="off") as j:
        assert sorted(j.pending) == [1, 2]
    assert path.stat().st_size == clean  # physically truncated


def test_duplicate_settle_records_in_file_are_tolerated(tmp_path):
    path = tmp_path / "journal.wal"
    with RequestJournal.open(path, FP, fsync="off") as j:
        j.admit(*_canon(0))
        j.admit(*_canon(1))
    # A crash between the settle append and the caller observing it can
    # legitimately replay the settle: duplicates must be harmless history.
    with open(path, "a") as fh:
        fh.write('{"t":"s","q":1}\n' * 3)
    with RequestJournal.open(path, FP, fsync="off") as j:
        assert sorted(j.pending) == [2]


def test_midfile_corruption_raises_typed(tmp_path):
    path = tmp_path / "journal.wal"
    with RequestJournal.open(path, FP, fsync="off") as j:
        j.admit(*_canon(0))
        j.admit(*_canon(1))
    lines = path.read_text().splitlines(keepends=True)
    lines[1] = "not json at all\n"  # corrupt *before* a valid record
    path.write_text("".join(lines))
    with pytest.raises(DurabilityError):
        RequestJournal.open(path, FP, fsync="off")


def test_foreign_fingerprint_refused_without_mutation(tmp_path):
    path = tmp_path / "journal.wal"
    with RequestJournal.open(path, FP, fsync="off") as j:
        j.admit(*_canon(0))
    before = path.read_bytes()
    with pytest.raises(DurabilityError, match="different serving structure"):
        RequestJournal.open(path, "other-fingerprint", fsync="off")
    # The refusal must precede torn-tail truncation: a journal we will not
    # replay is a journal we must not rewrite either.
    assert path.read_bytes() == before


def test_rotation_bounds_the_journal_at_backlog_size(tmp_path):
    path = tmp_path / "journal.wal"
    with RequestJournal.open(path, FP, fsync="off",
                             compact_min_settled=4) as j:
        for s in range(8):
            j.settle(j.admit(*_canon(s)))
        assert j.settles_since_rotate < 4  # rotation fired and reset
        assert len(j) == 0
    # Everything settled: the rotated journal is just its header.
    assert len(path.read_text().splitlines()) == 1


# -- the response-cache snapshot -------------------------------------------


def test_snapshot_round_trip_missing_and_mismatch(tmp_path):
    path = tmp_path / "cache.snap"
    assert load_snapshot(path, FP) is None
    key, canon = _canon(3)
    result = solve_cell((EngineSpec(), canon))
    entries = [(key, result), (b"\x00\x01", {"n": 2})]
    save_snapshot(path, entries, FP)
    assert load_snapshot(path, FP) == entries
    with pytest.raises(DurabilityError, match="different serving structure"):
        load_snapshot(path, "other-fingerprint")


def test_snapshot_rewrite_is_atomic_over_the_previous(tmp_path):
    path = tmp_path / "cache.snap"
    save_snapshot(path, [(b"\x01", {"n": 1})], FP)
    # A leftover tmp from a crashed writer must not poison the next save.
    path.with_suffix(".tmp").write_text("garbage from a dead writer")
    save_snapshot(path, [(b"\x02", {"n": 2})], FP)
    assert load_snapshot(path, FP) == [(b"\x02", {"n": 2})]
    assert not path.with_suffix(".tmp").exists()


def test_snapshot_corrupt_entry_raises_typed(tmp_path):
    path = tmp_path / "cache.snap"
    save_snapshot(path, [(b"\x01", {"n": 1}), (b"\x02", {"n": 2})], FP)
    lines = path.read_text().splitlines(keepends=True)
    lines[1] = '{"k":"zz-not-hex","v":{"n":1}}\n'
    path.write_text("".join(lines))
    with pytest.raises(DurabilityError):
        load_snapshot(path, FP)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 10))
def test_snapshot_and_journal_payloads_are_bit_exact(tmp_path_factory, seed, n):
    """Result and canon dicts survive the disk round trip byte-identically.

    Both artifacts carry scalars in the exact hex/frac JSON encoding, so
    dump -> load must reproduce not just equal dicts but equal *bytes*
    under canonical dumping -- the invariant behind "a restarted server is
    indistinguishable in bytes from one that never died".
    """
    tmp = tmp_path_factory.mktemp("durability-prop")
    key, _order, canon = canonical_request(_graph_dict(seed, n))
    result = solve_cell((EngineSpec(), canon))

    save_snapshot(tmp / "cache.snap", [(key, result)], FP)
    [(rkey, rresult)] = load_snapshot(tmp / "cache.snap", FP)
    assert rkey == key
    assert json.dumps(rresult, sort_keys=True) == \
        json.dumps(result, sort_keys=True)

    with RequestJournal.open(tmp / "journal.wal", FP, fsync="off") as j:
        seq = j.admit(key, canon)
    with RequestJournal.open(tmp / "journal.wal", FP, fsync="off") as j:
        [(jseq, jkey, jcanon)] = j.replay_items()
    assert (jseq, jkey) == (seq, key)
    assert json.dumps(jcanon, sort_keys=True) == \
        json.dumps(canon, sort_keys=True)


# -- config validation ------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    {"dir": ""},
    {"fsync": "sometimes"},
    {"snapshot_interval_s": 0.0},
    {"snapshot_interval_s": float("inf")},
    {"compact_min_settled": 0},
])
def test_durability_config_rejects_malformed(tmp_path, kwargs):
    base = {"dir": str(tmp_path / "state")}
    base.update(kwargs)
    with pytest.raises(MalformedInputError):
        DurabilityConfig(**base).validated()


def test_durability_config_rejects_unwritable_dir(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where the state dir should go")
    with pytest.raises(MalformedInputError, match="not writable"):
        DurabilityConfig(dir=str(blocker / "state")).validated()


def test_durability_config_creates_dir(tmp_path):
    target = tmp_path / "a" / "b" / "state"
    cfg = DurabilityConfig(dir=str(target), fsync="off").validated()
    assert target.is_dir()
    assert cfg.journal_path.parent == target


# -- server restart: snapshot restore + journal replay ----------------------


def _durable_config(tmp_path) -> ServeConfig:
    return ServeConfig(
        shards=1, batch_max=4, linger_ms=1.0,
        durability=DurabilityConfig(dir=str(tmp_path / "state"), fsync="off",
                                    snapshot_interval_s=60.0))


def test_restart_restores_snapshot_and_serves_identical_bytes(tmp_path):
    graphs = [_graph_dict(s) for s in range(4)]
    handle = start_in_thread(_durable_config(tmp_path))
    client = Client(handle.port)
    try:
        first = [client.rpc({"op": "solve", "graph": g})["result"]
                 for g in graphs]
        stats = client.rpc({"op": "stats"})["result"]
        assert stats["serve_journal_admits"] == 4
        assert stats["durability"]["journal_depth"] == 0  # all settled
    finally:
        client.close()
        handle.stop()  # graceful: writes the shutdown snapshot

    handle = start_in_thread(_durable_config(tmp_path))
    client = Client(handle.port)
    try:
        again = [client.rpc({"op": "solve", "graph": g})["result"]
                 for g in graphs]
        stats = client.rpc({"op": "stats"})["result"]
        assert stats["serve_snapshot_restored"] >= 4
        assert stats["serve_cache_hits"] == 4  # no re-solve after restore
        assert json.dumps(again, sort_keys=True) == \
            json.dumps(first, sort_keys=True)
    finally:
        client.close()
        handle.stop()


def test_restart_replays_unsettled_admission(tmp_path):
    cfg = _durable_config(tmp_path)
    graph = _graph_dict(17)
    # An admission the dead incarnation never settled: written straight
    # into the journal, exactly as a crash between admit and flush leaves.
    handle = start_in_thread(cfg)
    fp = durability_fingerprint(handle.server.spec)
    handle.stop()
    key, _order, canon = canonical_request(graph)
    with RequestJournal.open(cfg.durability.journal_path, fp,
                             fsync="off") as j:
        j.admit(key, canon)

    handle = start_in_thread(cfg)
    client = Client(handle.port)
    try:
        handle.ctx  # server is up; replay ran during start()
        client.rpc({"op": "drain"})
        stats = client.rpc({"op": "stats"})["result"]
        assert stats["serve_journal_replayed"] == 1
        assert stats["durability"]["journal_depth"] == 0
        # The replayed solve landed in the cache: the original requester's
        # retry is a pure hit, bit-identical to a crash-free solve.
        result = client.rpc({"op": "solve", "graph": graph})["result"]
        stats = client.rpc({"op": "stats"})["result"]
        assert stats["serve_cache_hits"] >= 1
        fresh = start_in_thread(ServeConfig(shards=1, batch_max=4,
                                            linger_ms=1.0))
        fresh_client = Client(fresh.port)
        try:
            expected = fresh_client.rpc(
                {"op": "solve", "graph": graph})["result"]
        finally:
            fresh_client.close()
            fresh.stop()
        assert json.dumps(result, sort_keys=True) == \
            json.dumps(expected, sort_keys=True)
    finally:
        client.close()
        handle.stop()
