"""Multi-endpoint failover in :class:`~repro.serve.client.ResilientClient`.

Two real in-thread servers; the client's contract is that an endpoint
list behaves like one reliable server under a single deadline budget --
dead endpoints are skipped at connect, a mid-flight endpoint death
rotates to the survivor, and the idempotent canonical-fingerprint solve
makes every blind retry safe.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.graphs.builders import random_ring
from repro.io import graph_to_dict
from repro.serve import ServeConfig, start_in_thread
from repro.serve.client import ResilientClient


def _graph(seed=0):
    rng = np.random.default_rng(seed)
    return graph_to_dict(random_ring(6, rng, "loguniform", 0.1, 10.0))


def _dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve():
    return start_in_thread(ServeConfig(shards=1, batch_max=4, linger_ms=1.0))


def test_dead_first_endpoint_is_skipped_at_connect():
    handle = _serve()
    client = ResilientClient(
        endpoints=[("127.0.0.1", _dead_port()), ("127.0.0.1", handle.port)],
        max_attempts=4, backoff_base_ms=5.0, seed=3)
    try:
        result = client.solve(_graph())
        assert result["n"] == 6
        assert client.failovers >= 1
        assert client.port == handle.port  # rotation landed on the live one
    finally:
        client.close()
        handle.stop()


def test_midflight_endpoint_death_fails_over_to_survivor():
    primary, backup = _serve(), _serve()
    client = ResilientClient(
        endpoints=[("127.0.0.1", primary.port), ("127.0.0.1", backup.port)],
        max_attempts=6, backoff_base_ms=5.0, seed=4)
    try:
        g = _graph(1)
        first = client.solve(g)
        assert client.failovers == 0  # primary was healthy
        primary.stop()
        again = client.solve(g)
        # Idempotency across endpoints: the survivor's solve is the same
        # result the dead primary returned.
        assert again == first
        assert client.failovers >= 1
        assert client.port == backup.port
    finally:
        client.close()
        backup.stop()


def test_all_endpoints_dead_raises_after_connect_cycles():
    client = ResilientClient(
        endpoints=[("127.0.0.1", _dead_port()), ("127.0.0.1", _dead_port())],
        max_attempts=2, backoff_base_ms=1.0, connect_cycles=2,
        connect_backoff_ms=1.0, seed=5)
    try:
        with pytest.raises((ConnectionError, OSError)):
            client.solve(_graph())
    finally:
        client.close()


def test_single_endpoint_never_rotates():
    handle = _serve()
    client = ResilientClient(handle.port, max_attempts=3, seed=6)
    try:
        client.solve(_graph(2))
        assert client.failovers == 0
        assert client.endpoints == [("127.0.0.1", handle.port)]
    finally:
        client.close()
        handle.stop()
