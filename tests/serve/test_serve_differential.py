"""Differential tests: served responses vs fresh single-shot solves.

The service's correctness contract is *bit-identity with the library*:
whatever batching, coalescing, sharding, caching, and canonical-form
plumbing did in between, the bytes a client receives must equal a fresh,
unbatched, uncached :func:`repro.serve.solver.single_shot_response` of the
same instance -- which is itself canonicalize + plain :mod:`repro.core`
solve + permutation map-back, the semantics README documents.  The
isomorphism leg additionally pins the whole point of the canonical cache:
relabelled copies of one economy are front-end cache hits, and each
labelling still gets *its own* correctly-mapped bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import bd_allocation, bottleneck_decomposition
from repro.engine import EngineContext
from repro.graphs import canonical_form, ring
from repro.graphs.builders import random_ring
from repro.io import graph_to_dict, scalar_to_json
from repro.serve.solver import single_shot_response

from .client import client_for, serving


def _mixed_instances():
    rng = np.random.default_rng(20260809)
    out = [random_ring(int(n), rng, "loguniform", 0.1, 10.0)
           for n in (3, 4, 5, 7, 9, 12, 16)]
    # Degenerate-but-legal weights ride along: zeros and subnormals.
    out.append(ring([0.0, 1.0, 5e-324, 2.0]))
    out.append(ring([1e-300, 1e16, 1.0, 1.0, 0.0]))
    return out


def test_single_shot_matches_raw_core_on_canonical_instances():
    """On an instance already in canonical position, the reference
    semantics reduce to a plain bd_allocation -- no mapping in the way."""
    for g in _mixed_instances():
        key, order = canonical_form(g)
        cg = ring([g.weights[v] for v in order])
        ctx = EngineContext(cache_size=0)
        decomp = bottleneck_decomposition(cg, None, ctx)
        alloc = bd_allocation(cg, decomp, None, ctx)
        resp = single_shot_response(cg)
        assert resp["utilities"] == [scalar_to_json(u) for u in alloc.utilities]
        assert resp["alphas"] == [
            scalar_to_json(decomp.alpha_of(v)) for v in range(cg.n)]


@pytest.mark.parametrize("shards", [0, 1, 3])
def test_served_bit_identical_to_single_shot(shards):
    instances = _mixed_instances()
    expected = [single_shot_response(g) for g in instances]
    with serving(shards=shards, batch_max=8, linger_ms=1.0) as handle:
        with client_for(handle) as c:
            for i, (g, exp) in enumerate(zip(instances, expected)):
                resp = c.rpc({"op": "solve", "id": i,
                              "graph": graph_to_dict(g)})
                assert resp["status"] == "ok"
                assert resp["result"] == exp
            # Second pass: every instance is now a cache hit, and the
            # bytes are still identical.
            for i, (g, exp) in enumerate(zip(instances, expected)):
                resp = c.rpc({"op": "solve", "id": 100 + i,
                              "graph": graph_to_dict(g)})
                assert resp["result"] == exp
            stats = c.rpc({"op": "stats", "id": 999})["result"]
            assert stats["serve_cache_hits"] >= len(instances)


def test_isomorphic_relabellings_hit_cache_and_map_back():
    """All 2n relabellings of one economy: one solve, 2n - 1 front-end
    hits, and each labelling's response equals its own single-shot
    solve bit-for-bit."""
    base = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0]
    n = len(base)
    labellings = []
    for reflect in (False, True):
        seq = list(reversed(base)) if reflect else list(base)
        for r in range(n):
            labellings.append(seq[r:] + seq[:r])
    with serving(shards=2, linger_ms=0.5) as handle:
        with client_for(handle) as c:
            for i, ws in enumerate(labellings):
                g = ring(ws)
                resp = c.rpc({"op": "solve", "id": i,
                              "graph": graph_to_dict(g)})
                assert resp["status"] == "ok"
                assert resp["result"] == single_shot_response(g)
            stats = c.rpc({"op": "drain", "id": 99})["result"]
    # One canonical economy: exactly one miss went to the pool; every
    # other labelling was answered from the canonical entry (a hit, or a
    # coalesce if it raced the first solve).
    assert stats["serve_cache_misses"] == 1
    assert (stats["serve_cache_hits"] + stats["serve_coalesced"]
            == 2 * n - 1)
    assert stats["serve_responses"] == 2 * n


def test_utilities_permute_with_the_labelling():
    """The mapped response is not merely cached-and-replayed: vertex v's
    utility follows vertex v through the relabelling."""
    base = [2.0, 7.0, 1.0, 8.0, 2.5]
    g1 = ring(base)
    rot = 2
    g2 = ring(base[rot:] + base[:rot])  # g2's vertex i is g1's vertex i+rot
    r1 = single_shot_response(g1)
    r2 = single_shot_response(g2)
    n = len(base)
    assert [r2["utilities"][i] for i in range(n)] == [
        r1["utilities"][(i + rot) % n] for i in range(n)]
    with serving(shards=1) as handle:
        with client_for(handle) as c:
            s1 = c.rpc({"op": "solve", "id": 1, "graph": graph_to_dict(g1)})
            s2 = c.rpc({"op": "solve", "id": 2, "graph": graph_to_dict(g2)})
    assert s1["result"] == r1
    assert s2["result"] == r2
