"""Integration tests: the daemon as a black box over a real socket.

Covers the full lifecycle contract (start / serve / drain / shutdown),
the input boundary (malformed bytes get a typed error response on a live
connection, never a drop or a crash), metrics integrity under concurrent
batches, and supervised-recovery: a worker killed mid-batch retries to a
bit-identical response.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.graphs import ring
from repro.io import graph_to_dict
from repro.runtime import RuntimePolicy
from repro.serve import PROTOCOL_VERSION
from repro.serve.solver import single_shot_response

from .client import Client, client_for, serving


def _solve(client, req_id, g):
    return client.rpc({"op": "solve", "id": req_id, "graph": graph_to_dict(g)})


# -- lifecycle --------------------------------------------------------------

def test_lifecycle_start_serve_drain_shutdown():
    with serving(shards=1, linger_ms=0.5) as handle:
        with client_for(handle) as c:
            assert c.rpc({"op": "ping", "id": 1}) == {
                "id": 1, "status": "ok",
                "result": {"protocol": PROTOCOL_VERSION},
            }
            resp = _solve(c, 2, ring([1.0, 2.0, 3.0, 4.0]))
            assert resp["status"] == "ok"
            drained = c.rpc({"op": "drain", "id": 3})
            assert drained["status"] == "ok"
            stats = drained["result"]
            assert stats["serve_requests"] == 1
            assert stats["serve_responses"] == 1
            bye = c.rpc({"op": "shutdown", "id": 4})
            assert bye == {"id": 4, "status": "ok",
                           "result": {"stopping": True}}
        # The listener is gone after a graceful shutdown.
        handle.thread.join(timeout=30)
        assert not handle.thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", handle.port), timeout=0.5)


def test_handle_stop_is_idempotent_after_inband_shutdown():
    with serving(shards=0) as handle:
        with client_for(handle) as c:
            c.rpc({"op": "shutdown", "id": 0})
        handle.stop()  # must not raise against the already-closed loop
        handle.stop()


# -- input boundary ---------------------------------------------------------

MALFORMED_LINES = [
    b"{nope\n",                                   # not JSON
    b"\xff\xfe\n",                                # not UTF-8
    b"[1, 2, 3]\n",                               # not an object
    b'{"op": "frobnicate"}\n',                    # unknown op
    b'{"op": "solve", "id": 1}\n',                # solve without graph
    b'{"op": "solve", "id": true, "graph": {}}\n',  # bool id
]


def test_malformed_lines_get_typed_errors_connection_survives():
    with serving(shards=0) as handle:
        with client_for(handle) as c:
            for line in MALFORMED_LINES:
                resp = c.send_raw(line)
                assert resp["status"] == "error"
                assert resp["error"]["type"] == "MalformedInputError"
                assert resp["error"]["message"]
            # Bad graph *payloads* echo the request id with the guard's
            # typed error; the connection is still live afterwards.
            bad_graph = {"op": "solve", "id": 9,
                         "graph": {"n": 3, "edges": [[0, 1], [1, 2], [2, 0]],
                                   "weights": [1.0, -2.0, 1.0]}}
            resp = c.rpc(bad_graph)
            assert resp["id"] == 9
            assert resp["status"] == "error"
            assert resp["error"]["type"] in (
                "MalformedInputError", "InvalidWeightError")
            ok = _solve(c, 10, ring([1.0, 1.0, 2.0]))
            assert ok["status"] == "ok"
            stats = c.rpc({"op": "stats", "id": 11})["result"]
            assert stats["serve_errors"] == len(MALFORMED_LINES) + 1
            assert stats["serve_responses"] == 1


def test_oversized_line_is_rejected_not_fatal():
    with serving(shards=0) as handle:
        with client_for(handle) as c:
            c.sock.sendall(b"x" * (9 * 1024 * 1024))
            c.sock.sendall(b"\n")
            resp = json.loads(c.file.readline())
            assert resp["status"] == "error"
        # The server survives to serve a fresh connection.
        with client_for(handle) as c2:
            assert c2.rpc({"op": "ping", "id": 1})["status"] == "ok"


# -- concurrent batches and metrics ----------------------------------------

def test_concurrent_batches_do_not_double_count():
    """Many clients, many distinct instances, several shards: after drain,
    every counter total equals the request arithmetic exactly -- the
    cross-thread merge never double-reports a shard's work."""
    # Weights unique to this test: shard worker contexts are memoized per
    # spec for the life of the process, so an instance another test already
    # solved would hit the worker-side decomposition cache and break the
    # decompositions == misses arithmetic below.
    instances = [ring([1.0 + i, 2.125, 3.375, 4.0 + i]) for i in range(12)]
    with serving(shards=3, batch_max=4, linger_ms=1.0) as handle:
        errors: list = []

        def run_client(offset: int) -> None:
            try:
                with client_for(handle) as c:
                    for j, g in enumerate(instances):
                        resp = _solve(c, offset * 100 + j, g)
                        assert resp["status"] == "ok"
            except Exception as exc:  # surfaced below on the main thread
                errors.append(exc)

        threads = [threading.Thread(target=run_client, args=(k,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        with client_for(handle) as c:
            stats = c.rpc({"op": "drain", "id": 0})["result"]
        assert stats["serve_requests"] == 4 * len(instances)
        assert stats["serve_responses"] == 4 * len(instances)
        assert stats["serve_errors"] == 0
        # Every request either hit the cache, coalesced onto an in-flight
        # solve, or was a miss that went to the pool: the three must tile
        # the request count exactly (no lost or double-counted requests).
        assert (stats["serve_cache_hits"] + stats["serve_coalesced"]
                + stats["serve_cache_misses"]) == 4 * len(instances)
        # Solved work happened once per miss, regardless of which shard or
        # batch carried it: decompositions equal misses.
        assert stats["decompositions"] == stats["serve_cache_misses"]


# -- supervised recovery ----------------------------------------------------

def test_killed_worker_mid_batch_retries_bit_identical():
    """``worker:kill@0`` kills the first shard-worker attempt; the retry
    must transparently produce the same bytes an unfaulted server serves."""
    g = ring([3.0, 1.0, 4.0, 1.5, 5.0])
    expected = single_shot_response(g)
    policy = RuntimePolicy(retries=2, timeout=30.0)
    with serving(shards=1, cache_size=0, policy=policy,
                 faults="worker:kill@0") as handle:
        with client_for(handle) as c:
            resp = _solve(c, 1, g)
            assert resp["status"] == "ok"
            assert resp["result"] == expected
            stats = c.rpc({"op": "stats", "id": 2})["result"]
            # Single-cell flushes take the serial supervised path, where the
            # kill is simulated and retried in-process; either way exactly
            # the recovery ladder ran (a retry happened).
            assert stats["cell_retries"] + stats["worker_respawns"] >= 1
    # Control: the same solve without faults is byte-for-byte the same.
    with serving(shards=1, cache_size=0) as handle:
        with client_for(handle) as c:
            assert _solve(c, 1, g)["result"] == expected
