"""Overload semantics end-to-end: shedding, deadlines, breakers, the soak.

These tests drive the real wire path (sockets against a server on a
background loop) and pin the overload contract from the outside: typed
``overloaded`` envelopes with hints at capacity, typed
``deadline_exceeded`` envelopes when budgets run out anywhere on the
request path, the breaker's degraded ladder down to cache-only
fast-fail, and the exactly-one-typed-outcome accounting that the chaos
soak asserts at scale.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.graphs import ring
from repro.graphs.builders import random_ring
from repro.io import graph_to_dict
from repro.runtime import RuntimePolicy
from repro.serve import ServeConfig, start_in_thread
from repro.serve.load import (
    OVERLOAD_BENCH_NAME,
    LoadConfig,
    OverloadConfig,
    build_chaos_spec,
    build_requests,
    run_overload,
)

from .client import Client, client_for, serving


def _graphs(count, seed=0, n_min=4, n_max=10):
    rng = np.random.default_rng(seed)
    return [random_ring(int(rng.integers(n_min, n_max + 1)), rng,
                        "loguniform", 0.1, 10.0) for _ in range(count)]


def _solve(client, req_id, g, **extra):
    req = {"op": "solve", "id": req_id, "graph": graph_to_dict(g)}
    req.update(extra)
    return client.rpc(req)


def _terminal_tiling(stats: dict) -> None:
    """Every request exactly one typed terminal outcome, by counters."""
    assert stats["serve_requests"] == (
        stats["serve_responses"] + stats["serve_errors"]
        + stats["serve_shed"] + stats["serve_deadline_exceeded"])


# -- admission control ------------------------------------------------------


def test_sheds_typed_envelope_at_capacity():
    """queue_cap=1 with slow flushes and concurrent misses must shed, and
    a shed is a typed envelope with a hint on a live connection."""
    graphs = _graphs(12, seed=1)
    cfg = ServeConfig(shards=1, batch_max=2, linger_ms=50.0, cache_size=0,
                      queue_cap=1,
                      policy=RuntimePolicy(retries=1, timeout=60.0))
    handle = start_in_thread(cfg)
    try:
        responses = []
        lock = threading.Lock()

        def one(i, g):
            c = Client(handle.port)
            try:
                resp = _solve(c, i, g)
                # The connection survived the shed: a ping still answers.
                pong = c.rpc({"op": "ping", "id": f"after-{i}"})
                with lock:
                    responses.append((resp, pong))
            finally:
                c.close()

        threads = [threading.Thread(target=one, args=(i, g))
                   for i, g in enumerate(graphs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        assert len(responses) == len(graphs)
        shed = [r for r, _ in responses
                if r["status"] == "error"
                and r["error"]["type"] == "OverloadedError"]
        ok = [r for r, _ in responses if r["status"] == "ok"]
        assert shed, "no request was shed at queue_cap=1 under a burst"
        assert ok, "every request was shed -- admission never admitted"
        for r in shed:
            assert r["error"]["retry_after_ms"] > 0
        for _, pong in responses:
            assert pong["status"] == "ok"
        stats = handle.server.stats()
        _terminal_tiling(stats)
        assert stats["serve_shed"] == len(shed)
        assert stats["admission"]["peak_depth"] <= 1
    finally:
        handle.stop()


def test_no_shed_below_capacity_and_stats_shape():
    with serving(shards=1, queue_cap=64, cache_size=0) as handle:
        with client_for(handle) as c:
            for i, g in enumerate(_graphs(6, seed=2)):
                assert _solve(c, i, g)["status"] == "ok"
            stats = c.rpc({"op": "stats", "id": "s"})["result"]
    assert stats["serve_shed"] == 0
    assert stats["admission"]["queue_cap"] == 64
    assert stats["admission"]["peak_depth"] <= 64
    assert "0" in stats["breakers"]
    assert stats["breakers"]["0"]["state"] == "closed"
    _terminal_tiling(stats)


# -- deadlines --------------------------------------------------------------


def test_deadline_exceeded_is_typed_and_counted():
    """A microscopic budget cannot survive a long linger: the response is
    a typed deadline_exceeded envelope, counted under its own counter."""
    with serving(shards=0, linger_ms=500.0, cache_size=0) as handle:
        with client_for(handle) as c:
            resp = _solve(c, 1, ring([1.0, 2.0, 3.0]), deadline_ms=1.0)
            assert resp["status"] == "error"
            assert resp["error"]["type"] == "DeadlineExceededError"
            # The connection survived; a generous budget succeeds.
            resp2 = _solve(c, 2, ring([1.0, 2.0, 3.0, 4.0]),
                           deadline_ms=30_000.0)
            assert resp2["status"] == "ok"
        stats = handle.server.stats()
        assert stats["serve_deadline_exceeded"] >= 1
        _terminal_tiling(stats)


def test_default_deadline_applies_when_request_has_none():
    with serving(shards=0, linger_ms=300.0, cache_size=0,
                 default_deadline_ms=1.0) as handle:
        with client_for(handle) as c:
            resp = _solve(c, 1, ring([1.0, 2.0, 3.0]))
            assert resp["status"] == "error"
            assert resp["error"]["type"] == "DeadlineExceededError"


def test_invalid_deadline_rejected_as_malformed():
    with serving(shards=0) as handle:
        with client_for(handle) as c:
            for bad in (0, -5, "soon", True, float("nan")):
                resp = c.rpc({"op": "solve", "id": 1,
                              "graph": graph_to_dict(ring([1, 2, 3])),
                              "deadline_ms": bad})
                assert resp["status"] == "error"
                assert resp["error"]["type"] == "MalformedInputError"


def test_generous_deadline_result_identical_to_undeadlined():
    g = ring([3.0, 1.0, 4.0, 1.0, 5.0])
    with serving(shards=0, cache_size=0) as handle:
        with client_for(handle) as c:
            with_deadline = _solve(c, 1, g, deadline_ms=60_000.0)
            without = _solve(c, 2, g)
    assert with_deadline["status"] == without["status"] == "ok"
    assert with_deadline["result"] == without["result"]


# -- circuit breaker --------------------------------------------------------


def test_breaker_walks_ladder_to_cache_only_fastfail():
    """A persistently sick shard (worker killed every flush) trips, walks
    serial -> exact via failed probes, and lands in cache-only brownout
    where a miss fast-fails with a typed CircuitOpenError."""
    graphs = _graphs(16, seed=3)
    cfg = ServeConfig(shards=1, batch_max=4, linger_ms=60.0, cache_size=0,
                      faults="worker:kill@0",
                      breaker_threshold=1, breaker_cooldown_s=0.05,
                      breaker_cooldown_cap_s=0.4,
                      policy=RuntimePolicy(retries=2, timeout=60.0))
    handle = start_in_thread(cfg)
    try:
        types = []
        lock = threading.Lock()

        def one(i, g):
            c = Client(handle.port)
            try:
                resp = _solve(c, i, g)
                with lock:
                    types.append(resp["error"]["type"]
                                 if resp["status"] == "error" else "ok")
            finally:
                c.close()

        # Two concurrent requests per round: a single-cell flush solves on
        # the in-process serial path (no worker to kill), so rounds must
        # batch >= 2 cells for the kill fault -- and hence the breaker's
        # bad-dispatch signal -- to engage at all.
        for r in range(0, len(graphs), 2):
            pair = [threading.Thread(target=one, args=(r + j, graphs[r + j]))
                    for j in range(2)]
            for t in pair:
                t.start()
            for t in pair:
                t.join(timeout=60)
            if handle.server.ctx.counters.breaker_trips < 3:
                # Outlast the cooldown so the next round opens with the
                # half-open probe (which the kill fails again, walking the
                # ladder serial -> exact -> cache-only) ...
                time.sleep(0.45)
            # ... and once cache-only is reached, dispatch immediately --
            # inside the open window -- to observe the fast-fail path.
        stats = handle.server.stats()
        assert stats["breaker_trips"] >= 3
        assert stats["breaker_probes"] >= 1
        assert stats["breaker_fastfails"] >= 1
        assert "CircuitOpenError" in types
        # Degraded rungs still answered: serial/exact dispatches solve.
        assert "ok" in types
        _terminal_tiling(stats)
    finally:
        handle.stop()


def test_healthy_traffic_never_trips_breaker():
    with serving(shards=1, cache_size=0, breaker_threshold=1) as handle:
        with client_for(handle) as c:
            for i, g in enumerate(_graphs(5, seed=4)):
                assert _solve(c, i, g)["status"] == "ok"
        stats = handle.server.stats()
    assert stats["breaker_trips"] == 0
    assert stats["breakers"]["0"]["state"] == "closed"


# -- the chaos soak ---------------------------------------------------------


def test_chaos_spec_is_seed_deterministic():
    assert build_chaos_spec(7) == build_chaos_spec(7)
    assert build_chaos_spec(7) != build_chaos_spec(8)
    for clause in build_chaos_spec(7).split(";"):
        site = clause.split(":")[0]
        assert site in ("worker", "cell", "flow", "exp")


def test_overload_soak_smoke():
    """The full two-leg soak at small scale: zero contract violations,
    overload genuinely engaged, report in the repro-bench shape."""
    ocfg = OverloadConfig(warm_requests=12, warm_clients=2,
                          burst_requests=96, burst_clients=48,
                          pipeline=2, seed=0)
    report = run_overload(None, ocfg, tag="test")
    assert report["_problems"] == []
    bench = report["benchmarks"][OVERLOAD_BENCH_NAME]
    assert bench["warm_outcomes"]["ok"] == 12
    assert bench["warm_outcomes"]["overloaded"] == 0
    assert bench["outcomes"]["overloaded"] > 0
    assert sum(bench["outcomes"].values()) == 96
    inv = bench["invariants"]["burst"]
    assert inv["peak_depth"] <= inv["queue_cap"]
    assert inv["counters"]["serve_requests"] == inv["terminal_outcomes"]
    assert report["format"] == "repro-bench/1"
    assert report["totals"]["counters"]["serve_requests"] == 12 + 96


def test_build_requests_deadline_entries_never_audited():
    cfg = LoadConfig(requests=60, seed=5, malformed_rate=0.0,
                     audit_rate=1.0, deadline_ms=100.0, deadline_rate=0.5)
    script = build_requests(cfg)
    deadlined = [e for e in script if e["deadline"]]
    assert deadlined, "deadline_rate=0.5 produced no deadline entries"
    assert all(e["expect"] is None for e in deadlined)
    assert all(b'"deadline_ms"' in e["line"] for e in deadlined)
    plain = [e for e in script if not e["deadline"]]
    assert all(e["expect"] is not None for e in plain)
