"""Regression: ``cache_size=0`` turns off *every* caching layer at once.

The PR-6 template-cache fix established the contract that the
``cache_size=0`` knob means deterministic work accounting; the serving
layer extends it: the canonical-fingerprint response cache AND request
coalescing must also disable, so serve counter totals are a pure function
of the request stream -- identical across shard counts and timing."""

from __future__ import annotations

import threading

import pytest

from repro.graphs import ring
from repro.io import graph_to_dict
from repro.serve import ResponseCache, ServeConfig

from .client import client_for, serving


def test_response_cache_maxsize_zero_disables():
    cache = ResponseCache(0)
    assert not cache.enabled
    cache.put(b"k", {"n": 1})
    assert cache.get(b"k") is None
    assert len(cache) == 0
    assert ResponseCache(-5).enabled is False
    assert ResponseCache(2).enabled is True


def test_effective_spec_threads_cache_size_to_workers():
    """One knob, all layers: the worker decomposition cache follows."""
    cfg = ServeConfig(cache_size=0)
    assert cfg.effective_spec().cache_size == 0
    assert ServeConfig(cache_size=7).effective_spec().cache_size == 7


def _drive(shards: int, repeats: int) -> dict:
    instances = [ring([1.5 + i, 2.75, 3.125, 4.5]) for i in range(6)]
    with serving(shards=shards, cache_size=0, batch_max=4,
                 linger_ms=1.0) as handle:
        errors: list = []

        def client_run() -> None:
            try:
                with client_for(handle) as c:
                    for rep in range(repeats):
                        for j, g in enumerate(instances):
                            resp = c.rpc({"op": "solve",
                                          "id": rep * 100 + j,
                                          "graph": graph_to_dict(g)})
                            assert resp["status"] == "ok"
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client_run) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors
        with client_for(handle) as c:
            return c.rpc({"op": "drain", "id": 0})["result"]


@pytest.mark.parametrize("shards", [0, 1, 2])
def test_cache_zero_counter_totals_are_shard_independent(shards):
    """Every request is a fresh solve: no hits, no coalescing, no misses
    (cache accounting is off entirely), and the solved work equals the
    request count exactly -- for any shard layout."""
    repeats = 2
    stats = _drive(shards, repeats)
    total = 3 * repeats * 6
    assert stats["serve_requests"] == total
    assert stats["serve_responses"] == total
    assert stats["serve_errors"] == 0
    assert stats["serve_cache_hits"] == 0
    assert stats["serve_cache_misses"] == 0
    assert stats["serve_coalesced"] == 0
    # With every cache off (front-end, coalescing, worker decomposition),
    # each request decomposes afresh: work scales with requests, not with
    # distinct instances -- and identically so for 0, 1, or 2 shards.
    assert stats["decompositions"] == total
    assert stats["response_cache"] == {"size": 0, "maxsize": 0}
