"""Soak-harness smoke: a short seeded run end-to-end, zero problems.

The full soak (and its CI gate) lives behind ``repro-serve soak``; this
test keeps a scaled-down version inside tier-1 so a regression in the
harness itself -- script generation, the audit leg, report shape -- fails
fast, not only in the nightly job.
"""

from __future__ import annotations

from repro.obs.bench import BENCH_FORMAT, compare_reports
from repro.serve.load import (
    SOAK_BENCH_NAME,
    LoadConfig,
    build_requests,
    run_soak,
)
from repro.serve.server import ServeConfig


def test_request_script_is_deterministic_and_mixed():
    cfg = LoadConfig(requests=80, seed=7, malformed_rate=0.1, audit_rate=0.2)
    s1 = build_requests(cfg)
    s2 = build_requests(cfg)
    assert [e["line"] for e in s1] == [e["line"] for e in s2]
    kinds = {e["kind"] for e in s1}
    assert kinds == {"solve", "malformed"}
    audited = [e for e in s1 if e["expect"] is not None]
    assert audited and all(e["kind"] == "solve" for e in audited)
    # Heavy-tailed popularity: repeated economies exist even among 80
    # requests.  Repeats arrive *relabelled*, so the raw payloads differ --
    # count distinct canonical fingerprints, like the server does.
    import json

    from repro.graphs import canonical_signature_bytes
    from repro.io import graph_from_dict

    keys = [canonical_signature_bytes(graph_from_dict(
                json.loads(e["line"])["graph"]))
            for e in s1 if e["kind"] == "solve"]
    assert len(set(keys)) < len(keys)


def test_short_soak_zero_problems_and_gateable_report():
    serve_cfg = ServeConfig(shards=2, batch_max=8, linger_ms=1.0)
    load_cfg = LoadConfig(requests=60, clients=4, seed=1,
                          malformed_rate=0.05, audit_rate=0.15)
    report = run_soak(serve_cfg, load_cfg, tag="soak-test")
    assert report.pop("_problems") == []
    assert report["format"] == BENCH_FORMAT
    bench = report["benchmarks"][SOAK_BENCH_NAME]
    assert bench["requests"] == 60
    assert bench["counters"]["serve_requests"] == 60
    assert (bench["counters"]["serve_responses"]
            + bench["counters"]["serve_errors"]) == 60
    assert bench["latency_ms"]["p50"] > 0
    assert bench["latency_ms"]["p99"] >= bench["latency_ms"]["p50"]
    assert bench["throughput_rps"] > 0
    assert bench["audited"] > 0
    # The report is its own valid baseline: comparing a run against itself
    # passes the gate with zero counter drift -- the exact CI contract.
    cmp = compare_reports(report, report, threshold_pct=25.0,
                          fail_on_counters=True)
    assert cmp["ok"]


def test_soak_with_fault_injection_still_clean():
    """The chaos leg: a worker kill on the first attempt of every flush
    is absorbed by the retry ladder -- responses stay bit-perfect."""
    from repro.runtime import RuntimePolicy

    serve_cfg = ServeConfig(shards=1, batch_max=8, linger_ms=1.0,
                            policy=RuntimePolicy(retries=2, timeout=60.0),
                            faults="worker:kill@0")
    load_cfg = LoadConfig(requests=25, clients=2, seed=3,
                          malformed_rate=0.0, audit_rate=0.3)
    report = run_soak(serve_cfg, load_cfg, tag="soak-chaos")
    assert report.pop("_problems") == []
    bench = report["benchmarks"][SOAK_BENCH_NAME]
    assert bench["counters"]["serve_errors"] == 0
    assert bench["counters"]["serve_responses"] == 25
