"""The :class:`repro.serve.client.ResilientClient` retry policy, pinned.

Retry behavior is tested against a *scripted* protocol server (a thread
answering from a deterministic playbook), so every branch -- shed then
success, hint honoring, budget exhaustion, terminal typed errors,
reconnect after a drop -- is driven exactly, with no timing luck.  A
final test runs the client against the real daemon end-to-end.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from contextlib import contextmanager

import pytest

from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ServeRequestError,
)
from repro.graphs import ring
from repro.io import graph_to_dict
from repro.serve.client import ResilientClient

from .client import serving

GRAPH = graph_to_dict(ring([1.0, 2.0, 3.0, 4.0]))


@contextmanager
def scripted_server(playbook):
    """A TCP server answering each request line from ``playbook``.

    ``playbook`` entries are callables ``(req_dict, count) -> response
    dict | None``; ``None`` means drop the connection without answering
    (the torn-line case a client must survive).  Entries are consumed in
    request arrival order across all connections; the last entry repeats.
    """
    counter = {"n": 0}
    lock = threading.Lock()

    class Handler(socketserver.StreamRequestHandler):
        def handle(self):
            while True:
                line = self.rfile.readline()
                if not line:
                    return
                with lock:
                    n = counter["n"]
                    counter["n"] += 1
                entry = playbook[min(n, len(playbook) - 1)]
                resp = entry(json.loads(line), n)
                if resp is None:
                    return  # drop without answering
                self.wfile.write(
                    json.dumps(resp).encode("utf-8") + b"\n")

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server(("127.0.0.1", 0), Handler) as srv:
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            yield srv.server_address[1], counter
        finally:
            srv.shutdown()


def _ok(req, n):
    return {"id": req.get("id"), "status": "ok", "result": {"n": n}}


def _overloaded(retry_after_ms=1.0):
    def reply(req, n):
        return {"id": req.get("id"), "status": "error",
                "error": {"type": "OverloadedError", "message": "full",
                          "retry_after_ms": retry_after_ms}}
    return reply


def _drop(req, n):
    return None


def test_retries_sheds_until_success():
    with scripted_server([_overloaded(), _overloaded(), _ok]) as (port, seen):
        client = ResilientClient(port, seed=0, backoff_base_ms=1.0)
        result = client.solve(GRAPH)
        client.close()
    assert result == {"n": 2}
    assert seen["n"] == 3
    assert client.retries == 2
    assert client.sheds_seen == 2


def test_raises_overloaded_when_attempts_exhausted():
    with scripted_server([_overloaded(retry_after_ms=2.5)]) as (port, _):
        client = ResilientClient(port, seed=0, max_attempts=3,
                                 backoff_base_ms=1.0)
        with pytest.raises(OverloadedError) as err:
            client.solve(GRAPH)
        client.close()
    assert err.value.retry_after_ms == 2.5
    assert client.sheds_seen == 3


def test_honors_retry_after_hint_as_backoff_floor():
    hint_ms = 120.0
    with scripted_server([_overloaded(hint_ms), _ok]) as (port, _):
        client = ResilientClient(port, seed=0, backoff_base_ms=1.0,
                                 backoff_cap_ms=2.0)
        t0 = time.monotonic()
        client.solve(GRAPH)
        elapsed_ms = (time.monotonic() - t0) * 1000.0
        client.close()
    assert elapsed_ms >= hint_ms


def test_deadline_budget_stops_retry_loop():
    """A hint the budget cannot cover raises DeadlineExceededError
    instead of sleeping past the caller's deadline."""
    with scripted_server([_overloaded(retry_after_ms=60_000.0)]) as (port, _):
        client = ResilientClient(port, seed=0, max_attempts=10)
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            client.solve(GRAPH, deadline_ms=150.0)
        elapsed = time.monotonic() - t0
        client.close()
    assert elapsed < 5.0  # never slept the 60s hint


def test_remaining_budget_flows_on_the_wire():
    carried = []

    def capture(req, n):
        carried.append(req.get("deadline_ms"))
        return _ok(req, n)

    with scripted_server([_overloaded(1.0), capture]) as (port, _):
        client = ResilientClient(port, seed=0, backoff_base_ms=1.0)
        client.solve(GRAPH, deadline_ms=30_000.0)
        client.close()
    assert len(carried) == 1
    # The second attempt carried strictly less than the original budget.
    assert 0 < carried[0] < 30_000.0


def test_server_deadline_verdict_is_terminal():
    def verdict(req, n):
        return {"id": req.get("id"), "status": "error",
                "error": {"type": "DeadlineExceededError", "message": "late"}}

    with scripted_server([verdict]) as (port, seen):
        client = ResilientClient(port, seed=0)
        with pytest.raises(DeadlineExceededError):
            client.solve(GRAPH)
        client.close()
    assert seen["n"] == 1  # no retry: there is no time left to retry in


def test_typed_request_errors_are_terminal():
    def bad_graph(req, n):
        return {"id": req.get("id"), "status": "error",
                "error": {"type": "GraphError", "message": "not a ring"}}

    with scripted_server([bad_graph]) as (port, seen):
        client = ResilientClient(port, seed=0)
        with pytest.raises(ServeRequestError) as err:
            client.solve(GRAPH)
        client.close()
    assert err.value.type_name == "GraphError"
    assert seen["n"] == 1


def test_reconnects_after_connection_drop():
    with scripted_server([_drop, _ok]) as (port, seen):
        client = ResilientClient(port, seed=0, backoff_base_ms=1.0)
        result = client.solve(GRAPH)
        client.close()
    assert result == {"n": 1}
    assert client.reconnects >= 1
    assert seen["n"] == 2


def test_seeded_jitter_is_deterministic():
    import random

    a, b = ResilientClient(1, seed=42), ResilientClient(1, seed=42)
    draws_a = [a._rng.uniform(0, 100) for _ in range(5)]
    draws_b = [b._rng.uniform(0, 100) for _ in range(5)]
    assert draws_a == draws_b
    assert draws_a != [random.Random(43).uniform(0, 100) for _ in range(5)]


def test_against_real_server_end_to_end():
    """The shipped client against the shipped daemon: solve, retry-safe
    re-solve (idempotent by canonical fingerprint), stats, ping."""
    g = ring([2.0, 7.0, 1.0, 8.0])
    with serving(shards=0) as handle:
        client = ResilientClient(handle.port, seed=0)
        try:
            first = client.solve(graph_to_dict(g), deadline_ms=60_000.0)
            again = client.solve(graph_to_dict(g))
            assert first == again  # cache-hit on the canonical fingerprint
            assert client.ping()["status"] == "ok"
            assert client.stats()["serve_requests"] == 2
        finally:
            client.close()
