"""Tiny blocking test client + server context manager for the serve tests.

The tests exercise the real wire path -- a TCP socket against a server on
a background event loop -- not the internals, so every assertion covers
exactly what an external client of ``repro-serve`` would observe.
"""

from __future__ import annotations

import json
import socket
from contextlib import contextmanager

from repro.serve import ServeConfig, start_in_thread


class Client:
    """One blocking JSONL connection; ``rpc`` sends a dict, returns a dict."""

    def __init__(self, port: int, host: str = "127.0.0.1") -> None:
        self.sock = socket.create_connection((host, port), timeout=60)
        self.file = self.sock.makefile("rb")

    def send_raw(self, payload: bytes) -> dict:
        self.sock.sendall(payload)
        line = self.file.readline()
        assert line, "server dropped the connection"
        return json.loads(line)

    def rpc(self, obj: dict) -> dict:
        return self.send_raw(json.dumps(obj).encode("utf-8") + b"\n")

    def close(self) -> None:
        try:
            self.file.close()
            self.sock.close()
        except OSError:
            pass


@contextmanager
def serving(**kwargs):
    """A running server; yields the :class:`repro.serve.ServeHandle`."""
    handle = start_in_thread(ServeConfig(**kwargs))
    try:
        yield handle
    finally:
        handle.stop()


@contextmanager
def client_for(handle):
    c = Client(handle.port)
    try:
        yield c
    finally:
        c.close()
