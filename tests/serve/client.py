"""Shim: the test client grew up into :mod:`repro.serve.client`.

The serve tests exercise the real wire path -- a TCP socket against a
server on a background event loop -- so the client they use is now the
shipped one, not a test-only copy.
"""

from __future__ import annotations

from repro.serve.client import (  # noqa: F401
    Client,
    ResilientClient,
    client_for,
    serving,
)
