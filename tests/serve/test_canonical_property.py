"""Property tests: the canonical ring fingerprint is a true isomorphism key.

The serve-layer response cache is only sound if
:func:`repro.graphs.canonical_form` is exactly invariant under the ring's
symmetry group (rotations and reflections, i.e. every relabelling that
preserves the cycle structure) and exactly *variant* under everything else
-- two economies that are not isomorphic must never share a cache entry.
Weights are compared at the bit level throughout: ``-0.0`` and ``0.0`` are
different economies to this key, as are a subnormal and zero.
"""

from fractions import Fraction

from hypothesis import given, strategies as st

from repro.graphs import (
    canonical_form,
    canonical_signature_bytes,
    ring,
    weight_bytes,
)
from repro.graphs.builders import random_connected_graph
from repro.serve.solver import canonical_graph

# The nasty float citizens are guaranteed draws, not one-in-2^64 events.
float_pool = st.sampled_from(
    [1.0, 2.0, 3.5, 0.1, 7.25, 0.0, -0.0, 5e-324, 1e-300, 1e16]
)
weights_st = st.lists(float_pool, min_size=3, max_size=8).map(
    lambda ws: ws if sum(ws) > 0 else ws[:-1] + [1.0]
)
frac_weights_st = st.lists(
    st.integers(min_value=0, max_value=30).map(lambda k: Fraction(k, 7)),
    min_size=3,
    max_size=6,
).map(lambda ws: ws if sum(ws) > 0 else ws[:-1] + [Fraction(1)])


def _relabel(ws, rot, reflect):
    out = list(reversed(ws)) if reflect else list(ws)
    return out[rot:] + out[:rot]


def _all_relabelings(ws):
    n = len(ws)
    return [
        tuple(weight_bytes((w,)) for w in _relabel(ws, r, refl))
        for r in range(n)
        for refl in (False, True)
    ]


@given(weights_st, st.integers(min_value=0, max_value=7), st.booleans())
def test_invariant_under_rotation_and_reflection(ws, rot, reflect):
    g1 = ring(ws)
    g2 = ring(_relabel(ws, rot % len(ws), reflect))
    assert canonical_signature_bytes(g1) == canonical_signature_bytes(g2)


@given(frac_weights_st, st.integers(min_value=0, max_value=5), st.booleans())
def test_invariant_exact_weights(ws, rot, reflect):
    g1 = ring(ws)
    g2 = ring(_relabel(ws, rot % len(ws), reflect))
    assert canonical_signature_bytes(g1) == canonical_signature_bytes(g2)


@given(weights_st)
def test_order_is_permutation_witnessing_the_key(ws):
    g = ring(ws)
    key, order = canonical_form(g)
    assert sorted(order) == list(range(g.n))
    # The canonical representative built from the witness carries the same
    # key and is a fixed point: canonicalizing it yields the identity.
    cg = canonical_graph(g, order)
    key2, order2 = canonical_form(cg)
    assert key2 == key
    assert order2 == tuple(range(g.n))
    # And the witness really is the arrangement the key encodes.
    assert [weight_bytes((w,)) for w in cg.weights] == [
        weight_bytes((g.weights[v],)) for v in order
    ]


@given(weights_st, weights_st)
def test_non_isomorphic_rings_never_collide(ws1, ws2):
    if len(ws1) != len(ws2):
        isomorphic = False
    else:
        target = tuple(weight_bytes((w,)) for w in ws2)
        isomorphic = target in _all_relabelings(ws1)
    same_key = canonical_signature_bytes(ring(ws1)) == canonical_signature_bytes(
        ring(ws2)
    )
    assert same_key == isomorphic


def test_bit_exactness_distinguishes_signed_zero_and_subnormal():
    base = [1.0, 2.0, 3.0]
    assert canonical_signature_bytes(ring([0.0] + base)) != canonical_signature_bytes(
        ring([-0.0] + base)
    )
    assert canonical_signature_bytes(ring([5e-324] + base)) != canonical_signature_bytes(
        ring([0.0] + base)
    )
    # Value-equal but type-distinct weights are distinct economies too.
    assert canonical_signature_bytes(ring([2.0, 1.0, 1.0])) != canonical_signature_bytes(
        ring([Fraction(2), 1.0, 1.0])
    )


@given(weights_st)
def test_key_depends_on_weight_bits(ws):
    """A one-ulp nudge of a single weight moves the fingerprint."""
    import math

    changed = list(ws)
    changed[0] = math.nextafter(float(changed[0]), math.inf)
    assert canonical_signature_bytes(ring(ws)) != canonical_signature_bytes(
        ring(changed)
    )


def test_general_graph_fallback_keys_on_labelled_structure():
    """Non-ring graphs fall back to the labelled CSR signature: stable for
    the same graph, distinct for a different weighting."""
    import numpy as np

    rng = np.random.default_rng(3)
    g = random_connected_graph(6, 3, rng)
    key, order = canonical_form(g)
    assert order == tuple(range(g.n))
    assert canonical_form(g)[0] == key
    g2 = ring([1.0] * 6)
    assert canonical_signature_bytes(g2) != key
