"""Lifecycle under pressure: drain/shutdown racing an active flush.

The drain contract is "every accepted solve has a resolved result" and
the shutdown contract layers "no new connections" on top -- both must
hold *while a flush is in flight on the executor* with more work queued
and shedding underway, not just on an idle server.  These tests force
that interleaving with slow injected cells and assert the exactly-one
typed-terminal-outcome accounting across it, then pin the typed
:class:`~repro.exceptions.ShutdownTimeoutError` on a wedged stop and the
CLI's signal-driven graceful exit.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ShutdownTimeoutError
from repro.graphs.builders import random_ring
from repro.io import graph_to_dict
from repro.runtime import RuntimePolicy
from repro.serve import ServeConfig, start_in_thread

from .client import Client

import numpy as np

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _graphs(count, seed=0):
    rng = np.random.default_rng(seed)
    return [random_ring(int(rng.integers(4, 9)), rng, "loguniform", 0.1, 10.0)
            for _ in range(count)]


def _slow_config(**overrides) -> ServeConfig:
    """One shard whose every flush crawls: the first two cells of each
    dispatch sleep 0.4s in the worker, so the flush window is wide enough
    to race ops against deterministically."""
    base = dict(shards=1, batch_max=2, linger_ms=50.0, cache_size=0,
                queue_cap=2, faults="cell:delay@0:0.4;cell:delay@1:0.4",
                policy=RuntimePolicy(retries=1, timeout=60.0))
    base.update(overrides)
    return ServeConfig(**base)


def _spawn_solvers(port, graphs, outcomes, lock):
    """One thread per graph; records each response's terminal type."""

    def one(i, g):
        c = Client(port)
        try:
            resp = c.rpc({"op": "solve", "id": i,
                          "graph": graph_to_dict(g)})
            with lock:
                outcomes.append(resp["error"]["type"]
                                if resp["status"] == "error" else "ok")
        finally:
            c.close()

    threads = [threading.Thread(target=one, args=(i, g))
               for i, g in enumerate(graphs)]
    for t in threads:
        t.start()
    return threads


def _wait_for_flush(handle, timeout=10.0) -> None:
    """Block until at least one flush has started dispatching."""
    t0 = time.monotonic()
    while handle.server.ctx.counters.serve_batches == 0:
        if time.monotonic() - t0 > timeout:
            raise AssertionError("no flush started within the wait window")
        time.sleep(0.01)


def _assert_tiling(stats: dict) -> None:
    assert stats["serve_requests"] == (
        stats["serve_responses"] + stats["serve_errors"]
        + stats["serve_shed"] + stats["serve_deadline_exceeded"])


def test_drain_during_active_flush_settles_every_future():
    """``drain`` issued mid-flush -- slow dispatch on the executor, more
    cells queued behind it, sheds happening -- returns only at quiescence,
    and every concurrent solve still lands exactly one typed outcome."""
    handle = start_in_thread(_slow_config())
    outcomes: list = []
    lock = threading.Lock()
    try:
        threads = _spawn_solvers(handle.port, _graphs(8, seed=11),
                                 outcomes, lock)
        _wait_for_flush(handle)

        drainer = Client(handle.port)
        try:
            resp = drainer.rpc({"op": "drain", "id": "d"})
        finally:
            drainer.close()
        assert resp["status"] == "ok"
        drained_stats = resp["result"]
        # Quiescent at the moment drain returned: nothing queued, nothing
        # in flight.
        assert drained_stats["admission"]["depth"] == 0

        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert len(outcomes) == 8
        assert "ok" in outcomes
        # queue_cap=2 against 8 concurrent misses over 0.8s flushes must
        # shed; a shed during an active drain is still a typed envelope.
        assert "OverloadedError" in outcomes

        stats = handle.server.stats()
        _assert_tiling(stats)
        assert stats["serve_requests"] == 8
    finally:
        handle.stop()


def test_shutdown_during_active_flush_answers_inflight():
    """A ``shutdown`` op racing an active flush acks immediately, lets
    every in-flight solve finish with its typed outcome, then refuses new
    connections once the thread exits."""
    handle = start_in_thread(_slow_config(queue_cap=8))
    outcomes: list = []
    lock = threading.Lock()
    threads = _spawn_solvers(handle.port, _graphs(4, seed=12),
                             outcomes, lock)
    _wait_for_flush(handle)

    stopper = Client(handle.port)
    try:
        ack = stopper.rpc({"op": "shutdown", "id": "s"})
    finally:
        stopper.close()
    assert ack["status"] == "ok"
    assert ack["result"]["stopping"] is True

    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads)
    assert len(outcomes) == 4
    assert all(o == "ok" for o in outcomes), outcomes

    handle.thread.join(timeout=30)
    assert not handle.thread.is_alive()
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", handle.port), timeout=2.0)
    # stop() after an in-band shutdown is a documented no-op, not an error.
    handle.stop()


def test_stop_raises_typed_error_when_shutdown_wedges():
    """A drain that never completes must surface as ShutdownTimeoutError,
    not a silent return that leaks a live server thread."""
    handle = start_in_thread(ServeConfig(shards=0))
    try:
        async def _wedged():
            await asyncio.sleep(0.6)  # outlives the stop timeout, then ends

        handle.server.shutdown = _wedged
        with pytest.raises(ShutdownTimeoutError):
            handle.stop(timeout=0.2)
        assert handle.thread.is_alive()  # the wedge really did leak it
    finally:
        del handle.server.shutdown  # restore the real bound method
        time.sleep(0.6)  # let the wedge coroutine finish on its loop
        handle.stop()
    assert not handle.thread.is_alive()


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_cli_serve_stops_gracefully_on_signal(signum):
    """``repro-serve serve`` drains and exits 0 on the first signal."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli", "serve",
         "--port", "0", "--shards", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)
    try:
        banner = proc.stdout.readline()
        assert "listening on" in banner, (banner, proc.stderr.read())
        port = int(banner.split("listening on ")[1].split()[0].split(":")[1])

        c = Client(port)
        try:
            assert c.rpc({"op": "ping", "id": 1})["status"] == "ok"
        finally:
            c.close()

        proc.send_signal(signum)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, (out, err)
        assert "stopped" in out
        assert "graceful stop" in err
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
