"""Crash-soak smoke: a scaled-down ``repro-serve durable`` inside tier-1.

The full chaos gate lives in CI; this keeps the harness itself honest --
supervised child spawn, the SIGKILL lever, failover-driven clients, the
exactly-one-typed-outcome tiling, and the report shape -- at a size that
stays in unit-test budget.  One real kill is non-negotiable: the whole
point is traffic surviving a restart.
"""

from __future__ import annotations

from repro.obs.bench import BENCH_FORMAT
from repro.serve.crash import DURABLE_BENCH_NAME, DurableConfig, run_durable


def test_short_crash_soak_zero_problems():
    report = run_durable(
        DurableConfig(requests=24, clients=4, seed=11, kill_after=6,
                      kills=1, fsync="batch", snapshot_interval_s=1.0),
        tag="durable-test")
    problems = report.pop("_problems")
    assert problems == []
    assert report["format"] == BENCH_FORMAT
    bench = report["benchmarks"][DURABLE_BENCH_NAME]
    # Exactly-one-typed-outcome tiling, all ok, across a real SIGKILL.
    assert sum(bench["outcomes"].values()) == 24
    assert bench["outcomes"]["ok"] == 24
    assert len(bench["kills"]) == 1
    assert bench["restarts"] >= 1
    assert bench["counters"] == {}  # crash timing: wall_s + problems gate
