"""The watchdog: restart-after-SIGKILL, hang detection, crash-loop give-up.

Real subprocesses throughout -- the supervisor's whole job is process
lifecycle, so in-thread stand-ins would test nothing.  The fast paths
(instant-exit children, never-accepting listeners) keep the wall cost of
the give-up tests bounded by the configured backoff, not by real serving.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import CrashLoopError, MalformedInputError
from repro.serve.supervise import (
    RESTARTS_ENV,
    SuperviseConfig,
    Supervisor,
    serve_child_argv,
)

from .client import Client

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.mark.parametrize("kwargs", [
    {"heartbeat_s": 0.0},
    {"heartbeat_misses": 0},
    {"max_crash_loops": 0},
    {"backoff_base_s": float("nan")},
    {"backoff_base_s": 1.0, "backoff_cap_s": 0.5},
])
def test_supervise_config_rejects_malformed(kwargs):
    with pytest.raises(MalformedInputError):
        SuperviseConfig(**kwargs).validated()


def test_sigkill_restarts_child_and_restarts_gauge_advances():
    port = _free_port()
    sup = Supervisor(
        serve_child_argv("127.0.0.1", port, ["--shards", "1"]),
        "127.0.0.1", port,
        SuperviseConfig(heartbeat_s=0.1, backoff_base_s=0.05,
                        backoff_cap_s=0.2, healthy_after_s=0.2,
                        startup_grace_s=30.0),
        env=_child_env())
    thread = threading.Thread(target=sup.run, daemon=True)
    thread.start()
    try:
        assert sup.wait_ready(30.0)
        first_pid = sup.kill_child()
        assert first_pid is not None
        # The watchdog notices the death and brings up a replacement with
        # the restart generation in its environment.
        deadline = time.monotonic() + 30.0
        stats = None
        while time.monotonic() < deadline:
            if sup.child_pid not in (None, first_pid):
                try:
                    client = Client(port, timeout=5.0)
                    try:
                        stats = client.rpc({"op": "stats"})["result"]
                    finally:
                        client.close()
                    break
                except OSError:
                    pass
            time.sleep(0.05)
        assert stats is not None, "no replacement child became reachable"
        assert stats["restarts"] == sup.restarts == 1
    finally:
        sup.stop()
        thread.join(30.0)
        assert not thread.is_alive()


def test_crash_loop_gives_up_typed():
    port = _free_port()
    argv = [sys.executable, "-c", "raise SystemExit(7)"]
    sup = Supervisor(
        argv, "127.0.0.1", port,
        SuperviseConfig(heartbeat_s=0.05, backoff_base_s=0.01,
                        backoff_cap_s=0.05, max_crash_loops=3,
                        healthy_after_s=0.5, startup_grace_s=10.0))
    with pytest.raises(CrashLoopError) as excinfo:
        sup.run()
    assert excinfo.value.last_exit == 7
    assert excinfo.value.restarts == sup.restarts
    assert sup.crash_loops > 3


def test_hung_child_is_killed_not_waited_on_forever():
    """A child that binds and listens but never serves is wedged, not up.

    The decoy accepts TCP connections into its backlog (so a bare connect
    check would call it healthy) but never answers the protocol ping --
    exactly the failure mode heartbeats exist for.
    """
    port = _free_port()
    argv = [sys.executable, "-c", (
        "import socket, time\n"
        f"s = socket.socket(); s.bind(('127.0.0.1', {port})); s.listen(1)\n"
        "time.sleep(600)\n")]
    sup = Supervisor(
        argv, "127.0.0.1", port,
        SuperviseConfig(heartbeat_s=0.05, heartbeat_misses=2,
                        ping_timeout_s=0.5, backoff_base_s=0.01,
                        backoff_cap_s=0.05, max_crash_loops=1,
                        healthy_after_s=0.5, startup_grace_s=1.0))
    t0 = time.monotonic()
    with pytest.raises(CrashLoopError):
        sup.run()
    # Give-up came from kill-on-hang cycles, far sooner than any child's
    # 600s sleep -- the supervisor never trusted a silent process.
    assert time.monotonic() - t0 < 60.0
    assert sup.child_pid is None


def test_serve_child_argv_shape():
    argv = serve_child_argv("127.0.0.1", 4242, ["--durable", "/tmp/x"])
    assert argv[0] == sys.executable
    assert "repro.serve.cli" in argv
    assert argv[-2:] == ["--durable", "/tmp/x"]
    assert RESTARTS_ENV == "REPRO_SERVE_RESTARTS"
