"""Tests for the repro-exp command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "EXP-T8" in out and "EXP-F1" in out


def test_run_command_smoke(capsys, tmp_path):
    json_path = str(tmp_path / "out.json")
    code = main(["run", "EXP-F1", "--scale", "smoke", "--json", json_path])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out and "PASS" in out
    payload = json.loads(open(json_path).read())
    assert payload["exp_id"] == "EXP-F1" and payload["ok"] is True


def test_run_lowercase_id(capsys):
    assert main(["run", "exp-f1", "--scale", "smoke"]) == 0


def test_run_unknown_experiment(capsys):
    assert main(["run", "EXP-NOPE"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_with_solver_and_stats(capsys):
    code = main(["run", "EXP-F1", "--scale", "smoke",
                 "--solver", "edmonds_karp", "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "engine: solver=edmonds_karp" in out
    # the CLI context is installed as the run's default, so even experiments
    # without a ctx parameter route their solves (and counters) through it
    assert "flow calls=0" not in out


def test_run_no_cache(capsys):
    code = main(["run", "EXP-F1", "--scale", "smoke", "--no-cache", "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cache hits=0" in out


def test_stats_off_by_default(capsys):
    assert main(["run", "EXP-F1", "--scale", "smoke"]) == 0
    assert "engine:" not in capsys.readouterr().out


def test_run_with_audit_reports_counters(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # a violation would file under tmp, not the repo
    code = main(["run", "EXP-F1", "--scale", "smoke", "--audit", "cheap", "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "audit:" in out and "violations=0" in out
    assert not (tmp_path / "corpus").exists()  # clean run files nothing


def test_run_with_differential_audit_and_custom_corpus(capsys, tmp_path):
    corpus_dir = str(tmp_path / "failures")
    code = main(["run", "EXP-F1", "--scale", "smoke",
                 "--audit", "differential", "--corpus", corpus_dir, "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "disagreements=0" in out


def test_parser_rejects_bad_audit_level():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "EXP-F1", "--audit", "frantic"])


def test_parser_rejects_bad_solver():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "EXP-T8", "--solver", "simplex"])


def test_parser_rejects_bad_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "EXP-F1", "--scale", "huge"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])

def test_parser_accepts_runtime_flags():
    args = build_parser().parse_args([
        "run", "EXP-T8", "--workers", "2", "--timeout", "30",
        "--retries", "3", "--checkpoint", "j.ckpt",
        "--inject-faults", "cell:exc@3", "--start-method", "spawn",
    ])
    assert args.workers == 2 and args.timeout == 30.0 and args.retries == 3
    assert args.checkpoint == "j.ckpt" and args.start_method == "spawn"


def test_parser_rejects_bad_start_method():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "EXP-T8", "--start-method", "thread"])


def test_invalid_fault_spec_is_clean_cli_error(capsys):
    assert main(["run", "EXP-F1", "--scale", "smoke",
                 "--inject-faults", "gibberish"]) == 2
    assert "fault" in capsys.readouterr().err


def test_run_with_runtime_stats_segment(capsys):
    code = main(["run", "EXP-F1", "--scale", "smoke", "--retries", "1",
                 "--inject-faults", "exp:exc@0", "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "runtime:" in out and "retries=1" in out and "injected=1" in out


def test_checkpoint_flag_resumes_suite(capsys, tmp_path):
    ckpt = str(tmp_path / "suite.ckpt")
    base = ["run", "EXP-F1", "--scale", "smoke", "--checkpoint", ckpt]
    assert main(base) == 0
    first = capsys.readouterr().out
    assert main(base + ["--stats"]) == 0
    second = capsys.readouterr().out
    assert "checkpoint hits=1" in second
    assert first in second  # replayed render identical, stats line added
