"""Property tests: the columnar engine is bit-identical to the classic one.

The ``--engine`` flag is only safe to default to ``columnar`` because the
two engines are interchangeable at the bit level -- same decompositions,
same allocations, same dynamics arrays, same best responses -- on both the
float and the exact backend.  These properties are the contract; weights
deliberately include ``-0.0``, subnormals and zeros (the nastiest float
citizens), and relabeled-isomorphic rings pin that label permutations
commute with the whole pipeline.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.attack import best_split
from repro.core import (
    bd_allocation,
    bottleneck_decomposition,
    dynamics_utilities,
)
from repro.engine import EngineContext
from repro.graphs import ring
from repro.numeric import EXACT, FLOAT
from repro.theory.breakpoints import decomposition_signature


def _contexts():
    return EngineContext(engine="classic"), EngineContext(engine="columnar")


# -- strategies -------------------------------------------------------------

# A curated pool rather than st.floats(): every value is a legal weight,
# and the nasty cases (-0.0, the smallest subnormal, a near-underflow
# normal) are guaranteed to be drawn often instead of almost never.
float_pool = st.sampled_from(
    [1.0, 2.0, 3.5, 0.1, 7.25, 0.0, -0.0, 5e-324, 1e-300, 1e16]
)
float_weights_st = st.lists(float_pool, min_size=3, max_size=7).map(
    lambda ws: ws if sum(ws) > 0 else ws[:-1] + [1.0]
)
exact_weights_st = st.lists(
    st.integers(min_value=0, max_value=40).map(Fraction), min_size=3, max_size=7
).map(lambda ws: ws if sum(ws) > 0 else ws[:-1] + [Fraction(1)])


def _bits(xs):
    """repr-level fingerprint: equal iff equal as bit patterns / objects."""
    return [repr(x) for x in xs]


# -- decompose --------------------------------------------------------------

@given(float_weights_st)
def test_decompose_bit_identical_float(ws):
    g = ring(ws)
    classic, columnar = _contexts()
    dc = bottleneck_decomposition(g, FLOAT, classic)
    dk = bottleneck_decomposition(g, FLOAT, columnar)
    assert decomposition_signature(dc) == decomposition_signature(dk)
    assert _bits(dc.alphas()) == _bits(dk.alphas())


@given(exact_weights_st)
def test_decompose_identical_exact(ws):
    g = ring(ws)
    classic, columnar = _contexts()
    dc = bottleneck_decomposition(g, EXACT, classic)
    dk = bottleneck_decomposition(g, EXACT, columnar)
    assert decomposition_signature(dc) == decomposition_signature(dk)
    assert dc.alphas() == dk.alphas()


# -- allocate ---------------------------------------------------------------

@given(float_weights_st)
def test_allocation_bit_identical_float(ws):
    g = ring(ws)
    classic, columnar = _contexts()
    uc = bd_allocation(g, backend=FLOAT, ctx=classic).utilities
    uk = bd_allocation(g, backend=FLOAT, ctx=columnar).utilities
    assert _bits(uc) == _bits(uk)


@given(exact_weights_st)
def test_allocation_identical_exact(ws):
    g = ring(ws)
    classic, columnar = _contexts()
    uc = bd_allocation(g, backend=EXACT, ctx=classic).utilities
    uk = bd_allocation(g, backend=EXACT, ctx=columnar).utilities
    assert list(uc) == list(uk)


# -- dynamics ---------------------------------------------------------------

@given(float_weights_st)
def test_dynamics_bit_identical(ws):
    g = ring(ws)
    classic, columnar = _contexts()
    uc = dynamics_utilities(g, ctx=classic)
    uk = dynamics_utilities(g, ctx=columnar)
    assert uc.tobytes() == uk.tobytes()  # bit-level array equality


# -- best response ----------------------------------------------------------

def _same_response(a, b):
    return (
        repr(a.w1) == repr(b.w1)
        and repr(a.w2) == repr(b.w2)
        and repr(a.utility) == repr(b.utility)
        and repr(a.honest_utility) == repr(b.honest_utility)
    )


@settings(max_examples=15)
@given(float_weights_st, st.integers(0, 6))
def test_best_response_bit_identical_float(ws, v_raw):
    g = ring(ws)
    v = v_raw % g.n
    classic, columnar = _contexts()
    rc = best_split(g, v, grid=8, refine_iters=12, ctx=classic)
    rk = best_split(g, v, grid=8, refine_iters=12, ctx=columnar)
    assert _same_response(rc, rk)


@settings(max_examples=10)
@given(exact_weights_st, st.integers(0, 6))
def test_best_response_identical_exact(ws, v_raw):
    g = ring(ws)
    v = v_raw % g.n
    classic, columnar = _contexts()
    rc = best_split(g, v, grid=6, refine_iters=8, backend=EXACT, ctx=classic)
    rk = best_split(g, v, grid=6, refine_iters=8, backend=EXACT, ctx=columnar)
    assert _same_response(rc, rk)


# -- relabeled-isomorphic rings ---------------------------------------------

# Positive integer-valued floats for the rotation property: rotation
# equivariance is only a *value*-level fact, never a bit-level one (flow
# augmenting paths are not rotation-symmetric, so utilities can move by an
# ulp; zero weights additionally hand the degenerate terminal pair out by
# vertex id).  What IS bit-level is the engine contract: both engines walk
# the relabeled instance identically, so they must agree on it exactly.
int_float_weights_st = st.lists(
    st.integers(min_value=1, max_value=40).map(float), min_size=3, max_size=7
)


@settings(max_examples=15)
@given(int_float_weights_st, st.integers(1, 6))
def test_rotation_isomorphism_commutes_with_engines(ws, shift):
    """Relabeled-isomorphic rings: the decomposition structure and alphas
    rotate exactly, utilities rotate up to float tolerance, and the
    relabeled instance still gets bit-identical treatment from both
    engines (a relabeling must never make the engines disagree -- labels
    feed the cache key, not the arithmetic)."""
    import math

    from repro.core import bottleneck_decomposition as bd

    n = len(ws)
    k = shift % n
    g = ring(ws)
    h = ring(ws[k:] + ws[:k])  # vertex v of h == vertex (v + k) % n of g
    classic, columnar = _contexts()
    # structure and alphas are exact under rotation (integer arithmetic:
    # each alpha is a ratio of exact integer sums, identical either way)
    dg, dh = bd(g, FLOAT, columnar), bd(h, FLOAT, columnar)

    def rot(S):  # g's vertex v appears in h as (v - k) % n
        return frozenset((v - k) % n for v in S)

    assert [(rot(p.B), rot(p.C), p.alpha) for p in dg.pairs] == [
        (p.B, p.C, p.alpha) for p in dh.pairs
    ]
    for ctx in (classic, columnar):
        ug = bd_allocation(g, backend=FLOAT, ctx=ctx).utilities
        uh = bd_allocation(h, backend=FLOAT, ctx=ctx).utilities
        for v in range(n):
            assert math.isclose(uh[v], ug[(v + k) % n], rel_tol=1e-12)
    # engines agree bit-for-bit on the relabeled instance (the cut
    # orientation differs from g's, so this is a genuinely new sweep)
    uc = bd_allocation(h, backend=FLOAT, ctx=classic).utilities
    uk = bd_allocation(h, backend=FLOAT, ctx=columnar).utilities
    assert _bits(uc) == _bits(uk)
    rc = best_split(h, 0, grid=6, refine_iters=10, ctx=classic)
    rk = best_split(h, 0, grid=6, refine_iters=10, ctx=columnar)
    assert _same_response(rc, rk)
