"""Property-based tests (hypothesis) for the core invariants.

These complement the randomized pytest sweeps with shrinking: when a
property fails, hypothesis reduces the instance to a minimal witness,
which is exactly what you want for combinatorial code like the bottleneck
machinery.
"""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    alpha_ratio,
    bd_allocation,
    bottleneck_decomposition,
    brute_force_min_alpha,
    closed_form_utilities,
)
from repro.graphs import WeightedGraph, path, ring
from repro.numeric import EXACT


# -- strategies -------------------------------------------------------------

weights_st = st.lists(st.integers(min_value=1, max_value=50), min_size=3, max_size=8)
weights_with_zero_st = st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=8)


def _connected_graph(draw, weights):
    n = len(weights)
    edges = {(i - 1, i) for i in range(1, n)}  # spanning path
    extra = draw(st.sets(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).map(
            lambda t: (min(t), max(t))
        ).filter(lambda t: t[0] != t[1]),
        max_size=n,
    ))
    return WeightedGraph(n, sorted(edges | extra), weights)


graph_st = st.builds(lambda: None)  # placeholder replaced by composite below


@st.composite
def graphs(draw, allow_zero=False):
    ws = draw(weights_with_zero_st if allow_zero else weights_st)
    if allow_zero and sum(ws) == 0:
        ws[0] = 1
    return _connected_graph(draw, ws)


@st.composite
def rings(draw):
    return ring(draw(weights_st))


# -- properties -------------------------------------------------------------

@given(rings())
def test_alpha_of_whole_graph_at_most_one(g):
    assert alpha_ratio(g, list(g.vertices()), EXACT) <= 1


@given(graphs())
def test_decomposition_covers_and_alphas_increase(g):
    d = bottleneck_decomposition(g, EXACT)
    covered = set()
    for p in d.pairs:
        covered |= p.members()
    assert covered == set(g.vertices())
    alphas = d.alphas()
    assert all(a > 0 for a in alphas)
    assert all(alphas[i] < alphas[i + 1] for i in range(len(alphas) - 1))
    assert alphas[-1] <= 1


@given(graphs())
def test_first_alpha_is_global_minimum(g):
    d = bottleneck_decomposition(g, EXACT)
    assert d.pairs[0].alpha == brute_force_min_alpha(g)


@given(graphs())
def test_allocation_feasibility(g):
    alloc = bd_allocation(g, backend=EXACT)
    alloc.check_feasible()
    # exact budget balance: everyone spends exactly its endowment
    for v in g.vertices():
        assert alloc.sent(v) == g.weights[v]


@given(graphs())
def test_market_clears(g):
    # total received equals total weight (resource neither minted nor lost)
    alloc = bd_allocation(g, backend=EXACT)
    assert sum(alloc.utilities) == sum(g.weights)


@given(graphs())
def test_utilities_match_closed_form(g):
    d = bottleneck_decomposition(g, EXACT)
    alloc = bd_allocation(g, d, EXACT)
    for v, cf in enumerate(closed_form_utilities(d)):
        assert cf is not None and alloc.utilities[v] == cf


@given(graphs(allow_zero=True))
def test_zero_weights_never_crash_and_stay_feasible(g):
    alloc = bd_allocation(g, backend=EXACT)
    alloc.check_feasible()
    for v in g.vertices():
        if g.weights[v] == 0:
            assert alloc.utilities[v] >= 0
    assert sum(alloc.utilities) == sum(g.weights)


@given(rings(), st.integers(0, 7), st.integers(0, 16))
def test_misreport_never_beats_truth(g, v_raw, k):
    v = v_raw % g.n
    from repro.attack import utility_of_report

    truthful = bd_allocation(g, backend=EXACT).utilities[v]
    x = Fraction(k, 16) * g.weights[v]
    assert utility_of_report(g, v, x, EXACT) <= truthful


@given(rings(), st.integers(0, 7), st.integers(1, 15))
def test_sybil_split_conserves_total_resource(g, v_raw, num):
    from repro.attack import split_ring

    v = v_raw % g.n
    w1 = Fraction(num, 16) * g.weights[v]
    out = split_ring(g, v, w1, g.weights[v] - w1, EXACT)
    assert sum(out.path.weights) == sum(g.weights)
    # equilibrium on the path also clears
    assert sum(out.allocation.utilities) == sum(out.path.weights)
