"""Property: every value the serializer emits round-trips bit-identically.

The exact-serialization discipline (floats as hex, Fractions as ``"p/q"``)
is what makes the corpus replayable and checkpoints resumable, so it gets
adversarial scrutiny: arbitrary finite floats (including ``-0.0``,
subnormals, and 1-ulp-adjacent pairs), arbitrary Fractions, large ints --
dump -> load must reproduce the same bits and the same types.
"""

import json
import math
from fractions import Fraction

from hypothesis import given, strategies as st

from repro.graphs import WeightedGraph
from repro.io.serialization import (
    graph_from_dict,
    graph_to_dict,
    network_from_dict,
    network_to_dict,
)


def bits(x: float) -> str:
    """Bit-exact identity for floats: hex distinguishes -0.0 from 0.0."""
    return x.hex()


finite_floats = st.floats(
    min_value=0.0,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=True,
)

#: Weights drawn across the scalar families the engine actually mixes.
weight_values = st.one_of(
    finite_floats,
    st.just(0.0),
    st.just(-0.0),                                    # signed zero round-trip
    st.just(5e-324),                                  # smallest subnormal
    st.just(1.7976931348623157e308),                  # DBL_MAX
    st.integers(min_value=0, max_value=10**30),
    st.fractions(min_value=0, max_denominator=10**12),
)


def _ring_graph(weights):
    n = len(weights)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return WeightedGraph(n, edges, list(weights))


@given(st.lists(weight_values, min_size=3, max_size=9))
def test_graph_round_trip_is_bit_identical(weights):
    g = _ring_graph(weights)
    again = graph_from_dict(graph_to_dict(g))
    assert again.n == g.n
    assert again.edges == g.edges
    for a, b in zip(again.weights, g.weights):
        assert type(a) is type(b)
        if isinstance(a, float):
            assert bits(a) == bits(b)
        else:
            assert a == b


@given(st.lists(weight_values, min_size=3, max_size=9))
def test_graph_round_trip_survives_json_text(weights):
    # Through actual JSON text, not just dicts: the on-disk representation.
    g = _ring_graph(weights)
    text = json.dumps(graph_to_dict(g))
    again = graph_from_dict(json.loads(text))
    for a, b in zip(again.weights, g.weights):
        assert type(a) is type(b)
        assert (bits(a) == bits(b)) if isinstance(a, float) else (a == b)


@given(finite_floats.filter(lambda x: x > 0))
def test_ulp_adjacent_weights_stay_distinct(w):
    # The near-tie regime: 1-ulp-apart weights must not collapse to equal
    # after a round-trip, or alpha tie-breaking would differ across runs.
    up = math.nextafter(w, math.inf)
    if up == w or not math.isfinite(up):  # at the top of the float range
        return
    g = _ring_graph([w, up, w])
    again = graph_from_dict(graph_to_dict(g))
    assert bits(again.weights[0]) == bits(w)
    assert bits(again.weights[1]) == bits(up)
    assert again.weights[0] != again.weights[1]


@given(st.fractions(min_value=0, max_denominator=10**18))
def test_fraction_round_trip_is_exact(q):
    g = _ring_graph([q, Fraction(1), Fraction(2)])
    again = graph_from_dict(graph_to_dict(g))
    assert isinstance(again.weights[0], Fraction)
    assert again.weights[0] == q


@given(st.lists(
    st.one_of(finite_floats, st.just(math.inf),
              st.fractions(min_value=0, max_denominator=10**9)),
    min_size=1, max_size=8,
))
def test_network_round_trip_is_bit_identical(caps):
    from repro.flow import FlowNetwork

    net = FlowNetwork(len(caps) + 1)
    for i, cap in enumerate(caps):
        net.add_edge(i, i + 1, cap)
    again = network_from_dict(network_to_dict(net))
    assert again.n == net.n
    assert again.num_arcs == net.num_arcs
    for arc in range(0, net.num_arcs, 2):
        a, b = again.orig_cap[arc], net.orig_cap[arc]
        assert type(a) is type(b)
        if isinstance(a, float):
            assert bits(a) == bits(b)
        else:
            assert a == b


@given(st.lists(weight_values, min_size=3, max_size=6))
def test_double_round_trip_is_fixed_point(weights):
    # dump(load(dump(g))) == dump(g): serialization is a fixed point after
    # one trip, so archived instances never drift under re-archiving.
    g = _ring_graph(weights)
    d1 = graph_to_dict(g)
    d2 = graph_to_dict(graph_from_dict(d1))
    assert d1 == d2
