"""Cross-solver min-cut agreement under adversarial capacity scaling.

Regression guard for the push-relabel residual-dust snap: all three
registered solvers must agree -- at ``zero_tol=0.0`` -- on the max-flow
value *and* on both canonical min cuts (the minimal and the maximal source
side of the residual lattice), even when every capacity is scaled far away
from 1.  Before the snap, push-relabel could leave sub-ulp residual dust on
saturated arcs, which flips residual reachability and hands back a
different (non-minimal) cut than Dinic/Edmonds-Karp.

Capacities are integers times one shared adversarial scale.  The scale
sweeps binary powers (exact in floats: pure exponent shifts, so all three
solvers face identical rounding) and decimal powers (inexact: subtraction
dust becomes possible, which is precisely the regression surface).
"""

import math

from hypothesis import given, strategies as st

from repro.engine import SOLVERS
from repro.flow.mincut import cut_value, max_source_side, min_source_side
from repro.flow.network import FlowNetwork

REL_TOL = 1e-9

# Binary scales are exact; decimal scales inject representation error.
SCALES = [2.0 ** k for k in (-40, -12, 0, 13, 37)] + [1e-12, 1e-6, 1e9, 1e12]


@st.composite
def scaled_networks(draw):
    """A connected-ish DAG-free digraph with integer capacities, one scale."""
    n = draw(st.integers(min_value=3, max_value=8))
    base = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(1, 1000),
            ).filter(lambda a: a[0] != a[1]),
            min_size=2,
            max_size=2 * n,
        )
    )
    # guarantee s -> t connectivity so the interesting (nonzero) case dominates
    spine = [(i, i + 1, draw(st.integers(1, 1000))) for i in range(n - 1)]
    scale = draw(st.sampled_from(SCALES))
    net = FlowNetwork(n)
    for u, v, c in base + spine:
        net.add_edge(u, v, c * scale)
    return net, 0, n - 1


def _solve_all(net, s, t):
    out = {}
    for name in SOLVERS.names():
        fresh = net.clone()
        fresh.reset()
        value = SOLVERS.get(name).fn(fresh, s, t, 0.0)
        out[name] = (value, fresh)
    return out


@given(scaled_networks())
def test_all_solvers_agree_on_value_and_cuts_at_zero_tol(case):
    net, s, t = case
    results = _solve_all(net, s, t)
    values = {name: v for name, (v, _) in results.items()}
    ref = values["dinic"]
    tol = REL_TOL * max(1.0, abs(ref))
    for name, value in values.items():
        assert math.isclose(value, ref, rel_tol=REL_TOL, abs_tol=tol), (
            f"{name} disagrees on value: {value!r} vs dinic {ref!r}"
        )

    # the lattice endpoints are unique for a maximum flow, so the extracted
    # *sets* -- not just their capacities -- must agree across solvers
    min_sides = {name: min_source_side(fresh, s) for name, (_, fresh) in results.items()}
    max_sides = {name: max_source_side(fresh, t) for name, (_, fresh) in results.items()}
    for name in SOLVERS.names():
        assert min_sides[name] == min_sides["dinic"], (
            f"{name} minimal cut {sorted(min_sides[name])} != "
            f"dinic {sorted(min_sides['dinic'])} (scale dust?)"
        )
        assert max_sides[name] == max_sides["dinic"], (
            f"{name} maximal cut {sorted(max_sides[name])} != "
            f"dinic {sorted(max_sides['dinic'])}"
        )

    # and both cuts certify the value: max-flow == min-cut
    for name, (value, fresh) in results.items():
        for side in (min_sides[name], max_sides[name]):
            assert s in side and t not in side
            cv = cut_value(fresh, side)
            assert math.isclose(cv, value, rel_tol=REL_TOL, abs_tol=tol), (
                f"{name}: cut value {cv!r} != flow value {value!r}"
            )
        assert min_sides[name] <= max_sides[name]
