"""Property-based tests for the population simulator.

The paper's Theorem 8 bound (``zeta <= 2``) is proved for a single
Sybil-splitting agent on a static ring; the simulator probes it under
churning populations and mixed adversary strategies.  These properties
assert the empirical bound holds across random scenarios on both the
float backend (up to ``zero_tol`` slack) and the exact Fraction backend
(up to grid-search slack only -- exact arithmetic leaves nothing to
rounding), and that the whole pipeline stays a pure function of the
scenario seed.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import EngineContext
from repro.numeric import EXACT
from repro.sim import Scenario, reset_warm_store, run_scenario

# Small worlds keep each example affordable; the mix draws from every
# solo strategy (coalition needs >= 2 adversaries and gets its own test).
_SOLO = ("sybil", "multi", "misreport", "combined", "adaptive")

scenarios = st.builds(
    Scenario,
    name=st.just("prop"),
    seed=st.integers(0, 2**16),
    epochs=st.integers(1, 2),
    n0=st.integers(4, 6),
    n_min=st.just(3),
    n_max=st.just(8),
    churn_rate=st.sampled_from([0.0, 0.5, 1.0]),
    swap_churn=st.booleans(),
    adversaries=st.integers(1, 2),
    strategies=st.lists(st.sampled_from(_SOLO), min_size=1, max_size=2,
                        unique=True).map(tuple),
    weight_dist=st.sampled_from(["loguniform", "uniform"]),
    w_lo=st.just(0.25),
    w_hi=st.sampled_from([2.0, 8.0]),
    grid=st.just(6),
)


def _run(scenario, ctx=None):
    reset_warm_store()
    return run_scenario(scenario, ctx=ctx)


@settings(max_examples=20, deadline=None)
@given(scenarios)
def test_zeta_bound_holds_on_simulated_epochs_float(scen):
    zero_tol = 1e-9
    ctx = EngineContext(zero_tol=zero_tol)
    result = _run(scen, ctx=ctx)
    assert result.violations == ()
    assert result.max_ratio <= 2.0 + scen.zeta_slack + zero_tol
    for rep in result.reports:
        for out in rep.outcomes:
            assert out.utility >= -zero_tol
            assert out.honest_utility >= -zero_tol


@settings(max_examples=8, deadline=None)
@given(scenarios)
def test_zeta_bound_holds_on_simulated_epochs_exact(scen):
    # Fraction arithmetic: the only slack left is the best-response grid,
    # which can only *under*-explore -- the bound itself is exact.
    result = _run(scen, ctx=EngineContext(backend=EXACT))
    assert result.violations == ()
    assert result.max_ratio <= 2.0 + scen.zeta_slack


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**16), st.sampled_from([0.0, 1.0]))
def test_coalitions_never_beat_double_their_joint_honest_take(seed, churn):
    scen = Scenario(name="prop-coalition", seed=seed, epochs=2, n0=6,
                    n_min=4, n_max=8, churn_rate=churn, adversaries=2,
                    strategies=("coalition",), w_lo=0.25, w_hi=4.0, grid=6)
    result = _run(scen)
    assert result.violations == ()
    assert result.max_ratio <= 2.0 + scen.zeta_slack


@settings(max_examples=10, deadline=None)
@given(scenarios)
def test_simulation_is_a_pure_function_of_the_scenario(scen):
    assert _run(scen).to_dict() == _run(scen).to_dict()
