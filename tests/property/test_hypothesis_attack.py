"""Property-based tests for the attack layer and Theorem 8's bound."""

from fractions import Fraction

from hypothesis import given, strategies as st

from repro.attack import best_split, honest_split, split_ring
from repro.core import bd_allocation
from repro.graphs import ring
from repro.numeric import EXACT, FLOAT


ring_weights = st.lists(
    st.floats(min_value=0.01, max_value=100, allow_nan=False, allow_infinity=False),
    min_size=3, max_size=7,
)


@given(ring_weights, st.integers(0, 6))
def test_theorem8_bound_holds(ws, v_raw):
    g = ring(ws)
    v = v_raw % g.n
    br = best_split(g, v, grid=16)
    assert br.ratio <= 2.0 + 1e-6


@given(ring_weights, st.integers(0, 6))
def test_best_split_weights_valid(ws, v_raw):
    g = ring(ws)
    v = v_raw % g.n
    br = best_split(g, v, grid=12)
    assert -1e-12 <= br.w1 <= float(g.weights[v]) + 1e-9
    assert abs(br.w1 + br.w2 - float(g.weights[v])) <= 1e-9 * max(1.0, float(g.weights[v]))
    assert br.utility >= 0


@given(st.lists(st.integers(1, 40), min_size=3, max_size=7), st.integers(0, 6))
def test_honest_split_neutral_exact(ws, v_raw):
    """Lemma 9, property form: the honest split never changes U_v."""
    g = ring([Fraction(w) for w in ws])
    v = v_raw % g.n
    w1, w2 = honest_split(g, v, EXACT)
    out = split_ring(g, v, w1, w2, EXACT)
    assert out.attacker_utility == bd_allocation(g, backend=EXACT).utilities[v]


@given(st.lists(st.integers(1, 40), min_size=3, max_size=6),
       st.integers(0, 5), st.integers(0, 16))
def test_any_split_is_at_most_double(ws, v_raw, k):
    """Theorem 8 holds pointwise, not just at the optimum."""
    g = ring([Fraction(w) for w in ws])
    v = v_raw % g.n
    w1 = Fraction(k, 16) * g.weights[v]
    out = split_ring(g, v, w1, g.weights[v] - w1, EXACT)
    truthful = bd_allocation(g, backend=EXACT).utilities[v]
    assert out.attacker_utility <= 2 * truthful


@given(st.lists(st.integers(1, 40), min_size=3, max_size=6), st.integers(0, 5))
def test_split_only_redistributes_among_honest(ws, v_raw):
    """A Sybil attack cannot create utility: whatever the attacker gains,
    the honest agents lose in aggregate (market clearing on both graphs)."""
    g = ring([Fraction(w) for w in ws])
    v = v_raw % g.n
    w1 = g.weights[v] / 3
    out = split_ring(g, v, w1, g.weights[v] - w1, EXACT)
    total_ring = sum(bd_allocation(g, backend=EXACT).utilities)
    total_path = sum(out.allocation.utilities)
    assert total_ring == total_path == sum(g.weights)
