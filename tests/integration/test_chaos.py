"""Chaos determinism: a faulted run with retry budget equals a clean run.

This is the in-repo twin of the CI chaos job.  EXP-T8 (the incentive-ratio
sweep, the only experiment that fans cells across workers) runs once
clean and once under a fault spec that exercises every injection site --
an experiment-level exception, a worker kill, a cell exception, and a NaN
corruption at the flow boundary -- and the *rendered output and data must
not differ by a single bit*.  Faults are visible only in the runtime
counters.
"""

import pytest

from repro.cli import main
from repro.runtime import clear_injector

CHAOS_SPEC = "exp:exc@0;worker:kill@5;cell:exc@2;flow:nan@7"


@pytest.fixture(autouse=True)
def _clean_global_injector():
    clear_injector()
    yield
    clear_injector()


def _run_cli(capsys, argv):
    rc = main(argv)
    out = capsys.readouterr().out
    return rc, out


def test_exp_t8_smoke_is_bit_identical_under_chaos(capsys):
    base_argv = ["run", "EXP-T8", "--scale", "smoke", "--seed", "0"]
    rc0, clean = _run_cli(capsys, base_argv)
    assert rc0 == 0

    rc1, chaotic = _run_cli(capsys, base_argv + [
        "--workers", "2", "--retries", "2",
        "--inject-faults", CHAOS_SPEC,
    ])
    assert rc1 == 0
    assert chaotic == clean


def test_exp_fault_without_retry_budget_fails_loudly(capsys):
    rc, _ = _run_cli(capsys, [
        "run", "EXP-F1", "--scale", "smoke",
        "--inject-faults", "exp:exc@0",
    ])
    assert rc == 2  # InjectedFault is a ReproError: clean CLI error, exit 2


def test_exp_fault_with_retry_budget_recovers(capsys):
    base = ["run", "EXP-F1", "--scale", "smoke", "--seed", "0"]
    rc0, clean = _run_cli(capsys, base)
    rc1, retried = _run_cli(capsys, base + ["--inject-faults", "exp:exc@0",
                                            "--retries", "1"])
    assert (rc0, rc1) == (0, 0)
    assert retried == clean
