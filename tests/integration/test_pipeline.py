"""End-to-end integration tests across module boundaries.

Each test exercises a full pipeline the way a downstream user would:
graph -> decomposition -> allocation -> dynamics -> attack -> theory check,
with cross-backend and cross-module consistency as the assertions.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro import (
    EXACT,
    FLOAT,
    bd_allocation,
    best_split,
    bottleneck_decomposition,
    incentive_ratio,
    lower_bound_ring,
    proportional_response,
    ring,
)
from repro.attack import honest_split, split_ring
from repro.graphs import random_ring
from repro.io import graph_from_dict, graph_to_dict
from repro.theory import check_stage_lemmas, check_theorem8, ring_class_of


@pytest.mark.parametrize("seed", range(5))
def test_three_routes_to_the_same_equilibrium(seed):
    """Mechanism (exact), mechanism (float), and simulated dynamics must
    agree on every agent's utility."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 9))
    g_int = random_ring(n, rng, "integer", 1, 9)
    g_exact = g_int.with_weights([Fraction(w) for w in g_int.weights])
    g_float = g_int.with_weights([float(w) for w in g_int.weights])

    u_exact = bd_allocation(g_exact, backend=EXACT).utilities
    u_float = bd_allocation(g_float, backend=FLOAT).utilities
    dyn = proportional_response(g_float, tol=1e-12, damping=0.3, max_iters=100_000)

    for v in range(n):
        assert float(u_float[v]) == pytest.approx(float(u_exact[v]), rel=1e-9)
        assert dyn.utility_of(v) == pytest.approx(float(u_exact[v]), rel=1e-6)


def test_attack_pipeline_on_adversarial_family():
    """Full attack pipeline: family -> best response -> split -> stage
    decomposition -> Theorem 8 check, all mutually consistent."""
    g = lower_bound_ring(500)
    br = best_split(g, 1, grid=128)
    out = split_ring(g, 1, br.w1, br.w2, FLOAT)
    assert float(out.attacker_utility) == pytest.approx(br.utility, rel=1e-9)

    rep, verdict = check_stage_lemmas(g, 1, grid=64)
    assert verdict.ok
    assert rep.total_gain + rep.honest_utility == pytest.approx(br.utility, rel=1e-6)

    t8 = check_theorem8(g, grid=64)
    assert t8.ok
    assert t8.data["zeta"] == pytest.approx(br.ratio, rel=1e-6)


def test_serialized_instance_reproduces_results(tmp_path):
    """Archive an instance, reload it, and get bit-identical analysis."""
    g = random_ring(6, np.random.default_rng(3), "loguniform", 0.1, 10)
    zeta_before = incentive_ratio(g, grid=16).zeta
    g2 = graph_from_dict(graph_to_dict(g))
    assert g2 == g
    assert incentive_ratio(g2, grid=16).zeta == zeta_before


def test_honest_split_is_fixed_point_of_attack_search():
    """On a no-gain instance the best response finds ratio 1 and the honest
    split is among the optima (uniform odd ring: fully symmetric)."""
    g = ring([2.0] * 5)
    br = best_split(g, 0, grid=32)
    assert br.ratio == pytest.approx(1.0, abs=1e-9)
    w1, w2 = honest_split(g, 0, FLOAT)
    out = split_ring(g, 0, w1, w2, FLOAT)
    assert float(out.attacker_utility) == pytest.approx(br.utility, rel=1e-9)


def test_class_semantics_consistent_between_modules():
    """ring_class_of (theory) must agree with the decomposition's raw
    membership whenever the vertex is single-class."""
    rng = np.random.default_rng(9)
    for _ in range(5):
        g = random_ring(6, rng, "loguniform", 0.1, 10)
        d = bottleneck_decomposition(g, FLOAT)
        for v in range(g.n):
            cls = ring_class_of(g, v, FLOAT)
            if d.in_B(v) and not d.in_C(v):
                assert cls.value == "B"
            elif d.in_C(v) and not d.in_B(v):
                assert cls.value == "C"


def test_unit_pair_allocation_is_dynamics_fixed_point():
    """Regression for the symmetrization bug: the BD allocation on a unit
    pair must be invariant under one proportional-response step."""
    for ws in ([1.0, 1.0, 1.0], [2.0, 3.0, 4.0, 3.0, 2.0], [1.0, 2.0, 2.0, 1.0]):
        g = ring(ws)
        d = bottleneck_decomposition(g, FLOAT)
        alloc = bd_allocation(g, d, FLOAT)
        # one PR step: x'_vu = x_uv / U_v * w_v must return the same x
        for (v, u), amount in alloc.x.items():
            got = alloc.x.get((u, v), 0.0) / float(alloc.utilities[v]) * float(g.weights[v])
            assert got == pytest.approx(float(amount), rel=1e-9, abs=1e-12)
