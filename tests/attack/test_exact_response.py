"""Tests for the exact rational best-response optimizer."""

from fractions import Fraction

import numpy as np
import pytest

from repro.attack import best_split, exact_attacker_utility, exact_best_split
from repro.attack.exact_response import (
    _Rational,
    _bisect_roots,
    _exact_sqrt,
    _interpolate_rational,
    _maximize_piece,
    _poly_eval,
    _roots_in,
)
from repro.graphs import random_ring, ring

F = Fraction


# -- polynomial / rational helpers ------------------------------------------

def test_poly_eval_horner():
    assert _poly_eval([F(1), F(2), F(3)], F(2)) == 1 + 4 + 12


def test_rational_call_and_derivative():
    # f = (1 + w^2) / (1 + w): f' numerator = 2w(1+w) - (1+w^2) = w^2 + 2w - 1
    rat = _Rational(p=(F(1), F(0), F(1)), q=(F(1), F(1)))
    assert rat(F(2)) == F(5, 3)
    dn = rat.derivative_numerator()
    assert _poly_eval(dn, F(1)) == 2  # 1 + 2 - 1
    assert _poly_eval(dn, F(0)) == -1


def test_exact_sqrt():
    assert _exact_sqrt(F(9, 4)) == F(3, 2)
    assert _exact_sqrt(F(2)) is None
    assert _exact_sqrt(F(-1)) is None


def test_roots_linear_and_quadratic():
    assert _roots_in([F(-2), F(1)], F(0), F(5)) == [F(2)]
    # (w-1)(w-3) = 3 - 4w + w^2
    roots = _roots_in([F(3), F(-4), F(1)], F(0), F(5))
    assert sorted(roots) == [F(1), F(3)]
    # no real roots
    assert _roots_in([F(1), F(0), F(1)], F(0), F(5)) == []
    # constant / zero polynomial
    assert _roots_in([F(7)], F(0), F(1)) == []
    assert _roots_in([F(0)], F(0), F(1)) == []


def test_bisect_roots_cubic():
    # w^3 - w = w(w-1)(w+1): roots 0 and 1 inside [0, 2]
    f = lambda w: w**3 - w
    roots = _bisect_roots(f, F(0), F(2))
    assert any(abs(float(r)) < 1e-12 for r in roots)
    assert any(abs(float(r) - 1) < 1e-12 for r in roots)


def test_interpolate_recovers_rational():
    target = _Rational(p=(F(1), F(2), F(0), F(1)), q=(F(3), F(1), F(1)))
    fit = _interpolate_rational(lambda w: target(w), F(0), F(4))
    assert fit is not None
    for w in (F(1, 7), F(9, 5), F(31, 8)):
        assert fit(w) == target(w)


def test_interpolate_rejects_non_rational():
    # |w - 2| is not a (3,2)-rational function on [0, 4]
    fit = _interpolate_rational(lambda w: abs(w - 2), F(0), F(4))
    assert fit is None


def test_maximize_piece_interior_peak():
    # f = w (4 - w): max at w=2, value 4
    rat = _Rational(p=(F(0), F(4), F(-1)), q=(F(1),))
    w, val = _maximize_piece(rat, F(0), F(4))
    assert (w, val) == (F(2), F(4))


# -- the optimizer itself ----------------------------------------------------

def test_exact_utility_at_endpoints():
    g = ring([F(4), F(2), F(3)])
    full = exact_attacker_utility(g, 0, F(4))
    zero = exact_attacker_utility(g, 0, F(0))
    assert full > 0 and zero > 0


@pytest.mark.parametrize("seed", range(5))
def test_exact_at_least_float(seed):
    """The certified optimum can never be *below* the float search (both
    evaluate true utilities; exact searches a superset of candidates)."""
    rng = np.random.default_rng(seed)
    g = random_ring(4, rng, "integer", 1, 9)
    ge = g.with_weights([F(w) for w in g.weights])
    ex = exact_best_split(ge, 0, probes=17)
    fl = best_split(g.with_weights([float(w) for w in g.weights]), 0, grid=48)
    assert float(ex.ratio) >= fl.ratio - 1e-9
    assert float(ex.ratio) <= 2.0 + 1e-12


@pytest.mark.parametrize("seed", range(3))
def test_exact_matches_float_closely(seed):
    rng = np.random.default_rng(100 + seed)
    g = random_ring(5, rng, "integer", 1, 9)
    ge = g.with_weights([F(w) for w in g.weights])
    ex = exact_best_split(ge, 0, probes=17)
    fl = best_split(g.with_weights([float(w) for w in g.weights]), 0, grid=128)
    assert float(ex.ratio) == pytest.approx(fl.ratio, abs=5e-3)


def test_exact_theorem8_bound_is_exact():
    """On a small adversarial instance the exact ratio is certifiably <= 2
    as a Fraction comparison, no epsilon."""
    g = ring([F(1), F(1), F(1, 50), F(1, 50), F(50)])
    ex = exact_best_split(g, 1, probes=25)
    assert ex.ratio <= 2
    assert ex.ratio > F(17, 10)  # the family is already near 2 at H=50


def test_exact_zero_weight_attacker():
    g = ring([F(0), F(1), F(2)])
    ex = exact_best_split(g, 0)
    assert ex.utility == 0 and ex.ratio == 1
