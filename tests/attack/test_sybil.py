"""Tests for the Sybil split primitive and Lemma 9 (honest split neutrality)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.attack import attacker_utility, honest_split, split_ring
from repro.core import bd_allocation
from repro.exceptions import AttackError
from repro.graphs import random_ring, ring
from repro.numeric import EXACT, FLOAT


def test_split_outcome_structure():
    g = ring([2, 1, 1, 1])
    out = split_ring(g, 0, 1, 1, EXACT)
    assert out.path.is_path_graph()
    assert out.path.n == 5
    assert out.path.weights[out.v1] == 1
    assert out.path.weights[out.v2] == 1
    assert out.attacker_utility == out.utility_v1 + out.utility_v2


def test_split_rejects_negative_weights():
    g = ring([2, 1, 1])
    with pytest.raises(AttackError):
        split_ring(g, 0, -1, 3, EXACT)


def test_split_rejects_bad_sum():
    g = ring([2, 1, 1])
    with pytest.raises(AttackError):
        split_ring(g, 0, 1, 2, EXACT)


def test_split_float_tolerates_roundoff_sum():
    g = ring([1.0, 1.0, 1.0])
    out = split_ring(g, 0, 0.1 + 0.2, 1.0 - (0.1 + 0.2), FLOAT)
    assert out.path.n == 4


def test_attacker_utility_shortcut():
    g = ring([2, 1, 1, 1])
    assert attacker_utility(g, 0, 1, 1, EXACT) == split_ring(g, 0, 1, 1, EXACT).attacker_utility


@pytest.mark.parametrize("seed", range(10))
def test_lemma9_honest_split_preserves_utility(seed):
    """Lemma 9: splitting at the equilibrium flow amounts changes nothing."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 9))
    g = random_ring(n, rng, "integer", 1, 9)
    for v in range(n):
        w1, w2 = honest_split(g, v, EXACT)
        out = split_ring(g, v, w1, w2, EXACT)
        truthful = bd_allocation(g, backend=EXACT).utilities[v]
        assert out.attacker_utility == truthful


@pytest.mark.parametrize("seed", range(6))
def test_lemma9_honest_split_preserves_all_utilities(seed):
    """The honest split also leaves every *other* agent's utility unchanged."""
    rng = np.random.default_rng(100 + seed)
    n = int(rng.integers(3, 8))
    g = random_ring(n, rng, "integer", 1, 9)
    truthful = bd_allocation(g, backend=EXACT).utilities
    v = int(rng.integers(0, n))
    w1, w2 = honest_split(g, v, EXACT)
    out = split_ring(g, v, w1, w2, EXACT)
    # map path interior vertices back to ring ids via labels
    for pid in range(out.path.n):
        if pid in (out.v1, out.v2):
            continue
        ring_id = int(out.path.labels[pid][1:])  # "v3" -> 3
        assert out.allocation.utilities[pid] == truthful[ring_id]


def test_honest_split_sums_to_weight():
    g = ring([Fraction(5), Fraction(2), Fraction(3), Fraction(7)])
    for v in range(4):
        w1, w2 = honest_split(g, v, EXACT)
        assert w1 + w2 == g.weights[v]
        assert w1 >= 0 and w2 >= 0


def test_alpha_accessors():
    g = ring([2, 1, 1, 1])
    out = split_ring(g, 0, 1, 1, EXACT)
    a1, a2 = out.alpha_v1(), out.alpha_v2()
    assert a1 > 0 and a2 > 0
