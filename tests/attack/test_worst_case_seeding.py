"""Regression tests for per-scope RNG derivation in the worst-case search.

The historical bug: callers re-seeded ``default_rng(seed)`` for every
search, so all searches within one scenario epoch drew *identical*
candidate streams -- agent 1's restarts replayed agent 0's rings and the
explored instance space silently collapsed.  ``scoped_rng`` derives the
stream from the full ``(seed, epoch, agent)`` scope instead.
"""

import numpy as np

from repro.attack import scoped_rng, search_worst_ring_scoped


def _draws(rng, k=8):
    return rng.random(k).tolist()


def test_same_scope_same_stream():
    assert _draws(scoped_rng(7, 3, 2)) == _draws(scoped_rng(7, 3, 2))


def test_each_coordinate_decorrelates_the_stream():
    base = _draws(scoped_rng(7, 3, 2))
    assert _draws(scoped_rng(8, 3, 2)) != base   # seed
    assert _draws(scoped_rng(7, 4, 2)) != base   # epoch
    assert _draws(scoped_rng(7, 3, 1)) != base   # agent  <- the bug: these
    # used to be identical streams for every agent in an epoch


def test_scope_is_not_flattened_into_a_sum():
    # (seed, epoch, agent) feeds a SeedSequence, not seed+epoch+agent or
    # similar collapsible arithmetic.
    assert _draws(scoped_rng(1, 2, 3)) != _draws(scoped_rng(3, 2, 1))
    assert _draws(scoped_rng(0, 0, 6)) != _draws(scoped_rng(6, 0, 0))


def test_search_is_deterministic_per_scope_and_distinct_across_agents():
    kwargs = dict(restarts=1, sweeps=1, grid=8)
    a = search_worst_ring_scoped(4, seed=0, epoch=0, agent=0, **kwargs)
    b = search_worst_ring_scoped(4, seed=0, epoch=0, agent=0, **kwargs)
    assert repr(a.graph.weights) == repr(b.graph.weights)  # bit-identical
    assert a.zeta == b.zeta
    c = search_worst_ring_scoped(4, seed=0, epoch=0, agent=1, **kwargs)
    # different agent, different candidate stream, different instances
    assert repr(c.graph.weights) != repr(a.graph.weights)
