"""Tests for combined split + under-reporting attacks."""

import numpy as np
import pytest

from repro.attack import best_combined_split, best_split, combined_attacker_utility
from repro.exceptions import AttackError
from repro.graphs import path, random_ring, ring


def test_combined_utility_matches_split_on_diagonal():
    from repro.attack import attacker_utility

    g = ring([4.0, 1.0, 2.0, 3.0])
    u_combined = combined_attacker_utility(g, 0, 2.5, 1.5)
    u_split = float(attacker_utility(g, 0, 2.5, 1.5))
    assert u_combined == pytest.approx(u_split, rel=1e-12)


def test_combined_rejects_infeasible():
    g = ring([4.0, 1.0, 2.0, 3.0])
    with pytest.raises(AttackError):
        combined_attacker_utility(g, 0, 3.0, 2.0)  # sums above w_v
    with pytest.raises(AttackError):
        combined_attacker_utility(g, 0, -1.0, 1.0)


def test_best_combined_at_least_diagonal():
    rng = np.random.default_rng(1)
    g = random_ring(5, rng, "loguniform", 0.1, 10)
    r = best_combined_split(g, 0, grid=16)
    assert r.utility >= r.diagonal_utility - 1e-9
    assert r.ratio <= 2.0 + 1e-6


@pytest.mark.parametrize("seed", range(5))
def test_hiding_never_profits(seed):
    rng = np.random.default_rng(seed)
    g = random_ring(int(rng.integers(3, 7)), rng, "loguniform", 0.05, 20)
    v = int(rng.integers(0, g.n))
    r = best_combined_split(g, v, grid=12, refine=2)
    assert r.hiding_gain <= 1e-9 * max(1.0, r.honest_utility)


def test_best_combined_requires_ring():
    with pytest.raises(Exception):
        best_combined_split(path([1.0, 1.0, 1.0]), 0)


def test_zero_weight_combined():
    g = ring([0.0, 1.0, 2.0])
    r = best_combined_split(g, 0, grid=4)
    assert r.utility == 0.0 and r.ratio == 1.0
