"""Tests for best-response search and incentive ratios (Theorem 8)."""

import numpy as np
import pytest

from repro.attack import (
    best_split,
    incentive_ratio,
    incentive_ratio_of_vertex,
    lower_bound_ratio,
    lower_bound_ring,
    lower_bound_series,
    search_worst_ring,
    utility_of_split_curve,
)
from repro.exceptions import AttackError
from repro.graphs import path, random_ring, ring
from repro.numeric import FLOAT


def test_best_split_at_least_honest():
    """The split search can never do worse than truthful play (it includes
    the honest split as a candidate; Lemma 9 makes that split neutral)."""
    rng = np.random.default_rng(3)
    for _ in range(6):
        g = random_ring(int(rng.integers(3, 8)), rng, "uniform", 0.2, 5.0)
        for v in range(g.n):
            r = best_split(g, v, grid=24)
            assert r.ratio >= 1.0 - 1e-9


def test_uniform_ring_no_gain():
    g = ring([1.0] * 6)
    r = incentive_ratio(g, grid=32)
    assert r.zeta == pytest.approx(1.0, abs=1e-6)


@pytest.mark.parametrize("seed", range(12))
def test_theorem8_upper_bound_random_rings(seed):
    """Theorem 8: zeta <= 2 on rings (random instances, heavy spread)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 10))
    g = random_ring(n, rng, "loguniform", 1e-3, 1e3)
    r = incentive_ratio(g, grid=32)
    assert r.zeta <= 2.0 + 1e-6


def test_lower_bound_family_approaches_two():
    pts = lower_bound_series([10, 100, 1000, 1e5])
    zetas = [p.zeta for p in pts]
    assert zetas == sorted(zetas)  # monotone in H
    assert zetas[0] > 1.8
    assert zetas[-1] > 1.9999
    assert all(p.zeta <= 2.0 + 1e-9 for p in pts)
    # first-order prediction 2 - 2/H matches to O(1/H^2)
    for p in pts:
        assert p.zeta == pytest.approx(p.predicted, abs=20.0 / p.H**2 + 1e-9)


def test_lower_bound_family_structure():
    g = lower_bound_ring(100.0)
    assert g.is_ring() and g.n == 5
    r = lower_bound_ratio(100.0)
    assert r.vertex == 1
    assert 1.9 < r.ratio <= 2.0
    # the optimal second weight is ~ 1/H^2
    assert r.w2 == pytest.approx(1e-4, rel=0.5)


def test_lower_bound_ring_validates_H():
    with pytest.raises(AttackError):
        lower_bound_ring(0.5)


def test_best_split_rejects_non_ring():
    with pytest.raises(Exception):
        best_split(path([1.0, 1.0, 1.0]), 0)


def test_best_split_rejects_tiny_grid():
    g = ring([1.0, 1.0, 1.0])
    with pytest.raises(AttackError):
        best_split(g, 0, grid=1)


def test_zero_weight_attacker_ratio_is_one():
    g = ring([0.0, 1.0, 2.0, 1.0])
    r = best_split(g, 0, grid=8)
    assert r.utility == 0.0
    assert r.ratio == 1.0


def test_incentive_ratio_of_vertex_matches_instance_entry():
    g = ring([1.0, 3.0, 0.5, 2.0])
    inst = incentive_ratio(g, grid=24)
    single = incentive_ratio_of_vertex(g, inst.worst, grid=24)
    assert single.ratio == pytest.approx(inst.zeta, rel=1e-12)


def test_utility_of_split_curve_matches_best():
    g = lower_bound_ring(50.0)
    w1s = np.linspace(0, 1, 33)
    curve = utility_of_split_curve(g, 1, w1s)
    r = best_split(g, 1, grid=32)
    assert max(curve) <= r.utility + 1e-12


def test_search_worst_ring_finds_significant_gain():
    rng = np.random.default_rng(0)
    result = search_worst_ring(5, rng, restarts=2, sweeps=3, grid=24)
    assert result.zeta > 1.3
    assert result.zeta <= 2.0 + 1e-6
    assert result.evaluations > 0
    assert result.graph.is_ring()


def test_search_worst_ring_rejects_small_n():
    rng = np.random.default_rng(0)
    with pytest.raises(AttackError):
        search_worst_ring(2, rng)
