"""Tests for general-graph Sybil attacks (the Section IV conjecture)."""

import numpy as np
import pytest

from repro.attack import (
    best_general_split,
    general_incentive_ratio,
    neighbor_bipartitions,
    split_general,
)
from repro.core import bd_allocation
from repro.exceptions import AttackError
from repro.graphs import WeightedGraph, path, random_connected_graph, ring, star
from repro.numeric import EXACT, FLOAT


def test_split_general_rewires_only_side2():
    g = star(10.0, [1.0, 2.0, 3.0])
    out = split_general(g, 0, {2}, 6.0, 4.0)
    g2 = out.graph
    assert g2.n == 5
    assert g2.has_edge(4, 2) and not g2.has_edge(0, 2)
    assert g2.has_edge(0, 1) and g2.has_edge(0, 3)
    assert g2.weights[0] == 6.0 and g2.weights[4] == 4.0
    assert g2.labels[4] == "v0^2"


def test_split_general_validations():
    g = star(10.0, [1.0, 2.0, 3.0])
    with pytest.raises(AttackError):
        split_general(g, 0, set(), 5.0, 5.0)  # empty side2
    with pytest.raises(AttackError):
        split_general(g, 0, {1, 2, 3}, 5.0, 5.0)  # full set: misreporting
    with pytest.raises(AttackError):
        split_general(g, 0, {9}, 5.0, 5.0)  # not a neighbor
    with pytest.raises(AttackError):
        split_general(g, 0, {1}, -1.0, 11.0)
    with pytest.raises(AttackError):
        split_general(g, 0, {1}, 1.0, 2.0)  # bad sum


def test_split_general_on_ring_matches_ring_split():
    """On a ring the general machinery must reproduce split_ring numbers."""
    from repro.attack import attacker_utility

    g = ring([4.0, 1.0, 2.0, 3.0])
    # ring split: v=0, neighbors 1 (side1) and 3 (side2)
    u_general = float(split_general(g, 0, {3}, 2.5, 1.5).utility)
    u_ring = float(attacker_utility(g, 0, 2.5, 1.5))
    assert u_general == pytest.approx(u_ring, rel=1e-12)


def test_neighbor_bipartitions_counts():
    g = star(1.0, [1.0] * 4)  # center degree 4
    parts = list(neighbor_bipartitions(g, 0))
    assert len(parts) == 2 ** 3 - 1  # fix one neighbor on side 1
    assert all(parts.count(p) == 1 for p in parts)
    # degree-1 vertex: nothing to split
    assert list(neighbor_bipartitions(g, 1)) == []


def test_best_general_split_requires_degree_2():
    g = path([1.0, 1.0])
    with pytest.raises(AttackError):
        best_general_split(g, 0)


def test_best_general_split_at_least_honest():
    rng = np.random.default_rng(2)
    g = random_connected_graph(6, 2, rng, "uniform", 0.5, 5.0)
    for v in g.vertices():
        if g.degree(v) < 2:
            continue
        r = best_general_split(g, v, grid=8)
        assert r.ratio >= 1.0 - 1e-9


@pytest.mark.parametrize("seed", range(6))
def test_conjecture_bound_on_random_graphs(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 7))
    g = random_connected_graph(n, int(rng.integers(0, 4)), rng, "loguniform", 0.05, 20)
    z, best = general_incentive_ratio(g, grid=12)
    assert z <= 2.0 + 1e-6
    assert best.strategies_tried >= 1


def test_uniform_clique_no_gain():
    from repro.graphs import complete

    g = complete([1.0] * 4)
    z, _ = general_incentive_ratio(g, grid=12)
    assert z == pytest.approx(1.0, abs=1e-6)


def test_general_split_conserves_resource_exact():
    from fractions import Fraction

    g = star(Fraction(10), [Fraction(1), Fraction(2), Fraction(3)])
    out = split_general(g, 0, {1}, Fraction(7), Fraction(3), EXACT)
    assert sum(out.graph.weights) == sum(g.weights)
    alloc = bd_allocation(out.graph, backend=EXACT)
    assert sum(alloc.utilities) == sum(g.weights)


def test_zero_weight_attacker_general():
    # Definition 5 corner: an alpha = 0 pair still saturates the B side, so
    # a zero-weight center *receives* w(B) while returning nothing -- and a
    # Sybil split cannot improve on that (ratio stays 1).
    g = star(0.0, [1.0, 2.0])
    r = best_general_split(g, 0, grid=4)
    assert r.honest_utility == pytest.approx(3.0)
    assert r.ratio == 1.0
