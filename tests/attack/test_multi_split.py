"""Tests for m-way Sybil splits."""

from fractions import Fraction

import numpy as np
import pytest

from repro.attack import (
    best_general_split,
    best_multi_split,
    set_partitions,
    split_general,
    split_multi,
)
from repro.core import bd_allocation
from repro.exceptions import AttackError
from repro.graphs import random_connected_graph, star
from repro.numeric import EXACT, FLOAT


def test_set_partitions_counts():
    # Stirling numbers S(n, m)
    assert sum(1 for _ in set_partitions([1, 2, 3], 2)) == 3
    assert sum(1 for _ in set_partitions([1, 2, 3, 4], 2)) == 7
    assert sum(1 for _ in set_partitions([1, 2, 3, 4], 3)) == 6
    assert sum(1 for _ in set_partitions([1, 2, 3], 3)) == 1
    assert list(set_partitions([1, 2], 3)) == []


def test_set_partitions_cover_and_disjoint():
    for groups in set_partitions([1, 2, 3, 4, 5], 3):
        flat = [x for grp in groups for x in grp]
        assert sorted(flat) == [1, 2, 3, 4, 5]
        assert all(grp for grp in groups)


def test_split_multi_structure():
    g = star(10.0, [1.0, 2.0, 3.0])
    out = split_multi(g, 0, [[1], [2], [3]], [5.0, 3.0, 2.0])
    g2 = out.graph
    assert g2.n == 6
    assert out.copies == (0, 4, 5)
    assert g2.has_edge(0, 1) and g2.has_edge(4, 2) and g2.has_edge(5, 3)
    assert g2.weights[0] == 5.0 and g2.weights[4] == 3.0 and g2.weights[5] == 2.0
    assert g2.labels[4] == "v0^2" and g2.labels[5] == "v0^3"


def test_split_multi_m2_matches_split_general():
    g = star(10.0, [1.0, 2.0, 3.0])
    a = split_multi(g, 0, [[1, 3], [2]], [6.0, 4.0])
    b = split_general(g, 0, {2}, 6.0, 4.0)
    assert float(a.utility) == pytest.approx(float(b.utility), rel=1e-12)


def test_split_multi_validations():
    g = star(10.0, [1.0, 2.0, 3.0])
    with pytest.raises(AttackError):
        split_multi(g, 0, [[1], [2]], [5.0])  # weight count
    with pytest.raises(AttackError):
        split_multi(g, 0, [[1], [2]], [5.0, 5.0])  # missing neighbor 3
    with pytest.raises(AttackError):
        split_multi(g, 0, [[1, 2, 3], []], [5.0, 5.0])  # empty group
    with pytest.raises(AttackError):
        split_multi(g, 0, [[1], [2], [3]], [5.0, 5.0, 5.0])  # bad sum
    with pytest.raises(AttackError):
        split_multi(g, 0, [[1], [2], [3]], [-1.0, 6.0, 5.0])  # negative
    with pytest.raises(AttackError):
        split_multi(g, 0, [[1], [2], [3], [1]], [1, 1, 1, 7])  # m > d_v / dup


def test_split_multi_exact_conserves():
    g = star(Fraction(10), [Fraction(1), Fraction(2), Fraction(3)])
    out = split_multi(g, 0, [[1], [2], [3]],
                      [Fraction(5), Fraction(3), Fraction(2)], EXACT)
    assert sum(out.graph.weights) == sum(g.weights)
    alloc = bd_allocation(out.graph, backend=EXACT)
    assert sum(alloc.utilities) == sum(g.weights)


def test_best_multi_split_bound():
    rng = np.random.default_rng(4)
    g = random_connected_graph(6, 5, rng, "loguniform", 0.1, 10)
    v = max(g.vertices(), key=g.degree)
    if g.degree(v) >= 3:
        r = best_multi_split(g, v, 3, steps=6, refine_rounds=1)
        assert 1.0 - 1e-9 <= r.ratio <= 2.0 + 1e-6
        assert r.strategies_tried >= 1


def test_best_multi_split_degree_check():
    g = star(1.0, [1.0, 1.0])
    with pytest.raises(AttackError):
        best_multi_split(g, 0, 3)


def test_best_multi_split_zero_weight():
    g = star(0.0, [1.0, 1.0, 1.0])
    r = best_multi_split(g, 0, 3, steps=4)
    assert r.ratio == 1.0
