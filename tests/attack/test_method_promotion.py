"""The exact best-response search as a primary path (``method=`` plumbing).

``exact_best_split`` started life as a certifier for the grid search; this
pins its promotion: ``method="exact"`` runs it directly, ``method="auto"``
selects it on small exact-backend instances, and the ``method`` knob rides
through ``incentive_ratio``.
"""

from fractions import Fraction

import pytest

from repro.attack import best_split, incentive_ratio, incentive_ratio_of_vertex
from repro.attack.best_response import EXACT_METHOD_MAX_N
from repro.engine import EngineContext
from repro.exceptions import AttackError
from repro.graphs import ring
from repro.numeric import EXACT, FLOAT


def _exact_ring(*ws):
    return ring([Fraction(w) for w in ws])


def test_exact_method_dominates_grid():
    # the rational enumeration is exact on its regimes: never beaten by
    # the sampled search, and equal once the grid has converged
    g = _exact_ring(3, 1, 4, 2)
    for v in g.vertices():
        rg = best_split(g, v, grid=64, backend=EXACT, method="grid")
        rx = best_split(g, v, backend=EXACT, method="exact")
        assert rx.utility >= rg.utility - 1e-12
        assert rx.utility == pytest.approx(rg.utility, rel=1e-9)
        assert rx.honest_utility == pytest.approx(rg.honest_utility, rel=1e-12)


def test_auto_promotes_exact_on_small_exact_instances():
    g = _exact_ring(3, 1, 4, 2)
    assert g.n <= EXACT_METHOD_MAX_N
    ra = best_split(g, 0, backend=EXACT, method="auto")
    rx = best_split(g, 0, backend=EXACT, method="exact")
    assert (ra.w1, ra.w2, ra.utility) == (rx.w1, rx.w2, rx.utility)


def test_auto_stays_on_grid_for_float():
    g = ring([3.0, 1.0, 4.0, 2.0])
    ra = best_split(g, 0, grid=16, refine_iters=20, method="auto")
    rg = best_split(g, 0, grid=16, refine_iters=20, method="grid")
    assert (ra.w1, ra.w2, ra.utility) == (rg.w1, rg.w2, rg.utility)


def test_unknown_method_raises():
    g = ring([3.0, 1.0, 4.0, 2.0])
    with pytest.raises(AttackError, match="method"):
        best_split(g, 0, method="newton")


def test_method_rides_through_incentive_ratio():
    g = _exact_ring(3, 1, 4, 2)
    inst = incentive_ratio(g, backend=EXACT, method="exact")
    for v in g.vertices():
        direct = best_split(g, v, backend=EXACT, method="exact")
        assert inst.per_vertex[v].utility == direct.utility
    rv = incentive_ratio_of_vertex(g, inst.worst, backend=EXACT, method="exact")
    assert rv.utility == inst.worst_response.utility
    # Theorem 8 sanity on the promoted path
    assert inst.zeta <= 2.0 + 1e-12


def test_exact_method_audits_clean():
    # the promoted path still reports through audit_best_response
    g = _exact_ring(2, 5, 1, 3)
    ctx = EngineContext()
    r = best_split(g, 1, backend=EXACT, method="exact", ctx=ctx)
    assert r.utility >= r.honest_utility  # best response can't lose to honesty
    assert ctx.counters.phase_seconds.get("best_response", 0) > 0
