"""Regression tests for the misreport-then-Sybil composition.

The historical bug: composing ``attack.misreport`` with a k-way Sybil
split read post-attack utilities through the *pre-attack* index map.  A
ring cut relabels every bystander and a k > 2 ``split_multi`` mints fresh
ids, so the stale map under-counted the attacker (only the identity that
kept ``v``'s id) and mis-attributed bystander utilities.  These tests pin
the composed results against hand-built brute-force instances on n <= 6
and keep a canary on the exact stale read.
"""

import pytest

from repro.attack import (
    best_misreport_split,
    misreport_then_cut,
    misreport_then_split,
)
from repro.attack.misreport import report_weight
from repro.attack.multi_split import _simplex_grid, set_partitions, split_multi
from repro.core import bd_allocation
from repro.exceptions import AttackError
from repro.graphs import cut_index_map, cut_ring_at, ring, ring_order, star


def test_cut_composition_matches_hand_built_instance():
    # Differential against a by-hand construction: report, cut, decompose,
    # and read every vertex off the relabelled path explicitly.
    g = ring([4.0, 1.0, 2.0, 3.0, 5.0, 0.5])
    v, x = 2, 1.5
    atk = misreport_then_cut(g, v, x, 0.5, 1.0)

    reported = report_weight(g, v, x)
    p, v1, v2 = cut_ring_at(reported, v, 0.5, 1.0)
    alloc = bd_allocation(p)
    assert atk.utility == alloc.utilities[v1] + alloc.utilities[v2]

    # the relabelled layout: interior path ids follow the ring order from
    # v's smaller-id neighbor
    order = ring_order(g, start=v)
    if order[1] != min(u for u in g.neighbors(v)):
        order = [v] + order[1:][::-1]
    for path_id, u in enumerate(order[1:], start=1):
        assert atk.index_map[u] == path_id
        assert atk.utility_of(u) == alloc.utilities[path_id]


def test_cut_composition_stale_index_read_differs():
    # Canary: on this instance at least one bystander's utility under the
    # *stale* (identity) map differs from the mapped read.  If relabelling
    # ever becomes a no-op this canary goes off and the maps can be
    # simplified away.
    g = ring([4.0, 1.0, 2.0, 3.0, 5.0, 0.5])
    atk = misreport_then_cut(g, 2, 1.5, 0.5, 1.0)
    alloc = bd_allocation(atk.graph)
    stale = {u: float(alloc.utilities[u]) for u in atk.index_map}
    mapped = {u: float(atk.utility_of(u)) for u in atk.index_map}
    assert stale != mapped


@pytest.mark.parametrize("k", [2, 3])
def test_split_composition_sums_all_copies(k):
    # On a star the hub has degree >= k, so k-way compositions exist; the
    # attacker utility must equal the sum over ALL k identities, not the
    # single reused id (the k > 2 under-count this test regression-pins).
    g = star(3.0, [1.0, 1.0, 1.0])  # hub 0, leaves 1..3
    hub, x = 0, 1.5
    groups = [[u] for u in sorted(g.neighbors(hub))][:k]
    if k == 2:
        groups = [[1], [2, 3]]
    weights = [x / k] * k
    atk = misreport_then_split(g, hub, x, groups, weights)

    reported = report_weight(g, hub, x)
    ms = split_multi(reported, hub, groups, weights)
    alloc = bd_allocation(ms.graph)
    expected = sum(alloc.utilities[c] for c in ms.copies)
    assert atk.utility == expected
    assert len(ms.copies) == k
    # the stale single-copy read strictly under-counts here
    assert float(alloc.utilities[hub]) < float(expected)


def test_best_misreport_split_matches_bruteforce():
    # Exhaustive differential on an n = 5 ring: re-run the same grid by
    # hand and require the exact same optimum.
    g = ring([2.0, 0.5, 1.0, 3.0, 1.5])
    v, m, x_steps, w_steps = 0, 2, 4, 4
    got = best_misreport_split(g, v, m=m, x_steps=x_steps, w_steps=w_steps)

    wv = float(g.weights[v])
    nbrs = sorted(g.neighbors(v))
    best = None
    for t in range(1, x_steps + 1):
        x = wv * t / x_steps
        for groups in set_partitions(nbrs, m):
            for ws in _simplex_grid(x, m, w_steps):
                atk = misreport_then_split(g, v, x, groups, list(ws))
                if best is None or atk.utility > best.utility:
                    best = atk
    assert got.utility == best.utility
    assert float(got.report) == float(best.report)


def test_cut_composition_validates_weight_sum():
    g = ring([4.0, 1.0, 2.0, 3.0])
    with pytest.raises(AttackError, match="sum to the report"):
        misreport_then_cut(g, 0, 2.0, 0.5, 1.0)


def test_full_report_cut_matches_plain_split():
    # x = w_v composes into a plain Definition 7 cut: same utility as the
    # uncomposed attack.
    from repro.attack import attacker_utility

    g = ring([4.0, 1.0, 2.0, 3.0, 5.0])
    v, w1 = 0, 1.25
    atk = misreport_then_cut(g, v, 4.0, w1, 4.0 - w1)
    assert float(atk.utility) == float(attacker_utility(g, v, w1, 4.0 - w1))
