"""Tests for the misreporting strategy and Theorem 10 (truthfulness)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.attack import alpha_curve, report_weight, utility_curve, utility_of_report
from repro.core import bd_allocation
from repro.exceptions import AttackError
from repro.graphs import random_connected_graph, random_ring, ring, star
from repro.numeric import EXACT, FLOAT


def test_report_weight_builds_modified_graph():
    g = ring([4, 1, 1])
    g2 = report_weight(g, 0, 2, EXACT)
    assert g2.weights == (2, 1, 1)


def test_report_weight_range_checked():
    g = ring([4, 1, 1])
    with pytest.raises(AttackError):
        report_weight(g, 0, 5, EXACT)
    with pytest.raises(AttackError):
        report_weight(g, 0, -1, EXACT)


def test_truthful_report_is_identity():
    g = ring([4, 1, 1])
    assert utility_of_report(g, 0, 4, EXACT) == bd_allocation(g, backend=EXACT).utilities[0]


@pytest.mark.parametrize("seed", range(10))
def test_theorem10_monotone_on_rings(seed):
    """Theorem 10: U_v(x) non-decreasing in the report x (exact backend)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 8))
    g = random_ring(n, rng, "integer", 1, 9)
    v = int(rng.integers(0, n))
    wv = g.weights[v]
    xs = [Fraction(k * wv, 16) for k in range(17)]
    curve = utility_curve(g, v, xs, EXACT)
    assert all(curve[i] <= curve[i + 1] for i in range(len(curve) - 1))


@pytest.mark.parametrize("seed", range(5))
def test_theorem10_monotone_on_general_graphs(seed):
    rng = np.random.default_rng(50 + seed)
    g = random_connected_graph(7, 3, rng, "integer", 1, 9)
    v = int(rng.integers(0, 7))
    wv = g.weights[v]
    xs = [Fraction(k * wv, 12) for k in range(13)]
    curve = utility_curve(g, v, xs, EXACT)
    assert all(curve[i] <= curve[i + 1] for i in range(len(curve) - 1))


def test_misreporting_never_profits():
    """Truthfulness: reporting x <= w_v yields at most the truthful utility."""
    rng = np.random.default_rng(11)
    for _ in range(5):
        g = random_ring(int(rng.integers(3, 7)), rng, "integer", 1, 9)
        v = int(rng.integers(0, g.n))
        truthful = bd_allocation(g, backend=EXACT).utilities[v]
        for k in range(0, 9):
            x = Fraction(k * g.weights[v], 8)
            assert utility_of_report(g, v, x, EXACT) <= truthful


def test_alpha_curve_case_b3_star_center():
    """Proposition 11 Case B-3 on a star: the center's alpha_v(x) rises to 1
    at x* = w(leaves) = 3 (C class below, B class above) then falls."""
    g = star(10, [1, 1, 1])
    xs = [Fraction(k, 2) for k in range(1, 21)]
    alphas = alpha_curve(g, 0, xs, EXACT)
    peak = xs.index(Fraction(3))
    assert alphas[peak] == 1
    assert all(alphas[i] <= alphas[i + 1] for i in range(peak))  # rising, C class
    assert all(alphas[i] >= alphas[i + 1] for i in range(peak, len(alphas) - 1))


def test_alpha_curve_case_b1_leaf():
    # a star leaf is C class for every report and its alpha is non-decreasing
    g = star(10, [1, 1, 1])
    leaf_alphas = alpha_curve(g, 1, [Fraction(k, 8) for k in range(1, 9)], EXACT)
    assert all(leaf_alphas[i] <= leaf_alphas[i + 1] for i in range(len(leaf_alphas) - 1))


def test_zero_report_gives_zero_utility():
    g = ring([4, 1, 1])
    assert utility_of_report(g, 0, 0, EXACT) == 0
