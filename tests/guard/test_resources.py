"""Resource envelopes: rlimits, the brute-force size guard, and the typed
degradation path.

The demo the acceptance criteria name lives here: a sweep whose workers
balloon memory under ``RuntimePolicy(max_memory_mb=...)`` degrades per
policy (typed retryable ``ResourceExhaustedError`` -> retry -> escalation)
and the final results are bit-identical to an unconstrained run.

Worker functions live at module level so they pickle across the process
boundary.
"""

import sys

import pytest

from repro.engine import Counters
from repro.exceptions import (
    CellFailedError,
    EngineError,
    ResourceExhaustedError,
    is_escalatable,
    is_retryable,
)
from repro.guard.resources import (
    DEFAULT_BRUTEFORCE_LIMIT,
    RLIMITS_AVAILABLE,
    apply_rlimits,
    bruteforce_limit,
    check_bruteforce_size,
    envelope_from_policy,
    set_bruteforce_limit,
    translate_resource_errors,
)
from repro.runtime import RuntimePolicy, supervised_map


def _square(x):
    return x * x


def _balloon_if_odd(x):
    # Odd items try to materialize ~2 GiB; even items are instant.  Under a
    # worker RLIMIT_AS this raises MemoryError inside the worker, which the
    # guard translates to the typed, retryable/escalatable error.
    if x % 2:
        chunk = bytearray(1 << 31)
        return x * x + (chunk[0] * 0)
    return x * x


def _exact_square(x):
    # The escalation twin: what the supervisor falls back to once retries
    # are exhausted.  Same value as the clean path, so bit-identity between
    # the degraded and unconstrained runs is a real assertion.
    return x * x


def _spin_forever(x):
    while True:
        pass


# -- policy fields ---------------------------------------------------------

def test_policy_validates_envelope_fields():
    with pytest.raises(EngineError):
        RuntimePolicy(max_memory_mb=0)
    with pytest.raises(EngineError):
        RuntimePolicy(max_memory_mb=-5.0)
    with pytest.raises(EngineError):
        RuntimePolicy(max_cpu_seconds=0)
    with pytest.raises(EngineError):
        RuntimePolicy(max_bruteforce_n=0)
    RuntimePolicy(max_memory_mb=256, max_cpu_seconds=10, max_bruteforce_n=12)


def test_envelope_fields_imply_supervision():
    assert RuntimePolicy(max_memory_mb=256).supervised
    assert RuntimePolicy(max_cpu_seconds=5).supervised
    assert RuntimePolicy(max_bruteforce_n=10).supervised


def test_envelope_from_policy():
    assert envelope_from_policy(RuntimePolicy()) is None
    env = envelope_from_policy(RuntimePolicy(max_memory_mb=64, max_cpu_seconds=2))
    assert env == (64, 2)


# -- typed taxonomy --------------------------------------------------------

def test_resource_exhausted_takes_the_recovery_ladder():
    exc = ResourceExhaustedError("out of headroom", resource="memory")
    assert is_retryable(exc)
    assert is_escalatable(exc)
    assert exc.resource == "memory"


def test_translate_resource_errors():
    out = translate_resource_errors(MemoryError("boom"))
    assert isinstance(out, ResourceExhaustedError)
    assert out.resource == "memory"
    out = translate_resource_errors(RecursionError("deep"))
    assert isinstance(out, ResourceExhaustedError)
    assert out.resource == "size"
    original = ValueError("unrelated")
    assert translate_resource_errors(original) is original


# -- brute-force size guard ------------------------------------------------

def test_bruteforce_guard_default_and_override():
    assert bruteforce_limit() == DEFAULT_BRUTEFORCE_LIMIT
    check_bruteforce_size(DEFAULT_BRUTEFORCE_LIMIT, what="test")
    with pytest.raises(ResourceExhaustedError) as ei:
        check_bruteforce_size(DEFAULT_BRUTEFORCE_LIMIT + 1, what="test")
    assert ei.value.resource == "size"
    prev = set_bruteforce_limit(4)
    try:
        assert prev == DEFAULT_BRUTEFORCE_LIMIT
        check_bruteforce_size(4, what="test")
        with pytest.raises(ResourceExhaustedError):
            check_bruteforce_size(5, what="test")
    finally:
        set_bruteforce_limit(None)
    assert bruteforce_limit() == DEFAULT_BRUTEFORCE_LIMIT


def test_bruteforce_oracle_respects_the_guard():
    from repro.core import brute_force_min_alpha
    from repro.graphs import ring

    g = ring([1] * 8)
    prev = set_bruteforce_limit(6)
    try:
        with pytest.raises(ResourceExhaustedError):
            brute_force_min_alpha(g)
    finally:
        set_bruteforce_limit(prev)
    assert brute_force_min_alpha(g) is not None  # default limit admits n=8


def test_policy_cap_travels_into_serial_cells():
    from repro.core import brute_force_min_alpha
    from repro.graphs import ring

    g = ring([1] * 8)
    policy = RuntimePolicy(max_bruteforce_n=4)
    with pytest.raises(CellFailedError) as ei:
        supervised_map(lambda _: brute_force_min_alpha(g), [0],
                       processes=0, policy=policy)
    assert isinstance(ei.value.__cause__, ResourceExhaustedError)
    # The cap is scoped to the cell: the host default is restored after.
    assert bruteforce_limit() == DEFAULT_BRUTEFORCE_LIMIT


# -- rlimits in real workers -----------------------------------------------

needs_rlimits = pytest.mark.skipif(
    not RLIMITS_AVAILABLE or not sys.platform.startswith("linux"),
    reason="POSIX rlimits unavailable",
)


@needs_rlimits
def test_memory_envelope_degrades_bit_identically():
    """The acceptance-criteria demo: RLIMIT_AS workers exhaust memory on
    odd cells, the supervisor escalates those cells per policy, and the
    sweep's results are bit-identical to an unconstrained run."""
    items = list(range(6))
    clean = supervised_map(_square, items, processes=2,
                           policy=RuntimePolicy(retries=1))
    counters = Counters()
    guarded = supervised_map(
        _balloon_if_odd, items, processes=2,
        policy=RuntimePolicy(retries=1, max_memory_mb=768),
        counters=counters,
        escalate_fn=_exact_square,
    )
    assert guarded == clean
    assert counters.precision_escalations >= 1  # odd cells took the ladder


@needs_rlimits
def test_memory_envelope_without_escalation_fails_typed():
    with pytest.raises(CellFailedError) as ei:
        supervised_map(_balloon_if_odd, [1], processes=1,
                       policy=RuntimePolicy(max_memory_mb=768))
    cause = ei.value.__cause__
    assert cause is not None
    assert "ResourceExhaustedError" in type(cause).__name__ or \
        "ResourceExhaustedError" in getattr(cause, "type_name", "")


@needs_rlimits
def test_cpu_envelope_kills_spinning_worker():
    # RLIMIT_CPU fires SIGXCPU at ~1s of CPU; the dead worker surfaces as a
    # crash-kind failure and, with no retries, a typed CellFailedError.
    with pytest.raises(CellFailedError):
        supervised_map(_spin_forever, [0], processes=1,
                       policy=RuntimePolicy(max_cpu_seconds=1))


@needs_rlimits
def test_apply_rlimits_is_callable_with_none():
    # None fields are no-ops; calling in-process with None must not change
    # the host's limits.
    apply_rlimits(None, None)
