"""The fuzz harness itself: determinism, contract enforcement, filing, CLI.

The harness is part of the trusted computing base for the robustness
claim, so it gets its own tests: same seed -> same campaign, clean
instances pass, known-bad payloads are classified as rejections (not
crashes), survivors are filed as replayable ``fuzz`` corpus records, and
the CLI exit codes match the contract.
"""

import json

import pytest

from repro.engine import EngineContext
from repro.guard.cli import main as fuzz_main
from repro.guard.fuzz import (
    FuzzOutcome,
    MUTATORS,
    base_instance,
    fuzz,
    mutate,
    run_pipeline,
)
from repro.io.serialization import graph_to_dict
from repro.graphs import ring

from random import Random


def test_base_instances_are_well_formed_and_seeded():
    a = [base_instance(Random(7)) for _ in range(10)]
    b = [base_instance(Random(7)) for _ in range(10)]
    assert a == b
    for payload in a:
        out = run_pipeline(payload)
        assert out.status == "ok", (out, payload)


def test_mutations_are_seeded():
    base = base_instance(Random(3))
    a = [mutate(Random(i), dict(base), rounds=2) for i in range(20)]
    b = [mutate(Random(i), dict(base), rounds=2) for i in range(20)]
    assert a == b


def test_mutators_never_crash_the_pipeline():
    # Every mutator, many seeds: outcomes must be ok/rejected, never an
    # untyped escape.  This is the hardening contract in miniature.
    for seed in range(30):
        rng = Random(seed)
        payload = base_instance(rng)
        for name, fn in MUTATORS:
            out = run_pipeline(fn(rng, dict(payload)))
            assert out.status in ("ok", "rejected"), (name, out)


def test_campaign_is_deterministic():
    a = fuzz(iterations=40, seed=11, iter_timeout=None)
    b = fuzz(iterations=40, seed=11, iter_timeout=None)
    assert a.counts == b.counts
    assert a.rejected_by == b.rejected_by
    assert a.iterations == 40


def test_campaign_smoke_holds_contract():
    report = fuzz(iterations=80, seed=0, iter_timeout=None)
    assert report.ok, report.survivors
    assert report.counts.get("ok", 0) > 0          # clean stream sanity
    assert report.counts.get("rejected", 0) > 0    # mutations actually bite


def test_known_bad_payloads_classified_rejected():
    nan_ring = graph_to_dict(ring([1.0, 1.0, 1.0]))
    nan_ring["weights"][2] = {"float": float("nan").hex()}
    assert run_pipeline(nan_ring).status == "rejected"
    assert run_pipeline("not a dict").status == "rejected"
    assert run_pipeline({"n": 10**18, "edges": [], "weights": []}).status == \
        "rejected"


def test_survivor_is_filed_and_replayable(tmp_path, monkeypatch):
    # Force an escape by stubbing the pipeline: the filing path (shrink ->
    # FailureRecord -> corpus) must produce a loadable fuzz-kind record.
    import repro.guard.fuzz as fuzz_mod

    crash = FuzzOutcome("crash", "decompose", "KeyError: 'synthetic'")

    def fake_pipeline(payload, ctx=None, grid=6):
        return crash

    monkeypatch.setattr(fuzz_mod, "run_pipeline", fake_pipeline)
    report = fuzz_mod.fuzz(iterations=1, seed=0,
                           corpus_dir=str(tmp_path), iter_timeout=None)
    assert not report.ok
    assert len(report.corpus_paths) == 1
    from repro.oracle.corpus import FailureCorpus

    corpus = FailureCorpus(str(tmp_path))
    records = list(corpus)
    assert len(records) == 1
    _, rec = records[0]
    assert rec.kind == "fuzz"
    assert "crash at decompose" in rec.problems[0]
    assert "graph" in rec.payload


def test_fuzz_records_replay_through_oracle(tmp_path):
    from repro.oracle.corpus import FailureCorpus, FailureRecord, backend_to_dict
    from repro.oracle.replay import replay_record
    from repro.numeric import FLOAT

    rec = FailureRecord(
        kind="fuzz",
        problems=("historical crash",),
        context={"solver": "dinic", "backend": backend_to_dict(FLOAT),
                 "zero_tol": 0.0, "level": "off"},
        payload={"graph": graph_to_dict(ring([1, 2, 3, 4])), "grid": 6},
    )
    res = replay_record(rec)
    assert res.kind == "fuzz"
    assert not res.reproduced          # a healthy instance replays clean
    bad = FailureRecord(
        kind="fuzz",
        problems=("witness",),
        context=rec.context,
        payload={"graph": {"n": 3, "edges": [[0, 1]], "weights": "zzz"},
                 "grid": 6},
    )
    res = replay_record(bad)
    assert not res.reproduced          # typed rejection == contract holds


# -- CLI -------------------------------------------------------------------

def test_cli_clean_run_exits_zero(capsys):
    rc = fuzz_main(["--iterations", "30", "--seed", "0", "--iter-timeout", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "contract held" in out


def test_cli_json_output(capsys):
    rc = fuzz_main(["--iterations", "20", "--seed", "5", "--json",
                    "--iter-timeout", "0"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["ok"] is True
    assert payload["iterations"] == 20
    assert payload["seed"] == 5


def test_cli_rejects_bad_iterations(capsys):
    assert fuzz_main(["--iterations", "0"]) == 2


def test_cli_survivor_exits_one(tmp_path, monkeypatch, capsys):
    import repro.guard.fuzz as fuzz_mod

    def fake_pipeline(payload, ctx=None, grid=6):
        return FuzzOutcome("nonfinite", "allocate", "utility = nan")

    monkeypatch.setattr(fuzz_mod, "run_pipeline", fake_pipeline)
    rc = fuzz_main(["--iterations", "1", "--seed", "0",
                    "--corpus", str(tmp_path), "--iter-timeout", "0"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "SURVIVOR" in captured.out
    assert "escape" in captured.err


def test_audited_campaign_stays_clean():
    # The paranoid auditor re-checks every accepted result; a short audited
    # campaign shakes out disagreements between the engine and its oracles.
    report = fuzz(iterations=25, seed=2, audit="paranoid", iter_timeout=None)
    assert report.ok, report.survivors
