"""Boundary validation: every malformed encoding is refused *typed*.

These tests drive :mod:`repro.guard.validate` both directly and through
the public :mod:`repro.io` boundary it protects, asserting that adversarial
scalars and mangled JSON shapes raise :class:`MalformedInputError` (or the
constructor's :class:`GraphError` taxonomy for structural damage the shape
pass delegates) -- never an untyped ``ValueError``/``KeyError``/NaN escape.
"""

import json
import math
from fractions import Fraction

import pytest

from repro.exceptions import (
    GraphError,
    MalformedInputError,
    ReproError,
)
from repro.guard import (
    MAX_VERTICES,
    check_scalar,
    scalar_from_json,
    set_validation,
    validate_graph_dict,
    validate_network_dict,
    validation_enabled,
)
from repro.io.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_result,
    network_from_dict,
    network_to_dict,
)


def ring_payload(weights):
    n = len(weights)
    return {
        "n": n,
        "edges": [[i, (i + 1) % n] for i in range(n)],
        "weights": list(weights),
        "labels": [str(i) for i in range(n)],
    }


# ---------------------------------------------------------------------------
# scalars
# ---------------------------------------------------------------------------

BAD_SCALARS = [
    {"float": float("nan").hex()},
    {"float": "inf"},
    {"float": "-inf"},
    {"float": (-1.0).hex()},
    {"float": "0x1.gp0"},
    {"float": 42},
    {"float": None},
    {"frac": "1/0"},
    {"frac": "-1/2"},
    {"frac": "banana"},
    {"frac": "1/0x2"},
    {"frac": 7},
    {"mystery": 1},
    "seven",
    None,
    True,
    False,
    [1],
    {"frac": "1/2", "float": "0x1p0"},
    float("nan"),
    float("inf"),
    -1,
    -0.5,
]


@pytest.mark.parametrize("bad", BAD_SCALARS, ids=[repr(b)[:40] for b in BAD_SCALARS])
def test_scalar_from_json_rejects_typed(bad):
    with pytest.raises(MalformedInputError):
        scalar_from_json(bad, what="test scalar")


def test_scalar_from_json_accepts_valid_encodings():
    assert scalar_from_json({"frac": "3/7"}) == Fraction(3, 7)
    assert scalar_from_json({"float": (1.5).hex()}) == 1.5
    assert scalar_from_json(3) == 3
    assert scalar_from_json(0.25) == 0.25
    assert scalar_from_json(0) == 0


def test_check_scalar_negative_gate():
    with pytest.raises(MalformedInputError):
        check_scalar(-1.0, what="w")
    check_scalar(-1.0, what="w", allow_negative=True)
    with pytest.raises(MalformedInputError):
        check_scalar(float("nan"), what="w", allow_negative=True)


def test_positive_inf_allowed_only_when_asked():
    with pytest.raises(MalformedInputError):
        check_scalar(math.inf, what="w")
    check_scalar(math.inf, what="cap", allow_positive_inf=True)
    with pytest.raises(MalformedInputError):
        check_scalar(-math.inf, what="cap", allow_positive_inf=True)
    assert scalar_from_json(
        {"float": "inf"}, what="cap", allow_positive_inf=True
    ) == math.inf


# ---------------------------------------------------------------------------
# graph payload shapes
# ---------------------------------------------------------------------------

def test_valid_graph_payload_passes():
    validate_graph_dict(ring_payload([1, 2, 3]))


BAD_GRAPH_PAYLOADS = [
    "not a dict",
    None,
    [],
    {},
    {"n": 3, "edges": [[0, 1]]},                              # missing weights
    {"n": "3", "edges": [], "weights": []},                   # string n
    {"n": True, "edges": [], "weights": []},                  # bool n
    {"n": 3.0, "edges": [], "weights": [1, 1, 1]},            # float n
    {"n": -1, "edges": [], "weights": []},                    # negative n
    {"n": 10**18, "edges": [], "weights": []},                # absurd n
    {"n": 2, "edges": None, "weights": [1, 1]},               # edges not a list
    {"n": 2, "edges": [[0]], "weights": [1, 1]},              # 1-tuple edge
    {"n": 2, "edges": [[0, 1, 2]], "weights": [1, 1]},        # 3-tuple edge
    {"n": 2, "edges": [0, 1], "weights": [1, 1]},             # flat edge list
    {"n": 2, "edges": [[0, 2]], "weights": [1, 1]},           # endpoint == n
    {"n": 2, "edges": [[0, -1]], "weights": [1, 1]},          # negative endpoint
    {"n": 2, "edges": [[0, 1.5]], "weights": [1, 1]},         # float endpoint
    {"n": 2, "edges": [[0, "1"]], "weights": [1, 1]},         # string endpoint
    {"n": 2, "edges": [[0, True]], "weights": [1, 1]},        # bool endpoint
    {"n": 3, "edges": [], "weights": [1, 1]},                 # weights short
    {"n": 2, "edges": [], "weights": [1, 1, 1]},              # weights long
    {"n": 2, "edges": [], "weights": "heavy"},                # weights not list
    {"n": 2, "edges": [], "weights": [1, {"frac": "1/0"}]},   # bad scalar inside
    {"n": 2, "edges": [], "weights": [1, 1], "labels": [1, 2]},  # int labels
    {"n": 2, "edges": [], "weights": [1, 1], "labels": ["a"]},   # labels short
    {"n": 2, "edges": [], "weights": [1, 1], "labels": "ab"},    # labels not list
]


@pytest.mark.parametrize(
    "bad", BAD_GRAPH_PAYLOADS, ids=[repr(b)[:50] for b in BAD_GRAPH_PAYLOADS]
)
def test_malformed_graph_payloads_rejected_typed(bad):
    with pytest.raises(MalformedInputError):
        validate_graph_dict(bad)
    with pytest.raises(ReproError):
        graph_from_dict(bad)


def test_structural_damage_still_caught_by_constructor():
    # Shape-valid but structurally wrong: delegated to GraphError.
    dup = ring_payload([1, 1, 1])
    dup["edges"].append([0, 1])
    with pytest.raises(GraphError):
        graph_from_dict(dup)
    loop = ring_payload([1, 1, 1])
    loop["edges"][0] = [2, 2]
    with pytest.raises(GraphError):
        graph_from_dict(loop)


def test_inf_weight_witness_rejected_at_boundary():
    # The corpus witness: an inf weight used to construct and produce NaN
    # alphas deep in the decomposition; now it dies typed at the boundary.
    bad = ring_payload([1, 1, {"float": "inf"}])
    with pytest.raises(MalformedInputError):
        graph_from_dict(bad)


# ---------------------------------------------------------------------------
# network payload shapes
# ---------------------------------------------------------------------------

def test_network_round_trip_with_inf_caps():
    from repro.flow import FlowNetwork

    net = FlowNetwork(3)
    net.add_edge(0, 1, math.inf)
    net.add_edge(1, 2, 2.5)
    d = network_to_dict(net)
    validate_network_dict(d)
    again = network_from_dict(d)
    assert network_to_dict(again) == d


BAD_NETWORK_PAYLOADS = [
    {},
    {"n": 1, "arcs": []},                                   # n < 2
    {"n": 3, "arcs": [[0, 1]]},                             # 2-tuple arc
    {"n": 3, "arcs": [[0, 1, 1, 1]]},                       # 4-tuple arc
    {"n": 3, "arcs": [[0, 3, 1]]},                          # head out of range
    {"n": 3, "arcs": [[0, 1, {"float": "-inf"}]]},          # -inf cap
    {"n": 3, "arcs": [[0, 1, {"float": float("nan").hex()}]]},  # NaN cap
    {"n": 3, "arcs": [[0, 1, -2]]},                         # negative cap
    {"n": 3, "arcs": "arcs"},                               # arcs not a list
]


@pytest.mark.parametrize(
    "bad", BAD_NETWORK_PAYLOADS, ids=[repr(b)[:50] for b in BAD_NETWORK_PAYLOADS]
)
def test_malformed_network_payloads_rejected_typed(bad):
    with pytest.raises(MalformedInputError):
        validate_network_dict(bad)


def test_network_constructor_rejects_nan_capacity():
    # NaN at construction means upstream arithmetic overflowed: the typed
    # instability error is retryable, so the supervisor's exact-backend
    # escalation ladder applies.
    from repro.exceptions import NumericalInstabilityError, is_retryable
    from repro.flow import FlowNetwork

    net = FlowNetwork(2)
    with pytest.raises(NumericalInstabilityError) as ei:
        net.add_edge(0, 1, float("nan"))
    assert is_retryable(ei.value)


# ---------------------------------------------------------------------------
# file boundaries
# ---------------------------------------------------------------------------

def test_load_graph_rejects_invalid_json(tmp_path):
    p = tmp_path / "broken.json"
    p.write_text('{"n": 3, "edges": [[0,')
    with pytest.raises(MalformedInputError):
        load_graph(str(p))


def test_load_graph_rejects_binary_garbage(tmp_path):
    p = tmp_path / "garbage.json"
    p.write_bytes(b"\xff\xfe\x00garbage")
    with pytest.raises(MalformedInputError):
        load_graph(str(p))


def test_load_result_rejects_non_object(tmp_path):
    p = tmp_path / "result.json"
    p.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(MalformedInputError):
        load_result(str(p))


def test_missing_file_stays_oserror(tmp_path):
    # Absence is an environment problem, not malformed input.
    with pytest.raises(OSError):
        load_graph(str(tmp_path / "nope.json"))


# ---------------------------------------------------------------------------
# the opt-out switch
# ---------------------------------------------------------------------------

def test_validation_switch_round_trip():
    assert validation_enabled()
    prev = set_validation(False)
    try:
        assert prev is True
        assert not validation_enabled()
        # Deep per-scalar re-checks are skipped on the trusted fast path...
        check_scalar(float("nan"), what="w")
        validate_graph_dict(ring_payload([1, 1, {"float": float("nan").hex()}]))
        # ...but shape checks always run: a non-graph is still refused.
        with pytest.raises(MalformedInputError):
            validate_graph_dict({"definitely": "not a graph"})
    finally:
        set_validation(True)
    assert validation_enabled()
    with pytest.raises(MalformedInputError):
        check_scalar(float("nan"), what="w")


def test_max_vertices_is_a_real_bound():
    payload = {"n": MAX_VERTICES + 1, "edges": [], "weights": []}
    with pytest.raises(MalformedInputError):
        validate_graph_dict(payload)


def test_round_trip_still_bit_exact():
    from repro.graphs import WeightedGraph

    g = WeightedGraph(3, [(0, 1), (1, 2), (0, 2)],
                      [0.1, Fraction(1, 3), 7])
    again = graph_from_dict(graph_to_dict(g))
    assert again.weights == g.weights
    assert all(type(a) is type(b) for a, b in zip(again.weights, g.weights))
