"""Deadline-budget propagation through :func:`repro.runtime.supervised_map`.

The serving layer flows each request's remaining ``deadline_ms`` into the
supervised map as a per-cell budget; these tests pin the contract at the
runtime boundary: budgets bound the whole recovery ladder (attempts,
backoffs, worker dispatch), an expired cell settles via ``on_deadline``
without failing its batch (or raises loudly without the hook), and
expirations count under ``cell_deadline_expired`` -- never as pool
failures.
"""

from __future__ import annotations

import pytest

from repro.engine import Counters
from repro.exceptions import DeadlineExceededError, InjectedFault
from repro.runtime import RuntimePolicy, supervised_map
from repro.runtime.supervisor import run_cell


def _square(x):
    return x * x


def _always_faults(x):
    raise InjectedFault(f"synthetic retryable failure for {x}")


def _marker(item):
    return ("expired", item)


# ---------------------------------------------------------------------------
# serial path
# ---------------------------------------------------------------------------


def test_serial_unbounded_budgets_are_inert():
    counters = Counters()
    out = supervised_map(_square, [1, 2, 3], processes=0,
                        counters=counters, budgets=[None, None, None],
                        on_deadline=_marker)
    assert out == [1, 4, 9]
    assert counters.cell_deadline_expired == 0


def test_serial_expired_budget_settles_via_hook():
    counters = Counters()
    out = supervised_map(_square, [1, 2, 3], processes=0,
                        counters=counters, budgets=[None, 0.0, None],
                        on_deadline=_marker)
    assert out == [1, ("expired", 2), 9]
    assert counters.cell_deadline_expired == 1


def test_serial_expired_budget_raises_without_hook():
    with pytest.raises(DeadlineExceededError):
        supervised_map(_square, [1, 2], processes=0, budgets=[0.0, None])


def test_budget_length_must_match_items():
    with pytest.raises(ValueError):
        supervised_map(_square, [1, 2, 3], processes=0, budgets=[1.0])


def test_budget_bounds_the_retry_backoff():
    """A budget the backoff would cross expires the cell instead of
    sleeping past the caller's deadline."""
    counters = Counters()
    policy = RuntimePolicy(retries=5, backoff_base=0.5, escalate=False)
    out = supervised_map(_always_faults, ["a"], processes=0, policy=policy,
                        counters=counters, budgets=[0.05],
                        on_deadline=_marker)
    assert out == [("expired", "a")]
    assert counters.cell_deadline_expired == 1
    # At most one attempt ran; the 0.5s backoff was never slept.
    assert counters.cell_retries <= 1


def test_run_cell_refuses_attempt_past_deadline():
    import time

    with pytest.raises(DeadlineExceededError):
        run_cell(_square, 2, 0, RuntimePolicy(), Counters(),
                 deadline=time.monotonic() - 1.0)


# ---------------------------------------------------------------------------
# parallel path
# ---------------------------------------------------------------------------


def test_parallel_expired_budget_settles_without_dispatch():
    counters = Counters()
    out = supervised_map(_square, [2, 3, 4], processes=1,
                        counters=counters, budgets=[None, 0.0, None],
                        on_deadline=_marker)
    assert out == [4, ("expired", 3), 16]
    assert counters.cell_deadline_expired == 1


def test_parallel_expiry_is_not_a_pool_failure():
    """Client budgets say nothing about shard health: an expired cell
    must not trigger degradation or count against the worker pool."""
    counters = Counters()
    out = supervised_map(_square, [1, 2], processes=1, counters=counters,
                        budgets=[0.0, 0.0], on_deadline=_marker)
    assert out == [("expired", 1), ("expired", 2)]
    assert counters.cell_deadline_expired == 2
    assert counters.worker_respawns == 0
    assert counters.cell_timeouts == 0


def test_parallel_expired_without_hook_raises():
    with pytest.raises(DeadlineExceededError):
        supervised_map(_square, [1, 2], processes=1, budgets=[0.0, None])
