"""Supervised map: order, timeouts, retries, respawn, escalation, degradation.

Worker functions live at module level so they pickle across the process
boundary; deterministic failures are driven by the fault injector (the
same machinery the chaos CI job uses), so every recovery path is exercised
reproducibly.
"""

import time

import pytest

from repro.engine import Counters
from repro.exceptions import (
    CellFailedError,
    ConvergenceError,
    EngineError,
    InjectedFault,
)
from repro.runtime import (
    RuntimePolicy,
    clear_injector,
    install_injector,
    parse_fault_spec,
    run_cell,
    supervised_map,
)
from repro.runtime.supervisor import _Supervisor


@pytest.fixture(autouse=True)
def _clean_global_injector():
    clear_injector()
    yield
    clear_injector()


def _square(x):
    return x * x


def _uneven_sleep(x):
    # Later items finish *earlier*: completion order inverts submission
    # order, which is exactly what the order-preservation contract absorbs.
    time.sleep(0.002 * (7 - x))
    return x * x


def _always_diverges(x):
    raise ConvergenceError("synthetic non-convergence", residual=1.0)


def _exact_twin(x):
    return ("exact", x)


def _type_error(x):
    raise TypeError("not retryable")


# -- policy ----------------------------------------------------------------

def test_inert_policy_is_not_supervised():
    assert not RuntimePolicy().supervised
    assert RuntimePolicy(retries=1).supervised
    assert RuntimePolicy(timeout=1.0).supervised
    assert RuntimePolicy(checkpoint="x").supervised
    assert RuntimePolicy(faults="cell:exc@0").supervised


def test_policy_validation():
    with pytest.raises(EngineError):
        RuntimePolicy(timeout=0.0)
    with pytest.raises(EngineError):
        RuntimePolicy(retries=-1)
    with pytest.raises(EngineError):
        RuntimePolicy(start_method="thread")


def test_backoff_is_capped_exponential():
    p = RuntimePolicy(backoff_base=0.1, backoff_cap=0.35)
    assert p.backoff(0) == 0.0
    assert p.backoff(1) == pytest.approx(0.1)
    assert p.backoff(2) == pytest.approx(0.2)
    assert p.backoff(3) == pytest.approx(0.35)  # capped
    assert p.backoff(10) == pytest.approx(0.35)


# -- serial path -----------------------------------------------------------

def test_serial_matches_plain_map():
    items = list(range(10))
    assert supervised_map(_square, items) == [x * x for x in items]


def test_run_cell_retries_injected_fault_and_recovers():
    c = Counters()
    inj = install_injector(parse_fault_spec("cell:exc@3"), counters=c)
    policy = RuntimePolicy(retries=1, backoff_base=0.0)
    out = [run_cell(_square, x, i, policy, c, injector=inj)
           for i, x in enumerate(range(6))]
    assert out == [x * x for x in range(6)]
    assert c.cell_retries == 1 and c.injected_faults == 1


def test_run_cell_exhausted_retries_raise_cell_failed():
    c = Counters()
    inj = install_injector(parse_fault_spec("cell:exc@0"), counters=c)
    with pytest.raises(CellFailedError) as ei:
        run_cell(_square, 5, 0, RuntimePolicy(retries=0), c, injector=inj)
    assert ei.value.index == 0
    assert isinstance(ei.value.__cause__, InjectedFault)


def test_run_cell_non_retryable_propagates_unchanged():
    with pytest.raises(TypeError):
        run_cell(_type_error, 1, 0, RuntimePolicy(retries=5), Counters())


def test_run_cell_escalates_to_exact_twin():
    c = Counters()
    out = run_cell(_always_diverges, 9, 0, RuntimePolicy(retries=1, backoff_base=0.0),
                   c, escalate_fn=_exact_twin)
    assert out == ("exact", 9)
    assert c.precision_escalations == 1
    assert c.cell_retries == 1  # one plain retry happened before escalating


def test_run_cell_escalation_disabled_raises():
    with pytest.raises(CellFailedError):
        run_cell(_always_diverges, 9, 0,
                 RuntimePolicy(retries=0, escalate=False), Counters(),
                 escalate_fn=_exact_twin)


# -- parallel path ---------------------------------------------------------

def test_parallel_preserves_submission_order():
    items = list(range(8))
    policy = RuntimePolicy(timeout=30.0)
    out = supervised_map(_uneven_sleep, items, processes=4, policy=policy)
    assert out == [x * x for x in items]


def test_parallel_injected_cell_fault_recovers_bit_identically():
    items = list(range(10))
    baseline = supervised_map(_square, items)
    policy = RuntimePolicy(retries=2, backoff_base=0.0, faults="cell:exc@4")
    c = Counters()
    out = supervised_map(_square, items, processes=2, policy=policy, counters=c)
    assert out == baseline
    assert c.cell_retries >= 1


def test_parallel_worker_kill_respawns_and_recovers():
    items = list(range(8))
    policy = RuntimePolicy(timeout=30.0, retries=2, backoff_base=0.0,
                           faults="worker:kill@3")
    c = Counters()
    out = supervised_map(_square, items, processes=2, policy=policy, counters=c)
    assert out == [x * x for x in items]
    assert c.worker_respawns >= 1
    assert c.cell_retries >= 1


def test_parallel_hang_is_killed_and_retried():
    items = list(range(6))
    policy = RuntimePolicy(timeout=0.5, retries=1, backoff_base=0.0,
                           faults="cell:hang@2:60")
    c = Counters()
    t0 = time.monotonic()
    out = supervised_map(_square, items, processes=2, policy=policy, counters=c)
    assert out == [x * x for x in items]
    assert c.cell_timeouts >= 1
    assert time.monotonic() - t0 < 30.0  # nowhere near the 60s hang


def test_parallel_exhausted_retries_raise_cell_failed():
    policy = RuntimePolicy(retries=0, faults="cell:exc@1")
    with pytest.raises(CellFailedError) as ei:
        supervised_map(_square, list(range(4)), processes=2, policy=policy)
    assert ei.value.index == 1


def test_degrades_to_serial_when_no_worker_spawns(monkeypatch):
    sup = _Supervisor(_square, list(range(5)), processes=2,
                      policy=RuntimePolicy(retries=1), counters=Counters(),
                      escalate_fn=None, journal=None, key_fn=str)
    monkeypatch.setattr(sup, "_spawn_worker", lambda: None)
    assert sup.run() == [x * x for x in range(5)]
    assert sup._degraded


# -- journal integration ---------------------------------------------------

def test_serial_journal_records_and_replays(tmp_path):
    from repro.runtime import CheckpointJournal

    path = tmp_path / "cells.ckpt"
    items = [3, 1, 4, 1, 5]
    with CheckpointJournal.open(path, "fp") as j:
        first = supervised_map(_square, items, journal=j)
    calls = []

    def _tracked(x):
        calls.append(x)
        return x * x

    c = Counters()
    with CheckpointJournal.open(path, "fp") as j2:
        second = supervised_map(_tracked, items, counters=c, journal=j2)
    assert second == first
    assert calls == []  # every cell replayed from the journal
    assert c.checkpoint_hits == len(items)


def test_parallel_journal_resume_skips_done_cells(tmp_path):
    from repro.runtime import CheckpointJournal

    path = tmp_path / "cells.ckpt"
    items = list(range(8))
    policy = RuntimePolicy(timeout=30.0)
    with CheckpointJournal.open(path, "fp") as j:
        for idx in (0, 3, 7):  # a partial prior run
            j.record(str(idx), items[idx] * items[idx])
    c = Counters()
    with CheckpointJournal.open(path, "fp") as j2:
        out = supervised_map(_square, items, processes=2, policy=policy,
                             counters=c, journal=j2)
        assert len(j2) == len(items)  # the rest landed in the journal
    assert out == [x * x for x in items]
    assert c.checkpoint_hits == 3
