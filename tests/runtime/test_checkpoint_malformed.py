"""Malformed checkpoint journals must refuse resume with typed errors.

A journal is untrusted input at resume time (it survived a kill -9, disk
pressure, hand edits).  Truncated headers, wrong-type scalars, mangled
fractions, and unknown tags must all surface as
:class:`~repro.exceptions.CheckpointError` -- never a raw
``ValueError``/``KeyError``/``ZeroDivisionError`` out of the resume path.
The one deliberate exception stays: a torn *final* line is the in-flight
write at kill time and is silently dropped.
"""

import json

import pytest

from repro.exceptions import CheckpointError
from repro.runtime.checkpoint import (
    CheckpointJournal,
    decode_value,
    encode_value,
)

FP = "fingerprint-1"


def write_lines(path, lines):
    path.write_text("".join(line + "\n" for line in lines))


def header(fingerprint=FP, fmt=1):
    return json.dumps({"format": fmt, "fingerprint": fingerprint})


def entry(key, value):
    return json.dumps({"k": key, "v": encode_value(value)})


# -- header damage ---------------------------------------------------------

def test_empty_journal_refuses(tmp_path):
    p = tmp_path / "j.ckpt"
    p.write_text("")
    with pytest.raises(CheckpointError, match="empty"):
        CheckpointJournal.open(p, FP)


def test_truncated_header_refuses(tmp_path):
    p = tmp_path / "j.ckpt"
    write_lines(p, ['{"format": 1, "fingerp'])
    with pytest.raises(CheckpointError, match="malformed header"):
        CheckpointJournal.open(p, FP)


def test_non_object_header_refuses(tmp_path):
    p = tmp_path / "j.ckpt"
    write_lines(p, ["[1, 2, 3]", entry("a", 1)])
    with pytest.raises(CheckpointError, match="not an object"):
        CheckpointJournal.open(p, FP)


def test_wrong_format_refuses(tmp_path):
    p = tmp_path / "j.ckpt"
    write_lines(p, [header(fmt=99), entry("a", 1)])
    with pytest.raises(CheckpointError, match="format"):
        CheckpointJournal.open(p, FP)


def test_foreign_fingerprint_refuses(tmp_path):
    p = tmp_path / "j.ckpt"
    write_lines(p, [header(fingerprint="other-sweep"), entry("a", 1)])
    with pytest.raises(CheckpointError, match="different run"):
        CheckpointJournal.open(p, FP)


# -- entry damage ----------------------------------------------------------

def test_wrong_type_scalar_mid_file_refuses(tmp_path):
    # A float entry whose hex payload was replaced by a raw number: the
    # typed refusal must fire even though a torn *final* line is tolerated,
    # because this entry is followed by a valid one (mid-file damage).
    p = tmp_path / "j.ckpt"
    write_lines(p, [
        header(),
        json.dumps({"k": "a", "v": ["f", 1.5]}),   # hex string expected
        entry("b", 2),
    ])
    with pytest.raises(CheckpointError, match="corrupt mid-file"):
        CheckpointJournal.open(p, FP)


def test_zero_denominator_fraction_refuses_typed(tmp_path):
    p = tmp_path / "j.ckpt"
    write_lines(p, [
        header(),
        json.dumps({"k": "a", "v": ["q", "1/0"]}),
        entry("b", 2),
    ])
    with pytest.raises(CheckpointError):   # never a ZeroDivisionError
        CheckpointJournal.open(p, FP)


def test_float_tag_with_int_payload_refuses(tmp_path):
    with pytest.raises(CheckpointError, match="hex string"):
        decode_value(["f", 42])


def test_int_tag_with_float_payload_refuses(tmp_path):
    with pytest.raises(CheckpointError, match="holds a float"):
        decode_value(["i", 1.5])


def test_unknown_tag_refuses(tmp_path):
    with pytest.raises(CheckpointError, match="unknown"):
        decode_value(["x", 1])


def test_garbage_value_shapes_refuse_typed():
    for garbage in (None, 17, {}, [], ["q"], ["q", None], ["m", [["k"]]],
                    ["l", 5], ["q", "banana"], ["i", "NaN"]):
        with pytest.raises(CheckpointError):
            decode_value(garbage)


def test_missing_key_field_mid_file_refuses(tmp_path):
    p = tmp_path / "j.ckpt"
    write_lines(p, [
        header(),
        json.dumps({"key_typo": "a", "v": ["i", 1]}),
        entry("b", 2),
    ])
    with pytest.raises(CheckpointError, match="corrupt mid-file"):
        CheckpointJournal.open(p, FP)


# -- the deliberate exception: torn final line -----------------------------

def test_torn_final_line_is_dropped(tmp_path):
    p = tmp_path / "j.ckpt"
    write_lines(p, [header(), entry("a", 1)])
    with open(p, "a") as f:
        f.write('{"k": "b", "v": ["i", 2')   # kill -9 mid-write
    j = CheckpointJournal.open(p, FP)
    try:
        assert "a" in j
        assert "b" not in j     # the torn cell will be recomputed
    finally:
        j.close()


def test_resume_after_torn_line_can_rewrite_cell(tmp_path):
    p = tmp_path / "j.ckpt"
    write_lines(p, [header(), entry("a", 1)])
    with open(p, "a") as f:
        f.write('{"k": "b"')
    j = CheckpointJournal.open(p, FP)
    try:
        j.record("b", 2)
        assert j.get("b") == 2
    finally:
        j.close()
    again = CheckpointJournal.open(p, FP)
    try:
        assert again.get("a") == 1
        assert again.get("b") == 2
    finally:
        again.close()
