"""Crash/resume: killed runs resumed from a checkpoint are bit-identical.

Three granularities, mirroring where journals attach in the stack:
incentive-sweep cells (``parallel_incentive_sweep``), generic sweep cells
(``run_sweep``, with a *real* SIGKILL mid-run in a subprocess), and whole
experiments (``run_experiment``).  Plus the chaos property: a single
injected fault under ``retries >= 1`` never changes results.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Counters, EngineContext
from repro.exceptions import CellFailedError
from repro.graphs import random_ring
from repro.runtime import (
    RuntimePolicy,
    clear_injector,
    install_injector,
    parse_fault_spec,
    supervised_map,
)


@pytest.fixture(autouse=True)
def _clean_global_injector():
    clear_injector()
    yield
    clear_injector()


def _rings(count=3, n=4, seed=7):
    rng = np.random.default_rng(seed)
    return [random_ring(n, rng) for _ in range(count)]


# -- incentive-sweep granularity ------------------------------------------

def test_sweep_resume_after_cell_failure_is_bit_identical(tmp_path):
    from repro.analysis import parallel_incentive_sweep

    graphs = _rings()
    baseline = parallel_incentive_sweep(graphs, grid=8)

    path = str(tmp_path / "sweep.ckpt")
    # First run: cell 4 of 12 blows up with no retry budget, killing the
    # sweep partway through -- but every completed cell is already durable.
    install_injector(parse_fault_spec("cell:exc@4"))
    with pytest.raises(CellFailedError):
        parallel_incentive_sweep(
            graphs, grid=8, checkpoint=path, policy=RuntimePolicy(retries=0)
        )
    clear_injector()

    # Resume, fault-free: replays cells 0-3, computes the rest.
    ctx = EngineContext(cache_size=0)
    resumed = parallel_incentive_sweep(graphs, grid=8, ctx=ctx, checkpoint=path)
    assert resumed == baseline
    assert ctx.counters.checkpoint_hits == 4


def test_sweep_checkpoint_refuses_a_different_sweep(tmp_path):
    from repro.analysis import parallel_incentive_sweep
    from repro.exceptions import CheckpointError

    path = str(tmp_path / "sweep.ckpt")
    graphs = _rings()
    parallel_incentive_sweep(graphs, grid=8, checkpoint=path)
    with pytest.raises(CheckpointError, match="refusing to resume"):
        parallel_incentive_sweep(graphs, grid=16, checkpoint=path)


def test_completed_sweep_resume_recomputes_nothing(tmp_path):
    from repro.analysis import parallel_incentive_sweep

    graphs = _rings(count=2)
    path = str(tmp_path / "sweep.ckpt")
    first = parallel_incentive_sweep(graphs, grid=8, checkpoint=path)
    ctx = EngineContext(cache_size=0)
    again = parallel_incentive_sweep(graphs, grid=8, ctx=ctx, checkpoint=path)
    assert again == first
    assert ctx.counters.checkpoint_hits == sum(g.n for g in graphs)
    assert ctx.counters.flow_calls == 0  # pure replay: the engine never ran


# -- run_sweep granularity, with a genuine SIGKILL ------------------------

_KILL_SCRIPT = textwrap.dedent("""
    import json, os, signal, sys

    from repro.analysis.sweep import run_sweep
    from repro.engine import Counters

    flag = sys.argv[1]
    ckpt = None if sys.argv[2] == "-" else sys.argv[2]

    def measure(rng, n, rep):
        if n == 6 and rep == 0 and not os.path.exists(flag):
            open(flag, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)  # mid-run hard kill
        return {"x": float(rng.random()), "n": n}

    coords = [(n, rep) for n in (4, 5, 6, 7) for rep in (0, 1)]
    counters = Counters()
    res = run_sweep("kill-demo", coords, measure, seed=3,
                    checkpoint=ckpt, counters=counters)
    print(json.dumps({
        "rows": [[list(c.coords), c.values] for c in res.cells],
        "hits": counters.checkpoint_hits,
    }))
""")


def test_run_sweep_survives_sigkill_and_resumes_bit_identically(tmp_path):
    script = tmp_path / "killer.py"
    script.write_text(_KILL_SCRIPT)
    flag = str(tmp_path / "already-died")
    ckpt = str(tmp_path / "sweep.ckpt")
    # cell_rng folds hash(name) into the seed sequence, and string hashes
    # are per-process randomized -- pin them so all three runs agree.
    env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="0")

    def run(checkpoint):
        return subprocess.run([sys.executable, str(script), flag, checkpoint],
                              capture_output=True, text=True, env=env,
                              cwd="/root/repo")

    first = run(ckpt)
    assert first.returncode == -signal.SIGKILL  # it really died mid-sweep

    second = run(ckpt)
    assert second.returncode == 0, second.stderr
    out = json.loads(second.stdout)
    assert out["hits"] > 0  # some cells survived the kill and were replayed

    # The resumed run equals a never-interrupted one (the flag file now
    # exists, so a checkpoint-less rerun completes without the kill).
    baseline = run("-")
    assert baseline.returncode == 0, baseline.stderr
    assert out["rows"] == json.loads(baseline.stdout)["rows"]


# -- experiment granularity -----------------------------------------------

def test_experiment_checkpoint_replays_whole_experiment(tmp_path):
    from repro.experiments.base import encode_output
    from repro.experiments.registry import run_experiment

    path = str(tmp_path / "exp.ckpt")
    ctx1 = EngineContext(cache_size=0)
    out1 = run_experiment("EXP-F1", seed=0, scale="smoke", ctx=ctx1, checkpoint=path)

    ctx2 = EngineContext(cache_size=0)
    out2 = run_experiment("EXP-F1", seed=0, scale="smoke", ctx=ctx2, checkpoint=path)
    assert ctx2.counters.checkpoint_hits == 1
    assert ctx2.counters.flow_calls == 0  # nothing recomputed
    # Tables/checks/data are bit-identical; engine_stats intentionally
    # differ (they describe each invocation: real work vs. one replay).
    e1, e2 = encode_output(out1), encode_output(out2)
    e1.pop("engine_stats", None)
    e2.pop("engine_stats", None)
    assert e2 == e1
    assert out2.render() == out1.render()
    assert all(c.ok for c in out2.checks)


# -- chaos property: one fault + retries >= 1 never changes results --------

def _cube(x):
    return x**3


@settings(max_examples=25, deadline=None)
@given(
    items=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=8),
    fault_index=st.integers(min_value=0, max_value=7),
    kind=st.sampled_from(["exc", "delay"]),
)
def test_single_cell_fault_with_retry_is_invisible(items, fault_index, kind):
    param = ":0.001" if kind == "delay" else ""
    install_injector(parse_fault_spec(f"cell:{kind}@{fault_index}{param}"))
    try:
        out = supervised_map(
            _cube, items, policy=RuntimePolicy(retries=1, backoff_base=0.0)
        )
    finally:
        clear_injector()
    assert out == [x**3 for x in items]
