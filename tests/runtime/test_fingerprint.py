"""Tests for the canonical journal-fingerprint helper.

The historical bug this helper closes: producers hand-rolled their
fingerprints and forgot fields -- most notably the simulator journals
once omitted the adversary-strategy discriminator, so resuming an EXP-S
checkpoint under a *different strategy mix* silently replayed cells
computed under the old strategies.  ``fingerprint_of`` makes every named
field part of the hash, floats bit-exactly.
"""

from repro.runtime import fingerprint_of


def test_identical_fields_identical_fingerprint():
    a = fingerprint_of(seed=0, strategies=("sybil", "multi"), zero_tol=0.0)
    b = fingerprint_of(seed=0, strategies=("sybil", "multi"), zero_tol=0.0)
    assert a == b
    assert len(a) == 16


def test_strategy_discriminator_changes_fingerprint():
    base = fingerprint_of(seed=0, strategies=("sybil",))
    assert fingerprint_of(seed=0, strategies=("misreport",)) != base
    # order matters: adversary k plays strategies[k % len]
    assert fingerprint_of(seed=0, strategies=("sybil", "multi")) != \
        fingerprint_of(seed=0, strategies=("multi", "sybil"))


def test_every_field_reaches_the_hash():
    base = fingerprint_of(seed=0, epochs=4, churn=0.5)
    assert fingerprint_of(seed=1, epochs=4, churn=0.5) != base
    assert fingerprint_of(seed=0, epochs=5, churn=0.5) != base
    assert fingerprint_of(seed=0, epochs=4, churn=0.25) != base


def test_floats_fold_as_hex_one_ulp_apart():
    import math

    x = 0.1
    y = math.nextafter(x, 1.0)
    assert fingerprint_of(tol=x) != fingerprint_of(tol=y)


def test_dict_fields_are_order_insensitive():
    a = fingerprint_of(scenario={"name": "S1", "seed": 0})
    b = fingerprint_of(scenario={"seed": 0, "name": "S1"})
    assert a == b


def test_type_distinctions_survive():
    # repr-encoding keeps 1 vs "1" vs 1.0 apart (floats go to hex).
    assert fingerprint_of(x=1) != fingerprint_of(x="1")
    assert fingerprint_of(x=1) != fingerprint_of(x=1.0)


def test_scenario_fingerprint_covers_the_discriminator():
    # End-to-end: the simulator's journal fingerprint changes when only
    # the strategy mix changes -- the exact stale-resume seam.
    from dataclasses import replace

    from repro.sim import resolve_scenario
    from repro.sim.runner import scenario_fingerprint

    s1 = resolve_scenario("EXP-S1")
    s2 = replace(s1, strategies=("misreport",))
    assert scenario_fingerprint(s1, None) != scenario_fingerprint(s2, None)
