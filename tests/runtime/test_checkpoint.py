"""Checkpoint journal: bit-exact round-trips and resume safety."""

import json
import math
from fractions import Fraction

import numpy as np
import pytest

from repro.exceptions import CheckpointError
from repro.runtime import (
    CheckpointJournal,
    decode_value,
    encode_value,
    open_journal,
)


# -- value encoding --------------------------------------------------------

@pytest.mark.parametrize("value", [
    None,
    True,
    False,
    0,
    -17,
    10**40,                      # beyond float precision: must stay int
    "a string",
    0.1,
    -1.5e308,
    5e-324,                      # smallest subnormal double
    Fraction(10**30, 7),
    [1, 2.5, "x", None],
    {"a": 1, "b": [Fraction(1, 3), 0.25]},
    [[["deep"]]],
])
def test_round_trip_bit_exact(value):
    assert decode_value(encode_value(value)) == value


def test_round_trip_preserves_float_bits_not_just_repr():
    x = 0.1 + 0.2  # 0.30000000000000004
    decoded = decode_value(encode_value(x))
    assert decoded.hex() == x.hex()


def test_numpy_scalars_fold_to_exact_python_floats():
    x = np.float64(1.0) / np.float64(3.0)
    decoded = decode_value(encode_value(x))
    assert isinstance(decoded, float)
    assert decoded.hex() == float(x).hex()
    assert decode_value(encode_value(np.int64(7))) == 7


def test_nan_round_trips():
    assert math.isnan(decode_value(encode_value(float("nan"))))


def test_tuples_and_arrays_decode_as_lists():
    assert decode_value(encode_value((1, 2))) == [1, 2]
    assert decode_value(encode_value(np.array([1.0, 2.0]))) == [1.0, 2.0]


def test_non_string_dict_key_rejected():
    with pytest.raises(CheckpointError):
        encode_value({1: "x"})


def test_unencodable_type_rejected():
    with pytest.raises(CheckpointError):
        encode_value(object())


def test_malformed_encoded_value_rejected():
    with pytest.raises(CheckpointError):
        decode_value(["?", 1])
    with pytest.raises(CheckpointError):
        decode_value(["f", "not-hex"])


# -- journal lifecycle -----------------------------------------------------

def test_journal_records_and_resumes(tmp_path):
    path = tmp_path / "sweep.ckpt"
    with CheckpointJournal.open(path, "fp") as j:
        j.record("cell-0", 0.1)
        j.record("cell-1", {"zeta": 1.999, "n": 5})
        j.record("cell-0", -999.0)  # idempotent: first write wins
    with CheckpointJournal.open(path, "fp") as j2:
        assert len(j2) == 2
        assert "cell-0" in j2 and "cell-1" in j2
        assert j2.get("cell-0") == 0.1
        assert j2.get("cell-1") == {"zeta": 1.999, "n": 5}


def test_fingerprint_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "sweep.ckpt"
    CheckpointJournal.open(path, "fp-A").close()
    with pytest.raises(CheckpointError, match="refusing to resume"):
        CheckpointJournal.open(path, "fp-B")


def test_torn_final_line_is_dropped(tmp_path):
    path = tmp_path / "sweep.ckpt"
    with CheckpointJournal.open(path, "fp") as j:
        j.record("0", 1.0)
        j.record("1", 2.0)
    with open(path, "a") as fh:
        fh.write('{"k": "2", "v": ["f"')  # the write in flight at kill time
    with CheckpointJournal.open(path, "fp") as j2:
        assert len(j2) == 2
        assert "2" not in j2
    # reopening also healed nothing silently: cell 2 just gets recomputed
    with CheckpointJournal.open(path, "fp") as j3:
        j3.record("2", 3.0)
        assert j3.get("2") == 3.0


def test_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "sweep.ckpt"
    with CheckpointJournal.open(path, "fp") as j:
        j.record("0", 1.0)
    lines = path.read_text().splitlines()
    lines.insert(1, "NOT JSON")
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(CheckpointError, match="corrupt mid-file"):
        CheckpointJournal.open(path, "fp")


def test_empty_or_headerless_file_rejected(tmp_path):
    path = tmp_path / "sweep.ckpt"
    path.write_text("")
    with pytest.raises(CheckpointError):
        CheckpointJournal.open(path, "fp")


def test_unknown_format_rejected(tmp_path):
    path = tmp_path / "sweep.ckpt"
    path.write_text(json.dumps({"format": 999, "fingerprint": "fp"}) + "\n")
    with pytest.raises(CheckpointError, match="format"):
        CheckpointJournal.open(path, "fp")


def test_open_journal_forwards_none():
    assert open_journal(None, "fp") is None
