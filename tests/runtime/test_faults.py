"""Deterministic fault injection: spec grammar, firing rules, engine hook."""

import math

import pytest

from repro.engine import Counters, EngineContext
from repro.exceptions import (
    EngineError,
    InjectedFault,
    NumericalInstabilityError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.flow import FlowNetwork
from repro.runtime import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    clear_injector,
    current_injector,
    fire_site,
    install_injector,
    parse_fault_spec,
)


@pytest.fixture(autouse=True)
def _clean_global_injector():
    clear_injector()
    yield
    clear_injector()


# -- spec grammar ----------------------------------------------------------

def test_parse_multi_clause_spec():
    plan = parse_fault_spec("cell:exc@3;worker:kill@5,flow:nan@40;cell:hang@7:30")
    assert plan.rules == (
        FaultRule("cell", "exc", 3),
        FaultRule("worker", "kill", 5),
        FaultRule("flow", "nan", 40),
        FaultRule("cell", "hang", 7, 30.0),
    )
    assert plan  # non-empty plan is truthy


def test_spec_round_trips_through_render():
    spec = "cell:exc@3;worker:kill@5;cell:delay@2:0.01"
    assert parse_fault_spec(parse_fault_spec(spec).render()) == parse_fault_spec(spec)


@pytest.mark.parametrize("bad", [
    "cell@3",            # missing kind
    "cell:exc",          # missing position
    "cell:exc@x",        # non-integer position
    "",                  # no rules at all
    "nowhere:exc@1",     # unknown site
    "cell:kill@1",       # kill only valid at worker site
    "flow:hang@1",       # hang not valid at flow site
    "cell:exc@-1",       # negative position
])
def test_malformed_specs_rejected(bad):
    with pytest.raises(EngineError):
        parse_fault_spec(bad)


# -- firing semantics ------------------------------------------------------

def test_index_rule_fires_exactly_once_and_only_attempt_zero():
    inj = FaultInjector(parse_fault_spec("cell:exc@2"))
    inj.fire("cell", index=0)
    inj.fire("cell", index=1)
    inj.fire("cell", index=2, attempt=1)  # retry attempt: must not fire
    with pytest.raises(InjectedFault) as ei:
        inj.fire("cell", index=2, attempt=0)
    assert ei.value.site == "cell"
    inj.fire("cell", index=2, attempt=0)  # consumed: never fires twice


def test_count_keyed_flow_rule():
    inj = FaultInjector(parse_fault_spec("flow:nan@3"))
    assert inj.corrupt_flow(1.5) == 1.5
    assert inj.corrupt_flow(2.5) == 2.5
    assert math.isnan(inj.corrupt_flow(3.5))
    assert inj.corrupt_flow(4.5) == 4.5  # consumed


def test_flow_exc_kind():
    inj = FaultInjector(parse_fault_spec("flow:exc@1"))
    with pytest.raises(InjectedFault):
        inj.corrupt_flow(1.0)


def test_serial_kill_and_hang_are_simulated():
    inj = FaultInjector(parse_fault_spec("worker:kill@0;cell:hang@1:99"))
    with pytest.raises(WorkerCrashError):
        inj.fire("worker", index=0)
    with pytest.raises(WorkerTimeoutError):
        inj.fire("cell", index=1)


def test_counters_tally_fired_rules():
    c = Counters()
    inj = FaultInjector(parse_fault_spec("cell:exc@0;flow:nan@1"), counters=c)
    with pytest.raises(InjectedFault):
        inj.fire("cell", index=0)
    assert math.isnan(inj.corrupt_flow(7.0))
    assert c.injected_faults == 2


# -- process-global installation and the engine flow hook ------------------

def test_install_and_clear_global_injector():
    assert current_injector() is None
    fire_site("cell", index=0)  # no-op without an injector
    inj = install_injector(parse_fault_spec("cell:exc@0"))
    assert current_injector() is inj
    with pytest.raises(InjectedFault):
        fire_site("cell", index=0)
    clear_injector()
    assert current_injector() is None


def test_flow_hook_corrupts_engine_value_into_typed_error():
    """An injected NaN at the flow boundary must surface as the engine's
    typed NumericalInstabilityError, not as a silent NaN result."""
    install_injector(parse_fault_spec("flow:nan@1"))
    net = FlowNetwork(3)
    net.add_edge(0, 1, 5.0)
    net.add_edge(1, 2, 5.0)
    ctx = EngineContext(cache_size=0)
    with pytest.raises(NumericalInstabilityError):
        ctx.max_flow(net, 0, 2)
    # the rule is consumed: a retry of the same solve returns the honest value
    net.reset()
    assert ctx.max_flow(net, 0, 2) == 5.0


def test_plan_is_picklable():
    import pickle

    plan = parse_fault_spec("cell:exc@3;worker:kill@5")
    assert pickle.loads(pickle.dumps(plan)) == plan
