"""The invariant predicates: clean instances pass, seeded corruption fails.

Each predicate is pure and re-runnable (replay calls the same functions),
so the tests drive them directly: compute an honest artifact, assert no
problems; corrupt one field, assert the corruption is named.
"""

from dataclasses import replace
from fractions import Fraction

from repro.core import bd_allocation, bottleneck_decomposition
from repro.core.allocation import Allocation
from repro.core.bottleneck import BottleneckDecomposition
from repro.attack import best_split
from repro.attack.best_response import BestResponse
from repro.engine import SOLVERS, EngineContext
from repro.flow.network import FlowNetwork
from repro.graphs import path, ring
from repro.numeric import EXACT, FLOAT
from repro.oracle import (
    allocation_problems,
    best_response_problems,
    decomposition_problems,
    fixed_point_problems,
    flow_certificate_problems,
)


def _solved_diamond(solver="dinic"):
    net = FlowNetwork(4)
    net.add_edge(0, 1, 3.0)
    net.add_edge(0, 2, 2.0)
    net.add_edge(1, 3, 2.0)
    net.add_edge(2, 3, 3.0)
    entry = SOLVERS.get(solver)
    value = entry.fn(net, 0, 3, 0.0)
    return net, value, entry


# -- flow certificates ------------------------------------------------------

def test_honest_flow_has_no_problems():
    net, value, entry = _solved_diamond()
    assert flow_certificate_problems(net, 0, 3, value, 0.0) == []


def test_wrong_value_breaks_both_cut_certificates():
    net, value, _ = _solved_diamond()
    problems = flow_certificate_problems(net, 0, 3, value * 2, 0.0)
    assert problems
    assert any("cut" in p for p in problems)


def test_preflow_residuals_skip_arc_flow_axioms():
    net, value, entry = _solved_diamond("push_relabel")
    # cut certificates still apply to a maximum preflow; flow axioms do not
    assert flow_certificate_problems(
        net, 0, 3, value, 0.0, arc_flows_valid=entry.supports_arc_flows
    ) == []


# -- decomposition invariants ----------------------------------------------

def test_honest_decompositions_pass_both_backends():
    gf = ring([1.0, 2.0, 3.0, 4.0, 5.0])
    ge = ring([Fraction(k) for k in (1, 2, 3, 4, 5)])
    assert decomposition_problems(gf, bottleneck_decomposition(gf, FLOAT)) == []
    assert decomposition_problems(ge, bottleneck_decomposition(ge, EXACT)) == []


def test_corrupted_alpha_is_named():
    g = ring([Fraction(k) for k in (1, 2, 3, 4, 5)])
    d = bottleneck_decomposition(g, EXACT)
    pairs = list(d.pairs)
    pairs[0] = replace(pairs[0], alpha=pairs[0].alpha * 2)
    bad = BottleneckDecomposition(g, tuple(pairs), EXACT)
    problems = decomposition_problems(g, bad)
    assert any("w(C)/w(B)" in p for p in problems)


def test_swapped_pair_order_breaks_monotonicity():
    g = path([Fraction(k) for k in (1, 5, 2, 8, 1, 9)])
    d = bottleneck_decomposition(g, EXACT)
    assert len(d.pairs) >= 2
    pairs = list(d.pairs)
    pairs[0], pairs[1] = (replace(pairs[1], index=1), replace(pairs[0], index=2))
    bad = BottleneckDecomposition(g, tuple(pairs), EXACT)
    assert decomposition_problems(g, bad)


# -- allocation invariants --------------------------------------------------

def test_honest_allocation_passes():
    g = ring([Fraction(k) for k in (1, 2, 3, 4)])
    alloc = bd_allocation(g, backend=EXACT)
    assert allocation_problems(g, alloc, EXACT) == []
    assert fixed_point_problems(alloc) == []


def test_inflated_utility_breaks_market_clearing():
    g = ring([Fraction(k) for k in (1, 2, 3, 4)])
    alloc = bd_allocation(g, backend=EXACT)
    utils = list(alloc.utilities)
    utils[0] = utils[0] + 1
    bad = Allocation(graph=g, x=alloc.x, utilities=tuple(utils))
    assert allocation_problems(g, bad, EXACT)


# -- best-response invariants -----------------------------------------------

def test_honest_best_response_passes():
    g = ring([1.0, 2.0, 3.0, 4.0, 5.0])
    ctx = EngineContext(cache_size=0)
    br = best_split(g, 2, grid=12, ctx=ctx)
    assert best_response_problems(g, 2, br) == []


def test_theorem8_violation_and_bad_split_are_named():
    g = ring([1.0, 2.0, 3.0, 4.0, 5.0])
    fake = BestResponse(vertex=2, w1=1.0, w2=2.0, utility=9.0, honest_utility=3.0)
    problems = best_response_problems(g, 2, fake)
    assert any("ratio" in p or "2" in p for p in problems)

    torn = BestResponse(vertex=2, w1=5.0, w2=5.0, utility=3.0, honest_utility=3.0)
    assert best_response_problems(g, 2, torn)
