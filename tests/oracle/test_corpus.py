"""Failure corpus: records, content-hash dedup, versioning, shrinking."""

from fractions import Fraction

import pytest

from repro.exceptions import CorpusError
from repro.graphs import ring
from repro.io.serialization import graph_to_dict
from repro.numeric import DEFAULT_TOL, EXACT, FLOAT
from repro.oracle import (
    CORPUS_FORMAT,
    FailureCorpus,
    FailureRecord,
    backend_from_dict,
    backend_to_dict,
    shrink_graph,
)


def _record(problems=("it broke",), weights=(1.0, 2.0, 3.0)):
    return FailureRecord(
        kind="decomposition",
        problems=tuple(problems),
        context={"solver": "dinic", "backend": backend_to_dict(FLOAT),
                 "zero_tol": 0.0, "level": "cheap"},
        payload={"graph": graph_to_dict(ring(list(weights)))},
        created="2026-01-01T00:00:00Z",
    )


def test_record_round_trips_through_dict():
    rec = _record()
    again = FailureRecord.from_dict(rec.to_dict())
    assert again == rec
    assert again.digest() == rec.digest()


def test_digest_ignores_problems_text_and_timestamp():
    a = _record(problems=("first discovery",))
    b = FailureRecord(kind=a.kind, problems=("second, different words",),
                      context=a.context, payload=a.payload,
                      created="2027-12-31T23:59:59Z")
    assert a.digest() == b.digest()
    # but a different instance is a different failure
    c = _record(weights=(1.0, 2.0, 4.0))
    assert c.digest() != a.digest()


def test_unknown_kind_and_newer_format_are_refused():
    with pytest.raises(CorpusError, match="unknown failure kind"):
        FailureRecord(kind="spooky", problems=(), context={}, payload={})
    newer = dict(_record().to_dict(), format=CORPUS_FORMAT + 1)
    with pytest.raises(CorpusError, match="newer than supported"):
        FailureRecord.from_dict(newer)


def test_corpus_is_lazy_and_deduplicates(tmp_path):
    root = tmp_path / "corpus"
    corpus = FailureCorpus(root)
    assert not root.exists()  # configuring a corpus touches nothing
    assert len(corpus) == 0 and corpus.paths() == []

    p1 = corpus.add(_record(problems=("seen once",)))
    p2 = corpus.add(_record(problems=("rediscovered later",)))
    assert p1 == p2  # same failure, same file
    assert len(corpus) == 1
    assert p1.name.startswith("decomposition-")

    loaded = corpus.load(p1)
    assert loaded.problems == ("seen once",)  # first writer wins
    assert [rec.kind for _, rec in corpus] == ["decomposition"]


def test_corpus_load_rejects_garbage(tmp_path):
    bad = tmp_path / "x.json"
    bad.write_text("{not json")
    with pytest.raises(CorpusError, match="unreadable"):
        FailureCorpus(tmp_path).load(bad)


def test_backend_round_trip():
    assert backend_from_dict(backend_to_dict(EXACT)) is EXACT
    assert backend_from_dict(backend_to_dict(FLOAT)) is FLOAT
    custom = backend_from_dict({"name": "float", "tol": DEFAULT_TOL * 10})
    assert custom.tol == DEFAULT_TOL * 10


def test_shrink_graph_strips_padding_vertices():
    g = ring([Fraction(1), Fraction(2), Fraction(7), Fraction(3), Fraction(4),
              Fraction(5)])

    def fails(sub):
        return any(w == 7 for w in sub.weights)

    small = shrink_graph(g, fails)
    assert small.n == 2  # greedy floor: shrinking stops at two vertices
    assert any(w == 7 for w in small.weights)


def test_shrink_graph_respects_eval_budget_and_never_grows():
    g = ring([float(k) for k in range(1, 9)])
    calls = []

    def fails(sub):
        calls.append(sub.n)
        return True

    small = shrink_graph(g, fails, max_evals=3)
    assert len(calls) <= 3
    assert small.n < g.n  # made some progress within budget

    # predicate that never holds on sub-instances: instance returned intact
    assert shrink_graph(g, lambda sub: False).n == g.n


def test_shrink_graph_treats_predicate_crash_as_non_witness():
    g = ring([1.0, 2.0, 3.0, 4.0])

    def fails(sub):
        if sub.n < 4:
            raise RuntimeError("malformed candidate")
        return True

    assert shrink_graph(g, fails).n == 4
