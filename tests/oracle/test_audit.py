"""End-to-end audit layer: a corrupted solver is caught, filed, replayed.

The central acceptance scenario: register a deliberately lying max-flow
solver, run real engine work through an audited context, and check the
full pipeline -- certificate failure, counter bump, corpus record,
:class:`AuditError` with the record path, and a replay that reproduces
against the corrupted registry but comes back clean against the honest
solvers.
"""

import pytest

from repro.core import bd_allocation, bottleneck_decomposition
from repro.engine import SOLVERS, EngineContext, EngineSpec, SolverRegistry
from repro.exceptions import AuditError, EngineError
from repro.graphs import ring
from repro.numeric import FLOAT
from repro.oracle import (
    AuditConfig,
    FailureCorpus,
    attach_auditor,
    differential_flow_problems,
    replay_corpus,
    replay_record,
)


def lying_registry(factor=2.0):
    """The built-in registry with ``dinic`` replaced by a solver that
    routes the flow correctly but reports ``factor`` times the true value."""
    reg = SolverRegistry()
    for name in SOLVERS.names():
        entry = SOLVERS.get(name)
        reg.register(name, entry.fn, supports_arc_flows=entry.supports_arc_flows)
    honest = SOLVERS.get("dinic").fn

    def lying(net, s, t, zero_tol):
        return honest(net, s, t, zero_tol) * factor

    reg.register("dinic", lying)
    return reg


@pytest.fixture
def corrupted(tmp_path):
    """An audited context whose default solver lies, filing into tmp."""
    reg = lying_registry()
    ctx = EngineContext(solver="dinic", cache_size=0, registry=reg)
    attach_auditor(ctx, level="cheap", corpus_dir=str(tmp_path / "corpus"))
    return ctx, reg, FailureCorpus(tmp_path / "corpus")


def test_corrupted_solver_is_caught_filed_and_replayable(corrupted):
    ctx, reg, corpus = corrupted
    g = ring([1.0, 2.0, 3.0, 4.0, 5.0])

    with pytest.raises(AuditError) as err:
        bottleneck_decomposition(g, FLOAT, ctx)

    # the exception carries the corpus record path
    assert err.value.record_path is not None
    assert str(corpus.root) in err.value.record_path
    assert ctx.counters.audit_violations == 1
    assert len(corpus) == 1

    [(path, rec)] = list(corpus)
    assert rec.kind == "flow"
    assert rec.context["solver"] == "dinic"
    assert any("cut" in p for p in rec.problems)

    # replay against the corrupted registry: still broken
    assert replay_record(rec, registry=reg).reproduced
    # replay against the honest built-in solvers: the bug is "fixed"
    assert not replay_record(rec).reproduced
    results = replay_corpus(corpus)
    assert [r.reproduced for _, r in results] == [False]


def test_record_mode_harvests_without_raising(tmp_path):
    reg = lying_registry()
    ctx = EngineContext(solver="dinic", cache_size=0, registry=reg)
    attach_auditor(ctx, level="cheap", corpus_dir=str(tmp_path),
                   on_violation="record")
    g = ring([1.0, 2.0, 3.0])

    bottleneck_decomposition(g, FLOAT, ctx)  # completes despite the lies

    assert ctx.counters.audit_violations > 0
    assert len(FailureCorpus(tmp_path)) >= 1


def test_honest_run_files_nothing(tmp_path):
    ctx = EngineContext(cache_size=0)
    attach_auditor(ctx, level="paranoid", corpus_dir=str(tmp_path / "corpus"))
    g = ring([1.0, 2.0, 3.0, 4.0])
    bd_allocation(g, backend=FLOAT, ctx=ctx)
    assert ctx.counters.audit_violations == 0
    assert ctx.counters.audit_disagreements == 0
    assert ctx.counters.audit_flow_checks > 0
    assert ctx.counters.audit_differential_checks > 0
    assert not (tmp_path / "corpus").exists()  # lazy: no violations, no dir


def test_differential_layer_flags_value_disagreement():
    net_ctx = EngineContext(cache_size=0)
    from repro.flow.network import FlowNetwork

    net = FlowNetwork(3)
    net.add_edge(0, 1, 2.0)
    net.add_edge(1, 2, 1.0)
    value = net_ctx.max_flow(net, 0, 2)
    wrong = value + 0.5
    problems, checks = differential_flow_problems(
        net, 0, 2, wrong, 0.0,
        solved_by=SOLVERS.get("dinic"), registry=SOLVERS, nx_node_limit=16,
    )
    assert checks >= 3  # two other solvers + networkx
    assert all("disagreement" in p for p in problems)
    assert len(problems) == checks  # every reference disputes the wrong value


def test_audit_config_validation_and_paranoid_sampling():
    with pytest.raises(EngineError, match="audit level"):
        AuditConfig(level="frantic")
    with pytest.raises(EngineError, match="audit level"):
        AuditConfig(level="off")
    with pytest.raises(EngineError, match="on_violation"):
        AuditConfig(on_violation="explode")
    with pytest.raises(EngineError, match="sample_period"):
        AuditConfig(sample_period=0)

    ctx = EngineContext(cache_size=0)
    auditor = attach_auditor(ctx, level="paranoid", sample_period=13)
    assert auditor.config.sample_period == 1  # paranoid audits every call
    assert auditor.paranoid and auditor.differential

    assert attach_auditor(ctx, level="off") is None
    assert ctx.auditor is None


def test_spec_carries_audit_config_across_rebuild(tmp_path):
    ctx = EngineContext(solver="edmonds_karp", cache_size=4)
    attach_auditor(ctx, level="differential", corpus_dir=str(tmp_path))
    spec = ctx.spec()
    assert spec.audit == "differential"
    assert spec.corpus_dir == str(tmp_path)

    rebuilt = spec.build()
    assert rebuilt.auditor is not None
    assert rebuilt.auditor.level_name == "differential"
    assert rebuilt.auditor.corpus_dir == str(tmp_path)

    plain = EngineSpec().build()
    assert plain.auditor is None


def test_stats_render_includes_audit_counters():
    from repro.experiments.base import format_engine_stats

    ctx = EngineContext(cache_size=0)
    attach_auditor(ctx, level="cheap")
    g = ring([1.0, 2.0, 3.0])
    bottleneck_decomposition(g, FLOAT, ctx)
    line = format_engine_stats(ctx.stats())
    assert "audit:" in line and "violations=0" in line

    quiet = EngineContext(cache_size=0)
    bottleneck_decomposition(g, FLOAT, quiet)
    assert "audit:" not in format_engine_stats(quiet.stats())
