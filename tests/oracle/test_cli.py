"""The ``repro-oracle`` CLI: list, replay-as-regression-suite, shrink."""

import json

import pytest

from repro.core import bottleneck_decomposition
from repro.engine import EngineContext
from repro.exceptions import AuditError
from repro.graphs import ring
from repro.io.serialization import graph_to_dict
from repro.numeric import FLOAT
from repro.oracle import FailureCorpus, FailureRecord, attach_auditor, backend_to_dict
from repro.oracle.cli import main as oracle_main

from .test_audit import lying_registry


@pytest.fixture
def corpus_with_fixed_bug(tmp_path):
    """A corpus holding one record from the lying-solver era: it replays
    clean against today's honest solvers (i.e. the bug is fixed)."""
    reg = lying_registry()
    ctx = EngineContext(solver="dinic", cache_size=0, registry=reg)
    attach_auditor(ctx, level="cheap", corpus_dir=str(tmp_path))
    with pytest.raises(AuditError):
        bottleneck_decomposition(ring([1.0, 2.0, 3.0]), FLOAT, ctx)
    return tmp_path


def _live_crash_record(tmp_path):
    """A record whose replay still fails: the payload graph has zero total
    weight, which the decomposition refuses -- a crash regression."""
    rec = FailureRecord(
        kind="decomposition",
        problems=("DecompositionError: zero total weight",),
        context={"solver": "dinic", "backend": backend_to_dict(FLOAT),
                 "zero_tol": 0.0, "level": "cheap"},
        payload={"graph": graph_to_dict(ring([0.0, 0.0, 0.0]))},
        created="2026-01-01T00:00:00Z",
    )
    return FailureCorpus(tmp_path).add(rec)


def test_list_empty_and_populated(tmp_path, capsys):
    assert oracle_main(["list", "--corpus", str(tmp_path / "nope")]) == 0
    assert "empty" in capsys.readouterr().out

    _live_crash_record(tmp_path)
    assert oracle_main(["list", "--corpus", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "decomposition-" in out and "decomposition" in out


def test_replay_fixed_bug_exits_zero(corpus_with_fixed_bug, capsys):
    rc = oracle_main(["replay", "--corpus", str(corpus_with_fixed_bug)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[clean]" in out and "1/1 clean" in out


def test_replay_live_bug_exits_nonzero(tmp_path, capsys):
    _live_crash_record(tmp_path)
    rc = oracle_main(["replay", "--corpus", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[REPRO]" in out and "still reproduce" in out


def test_replay_single_record_and_empty_corpus(tmp_path, capsys):
    assert oracle_main(["replay", "--corpus", str(tmp_path / "void")]) == 0
    assert "nothing to replay" in capsys.readouterr().out

    path = _live_crash_record(tmp_path)
    rc = oracle_main(["replay", "--corpus", str(tmp_path), "--record", str(path)])
    assert rc == 1


def test_shrink_minimizes_live_record_in_place(tmp_path, capsys):
    rec = FailureRecord(
        kind="decomposition",
        problems=("crash",),
        context={"solver": "dinic", "backend": backend_to_dict(FLOAT),
                 "zero_tol": 0.0, "level": "cheap"},
        payload={"graph": graph_to_dict(ring([0.0] * 6))},
    )
    path = FailureCorpus(tmp_path).add(rec)
    rc = oracle_main(["shrink", str(path), "--max-evals", "50"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "shrunk" in out
    with open(path) as f:
        data = json.load(f)
    assert data["payload"]["graph"]["n"] == 2
    assert data["payload"]["shrunk_from_n"] == 6


def test_shrink_refuses_non_graph_and_clean_records(corpus_with_fixed_bug, capsys):
    corpus = FailureCorpus(corpus_with_fixed_bug)
    [(path, rec)] = list(corpus)
    assert rec.kind == "flow"
    assert oracle_main(["shrink", str(path)]) == 2  # no graph payload
    assert "only graph-kind records" in capsys.readouterr().err
