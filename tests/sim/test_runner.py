"""Runner tests: determinism across execution paths, checkpoint resume,
fault injection, warm-start reuse, and zeta-violation corpus filing."""

import json
import os

import pytest

from repro.engine import EngineContext
from repro.exceptions import CheckpointError, SimError
from repro.runtime import RuntimePolicy
from repro.sim import (
    Scenario,
    reset_warm_store,
    resolve_scenario,
    run_scenario,
    scenario_fingerprint,
)

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _scenario(epochs=2, **overrides):
    return resolve_scenario("EXP-S1", seed=0, epochs=epochs, **overrides)


def _run(scenario, **kwargs):
    reset_warm_store()
    ctx = kwargs.pop("ctx", None) or EngineContext()
    return run_scenario(scenario, ctx=ctx, **kwargs), ctx


# -- smoke over the presets ---------------------------------------------

@pytest.mark.parametrize("name", ["EXP-S1", "EXP-S2", "EXP-S3", "EXP-S4"])
def test_presets_run_clean(name):
    scen = resolve_scenario(name, seed=0, epochs=2)
    result, ctx = _run(scen)
    assert result.epochs == 2
    assert result.violations == ()
    assert result.max_ratio <= 2.0 + scen.zeta_slack
    assert ctx.counters.sim_epochs == 2
    assert ctx.counters.sim_attacks >= 2 * scen.adversaries
    # every outcome belongs to a declared adversary playing its mix slot
    for rep in result.reports:
        assert rep.epoch in range(2)
        for out in rep.outcomes:
            assert out.agent_id < scen.adversaries
            assert out.strategy == scen.strategy_of(out.agent_id)


def test_runs_are_reproducible():
    a, _ = _run(_scenario())
    b, _ = _run(_scenario())
    assert a.to_dict() == b.to_dict()
    assert a.fingerprint == b.fingerprint


def test_seed_changes_the_world():
    a, _ = _run(_scenario())
    b, _ = _run(resolve_scenario("EXP-S1", seed=1, epochs=2))
    assert a.to_dict() != b.to_dict()
    assert a.fingerprint != b.fingerprint


# -- the three execution paths agree bit-for-bit ------------------------

def test_parallel_matches_serial_bit_identically():
    serial, _ = _run(_scenario())
    parallel, _ = _run(_scenario(), processes=2)
    assert serial.to_dict() == parallel.to_dict()


def test_supervised_journal_resume_is_bit_identical(tmp_path):
    journal = str(tmp_path / "sim.journal")
    policy = RuntimePolicy(retries=1)
    clean, _ = _run(_scenario())

    first, _ = _run(_scenario(), policy=policy, checkpoint=journal)
    assert first.to_dict() == clean.to_dict()
    # resume replays every cell from the journal: zero fresh attack evals
    resumed, ctx = _run(_scenario(), policy=policy, checkpoint=journal)
    assert resumed.to_dict() == clean.to_dict()
    assert ctx.counters.sim_attacks == 0


def test_resume_under_different_strategy_mix_is_refused(tmp_path):
    # The satellite-3 seam: the journal fingerprint carries the adversary
    # strategy discriminator, so a strategy-swapped resume must fail with
    # a typed error instead of replaying stale cells.
    journal = str(tmp_path / "sim.journal")
    policy = RuntimePolicy(retries=1)
    _run(_scenario(), policy=policy, checkpoint=journal)

    swapped = _scenario(strategies=("misreport", "sybil"))
    assert scenario_fingerprint(swapped, None) != \
        scenario_fingerprint(_scenario(), None)
    with pytest.raises(CheckpointError, match="different run"):
        _run(swapped, policy=policy, checkpoint=journal)


# -- fault injection -----------------------------------------------------

def test_injected_cell_faults_do_not_change_results():
    clean, _ = _run(_scenario())
    faulty, _ = _run(_scenario(),
                     policy=RuntimePolicy(retries=2, backoff_base=0.0,
                                          faults="cell:exc@2"))
    assert faulty.to_dict() == clean.to_dict()


def test_worker_kill_chaos_matches_clean_run(tmp_path):
    clean, _ = _run(_scenario())
    chaotic, _ = _run(
        _scenario(), processes=2,
        policy=RuntimePolicy(retries=2, backoff_base=0.0,
                             faults="worker:kill@2"),
        checkpoint=str(tmp_path / "chaos.journal"))
    assert chaotic.to_dict() == clean.to_dict()


# -- warm-start reuse ----------------------------------------------------

def _swap_scenario(strategy):
    # The bench-sim regime: swap churn + narrow weights keeps the
    # decomposition structure stable epoch over epoch.
    return Scenario(name=f"warm-{strategy}", strategies=(strategy,),
                    adversaries=2, n0=8, n_min=6, n_max=10, churn_rate=1.0,
                    swap_churn=True, w_lo=0.5, w_hi=2.0, grid=12, seed=0,
                    epochs=3)


def test_adaptive_warm_reuse_beats_cold_solves():
    # Identical populations and rings (strategy labels never touch the
    # RNG), so the full-solve counter isolates exactly the warm reuse:
    # adaptive epochs >= 1 reconstruct instead of re-solving.
    _, cold_ctx = _run(_swap_scenario("sybil"))
    _, warm_ctx = _run(_swap_scenario("adaptive"))
    assert warm_ctx.counters.decomp_reconstructions > 0
    assert warm_ctx.counters.decompositions < cold_ctx.counters.decompositions


# -- zeta violations file corpus records ---------------------------------

def test_zeta_violation_files_a_shrunken_corpus_record(tmp_path):
    # No honest instance violates Theorem 8, so tighten the empirical
    # bound below ratios the search actually attains: every "violation"
    # machinery path runs against real data.
    scen = _scenario(epochs=1, zeta_slack=-0.999)  # bound: ratio > 1.001
    result, ctx = _run(scen, corpus_dir=str(tmp_path))
    assert result.violations
    assert ctx.counters.sim_zeta_violations == len(result.violations)
    records = sorted(tmp_path.glob("**/*.json"))
    assert records
    rec = json.loads(records[0].read_text())
    payload = rec["payload"]
    assert {"graph", "vertex", "grid"} <= set(payload)
    assert payload["scenario"] == scen.name
    assert payload["ratio"] > 1.001
    # the shrinker only ever shrinks
    assert payload["shrunk_from_n"] >= len(payload["graph"]["weights"])


def test_violations_without_corpus_dir_are_recorded_not_filed(tmp_path):
    scen = _scenario(epochs=1, zeta_slack=-0.999)
    result, _ = _run(scen)
    assert result.violations
    assert not os.listdir(tmp_path)


# -- structured result ---------------------------------------------------

def test_result_to_dict_round_trips_through_json():
    result, _ = _run(_scenario())
    blob = json.dumps(result.to_dict(), sort_keys=True)
    assert json.loads(blob) == result.to_dict()


def test_epoch_zero_has_no_churn_and_later_epochs_report_deltas():
    scen = resolve_scenario("EXP-S4", seed=0, epochs=3)
    result, ctx = _run(scen)
    assert result.reports[0].joined == () and result.reports[0].left == ()
    churned = sum(1 for r in result.reports[1:] if r.joined or r.left)
    assert ctx.counters.sim_churn_events == churned


def test_coalition_needs_two_adversaries():
    with pytest.raises(SimError, match="coalition"):
        _run(Scenario(name="solo-coalition", strategies=("coalition",),
                      adversaries=1, n0=6, n_min=4, n_max=8, seed=0,
                      epochs=1))
