"""Scenario validation, presets, and the schedule/population layers."""

import pytest

from repro.exceptions import SimError
from repro.sim import (
    SCENARIOS,
    ChurnSchedule,
    Population,
    Scenario,
    resolve_scenario,
    sim_rng,
)
from repro.sim.schedule import ChurnEvent


# -- scenario ------------------------------------------------------------

def test_presets_cover_the_exp_s_family():
    assert set(SCENARIOS) == {"EXP-S1", "EXP-S2", "EXP-S3", "EXP-S4"}
    for s in SCENARIOS.values():
        assert s.name in SCENARIOS


@pytest.mark.parametrize("kwargs,match", [
    (dict(epochs=0), "epochs"),
    (dict(n0=2, n_min=3), "n_min"),
    (dict(n_min=5, n0=4), "n_min"),
    (dict(churn_rate=1.5), "churn_rate"),
    (dict(strategies=()), "empty strategy"),
    (dict(strategies=("nope",)), "unknown strategies"),
    (dict(adversaries=0), "adversaries"),
    (dict(adversaries=7, n_min=4), "adversaries"),
    (dict(weight_dist="gauss"), "weight_dist"),
    (dict(w_lo=0.0), "w_lo"),
    (dict(grid=2), "grid"),
])
def test_scenario_validation(kwargs, match):
    base = dict(name="bad", n0=8, n_min=4, n_max=24)
    base.update(kwargs)
    with pytest.raises(SimError, match=match):
        Scenario(**base)


def test_resolve_scenario_overrides_and_unknown():
    s = resolve_scenario("EXP-S1", seed=9, epochs=2)
    assert (s.seed, s.epochs) == (9, 2)
    assert resolve_scenario("exp-s1").name == "EXP-S1"  # case-insensitive
    with pytest.raises(SimError, match="unknown scenario"):
        resolve_scenario("EXP-S9")


def test_strategy_mix_cycles_and_discriminator_orders():
    s = resolve_scenario("EXP-S1")  # ("sybil", "multi")
    assert [s.strategy_of(k) for k in range(4)] == \
        ["sybil", "multi", "sybil", "multi"]
    assert s.discriminator() == "sybil+multi"
    assert "discriminator" in s.fingerprint_fields()


# -- schedule ------------------------------------------------------------

def test_sim_rng_is_a_pure_function_of_integer_coords():
    assert sim_rng(1, 2, 3).random(4).tolist() == sim_rng(1, 2, 3).random(4).tolist()
    assert sim_rng(1, 2, 3).random(4).tolist() != sim_rng(1, 3, 2).random(4).tolist()


def test_schedule_is_deterministic_and_epoch_zero_is_quiet():
    s = resolve_scenario("EXP-S1", seed=5)
    sched = ChurnSchedule(s)
    assert sched.event(0, [2, 3], 8, 8).empty
    e1 = sched.event(3, [2, 3, 4, 5], 8, 11)
    e2 = sched.event(3, [2, 3, 4, 5], 8, 11)
    assert e1 == e2
    # weights inside events are bit-identical across derivations
    assert repr(e1.joins) == repr(e2.joins)


def test_swap_churn_pairs_joins_and_leaves():
    s = resolve_scenario("EXP-S4", seed=0, epochs=8)
    sched = ChurnSchedule(s)
    pop = Population.initial(s)
    for epoch in range(s.epochs):
        ev = sched.event(epoch, pop.honest_ids(), pop.n, pop.next_id)
        assert len(ev.joins) == len(ev.leaves)  # n is invariant
        pop = pop.apply(ev)
        assert pop.n == s.n0


def test_churn_respects_population_bounds():
    s = Scenario(name="bounds", n0=4, n_min=4, n_max=5, churn_rate=1.0,
                 adversaries=1, epochs=12, seed=3)
    sched = ChurnSchedule(s)
    pop = Population.initial(s)
    for epoch in range(s.epochs):
        ev = sched.event(epoch, pop.honest_ids(), pop.n, pop.next_id)
        pop = pop.apply(ev)
        assert s.n_min <= pop.n <= s.n_max


# -- population ----------------------------------------------------------

def test_initial_population_roles_follow_gasper_convention():
    s = resolve_scenario("EXP-S1", seed=0)  # adversaries=2, mix (sybil, multi)
    pop = Population.initial(s)
    assert pop.n == s.n0
    strategies = [a.strategy for a in pop.agents]
    assert strategies[:2] == ["sybil", "multi"]  # i < F are adversarial
    assert all(st is None for st in strategies[2:])
    assert repr([a.weight for a in Population.initial(s).agents]) == \
        repr([a.weight for a in pop.agents])  # deterministic draw


def test_population_apply_guards():
    s = resolve_scenario("EXP-S1", seed=0)
    pop = Population.initial(s)
    with pytest.raises(SimError, match="unknown agents"):
        pop.apply(ChurnEvent(epoch=1, leaves=(99,)))
    with pytest.raises(SimError, match="cannot leave"):
        pop.apply(ChurnEvent(epoch=1, leaves=(0,)))  # agent 0 is adversarial
    with pytest.raises(SimError, match="next fresh id"):
        pop.apply(ChurnEvent(epoch=1, joins=((3, 1.0),)))
    after = pop.apply(ChurnEvent(epoch=1, joins=((pop.next_id, 2.5),), leaves=(4,)))
    assert after.n == pop.n
    assert after.vertex_of(pop.next_id) == after.n - 1  # joins append


def test_ring_labels_carry_agent_ids():
    s = resolve_scenario("EXP-S1", seed=0)
    pop = Population.initial(s)
    g, ids = pop.ring()
    assert g.is_ring()
    assert ids == tuple(range(s.n0))
    assert list(g.labels) == [f"a{i}" for i in ids]
