"""A genuine ``kill -9`` mid-epoch, then a journal resume.

Subprocess harness in the style of
``tests/runtime/test_crash_resume.py``: the child wraps the runner's
``evaluate_strategy`` so the third attack cell SIGKILLs the process (once,
gated on a flag file), then the resumed run must produce a result
bit-identical to a never-interrupted baseline.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

_KILL_SCRIPT = textwrap.dedent("""
    import json, os, signal, sys

    import repro.sim.runner as runner
    from repro.runtime import RuntimePolicy
    from repro.sim import resolve_scenario, run_scenario

    flag = sys.argv[1]
    ckpt = None if sys.argv[2] == "-" else sys.argv[2]

    calls = {"n": 0}
    real = runner.evaluate_strategy

    def lethal(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 3 and not os.path.exists(flag):
            open(flag, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)  # mid-epoch hard kill
        return real(*args, **kwargs)

    runner.evaluate_strategy = lethal

    scen = resolve_scenario("EXP-S1", seed=0, epochs=2)
    result = run_scenario(scen, policy=RuntimePolicy(retries=1),
                          checkpoint=ckpt)
    print(json.dumps(result.to_dict(), sort_keys=True))
""")


def test_sim_survives_sigkill_and_resumes_bit_identically(tmp_path):
    script = tmp_path / "killer.py"
    script.write_text(_KILL_SCRIPT)
    flag = str(tmp_path / "already-died")
    ckpt = str(tmp_path / "sim.journal")
    env = dict(os.environ, PYTHONPATH="src")

    def run(checkpoint):
        return subprocess.run([sys.executable, str(script), flag, checkpoint],
                              capture_output=True, text=True, env=env,
                              cwd="/root/repo")

    first = run(ckpt)
    assert first.returncode == -signal.SIGKILL  # it really died mid-epoch

    resumed = run(ckpt)
    assert resumed.returncode == 0, resumed.stderr

    # The flag file exists now, so a journal-less rerun completes without
    # the kill: the uninterrupted baseline.
    baseline = run("-")
    assert baseline.returncode == 0, baseline.stderr
    assert json.loads(resumed.stdout) == json.loads(baseline.stdout)
