"""Regression: parallel sweeps must report the same counter totals as serial.

Before the :mod:`repro.obs.metrics` drain protocol, worker processes
accumulated counters into their own rebuilt contexts and the parent's
``--stats`` silently reported (near) zero work for parallel runs.  These
tests pin the fix: with the decomposition cache disabled -- so scheduling
cannot change how much work each cell performs -- serial and parallel runs
of the same sweep report **identical** integer counter totals, on the
legacy pool path and the supervised path alike.

(Caches are per-process: a serial sweep shares one cache across all cells
while N workers warm N separate ones, so cached runs legitimately differ
in ``flow_calls``.  Equality is only promised -- and only asserted --
uncached.)
"""

import numpy as np
import pytest

from repro.analysis import parallel_incentive_sweep
from repro.engine import INT_COUNTER_FIELDS, EngineContext
from repro.graphs import random_ring
from repro.runtime import RuntimePolicy


def _graphs():
    rng = np.random.default_rng(7)
    return [random_ring(5, rng) for _ in range(3)]


def _int_counters(ctx: EngineContext) -> dict:
    snap = ctx.counters.snapshot()
    return {k: snap[k] for k in INT_COUNTER_FIELDS}


def _sweep(policy=None, workers=0) -> tuple[list, dict]:
    ctx = EngineContext(cache_size=0, workers=workers)
    if policy is not None:
        ctx.runtime = policy
    ratios = parallel_incentive_sweep(_graphs(), grid=8, ctx=ctx)
    return ratios, _int_counters(ctx)


def test_parallel_pool_counters_match_serial():
    serial_ratios, serial_counts = _sweep()
    par_ratios, par_counts = _sweep(workers=2)
    assert par_ratios == serial_ratios
    assert par_counts == serial_counts
    assert serial_counts["flow_calls"] > 0  # the totals are real work


def test_supervised_parallel_counters_match_serial():
    serial_ratios, serial_counts = _sweep()
    sup_ratios, sup_counts = _sweep(
        policy=RuntimePolicy(retries=1, timeout=120.0), workers=2
    )
    assert sup_ratios == serial_ratios
    assert sup_counts == serial_counts


def test_supervised_serial_counters_match_serial():
    # processes=0 under a supervising policy degrades to the in-process
    # path; counters must still come out identical.
    serial_ratios, serial_counts = _sweep()
    sup_ratios, sup_counts = _sweep(policy=RuntimePolicy(retries=1), workers=0)
    assert sup_ratios == serial_ratios
    assert sup_counts == serial_counts


def test_parallel_spans_are_merged_back():
    from repro.obs import Tracer

    ctx = EngineContext(cache_size=0, workers=2)
    ctx.tracer = Tracer()
    parallel_incentive_sweep(_graphs(), grid=8, ctx=ctx)
    spans = ctx.tracer.snapshot()
    assert "best_response" in spans
    # Every (graph, vertex) cell runs exactly one best-response search.
    assert spans["best_response"]["count"] == sum(g.n for g in _graphs())


def test_repeated_parallel_sweeps_do_not_double_count():
    # Worker contexts are memoized per spec; a second sweep in the same
    # process must drain only its own delta, not re-report the first.
    ctx1 = EngineContext(cache_size=0, workers=2)
    parallel_incentive_sweep(_graphs(), grid=8, ctx=ctx1)
    first = _int_counters(ctx1)
    ctx2 = EngineContext(cache_size=0, workers=2)
    parallel_incentive_sweep(_graphs(), grid=8, ctx=ctx2)
    assert _int_counters(ctx2) == first
