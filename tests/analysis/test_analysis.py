"""Tests for sweeps, statistics, and sweep instrumentation."""

import numpy as np
import pytest

from repro.analysis import (
    PairEvent,
    SweepResult,
    cell_rng,
    censored_max,
    geometric_mean,
    run_sweep,
    summarize,
    trace_report_sweep,
)
from repro.graphs import random_ring, star


def test_cell_rng_deterministic_and_distinct():
    a = cell_rng(0, "x", 1).random()
    b = cell_rng(0, "x", 1).random()
    c = cell_rng(0, "x", 2).random()
    assert a == b
    assert a != c


def test_run_sweep_collects_cells():
    result = run_sweep("demo", [(n,) for n in (3, 4, 5)],
                       lambda rng, n: {"n2": n * n})
    assert [c.values["n2"] for c in result.cells] == [9, 16, 25]
    assert result.column("n2") == [9, 16, 25]
    assert result.max_over("n2") == 25
    rows = result.rows(["n2"])
    assert rows[0] == [3, 9]


def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.median == pytest.approx(2.5)
    assert len(s.as_row()) == 6


def test_summarize_single_point():
    s = summarize([7.0])
    assert s.std == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([1, -1])


def test_censored_max():
    mx, over = censored_max([1.0, 1.9, 2.2], 2.0)
    assert mx == 2.2 and over == 1


def test_trace_star_center_has_unit_crossing():
    g = star(10.0, [1.0, 1.0, 1.0])
    trace = trace_report_sweep(g, 0, samples=16, probes=17)
    assert trace.case_label() == "B-3"
    assert len(trace.xs) == 16
    kinds = {e.kind for e in trace.events}
    assert "unit-crossing" in kinds or "merge" in kinds or "split" in kinds


def test_trace_leaf_is_b1():
    g = star(10.0, [1.0, 1.0, 1.0])
    trace = trace_report_sweep(g, 1, samples=8, probes=9)
    assert trace.case_label() == "B-1"
    assert all(a <= b + 1e-12 for a, b in zip(trace.alphas, trace.alphas[1:]))


def test_trace_utilities_monotone():
    rng = np.random.default_rng(3)
    g = random_ring(5, rng, "integer", 1, 9)
    trace = trace_report_sweep(g, 0, samples=12, probes=9)
    assert all(u1 <= u2 + 1e-9 for u1, u2 in zip(trace.utilities, trace.utilities[1:]))
