"""Tests for the process-parallel sweep executor."""

import numpy as np
import pytest

from repro.analysis import parallel_incentive_sweep, parallel_map
from repro.analysis.parallel import _ratio_cell
from repro.graphs import random_ring


def _square(x):
    return x * x


def test_parallel_map_serial_path():
    assert parallel_map(_square, [1, 2, 3], processes=0) == [1, 4, 9]


def test_parallel_map_single_item_stays_serial():
    assert parallel_map(_square, [5], processes=4) == [25]


def test_parallel_map_matches_serial_with_processes():
    items = list(range(12))
    serial = parallel_map(_square, items, processes=0)
    parallel = parallel_map(_square, items, processes=2, chunksize=3)
    assert serial == parallel


def test_ratio_cell_picklable_and_correct():
    g = random_ring(4, np.random.default_rng(0), "integer", 1, 9)
    r = _ratio_cell((g, 0, 12))
    assert 1.0 - 1e-9 <= r <= 2.0 + 1e-6


def test_parallel_incentive_sweep_matches_serial():
    rng = np.random.default_rng(1)
    graphs = [random_ring(int(rng.integers(3, 6)), rng, "loguniform", 0.1, 10)
              for _ in range(3)]
    serial = parallel_incentive_sweep(graphs, grid=12, processes=0)
    par = parallel_incentive_sweep(graphs, grid=12, processes=2)
    assert serial == par
    assert all(1.0 - 1e-9 <= z <= 2.0 + 1e-6 for z in serial)
