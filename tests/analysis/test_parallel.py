"""Tests for the process-parallel sweep executor."""

import numpy as np
import pytest

from repro.analysis import parallel_incentive_sweep, parallel_map, sweep_fingerprint
from repro.analysis.parallel import _ratio_cell, _ratio_cell_exact
from repro.engine import EngineContext
from repro.graphs import random_ring
from repro.runtime import RuntimePolicy


def _square(x):
    return x * x


def test_parallel_map_serial_path():
    assert parallel_map(_square, [1, 2, 3], processes=0) == [1, 4, 9]


def test_parallel_map_single_item_stays_serial():
    assert parallel_map(_square, [5], processes=4) == [25]


def test_parallel_map_matches_serial_with_processes():
    items = list(range(12))
    serial = parallel_map(_square, items, processes=0)
    parallel = parallel_map(_square, items, processes=2, chunksize=3)
    assert serial == parallel


def test_ratio_cell_picklable_and_correct():
    g = random_ring(4, np.random.default_rng(0), "integer", 1, 9)
    r = _ratio_cell((g, 0, 12))
    assert 1.0 - 1e-9 <= r <= 2.0 + 1e-6


def test_parallel_incentive_sweep_matches_serial():
    rng = np.random.default_rng(1)
    graphs = [random_ring(int(rng.integers(3, 6)), rng, "loguniform", 0.1, 10)
              for _ in range(3)]
    serial = parallel_incentive_sweep(graphs, grid=12, processes=0)
    par = parallel_incentive_sweep(graphs, grid=12, processes=2)
    assert serial == par
    assert all(1.0 - 1e-9 <= z <= 2.0 + 1e-6 for z in serial)


def _graphs(count=3):
    rng = np.random.default_rng(1)
    return [random_ring(int(rng.integers(3, 6)), rng, "loguniform", 0.1, 10)
            for _ in range(count)]


def test_parallel_map_explicit_start_method():
    items = list(range(6))
    out = parallel_map(_square, items, processes=2, start_method="spawn")
    assert out == [x * x for x in items]


def test_parallel_map_rejects_unknown_start_method():
    with pytest.raises(ValueError):
        parallel_map(_square, [1, 2], processes=2, start_method="telepathy")


def test_supervised_sweep_matches_legacy_bit_for_bit():
    graphs = _graphs()
    legacy = parallel_incentive_sweep(graphs, grid=12, processes=0)
    supervised_serial = parallel_incentive_sweep(
        graphs, grid=12, processes=0, policy=RuntimePolicy(retries=1)
    )
    supervised_parallel = parallel_incentive_sweep(
        graphs, grid=12, processes=2,
        policy=RuntimePolicy(retries=1, timeout=60.0),
    )
    assert supervised_serial == legacy
    assert supervised_parallel == legacy


def test_sweep_policy_resolves_from_context():
    graphs = _graphs(count=2)
    legacy = parallel_incentive_sweep(graphs, grid=12)
    ctx = EngineContext(cache_size=0)
    ctx.runtime = RuntimePolicy(retries=2)
    via_ctx = parallel_incentive_sweep(graphs, grid=12, ctx=ctx)
    assert via_ctx == legacy


def test_ratio_cell_exact_agrees_with_float_cell():
    g = random_ring(4, np.random.default_rng(0), "integer", 1, 9)
    assert _ratio_cell_exact((g, 0, 12)) == pytest.approx(_ratio_cell((g, 0, 12)))


def test_sweep_fingerprint_sensitivity():
    graphs = _graphs(count=2)
    cells = [(g, v) for g in graphs for v in g.vertices()]
    fp = sweep_fingerprint(cells, 12, None)
    assert fp == sweep_fingerprint(cells, 12, None)  # deterministic
    assert fp != sweep_fingerprint(cells, 13, None)  # grid matters
    assert fp != sweep_fingerprint(cells[:-1], 12, None)  # cells matter
    spec = EngineContext(cache_size=0).spec()
    assert fp != sweep_fingerprint(cells, 12, spec)  # engine config matters
