"""Tests for the spectral convergence-rate analysis."""

import numpy as np
import pytest

from repro.analysis import (
    dynamics_jacobian,
    predicted_iterations,
    spectral_report,
)
from repro.core import bd_allocation, proportional_response
from repro.exceptions import ReproError
from repro.graphs import path, random_ring, ring
from repro.numeric import FLOAT


def test_jacobian_shape_and_fixed_point_property():
    g = ring([1.0, 2.0, 3.0])
    J = dynamics_jacobian(g)
    assert J.shape == (6, 6)
    # F(x*) = x*, and differentiating the scale invariance F(t x) = ... the
    # equilibrium allocation x* is an eigenvector of J with eigenvalue 1:
    # F is positively homogeneous of degree 0 in x? No: check numerically
    # that x* is fixed and J has an eigenvalue 1.
    lams = np.linalg.eigvals(J)
    assert np.any(np.abs(lams - 1.0) < 1e-8)


def test_jacobian_matches_finite_differences():
    g = ring([1.0, 2.0, 3.0, 4.0, 5.0])
    from repro.core.dynamics import _edge_arrays

    src, dst, rev, index = _edge_arrays(g)
    alloc = bd_allocation(g, backend=FLOAT)
    x0 = np.zeros(len(src))
    for (a, b), i in index.items():
        x0[i] = float(alloc.x.get((a, b), 0.0))
    w = np.asarray([float(t) for t in g.weights])

    def F(x):
        util = np.bincount(dst, weights=x, minlength=g.n)
        return x[rev] / util[src] * w[src]

    J = dynamics_jacobian(g, x0)
    eps = 1e-7
    for col in range(0, len(src), 3):
        xp = x0.copy()
        xp[col] += eps
        fd = (F(xp) - F(x0)) / eps
        assert np.allclose(J[:, col], fd, atol=1e-5)


def test_even_ring_has_minus_one_mode():
    g = random_ring(6, np.random.default_rng(0), "uniform", 0.5, 4.0)
    rep = spectral_report(g)
    assert rep.has_minus_one
    assert rep.unit_multiplicity >= 1


def test_odd_ring_minus_one_is_possible_but_not_universal():
    """Odd rings are not bipartite, yet the edge-level update can still
    carry a swap-antisymmetric -1 mode (near-unit-pair instances do); the
    specific instances below pin both behaviours."""
    no_mode = random_ring(5, np.random.default_rng(0), "uniform", 0.5, 4.0)
    assert not spectral_report(no_mode).has_minus_one
    carries = ring([0.558, 3.346, 3.695])  # unit-pair triangle
    assert spectral_report(carries).has_minus_one


def test_damping_shrinks_minus_one():
    g = ring([1.0, 2.0, 1.0, 2.0])
    rep = spectral_report(g)
    assert rep.has_minus_one
    assert rep.damped_rho(0.3) < 1.0


def test_prediction_vs_measurement_same_ballpark():
    g = random_ring(5, np.random.default_rng(3), "uniform", 0.5, 4.0)
    rep = spectral_report(g)
    raw = proportional_response(g, max_iters=400_000, tol=1e-10)
    pred = predicted_iterations(rep.rho, 1e-10)
    assert raw.iterations <= 8 * pred + 50
    assert pred <= 8 * raw.iterations + 50


def test_predicted_iterations_edge_cases():
    assert predicted_iterations(0.0, 1e-10) == 1.0
    assert predicted_iterations(1.0, 1e-10) == float("inf")
    assert predicted_iterations(0.5, 1e-3) == pytest.approx(np.log(1e-3) / np.log(0.5))


def test_jacobian_rejects_zero_utility():
    g = path([0.0, 0.0, 1.0])
    with pytest.raises(ReproError):
        dynamics_jacobian(g)
