"""Tests for table rendering and JSON serialization."""

from fractions import Fraction

import pytest

from repro.exceptions import ReproError
from repro.graphs import ring
from repro.io import (
    dump_graph,
    dump_result,
    format_float,
    format_table,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_result,
)


def test_format_float_regimes():
    assert format_float(None) == "-"
    assert format_float(3) == "3"
    assert format_float(0.0) == "0"
    assert format_float(1.5) == "1.5"
    assert format_float(1e-9) == "1.0000e-09"
    assert format_float(1e12) == "1.0000e+12"
    assert format_float(True) == "True"
    assert format_float("text") == "text"


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) == {"-"}
    assert len(lines) == 5


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_graph_roundtrip_fraction_weights():
    g = ring([Fraction(1, 3), Fraction(2, 7), 5])
    d = graph_to_dict(g)
    g2 = graph_from_dict(d)
    assert g2 == g
    assert g2.weights[0] == Fraction(1, 3)


def test_graph_roundtrip_float_weights_bit_exact():
    g = ring([0.1, 0.2, 0.30000000000000004])
    g2 = graph_from_dict(graph_to_dict(g))
    assert g2.weights == g.weights  # hex round-trip is bit exact


def test_graph_file_roundtrip(tmp_path):
    g = ring([1, 2, 3, 4])
    path = str(tmp_path / "g.json")
    dump_graph(g, path)
    assert load_graph(path) == g


def test_graph_from_dict_missing_field():
    with pytest.raises(ReproError):
        graph_from_dict({"n": 2})


def test_bad_scalar_encoding():
    with pytest.raises(ReproError):
        graph_from_dict({"n": 1, "edges": [], "weights": [{"mystery": 1}]})


def test_network_roundtrip_preserves_arcs_and_drops_flow():
    import json
    import math

    from repro.engine import SOLVERS
    from repro.io import network_from_dict, network_to_dict
    from repro.flow.network import FlowNetwork

    net = FlowNetwork(4)
    net.add_edge(0, 1, 0.30000000000000004)
    net.add_edge(0, 2, math.inf)
    net.add_edge(1, 3, Fraction(2, 7))
    net.add_edge(2, 3, 5)
    net.add_edge(0, 1, 1.5)  # parallel arc: construction order must survive
    SOLVERS.get("dinic").fn(net, 0, 3, 0.0)  # route some flow

    d = network_to_dict(net)
    json.dumps(d)  # JSON-safe even with inf (hex-encoded) and Fractions
    again = network_from_dict(d)

    assert again.n == net.n and again.num_arcs == net.num_arcs
    for arc in range(0, net.num_arcs, 2):
        assert again.head[arc] == net.head[arc]
        assert again.orig_cap[arc] == net.orig_cap[arc]
        # routed flow was deliberately dropped: pristine residuals
        assert again.cap[arc] == again.orig_cap[arc]
        assert again.flow_on(arc) == 0 or again.flow_on(arc) == 0.0


def test_network_from_dict_missing_field():
    from repro.io import network_from_dict

    with pytest.raises(ReproError):
        network_from_dict({"n": 3})


def test_result_roundtrip(tmp_path):
    path = str(tmp_path / "r.json")
    dump_result({"zeta": 1.99, "fraction": Fraction(1, 3)}, path)
    loaded = load_result(path)
    assert loaded["zeta"] == 1.99
    assert abs(loaded["fraction"] - 1 / 3) < 1e-12
