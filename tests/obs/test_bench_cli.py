"""repro-bench CLI: exit codes, file outputs, compare gating."""

import json

import pytest

from repro.obs.cli import main


def test_list_names_every_case(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "decompose_float_n8" in out
    assert "[flow]" in out


def test_run_writes_default_named_report(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    rc = main(["run", "--tag", "t1", "--only", "maxflow_dinic", "--rounds", "1"])
    assert rc == 0
    report = json.loads((tmp_path / "BENCH_t1.json").read_text())
    assert report["tag"] == "t1"
    assert list(report["benchmarks"]) == ["maxflow_dinic_n40"]
    assert "wrote BENCH_t1.json" in capsys.readouterr().out


def test_run_explicit_out_and_solver(tmp_path):
    out = tmp_path / "custom.json"
    rc = main(["run", "--only", "maxflow_edmonds_karp", "--rounds", "1",
               "--solver", "edmonds_karp", "--out", str(out)])
    assert rc == 0
    assert json.loads(out.read_text())["solver"] == "edmonds_karp"


def test_run_unknown_filter_exits_2(capsys):
    assert main(["run", "--only", "nonexistent-case"]) == 2
    assert "error" in capsys.readouterr().err


def test_compare_identical_exits_0(tmp_path, capsys):
    out = tmp_path / "b.json"
    main(["run", "--only", "maxflow_dinic", "--rounds", "1", "--out", str(out)])
    capsys.readouterr()
    assert main(["compare", str(out), str(out)]) == 0
    assert "== OK" in capsys.readouterr().out


def test_compare_regression_exits_1(tmp_path, capsys):
    base = tmp_path / "base.json"
    main(["run", "--only", "maxflow_dinic", "--rounds", "1", "--out", str(base)])
    slow_report = json.loads(base.read_text())
    slow_report["benchmarks"]["maxflow_dinic_n40"]["wall_s"] *= 3.0
    slow = tmp_path / "slow.json"
    slow.write_text(json.dumps(slow_report))
    capsys.readouterr()
    assert main(["compare", str(base), str(slow), "--threshold", "25"]) == 1
    assert "REGRESSED" in capsys.readouterr().out
    # A threshold above the injected 3x slowdown passes.
    assert main(["compare", str(base), str(slow), "--threshold", "300"]) == 0


def test_compare_subset_needs_allow_missing(tmp_path, capsys):
    full = tmp_path / "full.json"
    sub = tmp_path / "sub.json"
    main(["run", "--only", "maxflow", "--rounds", "1", "--out", str(full)])
    main(["run", "--only", "maxflow_dinic", "--rounds", "1", "--out", str(sub)])
    capsys.readouterr()
    assert main(["compare", str(full), str(sub), "--threshold", "300"]) == 1
    assert main(["compare", str(full), str(sub), "--threshold", "300",
                 "--allow-missing"]) == 0


def test_compare_unreadable_file_exits_2(tmp_path, capsys):
    good = tmp_path / "g.json"
    main(["run", "--only", "maxflow_dinic", "--rounds", "1", "--out", str(good)])
    assert main(["compare", str(good), str(tmp_path / "nope.json")]) == 2
    assert "error" in capsys.readouterr().err


def test_requires_a_subcommand(capsys):
    with pytest.raises(SystemExit):
        main([])
