"""BENCH_*.json schema stability: round-trip, fingerprint, compare gate."""

import copy
import json

import pytest

# NB: ``bench_names`` is aliased on import -- the repo's pytest config
# collects ``bench_*`` functions (the pytest-benchmark suite convention).
from repro.obs.bench import (
    BENCH_FORMAT,
    BENCH_SUITE,
    BenchError,
    compare_reports,
    format_compare,
    load_report,
    run_bench,
    save_report,
    select_cases,
)
from repro.obs.bench import bench_names as _names

#: One cheap case per group so schema tests stay fast.
FAST_SUBSET = ["decompose_float_n8", "maxflow_dinic_n40", "best_response_n6"]


@pytest.fixture(scope="module")
def report():
    return run_bench(tag="test", only=FAST_SUBSET, rounds=1)


def test_schema_top_level_fields(report):
    assert report["format"] == BENCH_FORMAT
    assert report["tag"] == "test"
    assert report["rounds"] == 1
    assert isinstance(report["created_utc"], str)
    assert set(report["benchmarks"]) == set(FAST_SUBSET)
    assert report["totals"]["wall_s"] == pytest.approx(
        sum(b["wall_s"] for b in report["benchmarks"].values())
    )


def test_schema_fingerprint_fields(report):
    fp = report["fingerprint"]
    for key in ("python", "implementation", "platform", "machine", "numpy", "repro"):
        assert fp[key], f"fingerprint missing {key}"


def test_schema_per_benchmark_fields(report):
    for name, b in report["benchmarks"].items():
        assert b["group"] in {"core", "attack", "flow", "experiment"}
        assert b["wall_s"] > 0
        assert isinstance(b["counters"], dict)
        assert isinstance(b["spans"], dict)
        assert "phase_seconds" not in b["counters"]  # hoisted to its own key
    decomp = report["benchmarks"]["decompose_float_n8"]
    assert decomp["counters"]["decompositions"] == 1
    assert "decompose" in decomp["spans"]


def test_report_round_trips_through_json(tmp_path, report):
    path = tmp_path / "BENCH_test.json"
    save_report(report, str(path))
    loaded = load_report(str(path))
    assert loaded == json.loads(json.dumps(report))  # tuple/list normalised
    assert loaded["benchmarks"].keys() == report["benchmarks"].keys()


def test_load_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"format\": \"something-else\"}")
    with pytest.raises(BenchError):
        load_report(str(bad))
    missing = tmp_path / "missing.json"
    with pytest.raises(BenchError):
        load_report(str(missing))


def test_compare_identical_reports_pass(report):
    result = compare_reports(report, report)
    assert result["ok"]
    assert result["regressions"] == []
    assert result["missing"] == []
    assert result["counter_drift"] == []
    assert "OK" in format_compare(result)


def test_compare_flags_injected_slowdown(report):
    slow = copy.deepcopy(report)
    slow["benchmarks"]["decompose_float_n8"]["wall_s"] *= 2.0
    result = compare_reports(report, slow, threshold_pct=25.0)
    assert not result["ok"]
    assert result["regressions"] == ["decompose_float_n8"]
    assert "REGRESSED" in format_compare(result)
    # ... but a generous threshold lets the same diff through.
    assert compare_reports(report, slow, threshold_pct=150.0)["ok"]


def test_compare_flags_missing_benchmark(report):
    shrunk = copy.deepcopy(report)
    del shrunk["benchmarks"]["maxflow_dinic_n40"]
    result = compare_reports(report, shrunk)
    assert not result["ok"]
    assert result["missing"] == ["maxflow_dinic_n40"]
    # A deliberate subset run opts out of the missing-benchmark gate.
    assert compare_reports(report, shrunk, allow_missing=True)["ok"]
    # The reverse direction (new benchmark, no baseline) is informational.
    result = compare_reports(shrunk, report)
    assert result["ok"]
    assert result["added"] == ["maxflow_dinic_n40"]


def test_compare_counter_drift_reported_not_fatal_by_default(report):
    drifted = copy.deepcopy(report)
    drifted["benchmarks"]["decompose_float_n8"]["counters"]["flow_calls"] += 1
    result = compare_reports(report, drifted)
    assert result["ok"]
    assert result["counter_drift"] == ["decompose_float_n8"]
    strict = compare_reports(report, drifted, fail_on_counters=True)
    assert not strict["ok"]


def test_compare_rejects_format_mismatch(report):
    alien = copy.deepcopy(report)
    alien["format"] = "repro-bench/999"
    with pytest.raises(BenchError):
        compare_reports(report, alien)
    with pytest.raises(BenchError):
        compare_reports(alien, report)


def test_select_cases_filters_and_validates():
    assert [c.name for c in select_cases(None)] == _names()
    subset = select_cases(["maxflow"])
    assert subset and all("maxflow" in c.name for c in subset)
    with pytest.raises(BenchError):
        select_cases(["no-such-benchmark"])


def test_counters_deterministic_across_rounds():
    # Counter totals must be a pure function of the workload: two separate
    # runs of the same case agree exactly (wall time may differ).
    a = run_bench(only=["decompose_float_n32"], rounds=1)
    b = run_bench(only=["decompose_float_n32"], rounds=2)
    assert (a["benchmarks"]["decompose_float_n32"]["counters"]
            == b["benchmarks"]["decompose_float_n32"]["counters"])


def test_rounds_must_be_positive():
    with pytest.raises(BenchError):
        run_bench(rounds=0)


def test_suite_names_are_unique():
    names = _names()
    assert len(names) == len(set(names))
    assert len(BENCH_SUITE) >= 12
