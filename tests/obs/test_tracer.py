"""Tracer: hierarchical paths, exception safety, aggregation, merging."""

import time

import pytest

from repro.engine import NULL_SPAN, EngineContext
from repro.obs import Tracer


def test_flat_span_records_count_and_time():
    t = Tracer()
    with t.span("work"):
        time.sleep(0.01)
    snap = t.snapshot()
    assert set(snap) == {"work"}
    assert snap["work"]["count"] == 1
    assert snap["work"]["total_s"] >= 0.01
    assert snap["work"]["self_s"] == pytest.approx(snap["work"]["total_s"])


def test_nested_spans_build_slash_paths():
    t = Tracer()
    with t.span("outer"):
        with t.span("inner"):
            pass
        with t.span("inner"):
            pass
    snap = t.snapshot()
    assert set(snap) == {"outer", "outer/inner"}
    assert snap["outer"]["count"] == 1
    assert snap["outer/inner"]["count"] == 2


def test_self_time_excludes_children():
    t = Tracer()
    with t.span("outer"):
        time.sleep(0.01)
        with t.span("inner"):
            time.sleep(0.02)
    snap = t.snapshot()
    outer, inner = snap["outer"], snap["outer/inner"]
    assert outer["total_s"] >= inner["total_s"]
    assert outer["self_s"] <= outer["total_s"] - inner["total_s"] + 1e-3
    assert outer["self_s"] >= 0.01 - 1e-4


def test_exception_pops_span_stack():
    t = Tracer()
    with pytest.raises(ValueError):
        with t.span("outer"):
            with t.span("boom"):
                raise ValueError("x")
    # Both spans were closed despite the exception; the stack is clean,
    # so a subsequent span is top-level, not a child of "outer".
    with t.span("after"):
        pass
    snap = t.snapshot()
    assert set(snap) == {"outer", "outer/boom", "after"}
    assert snap["outer"]["count"] == 1
    assert snap["outer/boom"]["count"] == 1


def test_recursion_extends_the_path():
    t = Tracer()

    def rec(depth):
        with t.span("a"):
            if depth:
                rec(depth - 1)

    rec(2)
    snap = t.snapshot()
    assert set(snap) == {"a", "a/a", "a/a/a"}
    assert all(snap[p]["count"] == 1 for p in snap)


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    with t.span("work"):
        pass
    assert t.snapshot() == {}


def test_merge_snapshot_accumulates():
    a, b = Tracer(), Tracer()
    for t in (a, b):
        with t.span("x"):
            pass
    merged = a.snapshot()
    a.merge_snapshot(b.snapshot())
    snap = a.snapshot()
    assert snap["x"]["count"] == 2
    assert snap["x"]["total_s"] >= merged["x"]["total_s"]
    # Merging a path the target has never seen creates it.
    a.merge_snapshot({"fresh": {"count": 3, "total_s": 1.0, "self_s": 0.5}})
    assert a.snapshot()["fresh"] == {"count": 3, "total_s": 1.0, "self_s": 0.5}


def test_reset_clears_spans_but_not_open_stack_confusion():
    t = Tracer()
    with t.span("x"):
        pass
    t.reset()
    assert t.snapshot() == {}


def test_context_without_tracer_returns_null_span():
    ctx = EngineContext()
    assert ctx.span("anything") is NULL_SPAN
    # NULL_SPAN is a working no-op context manager.
    with ctx.span("anything"):
        pass


def test_context_with_tracer_routes_spans():
    ctx = EngineContext()
    ctx.tracer = Tracer()
    with ctx.span("phase"):
        pass
    assert ctx.stats()["spans"]["phase"]["count"] == 1


def test_stats_spans_empty_without_tracer():
    assert EngineContext().stats()["spans"] == {}
