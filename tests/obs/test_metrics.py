"""The cross-process metrics drain protocol: register/drain/absorb."""

import numpy as np
import pytest

from repro.engine import EngineContext, EngineSpec
from repro.graphs import random_ring
from repro.obs import Tracer
from repro.obs.metrics import (
    absorb_metrics,
    diff_counter_snapshots,
    drain_worker_metrics,
    register_worker_context,
    sync_worker_metrics,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test starts and ends with drained (empty-delta) sources."""
    sync_worker_metrics()
    yield
    sync_worker_metrics()


def _work(ctx):
    from repro.core import bottleneck_decomposition

    g = random_ring(6, np.random.default_rng(0))
    return bottleneck_decomposition(g, ctx=ctx)


def test_drain_reports_only_new_work():
    ctx = EngineContext(cache_size=0)
    register_worker_context(ctx)
    sync_worker_metrics()
    _work(ctx)
    delta = drain_worker_metrics()
    assert delta is not None
    assert delta["counters"]["decompositions"] == 1
    assert delta["counters"]["flow_calls"] >= 1
    # A second drain with no new work reports nothing.
    assert drain_worker_metrics() is None


def test_register_is_idempotent():
    ctx = EngineContext(cache_size=0)
    register_worker_context(ctx)
    register_worker_context(ctx)
    sync_worker_metrics()
    _work(ctx)
    delta = drain_worker_metrics()
    assert delta["counters"]["decompositions"] == 1  # not double-counted


def test_sync_discards_pending_deltas():
    ctx = EngineContext(cache_size=0)
    register_worker_context(ctx)
    _work(ctx)
    sync_worker_metrics()
    assert drain_worker_metrics() is None


def test_drain_includes_tracer_spans():
    ctx = EngineContext(cache_size=0)
    ctx.tracer = Tracer()
    register_worker_context(ctx)
    sync_worker_metrics()
    _work(ctx)
    delta = drain_worker_metrics()
    assert "decompose" in delta["spans"]
    assert delta["spans"]["decompose"]["count"] == 1


def test_absorb_into_parent_context():
    worker = EngineContext(cache_size=0)
    worker.tracer = Tracer()
    register_worker_context(worker)
    sync_worker_metrics()
    _work(worker)
    delta = drain_worker_metrics()

    parent = EngineContext()
    parent.tracer = Tracer()
    absorb_metrics(delta, counters=parent.counters, tracer=parent.tracer)
    assert parent.counters.decompositions == 1
    assert parent.counters.flow_calls == worker.counters.flow_calls
    assert parent.tracer.snapshot()["decompose"]["count"] == 1


def test_absorb_none_is_noop():
    parent = EngineContext()
    absorb_metrics(None, counters=parent.counters)
    assert parent.counters.decompositions == 0


def test_diff_counter_snapshots_drops_zeros_and_diffs_phases():
    cur = {"flow_calls": 5, "decompositions": 0,
           "phase_seconds": {"decompose": 1.5, "allocate": 0.5}}
    last = {"flow_calls": 2, "decompositions": 0,
            "phase_seconds": {"decompose": 1.0}}
    d = diff_counter_snapshots(cur, last)
    assert d["flow_calls"] == 3
    assert "decompositions" not in d
    assert d["phase_seconds"]["decompose"] == pytest.approx(0.5)
    assert d["phase_seconds"]["allocate"] == pytest.approx(0.5)


def test_spec_rebuild_registers_for_draining():
    # The worker-side path: a context rebuilt from a spec inside
    # _context_for must participate in the drain protocol.
    from repro.analysis.parallel import _WORKER_CONTEXTS, _context_for

    spec = EngineContext(cache_size=0).spec()
    _WORKER_CONTEXTS.pop(spec, None)
    ctx = _context_for(spec)
    sync_worker_metrics()
    _work(ctx)
    delta = drain_worker_metrics()
    assert delta is not None and delta["counters"]["decompositions"] == 1
    _WORKER_CONTEXTS.pop(spec, None)
