"""Tests for the numeric backend adapters."""

import math
from fractions import Fraction

import pytest

from repro.numeric import (
    DEFAULT_TOL,
    EXACT,
    FLOAT,
    as_fraction,
    as_fractions,
    make_float_backend,
)


def test_as_fraction_int_and_fraction():
    assert as_fraction(3) == Fraction(3)
    assert as_fraction(Fraction(1, 3)) == Fraction(1, 3)


def test_as_fraction_float_limits_denominator():
    f = as_fraction(0.1)
    assert f == Fraction(1, 10)  # limit_denominator snaps to the nice value


def test_as_fraction_rejects_non_finite():
    with pytest.raises(ValueError):
        as_fraction(float("nan"))
    with pytest.raises(ValueError):
        as_fraction(math.inf)
    with pytest.raises(TypeError):
        as_fraction("0.5")


def test_as_fractions():
    assert as_fractions([1, 2]) == [Fraction(1), Fraction(2)]


def test_exact_backend_properties():
    assert EXACT.is_exact
    assert EXACT.scalar(0.5) == Fraction(1, 2)
    assert EXACT.eq(Fraction(1, 3), Fraction(1, 3))
    assert not EXACT.eq(Fraction(1, 3), Fraction(1, 3) + Fraction(1, 10**12))
    assert EXACT.lt(Fraction(1), Fraction(2))
    assert EXACT.total([Fraction(1, 2), Fraction(1, 3)]) == Fraction(5, 6)


def test_float_backend_tolerant_comparisons():
    assert not FLOAT.is_exact
    assert FLOAT.eq(1.0, 1.0 + DEFAULT_TOL / 2)
    assert not FLOAT.eq(1.0, 1.0 + DEFAULT_TOL * 10)
    assert FLOAT.lt(1.0, 1.1)
    assert not FLOAT.lt(1.0, 1.0 + DEFAULT_TOL / 2)
    assert FLOAT.le(1.0 + DEFAULT_TOL / 2, 1.0)
    assert FLOAT.ge(1.0, 1.0)
    assert FLOAT.gt(1.1, 1.0)
    assert FLOAT.is_zero(DEFAULT_TOL / 2)
    assert FLOAT.nonneg(-DEFAULT_TOL / 2)
    assert not FLOAT.nonneg(-1.0)


def test_float_backend_scalar_conversion():
    assert FLOAT.scalar(Fraction(1, 2)) == 0.5
    assert FLOAT.scalars([1, 2]) == [1.0, 2.0]


def test_make_float_backend():
    b = make_float_backend(1e-6)
    assert b.tol == 1e-6
    assert "1e-06" in b.name
    assert b.eq(1.0, 1.0 + 5e-7)
    with pytest.raises(ValueError):
        make_float_backend(0.0)
    with pytest.raises(ValueError):
        make_float_backend(float("inf"))


def test_total_preserves_exactness():
    total = EXACT.total([Fraction(1, 3)] * 3)
    assert total == 1 and isinstance(total, Fraction)
