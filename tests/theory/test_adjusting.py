"""Tests for the standalone Adjusting Technique implementation."""

import numpy as np
import pytest

from repro.attack import honest_split
from repro.exceptions import AttackError
from repro.graphs import random_ring, ring
from repro.numeric import FLOAT
from repro.theory import adjusting_technique, same_pair


def test_noop_when_endpoints_in_different_pairs():
    # lower-bound-style ring: endpoints separate immediately
    g = ring([1.0, 1.0, 0.01, 0.01, 100.0])
    w1, w2 = honest_split(g, 1, FLOAT)
    if not same_pair(g, 1, w1, w2, FLOAT):
        adj = adjusting_technique(g, 1, w1, w2, w2 * 0.5)
        assert not adj.applied
        assert adj.z == 0
        assert adj.w1 == w1 and adj.w2 == w2


def test_uniform_ring_critical_point_is_the_start():
    # uniform odd ring: the symmetric honest split sits exactly at the
    # regime boundary (any slide breaks the unit pair), so the critical z
    # is 0 and the start is unchanged
    g = ring([2.0] * 5)
    w1, w2 = honest_split(g, 0, FLOAT)
    assert same_pair(g, 0, w1, w2, FLOAT)
    adj = adjusting_technique(g, 0, w1, w2, float(w2) * 0.25)
    assert float(adj.z) <= 1e-9
    assert adj.utility_invariant


def test_mixed_membership_shared_pair_is_not_slid():
    # zero-weight endpoint absorbed into B while the other is C (Case C-2
    # shape): the slide is not neutral and must not be applied
    import numpy as np
    from repro.graphs import random_ring as _rr

    rng = np.random.default_rng(3)
    g = _rr(int(rng.integers(3, 8)), rng, "integer", 1, 9)
    gf = g.with_weights([float(w) for w in g.weights])
    v = int(rng.integers(0, g.n))
    w1, w2 = honest_split(gf, v, FLOAT)
    adj = adjusting_technique(gf, v, w1, w2, float(w2) * 0.5)
    assert adj.utility_invariant  # either unapplied or genuinely neutral


def test_rejects_backward_slide():
    g = ring([2.0] * 5)
    w1, w2 = honest_split(g, 0, FLOAT)
    with pytest.raises(AttackError):
        adjusting_technique(g, 0, w1, w2, float(w2) + 1.0)


@pytest.mark.parametrize("seed", range(5))
def test_slide_is_always_utility_invariant(seed):
    rng = np.random.default_rng(seed)
    g = random_ring(int(rng.integers(3, 8)), rng, "integer", 1, 9)
    gf = g.with_weights([float(w) for w in g.weights])
    v = int(rng.integers(0, g.n))
    w1, w2 = honest_split(gf, v, FLOAT)
    adj = adjusting_technique(gf, v, w1, w2, float(w2) * 0.5)
    assert adj.utility_invariant
    assert 0 <= float(adj.z) <= float(w2) * 0.5 + 1e-9
    assert float(adj.w1) + float(adj.w2) == pytest.approx(float(w1) + float(w2))
