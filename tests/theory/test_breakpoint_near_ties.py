"""Breakpoint endpoint handling at float near-ties, plus the corpus replay
that motivated it (decomposition-09f79b9c8cc3).

A breakpoint refined to within float noise of a probe point (or of the
interval ends) yields a sliver regime narrower than the bisection
resolution; its midpoint evaluation then flaps between the neighbors'
signatures.  ``sweep_regimes`` dedupes such cuts within ``zero_tol``
(default: the bisection ``gap``).  The corpus record is the same disease
one layer down: a true float decomposition whose adjacent alphas are
one-ulp *inverted*, which the strict-increase reconstruction check must
reject (sound fallback) while the decomposition itself remains valid.
"""

import json

from repro.core import bd_allocation, bottleneck_decomposition
from repro.core.incremental import reconstruct_decomposition
from repro.engine import EngineContext
from repro.exceptions import DecompositionError
from repro.io.serialization import graph_from_dict
from repro.numeric import EXACT, FLOAT
from repro.theory.breakpoints import sweep_regimes

import pytest


def _sliver_evaluate(width):
    """Signature function on [0, 1] with a sliver regime of ``width``
    hanging just inside the right endpoint."""
    b = 1.0 - width

    def evaluate(x):
        return ("A",) if float(x) < b else ("B",)

    return evaluate


def test_near_tie_cut_at_endpoint_is_deduped():
    # breakpoint one sliver-width inside hi: far below the bisection
    # resolution, so the dedupe folds it into the endpoint
    regimes = sweep_regimes(_sliver_evaluate(1e-12), 0.0, 1.0, probes=8)
    assert len(regimes) == 1
    assert float(regimes[0].lo) == 0.0 and float(regimes[0].hi) == 1.0


def test_zero_tol_widens_the_dedupe():
    # a breakpoint 1e-6 inside hi is comfortably resolvable, so by default
    # it is kept...
    regimes = sweep_regimes(_sliver_evaluate(1e-6), 0.0, 1.0, probes=8)
    assert [r.signature for r in regimes] == [("A",), ("B",)]
    assert float(regimes[1].hi - regimes[1].lo) == pytest.approx(1e-6, rel=1e-2)
    # ...and an explicit zero_tol above it folds it into the endpoint
    regimes = sweep_regimes(
        _sliver_evaluate(1e-6), 0.0, 1.0, probes=8, zero_tol=1e-5
    )
    assert len(regimes) == 1
    assert float(regimes[0].lo) == 0.0 and float(regimes[0].hi) == 1.0


def test_wide_regimes_are_untouched_and_contiguous():
    def evaluate(x):
        return ("A",) if float(x) < 0.4 else ("B",)

    regimes = sweep_regimes(evaluate, 0.0, 1.0, probes=16)
    assert [r.signature for r in regimes] == [("A",), ("B",)]
    assert float(regimes[0].lo) == 0.0
    assert float(regimes[-1].hi) == 1.0
    assert regimes[0].hi == regimes[1].lo  # no gap, no overlap
    assert abs(float(regimes[0].hi) - 0.4) < 1e-8


def test_exact_backend_drops_nothing_inexactly():
    from fractions import Fraction

    def evaluate(x):
        # breakpoint at 1 - 1/2**40: tiny but exactly representable
        return ("A",) if x < 1 - Fraction(1, 2**40) else ("B",)

    regimes = sweep_regimes(
        evaluate, 0, 1, probes=8, gap=1e-15, backend=EXACT
    )
    # exact sweeps keep even sliver regimes: rationals don't flap
    assert [r.signature for r in regimes] == [("A",), ("B",)]


# -- corpus replay ----------------------------------------------------------

def _corpus_graph():
    rec = json.load(open("corpus/decomposition-09f79b9c8cc3.json"))
    return graph_from_dict(rec["payload"]["graph"])


def test_corpus_09f79b9c8cc3_has_ulp_inverted_alphas():
    g = _corpus_graph()
    alphas = bottleneck_decomposition(g, FLOAT).alphas()
    assert len(alphas) == 2
    # adjacent alphas are equal-to-the-eye but one ulp *decreasing*: the
    # instance sits on a breakpoint closer than float resolution
    assert alphas[1] < alphas[0]
    assert alphas[0] - alphas[1] < 1e-15


def test_corpus_09f79b9c8cc3_reconstruction_falls_back_soundly():
    g = _corpus_graph()
    d = bottleneck_decomposition(g, FLOAT)
    # strict-increase check rejects the ulp inversion: a reconstruction
    # from this hint must never be accepted silently...
    with pytest.raises(DecompositionError, match="not increasing"):
        reconstruct_decomposition(g, d, FLOAT)
    # ...and the engines still agree bit-for-bit on the full solve (the
    # sweep's fallback path), so the miss costs time, never correctness
    uc = bd_allocation(g, backend=FLOAT, ctx=EngineContext(engine="classic"))
    uk = bd_allocation(g, backend=FLOAT, ctx=EngineContext(engine="columnar"))
    assert [repr(x) for x in uc.utilities] == [repr(x) for x in uk.utilities]
