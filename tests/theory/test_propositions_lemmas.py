"""Tests for the executable proposition/lemma checkers."""

import numpy as np
import pytest

from repro.attack import lower_bound_ring
from repro.graphs import path, random_connected_graph, random_ring, ring, star
from repro.numeric import EXACT, FLOAT
from repro.theory import (
    adjusting_technique,
    check_lemma9,
    check_lemma13,
    check_proposition3,
    check_proposition6,
    check_proposition11,
    check_proposition12,
    check_stage_lemmas,
    check_theorem8,
    check_theorem10,
    same_pair,
)


@pytest.mark.parametrize("seed", range(8))
def test_proposition3_random_graphs(seed):
    rng = np.random.default_rng(seed)
    g = random_connected_graph(int(rng.integers(3, 9)), 3, rng, "integer", 1, 9)
    assert check_proposition3(g, EXACT).ok


def test_proposition3_reports_data():
    res = check_proposition3(star(10, [1, 1, 1]), EXACT)
    assert res.ok and res.data["k"] == 1
    assert bool(res) is True


@pytest.mark.parametrize("seed", range(4))
def test_proposition6_random_rings(seed):
    rng = np.random.default_rng(seed)
    g = random_ring(int(rng.integers(3, 8)), rng, "uniform", 0.5, 4.0)
    res = check_proposition6(g)
    assert res.ok, res.details


def test_proposition11_cases():
    assert check_proposition11(star(10, [1, 1, 1]), 0, backend=EXACT).data["case"] == "B-3"
    assert check_proposition11(star(10, [1, 1, 1]), 1, backend=EXACT).data["case"] == "B-1"


@pytest.mark.parametrize("seed", range(6))
def test_proposition11_random_rings(seed):
    rng = np.random.default_rng(seed)
    g = random_ring(int(rng.integers(3, 7)), rng, "integer", 1, 9)
    v = int(rng.integers(0, g.n))
    res = check_proposition11(g, v, samples=17, backend=EXACT)
    assert res.ok, res.details


@pytest.mark.parametrize("seed", range(6))
def test_proposition12_random_rings(seed):
    rng = np.random.default_rng(100 + seed)
    g = random_ring(int(rng.integers(3, 7)), rng, "loguniform", 0.1, 10)
    v = int(rng.integers(0, g.n))
    res = check_proposition12(g, v, probes=17)
    assert res.ok, res.details


@pytest.mark.parametrize("seed", range(6))
def test_lemma9_random_rings(seed):
    rng = np.random.default_rng(seed)
    g = random_ring(int(rng.integers(3, 8)), rng, "integer", 1, 9)
    res = check_lemma9(g, int(rng.integers(0, g.n)), EXACT)
    assert res.ok, res.details


def test_lemma13_star_center_sweep():
    g = star(10, [1, 1, 1])
    # center is C class on [1, 2]: leaves' pair (alpha < alpha_v) protected
    res = check_lemma13(g, 0, 1, 2, EXACT)
    assert res.ok, res.details


@pytest.mark.parametrize("seed", range(5))
def test_lemma13_random_rings(seed):
    rng = np.random.default_rng(200 + seed)
    g = random_ring(int(rng.integers(4, 8)), rng, "integer", 1, 9)
    v = int(rng.integers(0, g.n))
    wv = g.weights[v]
    res = check_lemma13(g, v, wv / 2, wv, EXACT)
    assert res.ok, res.details


def test_theorem10_examples():
    assert check_theorem10(star(10, [1, 1, 1]), 0, backend=EXACT).ok
    assert check_theorem10(ring([3, 1, 2, 5]), 2, backend=EXACT).ok


def test_theorem8_lower_bound_family_obeys_bound():
    res = check_theorem8(lower_bound_ring(100), grid=48)
    assert res.ok
    assert res.data["zeta"] > 1.9  # tight but not above 2


def test_adjusting_technique_noop_when_pairs_differ():
    g = lower_bound_ring(100)
    from repro.attack import honest_split

    w1, w2 = honest_split(g, 1, FLOAT)
    adj = adjusting_technique(g, 1, w1, w2, w2 * 0.5)
    # whether applied or not, invariance must hold
    assert adj.utility_invariant


def test_same_pair_predicate():
    g = ring([1.0, 1.0, 1.0, 1.0])
    # uniform even ring: symmetric split keeps both ends in the unit pair
    assert same_pair(g, 0, 0.5, 0.5)


def test_stage_lemmas_named_by_class():
    g = lower_bound_ring(50)
    rep, verdict = check_stage_lemmas(g, 1, grid=32)
    assert "B class" in verdict.name


@pytest.mark.parametrize("seed", range(8))
def test_lemma15_21_random_rings(seed):
    from repro.theory import check_lemma15

    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 9))
    g = random_ring(n, rng, "loguniform", 0.05, 20)
    for v in range(n):
        res = check_lemma15(g, v)
        assert res.ok, f"v={v}: {res.details}"


def test_lemma15_nontrivial_case_exists():
    """At least one instance in a seeded family actually exercises the
    split (not just the empty precondition)."""
    from repro.theory import check_lemma15

    nontrivial = 0
    for seed in range(10):
        rng = np.random.default_rng(seed)
        g = random_ring(int(rng.integers(3, 8)), rng, "loguniform", 0.05, 20)
        for v in range(g.n):
            res = check_lemma15(g, v)
            if "precondition" not in res.details:
                nontrivial += 1
    assert nontrivial > 0
