"""Tests for the stage decomposition and initial-form classification."""

import numpy as np
import pytest

from repro.attack import lower_bound_ring
from repro.core import VertexClass
from repro.graphs import random_ring, ring
from repro.numeric import FLOAT
from repro.theory import (
    InitialForm,
    classify_initial_form,
    check_stage_lemmas,
    ring_class_of,
    stage_report,
)


def test_ring_class_uniform_ring_defaults_to_c():
    # unit pair: BOTH -> paper's convention picks C
    g = ring([1.0] * 5)
    assert ring_class_of(g, 0) is VertexClass.C


def test_ring_class_lower_bound_attacker_is_b():
    g = lower_bound_ring(100)
    assert ring_class_of(g, 1) is VertexClass.B


def test_ring_class_heavy_vs_light():
    # alternating heavy/light: lights are C? B1 = heavier side...
    g = ring([10.0, 1.0, 10.0, 1.0])
    # B class = the side whose alpha < 1 in B; heavy vertices give w*alpha
    cls_heavy = ring_class_of(g, 0)
    cls_light = ring_class_of(g, 1)
    assert {cls_heavy, cls_light} == {VertexClass.B, VertexClass.C}


def test_classify_initial_form_d1_for_b_class():
    g = lower_bound_ring(100)
    from repro.attack import honest_split

    w1, w2 = honest_split(g, 1, FLOAT)
    form = classify_initial_form(g, 1, float(w1), float(w2))
    assert form is InitialForm.D1


def test_classify_initial_form_c2_zero_weight_side():
    # C-class attacker with all weight on one side: v1 has w=0
    g = ring([10.0, 1.0, 10.0, 1.0])
    v = 1 if ring_class_of(g, 1) is VertexClass.C else 0
    form = classify_initial_form(g, v, 0.0, float(g.weights[v]))
    assert form in (InitialForm.C2, InitialForm.C3, InitialForm.C1)


def test_stage_report_lower_bound_family():
    g = lower_bound_ring(1000)
    rep = stage_report(g, 1, grid=64)
    assert rep.ring_class is VertexClass.B
    assert rep.initial_form is InitialForm.D1
    # the attack nearly doubles the utility: total gain ~ U_v
    assert rep.total_gain == pytest.approx(rep.honest_utility, rel=5e-3)
    assert all(rep.lemma_bounds().values())


def test_stage_report_total_gain_consistency():
    rng = np.random.default_rng(5)
    g = random_ring(6, rng, "loguniform", 0.1, 10)
    for v in range(3):
        rep = stage_report(g, v, grid=24)
        # sum of stage deltas telescopes to the total gain
        total = (rep.delta_v1_stage1 + rep.delta_v2_stage1
                 + rep.delta_v1_stage2 + rep.delta_v2_stage2)
        assert total == pytest.approx(rep.total_gain, abs=1e-6)


@pytest.mark.parametrize("seed", range(10))
def test_stage_lemmas_hold_on_random_rings(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 8))
    g = random_ring(n, rng, "loguniform", 0.05, 20)
    v = int(rng.integers(0, n))
    rep, verdict = check_stage_lemmas(g, v, grid=24)
    assert verdict.ok, f"{verdict.details}; report={rep}"


def test_stage_report_theorem8_consequence():
    """The stage bookkeeping reproduces Theorem 8: gain <= U_v."""
    rng = np.random.default_rng(17)
    for _ in range(5):
        g = random_ring(5, rng, "loguniform", 0.01, 100)
        for v in range(5):
            rep = stage_report(g, v, grid=24)
            assert rep.total_gain <= rep.honest_utility * (1 + 1e-6) + 1e-9
