"""Tests for regime sweeps (Section III-B interval partition)."""

from fractions import Fraction

import pytest

from repro.graphs import ring, star
from repro.numeric import EXACT, FLOAT
from repro.theory import (
    decomposition_signature,
    regimes_of_report,
    regimes_of_split,
    sweep_regimes,
)
from repro.core import bottleneck_decomposition


def test_signature_is_structural_only():
    g = ring([1, 2, 3])
    d = bottleneck_decomposition(g, EXACT)
    sig = decomposition_signature(d)
    # same structure with scaled weights -> same signature
    d2 = bottleneck_decomposition(ring([2, 4, 6]), EXACT)
    assert decomposition_signature(d2) == sig


def test_star_center_report_has_two_regimes():
    # star center: C class below x*=3 (B1 = leaves) and B class above;
    # the regime partition must find the breakpoint at 3 (alpha = 1 point
    # is a single-point regime absorbed into a boundary).
    g = star(10, [1, 1, 1])
    regimes = regimes_of_report(g, 0, probes=17, gap=1e-9, backend=FLOAT)
    assert len(regimes) >= 2
    # breakpoint detected near 3
    cuts = [float(r.hi) for r in regimes[:-1]]
    assert any(abs(c - 3.0) < 1e-6 for c in cuts)


def test_uniform_ring_single_regime():
    g = ring([1.0] * 5)
    regimes = regimes_of_report(g, 0, probes=9)
    # decomposition may change near x=0; structure is constant on most of
    # the interval
    assert len(regimes) <= 3


def test_exact_backend_regimes():
    g = star(Fraction(10), [1, 1, 1])
    regimes = regimes_of_report(g, 0, probes=9, gap=1e-6, backend=EXACT)
    assert len(regimes) >= 2
    # exact backend keeps Fractions through bisection
    assert isinstance(regimes[0].hi, Fraction)


def test_sweep_regimes_generic():
    calls = []

    def evaluate(x):
        calls.append(x)
        return ("lo",) if x < 0.37 else ("hi",)

    regimes = sweep_regimes(evaluate, 0.0, 1.0, probes=9, gap=1e-9, backend=FLOAT)
    assert len(regimes) == 2
    assert abs(float(regimes[0].hi) - 0.37) < 1e-6
    assert regimes[0].signature == ("lo",)
    assert regimes[1].signature == ("hi",)


def test_sweep_regimes_validates_input():
    with pytest.raises(ValueError):
        sweep_regimes(lambda x: (1,), 0, 1, probes=1)
    with pytest.raises(ValueError):
        sweep_regimes(lambda x: (1,), 1, 1)


def test_regimes_of_split_moving_choices():
    g = ring([2.0, 1.0, 1.0, 1.0])
    r1 = regimes_of_split(g, 0, moving="w1", fixed_value=0.5, probes=9)
    r2 = regimes_of_split(g, 0, moving="w2", fixed_value=0.5, probes=9)
    assert len(r1) >= 1 and len(r2) >= 1
    with pytest.raises(ValueError):
        regimes_of_split(g, 0, moving="w3")


def test_regime_representative_inside_interval():
    g = star(10, [1, 1, 1])
    for r in regimes_of_report(g, 0, probes=9):
        assert float(r.lo) <= float(r.representative) <= float(r.hi)
