"""Tests for ring/path ordering and the Sybil split primitive."""

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    cut_ring_at,
    path,
    path_endpoints,
    path_order,
    ring,
    ring_neighbors,
    ring_order,
)


def test_ring_order_starts_at_start_and_covers_all():
    g = ring([1] * 5)
    order = ring_order(g, start=2)
    assert order[0] == 2
    assert sorted(order) == [0, 1, 2, 3, 4]
    # consecutive entries are adjacent, and it closes the cycle
    for a, b in zip(order, order[1:] + [order[0]]):
        assert g.has_edge(a, b)


def test_ring_order_deterministic_direction():
    g = ring([1] * 4)
    assert ring_order(g, 0)[1] == min(g.neighbors(0))


def test_ring_order_requires_ring():
    with pytest.raises(GraphError):
        ring_order(path([1, 1, 1]))


def test_ring_neighbors():
    g = ring([1] * 4)
    assert ring_neighbors(g, 0) == (1, 3)


def test_path_order_endpoint_to_endpoint():
    g = path([1, 2, 3, 4])
    assert path_order(g) == [0, 1, 2, 3]
    assert path_endpoints(g) == (0, 3)


def test_path_order_requires_path():
    with pytest.raises(GraphError):
        path_order(ring([1, 1, 1]))


def test_cut_ring_at_structure():
    g = ring([10, 1, 2, 3])  # v=0, neighbors 1 and 3
    p, v1, v2 = cut_ring_at(g, 0, 4, 6)
    assert p.is_path_graph()
    assert p.n == 5
    assert (v1, v2) == (0, 4)
    # path order: v1 - u_a(=1) - 2 - u_b(=3) - v2
    assert p.weights == (4, 1, 2, 3, 6)
    assert p.labels == ("v0^1", "v1", "v2", "v3", "v0^2")


def test_cut_ring_preserves_interior_order_for_nonzero_vertex():
    g = ring([5, 6, 7, 8, 9])  # cut at v=2; neighbors 1 and 3
    p, v1, v2 = cut_ring_at(g, 2, 3, 4)
    # interior runs from u_a=1 around the ring away from v: 1, 0, 4, 3
    assert p.weights == (3, 6, 5, 9, 8, 4)
    assert p.labels[0] == "v2^1" and p.labels[-1] == "v2^2"


def test_cut_ring_total_weight_conserved_when_split_sums():
    g = ring([10, 1, 2, 3])
    p, _, _ = cut_ring_at(g, 0, 7, 3)
    assert sum(p.weights) == sum(g.weights)


def test_cut_ring_requires_ring():
    with pytest.raises(GraphError):
        cut_ring_at(path([1, 1, 1]), 0, 1, 1)


def test_cut_ring_allows_zero_endpoint_weights():
    g = ring([2, 1, 1])
    p, v1, v2 = cut_ring_at(g, 0, 0, 2)
    assert p.weights[v1] == 0 and p.weights[v2] == 2
