"""Unit tests for the core WeightedGraph structure."""

from fractions import Fraction

import pytest

from repro.exceptions import GraphError, InvalidWeightError
from repro.graphs import WeightedGraph, ring, path
from repro.numeric import EXACT, FLOAT


def test_basic_construction_and_accessors():
    g = WeightedGraph(3, [(0, 1), (1, 2)], [1, 2, 3])
    assert g.n == 3
    assert g.m == 2
    assert g.neighbors(1) == (0, 2)
    assert g.degree(0) == 1
    assert g.has_edge(0, 1) and g.has_edge(1, 0)
    assert not g.has_edge(0, 2)
    assert list(g.vertices()) == [0, 1, 2]


def test_edges_are_normalized_and_sorted():
    g = WeightedGraph(3, [(2, 1), (1, 0)], [1, 1, 1])
    assert g.edges == ((0, 1), (1, 2))


def test_default_labels():
    g = WeightedGraph(2, [(0, 1)], [1, 1])
    assert g.labels == ("v0", "v1")


def test_custom_labels_length_checked():
    with pytest.raises(GraphError):
        WeightedGraph(2, [(0, 1)], [1, 1], labels=["a"])


def test_rejects_self_loop():
    with pytest.raises(GraphError):
        WeightedGraph(2, [(0, 0)], [1, 1])


def test_rejects_duplicate_edge_either_orientation():
    with pytest.raises(GraphError):
        WeightedGraph(2, [(0, 1), (1, 0)], [1, 1])


def test_rejects_out_of_range_edge():
    with pytest.raises(GraphError):
        WeightedGraph(2, [(0, 5)], [1, 1])


def test_rejects_negative_weight():
    with pytest.raises(InvalidWeightError):
        WeightedGraph(1, [], [-1])


def test_rejects_nan_weight():
    with pytest.raises(InvalidWeightError):
        WeightedGraph(1, [], [float("nan")])


def test_rejects_wrong_weight_count():
    with pytest.raises(GraphError):
        WeightedGraph(2, [(0, 1)], [1])


def test_zero_weight_is_allowed():
    g = WeightedGraph(2, [(0, 1)], [0, 1])
    assert g.weights[0] == 0


def test_neighborhood_of_set_includes_internal_neighbors():
    # Gamma(S) may intersect S: on a triangle, Gamma({0,1}) = {0,1,2}.
    g = ring([1, 1, 1])
    assert g.neighborhood([0, 1]) == frozenset({0, 1, 2})


def test_neighborhood_excludes_self_without_edges():
    g = path([1, 1, 1])
    assert g.neighborhood([0]) == frozenset({1})


def test_weight_of_float_and_exact():
    g = path([1, 2, 3])
    assert g.weight_of([0, 2], FLOAT) == pytest.approx(4.0)
    assert g.weight_of([0, 2], EXACT) == Fraction(4)
    assert g.total_weight(EXACT) == Fraction(6)


def test_is_independent():
    g = path([1, 1, 1, 1])
    assert g.is_independent([0, 2])
    assert not g.is_independent([0, 1])
    assert g.is_independent([])


def test_induced_subgraph_remaps_ids():
    g = ring([1, 2, 3, 4])
    sub, remap = g.induced_subgraph([1, 2, 3])
    assert sub.n == 3
    assert remap == {1: 0, 2: 1, 3: 2}
    assert sub.weights == (2, 3, 4)
    assert sub.edges == ((0, 1), (1, 2))
    assert sub.labels == ("v1", "v2", "v3")


def test_with_weight_replaces_single_weight():
    g = path([1, 2, 3])
    g2 = g.with_weight(1, 9)
    assert g2.weights == (1, 9, 3)
    assert g.weights == (1, 2, 3)  # original untouched
    assert g2.edges == g.edges


def test_with_weight_rejects_bad_vertex():
    g = path([1, 2])
    with pytest.raises(GraphError):
        g.with_weight(5, 1)


def test_with_weights_full_replacement():
    g = ring([1, 1, 1])
    g2 = g.with_weights([4, 5, 6])
    assert g2.weights == (4, 5, 6)
    assert g2.edges == g.edges


def test_is_connected():
    assert path([1, 1, 1]).is_connected()
    assert not WeightedGraph(3, [(0, 1)], [1, 1, 1]).is_connected()
    assert WeightedGraph(0, [], []).is_connected()


def test_is_ring_and_path_predicates():
    assert ring([1, 1, 1]).is_ring()
    assert not path([1, 1, 1]).is_ring()
    assert path([1, 1]).is_path_graph()
    assert not ring([1, 1, 1]).is_path_graph()
    # two disjoint edges: not a path
    assert not WeightedGraph(4, [(0, 1), (2, 3)], [1] * 4).is_path_graph()


def test_is_bipartite():
    assert ring([1, 1, 1, 1]).is_bipartite()  # even ring
    assert not ring([1, 1, 1]).is_bipartite()  # odd ring
    assert path([1, 1, 1]).is_bipartite()


def test_equality_and_hash():
    a = ring([1, 2, 3])
    b = ring([1, 2, 3])
    c = ring([1, 2, 4])
    assert a == b and hash(a) == hash(b)
    assert a != c


def test_label_map():
    g = WeightedGraph(2, [(0, 1)], [1, 1], labels=["x", "y"])
    assert g.label_map() == {"x": 0, "y": 1}
