"""Tests for graph builders and random generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    complete,
    from_edge_list,
    grid2d,
    path,
    random_connected_graph,
    random_ring,
    random_weights,
    ring,
    star,
)


def test_ring_shape():
    g = ring([1, 2, 3, 4])
    assert g.is_ring()
    assert g.m == 4
    assert g.has_edge(0, 3)


def test_ring_minimum_size():
    with pytest.raises(GraphError):
        ring([1, 1])


def test_path_shape():
    g = path([1, 2, 3])
    assert g.is_path_graph()
    assert g.m == 2


def test_path_minimum_size():
    with pytest.raises(GraphError):
        path([1])


def test_star_shape():
    g = star(5, [1, 2, 3])
    assert g.n == 4
    assert g.degree(0) == 3
    assert all(g.degree(v) == 1 for v in [1, 2, 3])
    assert g.weights == (5, 1, 2, 3)


def test_star_needs_leaf():
    with pytest.raises(GraphError):
        star(1, [])


def test_complete_edge_count():
    g = complete([1] * 5)
    assert g.m == 10
    assert all(g.degree(v) == 4 for v in g.vertices())


def test_grid2d_shape():
    g = grid2d(2, 3, [1] * 6)
    assert g.m == 7  # 2*2 vertical + 3*1? rows*(cols-1) + cols*(rows-1) = 2*2+3*1 = 7
    assert g.has_edge(0, 1) and g.has_edge(0, 3)


def test_grid2d_weight_count_checked():
    with pytest.raises(GraphError):
        grid2d(2, 2, [1, 1, 1])


def test_random_weights_distributions():
    rng = np.random.default_rng(0)
    for dist in ("uniform", "loguniform", "integer", "equal"):
        ws = random_weights(8, rng, dist, low=0.5, high=4.0)
        assert len(ws) == 8
        assert all(w > 0 for w in ws)
    assert random_weights(3, rng, "equal", high=2.0) == [2.0, 2.0, 2.0]


def test_random_weights_unknown_distribution():
    rng = np.random.default_rng(0)
    with pytest.raises(GraphError):
        random_weights(3, rng, "cauchy")


def test_random_ring_deterministic_under_seed():
    a = random_ring(6, np.random.default_rng(42))
    b = random_ring(6, np.random.default_rng(42))
    assert a == b
    assert a.is_ring()


def test_random_connected_graph_is_connected():
    for seed in range(5):
        g = random_connected_graph(12, 6, np.random.default_rng(seed))
        assert g.is_connected()
        assert g.m >= 11


def test_random_connected_graph_extra_edges_capped():
    g = random_connected_graph(4, 100, np.random.default_rng(1))
    assert g.m == 6  # K4


def test_from_edge_list():
    g = from_edge_list([(0, 1), (1, 2)], [1, 2, 3])
    assert g.n == 3 and g.m == 2
