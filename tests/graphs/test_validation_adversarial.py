"""Adversarial inputs through the post-construction validators.

The ``validate=False`` fast path exists for trusted internal
reconstructions, which means garbage *can* be smuggled into a real
``WeightedGraph``.  These tests assert the defense in depth: the
post-construction validators (``require_positive_weights``,
``require_finite_weights``, ``require_simple``, ``require_ring``)
re-derive the properties structurally and refuse smuggled garbage with
the typed taxonomy -- NaN weights, multigraph rings, self-loop rings.
"""

import math

import pytest

from repro.exceptions import GraphError, InvalidWeightError
from repro.graphs import (
    WeightedGraph,
    require_finite_weights,
    require_positive_weights,
    require_ring,
    require_simple,
)


def fast_path(n, edges, weights):
    return WeightedGraph(n, edges, weights, validate=False)


RING3 = [(0, 1), (1, 2), (0, 2)]


# -- weight validators -----------------------------------------------------

def test_nan_weight_fails_require_positive():
    # NaN compares False against everything, so ``w > 0`` is False by IEEE
    # semantics -- the validator catches it without an explicit isnan.
    g = fast_path(3, RING3, [1.0, float("nan"), 1.0])
    with pytest.raises(InvalidWeightError):
        require_positive_weights(g)


def test_inf_weight_fails_require_positive():
    g = fast_path(3, RING3, [1.0, math.inf, 1.0])
    with pytest.raises(InvalidWeightError):
        require_positive_weights(g)


def test_nan_weight_fails_require_finite():
    g = fast_path(3, RING3, [1.0, float("nan"), 0.0])
    with pytest.raises(InvalidWeightError):
        require_finite_weights(g)


def test_non_number_weight_fails_require_finite_typed():
    g = fast_path(3, RING3, [1.0, "heavy", 1.0])
    with pytest.raises(InvalidWeightError):
        require_finite_weights(g)


def test_negative_weight_fails_both():
    g = fast_path(3, RING3, [1.0, -2.0, 1.0])
    with pytest.raises(InvalidWeightError):
        require_positive_weights(g)
    with pytest.raises(InvalidWeightError):
        require_finite_weights(g)


def test_zero_weight_passes_finite_but_not_positive():
    g = fast_path(3, RING3, [1.0, 0.0, 1.0])
    require_finite_weights(g)
    with pytest.raises(InvalidWeightError):
        require_positive_weights(g)


def test_clean_graph_passes_all():
    g = WeightedGraph(3, RING3, [1.0, 2.0, 3.0])
    require_positive_weights(g)
    require_finite_weights(g)
    require_simple(g)
    require_ring(g)


# -- structural validators -------------------------------------------------

def test_multigraph_ring_fails_require_ring():
    # Degree-2 everywhere and connected, but via a duplicated edge: the
    # naive is_ring degree count would pass; require_simple re-derives
    # simplicity from the adjacency structure.
    g = fast_path(3, [(0, 1), (0, 1), (1, 2), (0, 2)][:3] + [(0, 2)],
                  [1.0, 1.0, 1.0])
    with pytest.raises(GraphError):
        require_ring(g)


def test_duplicate_edge_fails_require_simple():
    g = fast_path(3, [(0, 1), (1, 0), (1, 2)], [1.0, 1.0, 1.0])
    with pytest.raises(GraphError):
        require_simple(g)


def test_self_loop_ring_fails_require_ring():
    # Each vertex has degree 2 if self-loops count double -- a classic
    # smuggle that must not pass for a "ring".
    g = fast_path(3, [(0, 0), (1, 2), (2, 1)][:2] + [(1, 1)],
                  [1.0, 1.0, 1.0])
    with pytest.raises(GraphError):
        require_ring(g)


def test_self_loop_fails_require_simple():
    g = fast_path(2, [(0, 0)], [1.0, 1.0])
    with pytest.raises(GraphError):
        require_simple(g)


def test_path_is_not_a_ring():
    g = WeightedGraph(4, [(0, 1), (1, 2), (2, 3)], [1.0] * 4)
    require_simple(g)
    with pytest.raises(GraphError):
        require_ring(g)


def test_two_triangles_are_not_a_ring():
    # Disconnected 2-regular graph: degree test alone would accept it.
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    g = WeightedGraph(6, edges, [1.0] * 6)
    require_simple(g)
    with pytest.raises(GraphError):
        require_ring(g)


# -- constructor strictness (the validate=True default) --------------------

def test_constructor_rejects_what_fast_path_admits():
    with pytest.raises(GraphError):
        WeightedGraph(3, [(0, 1), (0, 1), (1, 2)], [1.0] * 3)
    with pytest.raises(GraphError):
        WeightedGraph(3, [(0, 0), (1, 2), (0, 2)], [1.0] * 3)
    with pytest.raises(InvalidWeightError):
        WeightedGraph(3, RING3, [1.0, float("nan"), 1.0])
    with pytest.raises(InvalidWeightError):
        WeightedGraph(3, RING3, [1.0, math.inf, 1.0])
    with pytest.raises(GraphError):
        WeightedGraph(3, [(0, 1.5), (1, 2), (0, 2)], [1.0] * 3)


def test_fast_path_skips_but_structure_is_intact():
    # The fast path must still build usable adjacency so validators can
    # inspect the real structure (not a half-initialized object).
    g = fast_path(3, RING3, [1.0, float("nan"), 1.0])
    assert g.degree(0) == 2
    assert set(g.neighbors(1)) == {0, 2}
    assert g.is_ring()   # raw predicate: structure is ring-shaped...
    with pytest.raises(InvalidWeightError):
        require_positive_weights(g)  # ...but the weights are garbage
