"""Unit tests for the columnar (CSR) graph substrate.

The cache layer keys decompositions by these bytes and the vectorized
dynamics trusts the directed-edge ordering, so the contracts pinned here
are load-bearing: canonical buffers (equal graphs -> equal bytes),
bit-exact weight serialization (``-0.0`` != ``0.0``, one-ulp values
distinct), and a round-trip that reproduces the source graph exactly.
"""

import struct

import numpy as np
import pytest

from repro.graphs import (
    ColumnarGraph,
    WeightedGraph,
    graph_signature_bytes,
    graph_structure_bytes,
    ring,
)
from repro.graphs.columnar import weight_bytes


def test_csr_matches_adjacency():
    g = ring([3.0, 1.0, 4.0, 1.0, 5.0])
    cols = ColumnarGraph.from_graph(g)
    for v in g.vertices():
        row = cols.indices[cols.indptr[v]:cols.indptr[v + 1]]
        assert list(row) == sorted(g.neighbors(v))
    # sorted rows => canonical, so a second build is byte-identical
    g2 = ring([3.0, 1.0, 4.0, 1.0, 5.0])
    cols2 = ColumnarGraph.from_graph(g2)
    assert cols.indptr.tobytes() == cols2.indptr.tobytes()
    assert cols.indices.tobytes() == cols2.indices.tobytes()


def test_from_graph_is_cached_on_the_graph():
    g = ring([1.0, 2.0, 3.0])
    assert ColumnarGraph.from_graph(g) is ColumnarGraph.from_graph(g)


def test_round_trip_is_bit_identical():
    g = WeightedGraph(4, [(0, 1), (0, 3), (1, 2), (2, 3)],
                      [1.5, -0.0, 5e-324, 2.0], ["a", "b", "c", "d"])
    back = ColumnarGraph.from_graph(g).to_graph()
    assert back.n == g.n
    assert back.edges == g.edges
    assert back.labels == g.labels
    # weight objects survive, bit pattern included
    assert all(struct.pack("<d", a) == struct.pack("<d", b)
               for a, b in zip(back.weights, g.weights))


def test_weight_bytes_distinguishes_bit_patterns():
    assert weight_bytes([0.0]) != weight_bytes([-0.0])
    assert weight_bytes([5e-324]) != weight_bytes([0.0])  # subnormal
    tiny = np.nextafter(1.0, 2.0)  # one ulp above 1.0
    assert weight_bytes([tiny]) != weight_bytes([1.0])
    # equal-valued, different scalar type: distinct by design
    assert weight_bytes([1]) != weight_bytes([1.0])


def test_signature_bytes_key_semantics():
    g1 = ring([1.0, 2.0, 3.0, 4.0])
    g2 = ring([1.0, 2.0, 3.0, 4.0])
    assert graph_signature_bytes(g1) == graph_signature_bytes(g2)
    # weights participate
    g3 = ring([1.0, 2.0, 3.0, 5.0])
    assert graph_signature_bytes(g1) != graph_signature_bytes(g3)
    # labels participate (a cached decomposition must never swap labelling)
    g4 = ring([1.0, 2.0, 3.0, 4.0], labels=["w", "x", "y", "z"])
    assert graph_signature_bytes(g1) != graph_signature_bytes(g4)


def test_structure_bytes_survive_weight_replacement():
    g = ring([1.0, 2.0, 3.0, 4.0])
    s = graph_structure_bytes(g)
    g2 = g._with_weights_unchecked((4.0, 3.0, 2.0, 1.0))
    # same topology object-graph: the cached structural half is shared
    assert graph_structure_bytes(g2) == s
    assert graph_signature_bytes(g2) != graph_signature_bytes(g)


def test_float_weights_array_and_exact_refusal():
    from fractions import Fraction

    g = ring([1.0, 2, 3.0])  # ints coerce fine
    f = ColumnarGraph.from_graph(g).float_weights()
    assert f is not None and f.dtype == np.float64
    assert list(f) == [1.0, 2.0, 3.0]
    gf = ring([Fraction(1), Fraction(2), Fraction(3)])
    # never an object-dtype array: exact scalars take the scalar path
    assert ColumnarGraph.from_graph(gf).float_weights() is None


def test_directed_arrays_pair_order_contract():
    g = ring([1.0, 1.0, 1.0, 1.0])
    src, dst, rev, index = ColumnarGraph.from_graph(g).directed_arrays()
    # (u, v), (v, u) per sorted undirected edge -- the dynamics' historical
    # order -- and the reverse permutation is the xor-with-1 pairing
    for u, v in g.edges:
        i = index[(u, v)]
        assert index[(v, u)] == i ^ 1
        assert (src[i], dst[i]) == (u, v)
    assert all(rev[i] == i ^ 1 for i in range(len(src)))
