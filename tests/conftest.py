"""Shared test configuration: hypothesis profiles.

Two profiles, selected via the ``HYPOTHESIS_PROFILE`` environment variable:

``dev`` (default)
    Fast and derandomized, for the local edit-test loop.  Derandomization
    makes failures reproduce immediately instead of depending on the seed
    of the day; the example budget is small so the whole property suite
    stays in the tier-1 time box.

``ci``
    More examples, still no deadline (CI machines have noisy timing).  The
    GitHub workflow exports ``HYPOTHESIS_PROFILE=ci``.

Individual tests can still override parameters with an explicit
``@settings(...)``; anything they do not override inherits from the active
profile.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
