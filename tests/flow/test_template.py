"""Flow-template and flat-array view tests.

The columnar engine's whole soundness story rests on templates producing
*bit-identical* networks to the classic ``add_edge`` builds -- same arc
order, same capacity objects -- so these tests compare the raw ``head`` /
``adj`` / ``cap`` columns, not just solved flow values.
"""

import math
from fractions import Fraction

import pytest

from repro.core.bottleneck import _instantiate_parametric, parametric_network
from repro.engine import EngineContext
from repro.exceptions import FlowError
from repro.flow import (
    FlowNetwork,
    dinic_max_flow,
    network_from_arrays,
    network_to_arrays,
    pair_template,
    parametric_template,
)
from repro.graphs import ring
from repro.numeric import EXACT, FLOAT


def _assert_same_network(a: FlowNetwork, b: FlowNetwork):
    assert a.n == b.n
    assert a.head == b.head
    assert a.adj == b.adj
    assert a.cap == b.cap
    assert a.orig_cap == b.orig_cap


@pytest.mark.parametrize("backend", [FLOAT, EXACT], ids=["float", "exact"])
def test_parametric_template_matches_classic_build(backend):
    g = ring([backend.scalar(w) for w in (3, 1, 4, 1, 5, 9)])
    active = [0, 1, 2, 4, 5]
    lam = backend.scalar(1) / backend.scalar(2)
    classic, verts_c = parametric_network(g, active, lam, backend)
    ctx = EngineContext(engine="columnar")
    templ, verts_t = _instantiate_parametric(g, active, lam, backend, ctx)
    assert verts_c == verts_t
    _assert_same_network(classic, templ)
    # and therefore the solved flow is identical too
    assert dinic_max_flow(classic, 0, 1) == dinic_max_flow(templ, 0, 1)


def test_template_shares_structure_but_not_capacities():
    g = ring([2.0, 3.0, 5.0, 7.0])
    tpl = parametric_template(g, [0, 1, 2, 3])
    w = [2.0, 3.0, 5.0, 7.0]
    n1 = tpl.instantiate([0.5 * wi for wi in w], w, math.inf, 0.0)
    n2 = tpl.instantiate([0.25 * wi for wi in w], w, math.inf, 0.0)
    # head/adj shared read-only; cap fresh per instance
    assert n1.head is n2.head and n1.adj is n2.adj
    assert n1.cap is not n2.cap
    dinic_max_flow(n1, 0, 1)
    assert n2.cap == n2.orig_cap  # solving n1 never touches n2


def test_pair_template_arc_map_matches_classic():
    from repro.core.allocation import _pair_network

    g = ring([1.0, 2.0, 3.0, 4.0])
    B, C = [1], [0, 2]
    sink_caps = [0.5, 1.5]
    classic, arcs_c = _pair_network(g, B, C, sink_caps, FLOAT, None)
    ctx = EngineContext(engine="columnar")
    templ, arcs_t = _pair_network(g, B, C, sink_caps, FLOAT, ctx)
    _assert_same_network(classic, templ)
    assert arcs_c == arcs_t


def test_template_rejects_degenerate_network():
    from repro.flow import FlowTemplate

    with pytest.raises(FlowError):
        FlowTemplate(1, [], [[]], [], [])


def test_network_arrays_round_trip():
    g = ring([3.0, 1.0, 4.0, 1.0])
    net, _ = parametric_network(g, [0, 1, 2, 3], 0.5, FLOAT)
    arrays = network_to_arrays(net)
    back = network_from_arrays(arrays)
    _assert_same_network(net, back)
    # inf caps survive the float64 image
    assert any(math.isinf(c) for c in back.cap)
    # the rebuilt network is independently solvable with the same value
    assert dinic_max_flow(back, 0, 1) == dinic_max_flow(net, 0, 1)


def test_network_arrays_refuse_exact_capacities():
    g = ring([Fraction(1), Fraction(2), Fraction(3)])
    net, _ = parametric_network(g, [0, 1, 2], Fraction(1, 2), EXACT)
    with pytest.raises(FlowError):
        network_to_arrays(net)
