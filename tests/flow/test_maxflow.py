"""Cross-checked tests for the three max-flow solvers.

Every network is solved with Dinic, Edmonds-Karp, and push-relabel, and
(for the random batch) against networkx as an external oracle.
"""

import math
from fractions import Fraction

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import FlowError
from repro.flow import (
    FlowNetwork,
    assert_valid_flow,
    cut_value,
    dinic_max_flow,
    edmonds_karp_max_flow,
    max_source_side,
    min_source_side,
    push_relabel_max_flow,
)

SOLVERS = [dinic_max_flow, edmonds_karp_max_flow, push_relabel_max_flow]
PATH_SOLVERS = [dinic_max_flow, edmonds_karp_max_flow]  # leave valid flows behind


def small_diamond():
    # s=0, t=3; two routes with a cross edge
    net = FlowNetwork(4)
    net.add_edge(0, 1, 3)
    net.add_edge(0, 2, 2)
    net.add_edge(1, 2, 1)
    net.add_edge(1, 3, 2)
    net.add_edge(2, 3, 3)
    return net


@pytest.mark.parametrize("solver", SOLVERS)
def test_diamond_value(solver):
    net = small_diamond()
    assert solver(net, 0, 3) == 5


@pytest.mark.parametrize("solver", PATH_SOLVERS)
def test_diamond_flow_is_valid(solver):
    net = small_diamond()
    solver(net, 0, 3)
    assert_valid_flow(net, 0, 3)


@pytest.mark.parametrize("solver", SOLVERS)
def test_disconnected_sink_gives_zero(solver):
    net = FlowNetwork(3)
    net.add_edge(0, 1, 5)
    assert solver(net, 0, 2) == 0


@pytest.mark.parametrize("solver", SOLVERS)
def test_single_edge(solver):
    net = FlowNetwork(2)
    net.add_edge(0, 1, 7)
    assert solver(net, 0, 1) == 7


@pytest.mark.parametrize("solver", SOLVERS)
def test_fraction_capacities_exact(solver):
    net = FlowNetwork(4)
    net.add_edge(0, 1, Fraction(1, 3))
    net.add_edge(0, 2, Fraction(1, 6))
    net.add_edge(1, 3, Fraction(1, 4))
    net.add_edge(2, 3, Fraction(1, 2))
    val = solver(net, 0, 3)
    assert val == Fraction(1, 4) + Fraction(1, 6)
    assert isinstance(val, Fraction)


@pytest.mark.parametrize("solver", PATH_SOLVERS)
def test_infinite_middle_edges(solver):
    # bipartite-style network with inf middle arcs, as built by Definition 5
    net = FlowNetwork(6)
    net.add_edge(0, 1, 2.0)
    net.add_edge(0, 2, 3.0)
    net.add_edge(1, 3, math.inf)
    net.add_edge(1, 4, math.inf)
    net.add_edge(2, 4, math.inf)
    net.add_edge(3, 5, 1.0)
    net.add_edge(4, 5, 4.0)
    assert solver(net, 0, 5) == pytest.approx(5.0)
    assert_valid_flow(net, 0, 5, tol=1e-12)


def test_push_relabel_rejects_infinite_source_arc():
    net = FlowNetwork(2)
    net.add_edge(0, 1, math.inf)
    with pytest.raises(FlowError):
        push_relabel_max_flow(net, 0, 1)


@pytest.mark.parametrize("solver", SOLVERS)
def test_source_equals_sink_rejected(solver):
    net = FlowNetwork(2)
    net.add_edge(0, 1, 1)
    with pytest.raises(FlowError):
        solver(net, 0, 0)


def test_network_validation():
    net = FlowNetwork(3)
    with pytest.raises(FlowError):
        net.add_edge(0, 0, 1)
    with pytest.raises(FlowError):
        net.add_edge(0, 5, 1)
    with pytest.raises(FlowError):
        net.add_edge(0, 1, -2)
    with pytest.raises(FlowError):
        FlowNetwork(1)


def test_reset_restores_capacities():
    net = small_diamond()
    dinic_max_flow(net, 0, 3)
    net.reset()
    assert net.cap == net.orig_cap
    assert dinic_max_flow(net, 0, 3) == 5


def test_clone_is_independent():
    net = small_diamond()
    other = net.clone()
    dinic_max_flow(net, 0, 3)
    assert other.cap == other.orig_cap


def test_flow_on_requires_forward_arc():
    net = small_diamond()
    with pytest.raises(FlowError):
        net.flow_on(1)


def test_min_and_max_source_side_are_min_cuts():
    net = small_diamond()
    val = dinic_max_flow(net, 0, 3)
    lo = min_source_side(net, 0)
    hi = max_source_side(net, 3)
    assert 0 in lo and 3 not in lo
    assert 0 in hi and 3 not in hi
    assert lo <= hi
    assert cut_value(net, lo) == val
    assert cut_value(net, hi) == val


def _random_network(rng, n, p, integral=True):
    net = FlowNetwork(n)
    G = nx.DiGraph()
    G.add_nodes_from(range(n))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                c = int(rng.integers(1, 20)) if integral else float(rng.uniform(0.1, 5))
                net.add_edge(u, v, c)
                G.add_edge(u, v, capacity=c)
    return net, G


@pytest.mark.parametrize("seed", range(12))
def test_random_networks_agree_with_networkx(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 12))
    net, G = _random_network(rng, n, p=0.3)
    expected = nx.maximum_flow_value(G, 0, n - 1) if G.has_node(0) else 0
    for solver in SOLVERS:
        fresh = net.clone()
        assert solver(fresh, 0, n - 1) == expected


@pytest.mark.parametrize("seed", range(6))
def test_random_networks_min_cut_matches_flow(seed):
    rng = np.random.default_rng(100 + seed)
    net, _ = _random_network(rng, 8, p=0.4)
    val = dinic_max_flow(net, 0, 7)
    assert cut_value(net, min_source_side(net, 0)) == val
    assert cut_value(net, max_source_side(net, 7)) == val
    assert_valid_flow(net, 0, 7)


def test_float_tolerance_path():
    net = FlowNetwork(3)
    net.add_edge(0, 1, 0.1 + 0.2)  # 0.30000000000000004
    net.add_edge(1, 2, 0.3)
    val = dinic_max_flow(net, 0, 2, zero_tol=1e-12)
    assert val == pytest.approx(0.3)
