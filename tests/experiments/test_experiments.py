"""Integration tests: every experiment runs at smoke scale and passes its
internal checks -- the "shape of the paper" certification."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import ExperimentOutput, Table, scale_factor


ALL_IDS = sorted(EXPERIMENTS)


def test_registry_contains_all_paper_artifacts():
    assert set(ALL_IDS) == {
        "EXP-F1", "EXP-F2", "EXP-F3", "EXP-F4",
        "EXP-T8", "EXP-LB", "EXP-BND", "EXP-CNV",
        "EXP-T10", "EXP-STG", "EXP-P12", "EXP-GEN", "EXP-MSP", "EXP-SPC", "EXP-CMB",
        "EXP-S1", "EXP-S2", "EXP-S3", "EXP-S4",
    }


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_passes_at_smoke_scale(exp_id):
    out = run_experiment(exp_id, seed=0, scale="smoke")
    assert isinstance(out, ExperimentOutput)
    assert out.exp_id == exp_id
    assert out.tables, "every experiment prints at least one table"
    assert out.checks, "every experiment asserts at least one check"
    failed = [c for c in out.checks if not c.ok]
    assert not failed, f"{exp_id}: " + "; ".join(f"{c.name}: {c.details}" for c in failed)


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_experiment_renders(exp_id):
    out = run_experiment(exp_id, seed=0, scale="smoke")
    text = out.render()
    assert exp_id in text
    assert "PASS" in text


def test_unknown_experiment_rejected():
    with pytest.raises(ExperimentError):
        run_experiment("EXP-NOPE")


def test_unknown_scale_rejected():
    with pytest.raises(ExperimentError):
        run_experiment("EXP-F1", scale="galactic")


def test_scale_factor_values():
    assert scale_factor("smoke") == 1
    assert scale_factor("default") == 4
    assert scale_factor("full") == 16


def test_table_renders_title_and_rule():
    t = Table(title="X", headers=["h"], rows=[[1]])
    assert "X" in t.render()


def test_headline_numbers_smoke():
    """The two headline quantities: max zeta <= 2 and the lower bound's
    approach to 2 (these are what EXPERIMENTS.md records)."""
    t8 = run_experiment("EXP-T8", scale="smoke")
    assert t8.data["max_zeta"] <= 2.0 + 1e-6
    assert t8.data["lb_zeta"] > 1.999
    lb = run_experiment("EXP-LB", scale="smoke")
    assert max(lb.data["zetas"]) > 1.99
