"""Determinism: same seed, same scale => bit-identical experiment output.

Every experiment derives all randomness from its ``seed`` parameter (no
global RNG, no wall-clock, no dict-iteration hazards), so two runs with the
same seed must agree exactly -- structured ``data``, tables, and check
verdicts alike.  This is what makes a failure reported by CI reproducible
locally by copy-pasting the command line, and what lets the audit layer's
counter-based sampling line up across re-runs.

Each run gets its own fresh :class:`EngineContext` so the shared
decomposition cache cannot leak state between the two passes.
"""

import pytest

from repro.engine import EngineContext
from repro.experiments import run_experiment
from repro.experiments.registry import EXPERIMENTS


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_same_seed_reproduces_exactly(exp_id):
    first = run_experiment(exp_id, seed=3, scale="smoke", ctx=EngineContext())
    second = run_experiment(exp_id, seed=3, scale="smoke", ctx=EngineContext())

    assert first.data == second.data
    assert first.render(stats=False) == second.render(stats=False)
    assert [c.ok for c in first.checks] == [c.ok for c in second.checks]
