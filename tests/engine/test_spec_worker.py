"""EngineSpec across a real process boundary.

``EngineSpec`` exists so process pools can ship engine *configuration*
(not mutable caches or counters) to workers.  These tests exercise the
actual mechanism: the spec is pickled into a genuine worker process --
pool task arguments go through pickle even under the fork start method --
which rebuilds an equivalent context and solves with it.
"""

import multiprocessing as mp

import pytest

from repro.engine import EngineContext, EngineSpec
from repro.numeric import EXACT


def _worker_probe(spec: EngineSpec) -> dict:
    """Runs inside the worker: rebuild the context and do real work."""
    from fractions import Fraction

    from repro.core import bottleneck_decomposition
    from repro.graphs import ring

    ctx = spec.build()
    g = ring([Fraction(1), Fraction(2), Fraction(3), Fraction(4)])
    d = bottleneck_decomposition(g, ctx.backend, ctx)
    return {
        "solver": ctx.solver,
        "backend": ctx.backend.name,
        "cache_maxsize": ctx.cache.maxsize,
        "workers": ctx.workers,
        "audit": getattr(ctx.auditor, "level_name", "off"),
        "first_alpha": str(d.pairs[0].alpha),
        "flow_calls": ctx.counters.flow_calls,
    }


@pytest.mark.parametrize("audit", ["off", "cheap"])
def test_spec_rebuilds_equivalent_context_in_worker_process(audit):
    parent = EngineContext(solver="edmonds_karp", backend=EXACT, cache_size=7,
                           workers=2)
    if audit != "off":
        from repro.oracle import attach_auditor

        attach_auditor(parent, level=audit, corpus_dir=None)
    spec = parent.spec()

    with mp.get_context("fork").Pool(1) as pool:
        probe = pool.apply(_worker_probe, (spec,))

    assert probe["solver"] == "edmonds_karp"
    assert probe["backend"] == EXACT.name
    assert probe["cache_maxsize"] == 7
    assert probe["workers"] == 2
    assert probe["audit"] == audit
    assert probe["flow_calls"] > 0  # the rebuilt context actually solved
    # same config, same instance => same answer as solving in this process
    local = _worker_probe(spec)
    assert local["first_alpha"] == probe["first_alpha"]
