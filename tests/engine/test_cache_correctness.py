"""Caching must change cost, never results.

The decomposition cache is keyed on the complete instance signature, so a
cached sweep must be value-identical (not just approximately equal) to an
uncached one -- and must demonstrably absorb repeated max-flow work.
"""

import numpy as np

from repro.analysis import parallel_incentive_sweep
from repro.attack import incentive_ratio
from repro.engine import EngineContext
from repro.experiments import run_experiment
from repro.graphs import random_ring


def _rings(seed, count=3, n=5):
    rng = np.random.default_rng(seed)
    return [random_ring(n, rng, "uniform", 0.5, 5.0) for _ in range(count)]


def test_incentive_ratio_identical_with_and_without_cache():
    cached = EngineContext()
    uncached = EngineContext(cache_size=0)
    for g in _rings(0):
        a = incentive_ratio(g, grid=12, ctx=cached)
        b = incentive_ratio(g, grid=12, ctx=uncached)
        assert a.zeta == b.zeta
        assert a.worst == b.worst
        assert a.per_vertex == b.per_vertex
    assert cached.counters.cache_hits > 0
    assert uncached.counters.cache_hits == 0
    # the cache must absorb actual flow work, not just decomposition calls
    assert cached.counters.flow_calls < uncached.counters.flow_calls
    assert cached.counters.decompositions < uncached.counters.decompositions


def test_thm8_smoke_identical_with_and_without_cache():
    on = EngineContext()
    off = EngineContext(cache_size=0)
    out_on = run_experiment("EXP-T8", seed=0, scale="smoke", ctx=on)
    out_off = run_experiment("EXP-T8", seed=0, scale="smoke", ctx=off)
    assert out_on.data == out_off.data
    assert [c.ok for c in out_on.checks] == [c.ok for c in out_off.checks]
    assert out_on.engine_stats["flow_calls"] < out_off.engine_stats["flow_calls"]
    assert out_on.engine_stats["cache"]["hits"] > 0
    assert out_off.engine_stats["cache"]["hits"] == 0


def test_parallel_sweep_matches_serial_with_cache():
    graphs = _rings(1, count=3, n=4)
    serial_cached = parallel_incentive_sweep(graphs, grid=8, processes=0,
                                             ctx=EngineContext())
    serial_uncached = parallel_incentive_sweep(graphs, grid=8, processes=0,
                                               ctx=EngineContext(cache_size=0))
    two_procs_cached = parallel_incentive_sweep(graphs, grid=8, processes=2,
                                                ctx=EngineContext())
    two_procs_uncached = parallel_incentive_sweep(graphs, grid=8, processes=2,
                                                  ctx=EngineContext(cache_size=0))
    assert serial_cached == serial_uncached
    assert serial_cached == two_procs_cached
    assert serial_cached == two_procs_uncached


def test_parallel_sweep_honors_ctx_workers_default():
    graphs = _rings(2, count=2, n=4)
    ctx = EngineContext(workers=2)
    # processes=None defers to ctx.workers; results must still match serial
    via_ctx = parallel_incentive_sweep(graphs, grid=8, processes=None, ctx=ctx)
    serial = parallel_incentive_sweep(graphs, grid=8, processes=0)
    assert via_ctx == serial
