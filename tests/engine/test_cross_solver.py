"""Cross-solver agreement on the decomposition's own auxiliary networks.

The three max-flow implementations must be interchangeable inside the
engine: identical max-flow *values* and -- because the maximal bottleneck is
read off the residual min cut -- identical maximal source sides.  We check
exactly the parametric networks :func:`maximal_bottleneck` solves, over
random rings and a sweep of lambda values including the critical
``alpha_min`` where the minimizer changes.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import bottleneck_decomposition
from repro.core.bottleneck import parametric_network
from repro.engine import SOLVERS
from repro.flow.mincut import max_source_side
from repro.graphs import random_ring
from repro.numeric import EXACT, FLOAT


def _solve_all(g, active, lam, backend):
    """(value, source_side) per solver on fresh copies of the same network."""
    out = {}
    for name in SOLVERS.names():
        net, _ = parametric_network(g, active, lam, backend)
        value = SOLVERS.get(name)(net, 0, 1, 0.0)
        out[name] = (value, max_source_side(net, 1, 0.0))
    return out

def test_cross_solver_agreement_random_rings_float():
    rng = np.random.default_rng(7)
    for trial in range(20):
        n = int(rng.integers(3, 9))
        g = random_ring(n, rng, "uniform", 0.5, 5.0)
        active = list(g.vertices())
        for lam in (0.1, 0.5, 1.0, float(rng.uniform(0.05, 1.5))):
            results = _solve_all(g, active, lam, FLOAT)
            ref_value, ref_side = results["dinic"]
            for name, (value, side) in results.items():
                assert value == pytest.approx(ref_value, abs=1e-9), (trial, name, lam)
                assert side == ref_side, (trial, name, lam)


def test_cross_solver_agreement_exact_backend():
    """With Fraction arithmetic the agreement must be literal equality."""
    rng = np.random.default_rng(11)
    for trial in range(8):
        n = int(rng.integers(3, 7))
        weights = [float(x) for x in rng.integers(1, 12, size=n)]
        from repro.graphs import ring

        g = ring(weights)
        active = list(g.vertices())
        for lam in (Fraction(1, 3), Fraction(1, 2), Fraction(1)):
            results = _solve_all(g, active, lam, EXACT)
            ref_value, ref_side = results["dinic"]
            for name, (value, side) in results.items():
                assert value == ref_value, (trial, name, lam)
                assert side == ref_side, (trial, name, lam)


def test_cross_solver_agreement_on_proper_subsets():
    """Later Dinkelbach stages solve induced subgraphs; check those too."""
    rng = np.random.default_rng(3)
    g = random_ring(8, rng, "loguniform", 1e-2, 1e2)
    decomp = bottleneck_decomposition(g)
    # replay each stage's active set across solvers
    remaining = list(g.vertices())
    for pair in decomp.pairs:
        if len(remaining) < 2:
            break
        results = _solve_all(g, remaining, 0.7, FLOAT)
        ref_value, ref_side = results["dinic"]
        for name, (value, side) in results.items():
            assert value == pytest.approx(ref_value, abs=1e-9), name
            assert side == ref_side, name
        remaining = [v for v in remaining if v not in pair.B and v not in pair.C]
