"""Counters.timed: reentrancy and exception safety of the phase timers.

The historical bug: nesting ``timed("x")`` inside ``timed("x")`` (easy to
hit once spans and phases wrap shared helpers) recorded the inner elapsed
time *twice* -- once on its own exit and again inside the outer exit's
window -- so ``phase_seconds`` could exceed wall time.  The fix counts
per-phase depth and only the outermost invocation records.
"""

import time

import pytest

from repro.engine import Counters


def test_flat_phase_records_elapsed():
    c = Counters()
    with c.timed("p"):
        time.sleep(0.02)
    assert 0.02 <= c.phase_seconds["p"] < 0.2


def test_nested_same_phase_counts_wall_time_once():
    c = Counters()
    with c.timed("p"):
        time.sleep(0.05)
        with c.timed("p"):
            time.sleep(0.05)
    # One outermost window of ~0.1s -- not 0.1 (outer) + 0.05 (inner).
    assert 0.1 <= c.phase_seconds["p"] < 0.14


def test_nested_distinct_phases_overlap():
    c = Counters()
    with c.timed("outer"):
        with c.timed("inner"):
            time.sleep(0.02)
    assert c.phase_seconds["inner"] >= 0.02
    assert c.phase_seconds["outer"] >= c.phase_seconds["inner"] - 1e-3


def test_raising_inner_phase_leaves_outer_intact():
    c = Counters()
    with pytest.raises(ValueError):
        with c.timed("outer"):
            time.sleep(0.02)
            with c.timed("inner"):
                raise ValueError("boom")
    # Both phases closed; the books are consistent and reusable.
    assert c.phase_seconds["outer"] >= 0.02
    assert c.phase_seconds["inner"] >= 0.0
    assert not c._active_phases
    with c.timed("outer"):
        pass  # no corrupted state left behind


def test_raising_nested_same_phase_keeps_single_window():
    c = Counters()
    with pytest.raises(RuntimeError):
        with c.timed("p"):
            time.sleep(0.05)
            with c.timed("p"):
                time.sleep(0.05)
                raise RuntimeError("boom")
    assert 0.1 <= c.phase_seconds["p"] < 0.14
    assert not c._active_phases


def test_sequential_phases_accumulate():
    c = Counters()
    for _ in range(2):
        with c.timed("p"):
            time.sleep(0.02)
    assert c.phase_seconds["p"] >= 0.04


def test_reset_clears_phase_books():
    c = Counters()
    with c.timed("p"):
        pass
    c.reset()
    assert c.phase_seconds == {}
    assert not c._active_phases
