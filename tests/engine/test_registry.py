"""Solver registry: lookup, registration, capability flags."""

import pytest

from repro.engine import DEFAULT_SOLVER, SOLVERS, Solver, SolverRegistry
from repro.exceptions import EngineError
from repro.flow import FlowNetwork


def test_builtin_registry_contents():
    assert SOLVERS.names() == ["dinic", "edmonds_karp", "push_relabel"]
    assert DEFAULT_SOLVER in SOLVERS
    assert SOLVERS.get("dinic").supports_arc_flows
    assert SOLVERS.get("edmonds_karp").supports_arc_flows
    assert not SOLVERS.get("push_relabel").supports_arc_flows


def test_unknown_solver_raises_engine_error():
    with pytest.raises(EngineError, match="unknown solver"):
        SOLVERS.get("ford_fulkerson")
    with pytest.raises(EngineError):
        SOLVERS["nope"]


def test_registry_is_a_mapping():
    assert len(SOLVERS) == 3
    assert set(iter(SOLVERS)) == set(SOLVERS.names())
    assert isinstance(SOLVERS["dinic"], Solver)


def test_register_and_call_custom_solver():
    reg = SolverRegistry()
    calls = []

    def fake(net, s, t, zero_tol):
        calls.append((s, t, zero_tol))
        return 7.0

    entry = reg.register("fake", fake, supports_arc_flows=False)
    assert reg.get("fake") is entry
    net = FlowNetwork(2)
    assert entry(net, 0, 1) == 7.0
    assert calls == [(0, 1, 0.0)]
    with pytest.raises(EngineError):
        reg.register("", fake)


def test_all_builtin_solvers_solve_a_tiny_network():
    for name in SOLVERS.names():
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3.0)
        net.add_edge(0, 2, 2.0)
        net.add_edge(1, 3, 2.0)
        net.add_edge(2, 3, 3.0)
        assert SOLVERS.get(name)(net, 0, 3) == pytest.approx(4.0)
