"""DecompositionCache unit behavior: LRU order, disabling, key contents."""

from repro.engine import DecompositionCache, decomposition_key
from repro.graphs import ring
from repro.numeric import EXACT, FLOAT


def test_lru_eviction_order():
    c = DecompositionCache(maxsize=2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.get("a") == 1  # refresh "a" -> "b" is now least recent
    c.put("c", 3)
    assert c.get("b") is None
    assert c.get("a") == 1
    assert c.get("c") == 3
    assert c.evictions == 1
    assert len(c) == 2


def test_eviction_at_exact_capacity_boundary():
    """Filling to maxsize evicts nothing; the (maxsize+1)-th insert evicts
    exactly one entry -- the least recently used -- and never more."""
    c = DecompositionCache(maxsize=3)
    for k in "abc":
        c.put(k, k.upper())
    assert c.evictions == 0 and len(c) == 3
    c.put("d", "D")  # one past capacity
    assert c.evictions == 1 and len(c) == 3
    assert c.get("a") is None  # "a" was least recent
    assert [c.get(k) for k in "bcd"] == ["B", "C", "D"]


def test_maxsize_one_keeps_only_most_recent():
    c = DecompositionCache(maxsize=1)
    c.put("a", 1)
    c.put("b", 2)
    assert len(c) == 1
    assert c.get("a") is None and c.get("b") == 2
    assert c.evictions == 1


def test_overwriting_existing_key_does_not_evict():
    c = DecompositionCache(maxsize=2)
    c.put("a", 1)
    c.put("b", 2)
    c.put("a", 10)  # update in place: still 2 entries, no eviction
    assert len(c) == 2 and c.evictions == 0
    # the overwrite refreshed "a", so "b" is now the LRU victim
    c.put("c", 3)
    assert c.get("b") is None
    assert c.get("a") == 10 and c.get("c") == 3


def test_disabled_cache_never_stores():
    c = DecompositionCache(maxsize=0)
    assert not c.enabled
    c.put("k", 42)
    assert c.get("k") is None
    assert len(c) == 0
    assert c.stats()["misses"] == 1
    assert c.stats()["hits"] == 0


def test_hit_miss_accounting_and_clear():
    c = DecompositionCache(maxsize=8)
    assert c.get("k") is None
    c.put("k", 1)
    assert c.get("k") == 1
    s = c.stats()
    assert (s["hits"], s["misses"], s["size"], s["maxsize"]) == (1, 1, 1, 8)
    c.clear()
    assert len(c) == 0


def test_key_separates_weights_backend_and_labels():
    g1 = ring([1.0, 2.0, 3.0, 4.0])
    g2 = ring([1.0, 2.0, 3.0, 5.0])
    assert decomposition_key(g1, FLOAT) != decomposition_key(g2, FLOAT)
    assert decomposition_key(g1, FLOAT) != decomposition_key(g1, EXACT)
    relabeled = g1.relabel([f"x{i}" for i in range(g1.n)])
    assert decomposition_key(g1, FLOAT) != decomposition_key(relabeled, FLOAT)
    assert decomposition_key(g1, FLOAT) == decomposition_key(ring([1.0, 2.0, 3.0, 4.0]), FLOAT)
