"""Cache-key regression tests for the CSR-bytes key (satellite of the
columnar engine change).

The key must be a pure function of (instance bits, backend) -- emphatically
NOT of the engine -- so a decomposition solved under ``classic`` is a cache
hit for ``columnar`` and vice versa, which is what the differential auditor
relies on when it runs both engines over one context.
"""

from fractions import Fraction

from repro.core import bottleneck_decomposition
from repro.engine import EngineContext
from repro.engine.cache import decomposition_key
from repro.graphs import ring
from repro.numeric import EXACT, FLOAT


def test_key_is_engine_independent():
    # the key never looks at a context, but pin the consequence end-to-end:
    # a columnar-context solve is a classic-context cache hit
    g = ring([3.0, 1.0, 4.0, 1.0])
    key = decomposition_key(g, FLOAT)
    ctx = EngineContext(engine="columnar")
    d = bottleneck_decomposition(g, FLOAT, ctx)
    assert ctx.cache.get(key) is d
    classic = EngineContext(engine="classic")
    classic.cache.put(key, d)
    assert bottleneck_decomposition(g, FLOAT, classic) is d  # served, not solved


def test_equal_instances_share_a_key():
    a = ring([3.0, 1.0, 4.0, 1.0])
    b = ring([3.0, 1.0, 4.0, 1.0])
    assert a is not b
    assert decomposition_key(a, FLOAT) == decomposition_key(b, FLOAT)


def test_key_separates_backends():
    g = ring([3.0, 1.0, 4.0, 1.0])
    assert decomposition_key(g, FLOAT) != decomposition_key(g, EXACT)


def test_key_is_bit_exact_on_weights():
    base = [3.0, 1.0, 4.0, 0.0]
    assert decomposition_key(ring(base), FLOAT) != decomposition_key(
        ring([3.0, 1.0, 4.0, -0.0]), FLOAT
    )
    assert decomposition_key(ring(base), FLOAT) != decomposition_key(
        ring([3.0, 1.0, 4.0, 5e-324]), FLOAT
    )


def test_key_separates_scalar_types():
    # 1 == 1.0 == Fraction(1) by value; the byte key keeps them apart
    # (duplicate-solve cost, never a wrong hit)
    kf = decomposition_key(ring([1.0, 2.0, 3.0]), FLOAT)
    ki = decomposition_key(ring([1, 2, 3]), FLOAT)
    kq = decomposition_key(ring([Fraction(1), Fraction(2), Fraction(3)]), FLOAT)
    assert len({kf, ki, kq}) == 3


def test_key_separates_labellings():
    # a cached decomposition's .graph carries labels; a relabeled requester
    # must not be served another labelling's object
    a = ring([1.0, 2.0, 3.0])
    b = ring([1.0, 2.0, 3.0], labels=["x", "y", "z"])
    assert decomposition_key(a, FLOAT) != decomposition_key(b, FLOAT)
