"""EngineContext: defaults, dispatch, fallback, spec round-trips, stats."""

import pickle

import pytest

from repro.engine import (
    DEFAULT_CACHE_SIZE,
    EngineContext,
    EngineSpec,
    default_context,
    resolve_context,
)
from repro.exceptions import EngineError
from repro.flow import FlowNetwork
from repro.graphs import ring
from repro.numeric import EXACT, FLOAT


def _diamond():
    net = FlowNetwork(4)
    net.add_edge(0, 1, 3.0)
    net.add_edge(0, 2, 2.0)
    net.add_edge(1, 3, 2.0)
    net.add_edge(2, 3, 3.0)
    return net


def test_default_context_matches_historic_config():
    ctx = EngineContext()
    assert ctx.solver == "dinic"
    assert ctx.backend is FLOAT
    assert ctx.zero_tol == 0.0
    assert ctx.workers == 0
    assert ctx.cache.enabled and ctx.cache.maxsize == DEFAULT_CACHE_SIZE


def test_resolve_context_shares_one_default():
    assert resolve_context(None) is default_context()
    ctx = EngineContext()
    assert resolve_context(ctx) is ctx


def test_unknown_solver_fails_fast():
    with pytest.raises(EngineError, match="unknown solver"):
        EngineContext(solver="simplex")
    with pytest.raises(EngineError):
        EngineContext(workers=-1)


def test_max_flow_counts_calls():
    ctx = EngineContext()
    assert ctx.max_flow(_diamond(), 0, 3) == pytest.approx(4.0)
    assert ctx.max_flow(_diamond(), 0, 3) == pytest.approx(4.0)
    assert ctx.counters.flow_calls == 2


def test_push_relabel_falls_back_to_dinic_for_arc_flows():
    ctx = EngineContext(solver="push_relabel")
    assert ctx.solver_entry().name == "push_relabel"
    entry = ctx.solver_entry(need_arc_flows=True)
    assert entry.name == "dinic"
    assert ctx.counters.arc_flow_fallbacks == 1
    # arc-flow-capable solvers never fall back
    ctx2 = EngineContext(solver="edmonds_karp")
    assert ctx2.solver_entry(need_arc_flows=True).name == "edmonds_karp"
    assert ctx2.counters.arc_flow_fallbacks == 0


def test_spec_round_trip_and_pickling():
    ctx = EngineContext(solver="edmonds_karp", backend=EXACT, zero_tol=0.0,
                        cache_size=16, workers=3)
    spec = ctx.spec()
    assert spec == EngineSpec(solver="edmonds_karp", backend=EXACT,
                              cache_size=16, workers=3)
    revived = pickle.loads(pickle.dumps(spec))
    assert revived == spec
    assert hash(revived) == hash(spec)
    rebuilt = revived.build()
    assert rebuilt.solver == "edmonds_karp"
    assert rebuilt.backend == EXACT  # pickling copies the Backend value
    assert rebuilt.cache.maxsize == 16
    assert rebuilt.workers == 3
    assert spec.with_cache(0).cache_size == 0


def test_cache_size_zero_disables_cache():
    ctx = EngineContext(cache_size=0)
    assert not ctx.cache.enabled
    from repro.core import bottleneck_decomposition

    g = ring([1.0, 2.0, 3.0, 4.0])
    bottleneck_decomposition(g, ctx=ctx)
    bottleneck_decomposition(g, ctx=ctx)
    assert ctx.counters.cache_hits == 0
    assert ctx.counters.decompositions == 2


def test_stats_shape_and_reset():
    ctx = EngineContext()
    ctx.max_flow(_diamond(), 0, 3)
    with ctx.counters.timed("decompose"):
        pass
    s = ctx.stats()
    assert s["solver"] == "dinic"
    assert s["backend"] == FLOAT.name
    assert s["flow_calls"] == 1
    assert "decompose" in s["phase_seconds"]
    assert set(s["cache"]) == {"size", "maxsize", "hits", "misses", "evictions"}
    ctx.reset_stats()
    s2 = ctx.stats()
    assert s2["flow_calls"] == 0
    assert s2["phase_seconds"] == {}
    assert s2["cache"]["hits"] == 0


def test_using_context_installs_and_restores_default():
    from repro.engine import using_context

    before = default_context()
    override = EngineContext(solver="edmonds_karp")
    with using_context(override):
        assert resolve_context(None) is override
    assert resolve_context(None) is before


def test_resolve_backend_and_workers():
    ctx = EngineContext(backend=EXACT, workers=2)
    assert ctx.resolve_backend(None) is EXACT
    assert ctx.resolve_backend(FLOAT) is FLOAT
    assert ctx.resolve_workers(None) == 2
    assert ctx.resolve_workers(0) == 0
