"""Tests for proportional-response fixed-point verification."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    Allocation,
    assert_fixed_point,
    bd_allocation,
    fixed_point_residual,
)
from repro.exceptions import AllocationError
from repro.graphs import path, random_connected_graph, random_ring, ring
from repro.numeric import EXACT, FLOAT


@pytest.mark.parametrize("seed", range(8))
def test_bd_allocation_is_fixed_point_on_rings(seed):
    rng = np.random.default_rng(seed)
    g = random_ring(int(rng.integers(3, 10)), rng, "integer", 1, 9)
    alloc = bd_allocation(g, backend=EXACT)
    report = fixed_point_residual(alloc)
    assert report.is_fixed_point, report
    assert_fixed_point(alloc)


@pytest.mark.parametrize("seed", range(6))
def test_bd_allocation_is_fixed_point_on_general_graphs(seed):
    rng = np.random.default_rng(100 + seed)
    g = random_connected_graph(7, 4, rng, "integer", 1, 9)
    alloc = bd_allocation(g, backend=EXACT)
    assert fixed_point_residual(alloc).is_fixed_point


def test_uniform_triangle_regression():
    """The directed-circulation counterexample must stay fixed forever."""
    g = ring([1, 1, 1])
    alloc = bd_allocation(g, backend=EXACT)
    assert fixed_point_residual(alloc).is_fixed_point
    # the symmetric allocation sends 1/2 each way
    assert alloc.x[(0, 1)] == Fraction(1, 2)
    assert alloc.x[(1, 0)] == Fraction(1, 2)


def test_non_fixed_point_detected():
    g = path([1, 1])
    # everything one way, nothing back: not an echo
    bad = Allocation(graph=g, x={(0, 1): 1, (1, 0): 0}, utilities=(0, 1))
    with pytest.raises(AllocationError):
        assert_fixed_point(bad)
    report = fixed_point_residual(bad)
    assert not report.is_fixed_point
    assert report.worst_edge is not None


def test_zero_utility_edges_skipped():
    g = path([0, 0, 1])
    bad = Allocation(graph=g, x={}, utilities=(0, 0, 0))
    report = fixed_point_residual(bad)
    assert report.skipped_zero_utility > 0
