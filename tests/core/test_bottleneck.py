"""Tests for the parametric bottleneck decomposition.

The authoritative cross-check: the Dinkelbach/min-cut fast path must agree
with the exponential brute-force oracle on randomized small instances, with
exact Fraction arithmetic.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    alpha_within,
    bottleneck_decomposition,
    brute_force_decomposition,
    brute_force_maximal_bottleneck,
    brute_force_min_alpha,
    maximal_bottleneck,
)
from repro.exceptions import (
    DecompositionError,
    GraphError,
    ResourceExhaustedError,
)
from repro.graphs import (
    WeightedGraph,
    complete,
    path,
    random_connected_graph,
    random_ring,
    ring,
    star,
)
from repro.numeric import EXACT, FLOAT


# ---------------------------------------------------------------------------
# hand-computed instances
# ---------------------------------------------------------------------------

def test_star_decomposition():
    # star: center weight 10, leaves 1,1,1 -> B1 = leaves, C1 = {center},
    # alpha1 = 10/3?? no: alpha(S) minimized by leaves: Gamma = {center},
    # alpha = 10/3 > 1 -> actually min is the whole graph? Let's compute:
    # alpha({center}) = 3/10, that's the minimum -> B1 = {0}, C1 = leaves.
    g = star(10, [1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    assert d.k == 1
    assert d.pairs[0].B == frozenset({0})
    assert d.pairs[0].C == frozenset({1, 2, 3})
    assert d.pairs[0].alpha == Fraction(3, 10)


def test_star_rich_center():
    # center weight 1, leaves heavy: leaves form the bottleneck
    g = star(1, [5, 5])
    d = bottleneck_decomposition(g, EXACT)
    assert d.k == 1
    assert d.pairs[0].B == frozenset({1, 2})
    assert d.pairs[0].C == frozenset({0})
    assert d.pairs[0].alpha == Fraction(1, 10)


def test_uniform_ring_is_single_unit_pair():
    g = ring([1, 1, 1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    assert d.k == 1
    p = d.pairs[0]
    assert p.alpha == 1
    assert p.B == p.C == frozenset(range(5))


def test_path_two_vertices():
    g = path([1, 4])
    d = bottleneck_decomposition(g, EXACT)
    assert d.k == 1
    assert d.pairs[0].B == frozenset({1})
    assert d.pairs[0].C == frozenset({0})
    assert d.pairs[0].alpha == Fraction(1, 4)


def test_two_pair_path():
    # path 1 - 10 - 10 - 1: B1 = {0,3}? Gamma({0}) = {1}: alpha = 10.
    # alpha({1}) = 11/10, alpha({1,2}) = (1+10+10+1)/20 = 22/20.
    # alpha({0,3}) = 20/2 = 10. alpha(V) = 22/22 = 1.
    # minimum: try S = {0}: 10; the whole graph: 1 -> single unit pair.
    g = path([1, 10, 10, 1])
    d = bottleneck_decomposition(g, EXACT)
    assert d.k == 1
    assert d.pairs[0].alpha == 1


def test_fig1_style_two_pairs():
    # B1 = {0,1} (heavy), C1 = {2} (light), then a triangle of equals.
    # 0-2, 1-2, 2-3, 3-4, 4-5, 5-3
    g = WeightedGraph(
        6,
        [(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
        [Fraction(3, 2), Fraction(3, 2), 1, 1, 1, 1],
    )
    d = bottleneck_decomposition(g, EXACT)
    assert d.k == 2
    assert d.pairs[0].B == frozenset({0, 1})
    assert d.pairs[0].C == frozenset({2})
    assert d.pairs[0].alpha == Fraction(1, 3)
    assert d.pairs[1].B == d.pairs[1].C == frozenset({3, 4, 5})
    assert d.pairs[1].alpha == 1


def test_lookup_api():
    g = star(10, [1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    assert d.in_B(0) and not d.in_C(0)
    assert d.in_C(1) and not d.in_B(1)
    assert d.alpha_of(0) == Fraction(3, 10)
    assert d.pair_of(2).index == 1
    assert d.alphas() == [Fraction(3, 10)]


def test_unit_pair_members_are_both_classes():
    g = ring([1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    assert all(d.in_B(v) and d.in_C(v) for v in g.vertices())


def test_rejects_isolated_vertex():
    g = WeightedGraph(3, [(0, 1)], [1, 1, 1])
    with pytest.raises(GraphError):
        bottleneck_decomposition(g, EXACT)


def test_rejects_zero_total_weight():
    g = path([0, 0])
    with pytest.raises(DecompositionError):
        bottleneck_decomposition(g, EXACT)


def test_zero_weight_leaf_absorbed_with_its_neighbor():
    # path: z(0) - a(1) - b(4): alpha({a}) = 4/1 ... alpha({b}) = 1/4 min.
    # B1 = {b}, C1 = {a}; z has weight 0 and its only neighbor a is in C1,
    # so the maximal bottleneck absorbs z into B1 (Case C-2 behaviour).
    g = path([0, 1, 4])
    d = bottleneck_decomposition(g, EXACT)
    assert d.k == 1
    assert d.pairs[0].B == frozenset({0, 2})
    assert d.pairs[0].C == frozenset({1})
    assert d.pairs[0].alpha == Fraction(1, 4)


# ---------------------------------------------------------------------------
# invariants of Proposition 3 on random instances (exact backend)
# ---------------------------------------------------------------------------

def _random_positive_graph(seed: int) -> WeightedGraph:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 10))
    g = random_connected_graph(n, int(rng.integers(0, n)), rng, "integer", 1, 9)
    return g


@pytest.mark.parametrize("seed", range(20))
def test_proposition3_invariants(seed):
    g = _random_positive_graph(seed)
    d = bottleneck_decomposition(g, EXACT)
    alphas = d.alphas()
    # (1) strictly increasing, in (0, 1]
    assert all(a > 0 for a in alphas)
    assert all(alphas[i] < alphas[i + 1] for i in range(len(alphas) - 1))
    assert alphas[-1] <= 1
    for i, p in enumerate(d.pairs):
        if p.alpha == 1:
            # (2) alpha = 1 only in the last pair, with B = C
            assert i == len(d.pairs) - 1
            assert p.B == p.C
        else:
            assert g.is_independent(p.B)
            assert not (p.B & p.C)
    # (3) no edge between B_i and B_j
    for i, p in enumerate(d.pairs):
        for q in d.pairs:
            if p.index >= q.index or p.is_unit or q.is_unit:
                continue
            for u in p.B:
                assert not (set(g.neighbors(u)) & q.B)
    # (4) an edge between B_i and C_j implies j <= i
    for p in d.pairs:
        for u in p.B:
            for v in g.neighbors(u):
                q = d.pair_of(v)
                if v in q.C:
                    assert q.index <= p.index
    # coverage: every vertex in exactly one pair (constructor enforces; smoke)
    assert sum(len(p.members()) for p in d.pairs) >= g.n


@pytest.mark.parametrize("seed", range(20))
def test_parametric_matches_bruteforce_decomposition(seed):
    g = _random_positive_graph(seed)
    fast = bottleneck_decomposition(g, EXACT)
    slow = brute_force_decomposition(g, EXACT)
    assert fast.k == slow.k
    for pf, ps in zip(fast.pairs, slow.pairs):
        assert pf.B == ps.B
        assert pf.C == ps.C
        assert pf.alpha == ps.alpha


@pytest.mark.parametrize("seed", range(10))
def test_parametric_matches_bruteforce_with_zero_weights(seed):
    rng = np.random.default_rng(1000 + seed)
    n = int(rng.integers(3, 8))
    g = random_connected_graph(n, int(rng.integers(0, n)), rng, "integer", 1, 9)
    # zero out a random vertex (mimicking an extreme Sybil split endpoint)
    z = int(rng.integers(0, n))
    ws = list(g.weights)
    ws[z] = 0
    if sum(ws) == 0:
        return
    g = g.with_weights(ws)
    fast = bottleneck_decomposition(g, EXACT)
    slow = brute_force_decomposition(g, EXACT)
    assert [p.alpha for p in fast.pairs] == [p.alpha for p in slow.pairs]
    assert [p.B for p in fast.pairs] == [p.B for p in slow.pairs]


@pytest.mark.parametrize("seed", range(10))
def test_float_backend_matches_exact(seed):
    rng = np.random.default_rng(2000 + seed)
    g = random_ring(int(rng.integers(3, 12)), rng, "integer", 1, 20)
    exact = bottleneck_decomposition(g, EXACT)
    flt = bottleneck_decomposition(g, FLOAT)
    assert flt.k == exact.k
    for pe, pf in zip(exact.pairs, flt.pairs):
        assert pf.B == pe.B
        assert pf.C == pe.C
        assert float(pf.alpha) == pytest.approx(float(pe.alpha))


def test_maximal_bottleneck_direct_call():
    g = star(10, [1, 1, 1])
    B, a = maximal_bottleneck(g, backend=EXACT)
    assert B == frozenset({0})
    assert a == Fraction(3, 10)
    Bf, af = brute_force_maximal_bottleneck(g)
    assert Bf == B and af == a


def test_maximal_bottleneck_empty_active_rejected():
    g = path([1, 1])
    with pytest.raises(DecompositionError):
        maximal_bottleneck(g, active=[], backend=EXACT)


def test_brute_force_min_alpha():
    g = star(10, [1, 1, 1])
    assert brute_force_min_alpha(g) == Fraction(3, 10)


def test_brute_force_guards_size():
    # The size refusal is a *resource* error now (retryable, so a
    # supervised sweep can degrade to the parametric path) rather than a
    # DecompositionError: nothing about the instance is wrong.
    g = complete([1] * 19)
    with pytest.raises(ResourceExhaustedError):
        brute_force_min_alpha(g)


def test_complete_graph_unit_pair():
    g = complete([3, 1, 2, 5])
    d = bottleneck_decomposition(g, EXACT)
    assert d.k == 1
    assert d.pairs[0].alpha == 1
