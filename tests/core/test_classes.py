"""Tests for B/C class labelling and the ring alternation refinement."""

from fractions import Fraction

import pytest

from repro.core import (
    VertexClass,
    bottleneck_decomposition,
    classify,
    refine_unit_pair,
)
from repro.exceptions import DecompositionError
from repro.graphs import WeightedGraph, path, ring, star
from repro.numeric import EXACT


def test_classify_simple_pair():
    g = star(10, [1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    labels = classify(d)
    assert labels[0] is VertexClass.B
    assert all(labels[v] is VertexClass.C for v in (1, 2, 3))
    assert labels[0].is_b and not labels[0].is_c
    assert labels[1].is_c and not labels[1].is_b


def test_classify_unit_pair_is_both():
    g = ring([1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    labels = classify(d)
    assert all(labels[v] is VertexClass.BOTH for v in g.vertices())
    assert labels[0].is_b and labels[0].is_c


def test_refine_even_ring_alternates():
    g = ring([1, 1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    labels = refine_unit_pair(d, prefer_c=0)
    assert labels[0] is VertexClass.C
    assert labels[1] is VertexClass.B
    assert labels[2] is VertexClass.C
    assert labels[3] is VertexClass.B


def test_refine_odd_ring_keeps_both():
    g = ring([1, 1, 1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    labels = refine_unit_pair(d, prefer_c=2)
    assert all(labels[v] is VertexClass.BOTH for v in g.vertices())


def test_refine_path_unit_pair():
    # path 1-10-10-1 is a single unit pair (see bottleneck tests); the
    # alternation seeds v=0 as C and propagates
    g = path([1, 10, 10, 1])
    d = bottleneck_decomposition(g, EXACT)
    labels = refine_unit_pair(d, prefer_c=0)
    assert [labels[v] for v in range(4)] == [
        VertexClass.C,
        VertexClass.B,
        VertexClass.C,
        VertexClass.B,
    ]


def test_refine_no_op_when_vertex_not_in_unit_pair():
    g = star(10, [1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    labels = refine_unit_pair(d, prefer_c=0)
    assert labels[0] is VertexClass.B  # unchanged: not a unit pair


def test_refine_unknown_vertex_raises():
    g = star(10, [1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    with pytest.raises(DecompositionError):
        refine_unit_pair(d, prefer_c=99)


def test_mixed_decomposition_classes():
    g = WeightedGraph(
        6,
        [(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
        [Fraction(3, 2), Fraction(3, 2), 1, 1, 1, 1],
    )
    d = bottleneck_decomposition(g, EXACT)
    labels = classify(d)
    assert labels[0] is VertexClass.B and labels[1] is VertexClass.B
    assert labels[2] is VertexClass.C
    assert all(labels[v] is VertexClass.BOTH for v in (3, 4, 5))
    # refinement on the triangle component: odd cycle -> stays BOTH
    refined = refine_unit_pair(d, prefer_c=3)
    assert all(refined[v] is VertexClass.BOTH for v in (3, 4, 5))
