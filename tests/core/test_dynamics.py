"""Tests for the proportional response dynamics simulator (Definition 1)."""

import numpy as np
import pytest

from repro.core import (
    bd_allocation,
    bottleneck_decomposition,
    dynamics_utilities,
    proportional_response,
)
from repro.exceptions import ConvergenceError
from repro.graphs import WeightedGraph, path, random_ring, ring, star
from repro.numeric import FLOAT


def test_converges_on_odd_ring_to_bd_utilities():
    g = ring([1.0, 2.0, 3.0, 4.0, 5.0])
    res = proportional_response(g, tol=1e-12)
    assert res.converged
    alloc = bd_allocation(g, backend=FLOAT)
    for v in g.vertices():
        assert res.utility_of(v) == pytest.approx(float(alloc.utilities[v]), rel=1e-6)


def test_even_ring_may_oscillate_but_damped_converges():
    g = ring([1.0, 5.0, 2.0, 4.0])
    raw = proportional_response(g, max_iters=5000, tol=1e-12)
    damped = proportional_response(g, max_iters=20000, tol=1e-12, damping=0.5)
    assert damped.converged
    alloc = bd_allocation(g, backend=FLOAT)
    for v in g.vertices():
        assert damped.utility_of(v) == pytest.approx(float(alloc.utilities[v]), rel=1e-6)
    # raw run either converges or is flagged as a clean 2-cycle whose
    # orbit-average still reproduces the BD utilities
    assert raw.converged or raw.oscillating
    for v in g.vertices():
        assert raw.utility_of(v) == pytest.approx(float(alloc.utilities[v]), rel=1e-4)


def test_star_dynamics():
    g = star(10.0, [1.0, 1.0, 1.0])
    res = proportional_response(g, damping=0.5, tol=1e-12)
    assert res.converged
    assert res.utility_of(0) == pytest.approx(3.0)
    for leaf in (1, 2, 3):
        assert res.utility_of(leaf) == pytest.approx(10 / 3)


def test_initial_allocation_is_w_over_degree():
    g = path([2.0, 3.0])
    res = proportional_response(g, max_iters=1, tol=0)
    # after one step on a 2-path the allocation is already the fixed point
    assert res.allocation_of(0, 1) == pytest.approx(2.0)
    assert res.allocation_of(1, 0) == pytest.approx(3.0)


@pytest.mark.parametrize("seed", range(8))
def test_random_rings_agree_with_bd_allocation(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 12))
    g = random_ring(n, rng, "uniform", 0.5, 5.0)
    res = proportional_response(g, max_iters=60000, tol=1e-13, damping=0.3)
    alloc = bd_allocation(g, backend=FLOAT)
    assert res.converged
    for v in g.vertices():
        assert res.utility_of(v) == pytest.approx(float(alloc.utilities[v]), rel=1e-5, abs=1e-8)


def test_zero_weight_vertex_handled():
    g = path([0.0, 1.0, 4.0])
    res = proportional_response(g, damping=0.5, tol=1e-12)
    assert res.utility_of(0) == pytest.approx(0.0, abs=1e-9)


def test_raise_on_failure():
    g = ring([1.0, 5.0, 2.0, 4.0, 3.0])
    with pytest.raises(ConvergenceError):
        proportional_response(g, max_iters=2, tol=0, raise_on_failure=True)


def test_rejects_edgeless_graph():
    g = WeightedGraph(2, [], [1, 1])
    with pytest.raises(ConvergenceError):
        proportional_response(g)


def test_rejects_bad_damping():
    g = path([1.0, 1.0])
    with pytest.raises(ValueError):
        proportional_response(g, damping=1.5)


def test_dynamics_utilities_wrapper():
    g = path([1.0, 4.0])
    u = dynamics_utilities(g, tol=1e-12)
    assert u[0] == pytest.approx(4.0)
    assert u[1] == pytest.approx(1.0)


def test_result_metadata():
    g = ring([1.0, 1.0, 1.0])
    res = proportional_response(g, tol=1e-12)
    assert res.iterations >= 1
    assert res.residual <= 1e-12
    assert set(res.edge_index) == {(u, v) for u, v in
                                   [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]}
