"""Regression tests for the warm-start topology guard.

The historical bug: ``reconstruct_decomposition`` validated a hint only
*structurally* (partition, coverage, ascending alphas), so a hint from a
**different topology with the same vertex count** could pass every check
and rebuild a decomposition that is simply not the target instance's --
silent wrongness rather than a typed failure.  The fix is two-layered:
a hard same-n/different-edges guard inside ``reconstruct_decomposition``,
and a fingerprint *fallback* in ``warm_decomposition`` that quietly
degrades any cross-topology hint to a full solve (counted under
``warm_hint_invalidations``) instead of erroring an epoch.
"""

import pytest

from repro.core import (
    bottleneck_decomposition,
    reconstruct_decomposition,
    topology_fingerprint,
    warm_decomposition,
)
from repro.engine import EngineContext
from repro.exceptions import DecompositionError
from repro.graphs import path, ring, star
from repro.numeric import FLOAT


def test_fingerprint_separates_same_n_topologies():
    weights = [1.0, 2.0, 3.0, 4.0]
    assert topology_fingerprint(ring(weights)) != topology_fingerprint(path(weights))
    assert topology_fingerprint(ring(weights)) != topology_fingerprint(
        star(1.0, [2.0, 3.0, 4.0]))
    # weight changes do NOT change the fingerprint -- that's the point
    assert topology_fingerprint(ring(weights)) == topology_fingerprint(
        ring([9.0, 8.0, 7.0, 6.0]))


def test_reconstruct_rejects_same_n_cross_topology_hint():
    # Pre-fix this silently rebuilt a path decomposition "on" the ring:
    # the hint's pairs partition the same vertex ids, so every structural
    # check passes and nothing flags the borrowed structure as foreign.
    weights = [1.0, 2.0, 3.0, 4.0]
    hint = bottleneck_decomposition(path(weights), FLOAT)
    with pytest.raises(DecompositionError, match="different topology"):
        reconstruct_decomposition(ring(weights), hint, FLOAT)


def test_warm_decomposition_falls_back_on_topology_mismatch():
    ctx = EngineContext()
    hint = bottleneck_decomposition(path([1.0, 2.0, 3.0]), FLOAT, ctx)
    g = ring([1.0, 2.0, 3.0, 4.0])
    before = ctx.counters.warm_hint_invalidations
    got = warm_decomposition(g, hint, ctx=ctx)
    assert ctx.counters.warm_hint_invalidations == before + 1
    # the fallback is a genuine full solve, bit-identical to the direct one
    want = bottleneck_decomposition(g, FLOAT, EngineContext())
    assert [(p.B, p.C, repr(p.alpha)) for p in got.pairs] == \
           [(p.B, p.C, repr(p.alpha)) for p in want.pairs]


def test_warm_decomposition_reuses_matching_hint_bit_identically():
    # Same topology, perturbed weights in a range that keeps the
    # decomposition structure stable: the warm path must reconstruct
    # (counted) rather than re-solve, and produce bit-identical pairs.
    cold_ctx = EngineContext()
    g0 = ring([1.0, 1.1, 0.9, 1.05, 0.95])
    g1 = ring([1.0, 1.1, 0.9, 1.05, 1.0])
    hint = bottleneck_decomposition(g0, FLOAT, cold_ctx)
    want = bottleneck_decomposition(g1, FLOAT, EngineContext())

    warm_ctx = EngineContext()
    decomps_before = warm_ctx.counters.decompositions
    got = warm_decomposition(g1, hint, ctx=warm_ctx)
    assert warm_ctx.counters.decomp_reconstructions == 1
    assert warm_ctx.counters.decompositions == decomps_before  # no full solve
    assert [(p.B, p.C, repr(p.alpha)) for p in got.pairs] == \
           [(p.B, p.C, repr(p.alpha)) for p in want.pairs]


def test_warm_decomposition_caches_certified_reconstruction():
    # The certified reconstruction must land in the context cache so the
    # next plain bottleneck_decomposition call on the same instance is a
    # hit -- this is what makes warm epochs strictly cheaper end to end.
    g0 = ring([1.0, 1.1, 0.9, 1.05, 0.95])
    g1 = ring([1.0, 1.1, 0.9, 1.05, 1.0])
    hint = bottleneck_decomposition(g0, FLOAT, EngineContext())
    ctx = EngineContext()
    warm_decomposition(g1, hint, ctx=ctx)
    hits = ctx.counters.cache_hits
    bottleneck_decomposition(g1, FLOAT, ctx)
    assert ctx.counters.cache_hits == hits + 1


def test_warm_decomposition_none_hint_is_plain_solve():
    ctx = EngineContext()
    g = ring([1.0, 2.0, 3.0])
    got = warm_decomposition(g, None, ctx=ctx)
    assert ctx.counters.decompositions == 1
    assert ctx.counters.warm_hint_invalidations == 0
    want = bottleneck_decomposition(g, FLOAT, EngineContext())
    assert [(p.B, p.C, repr(p.alpha)) for p in got.pairs] == \
           [(p.B, p.C, repr(p.alpha)) for p in want.pairs]
