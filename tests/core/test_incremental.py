"""Tests for incremental decomposition reuse (reconstruct + certify).

Two soundness properties matter and both are pinned here: a reconstruction
from a *correct* structural hint is bit-identical to a full solve, and a
reconstruction from a *wrong* hint is rejected (never silently accepted) --
including the 2-path ``(1, 3)`` counterexample where saturation alone
would pass a false pair.
"""

import pytest

from repro.core import (
    BottleneckDecomposition,
    BottleneckPair,
    bd_allocation,
    bottleneck_decomposition,
    certified_endpoint_utilities,
    endpoint_utilities,
    reconstruct_decomposition,
)
from repro.engine import EngineContext
from repro.exceptions import DecompositionError
from repro.graphs import cut_ring_at, path, ring
from repro.numeric import EXACT, FLOAT
from repro.theory.breakpoints import decomposition_signature


def _split_path(w1):
    """The cut-ring path family the best-response sweep actually evaluates."""
    g = ring([4.0, 1.0, 2.0, 3.0, 5.0])
    p, v1, v2 = cut_ring_at(g, 0, w1, 4.0 - w1)
    return p, v1, v2


def test_reconstruction_is_bit_identical_to_full_solve():
    pa, _, _ = _split_path(1.5)
    pb, _, _ = _split_path(1.75)
    hint = bottleneck_decomposition(pa, FLOAT)
    full = bottleneck_decomposition(pb, FLOAT)
    # same combinatorial segment: reconstruction applies
    assert decomposition_signature(hint) == decomposition_signature(full)
    rec = reconstruct_decomposition(pb, hint, FLOAT)
    assert decomposition_signature(rec) == decomposition_signature(full)
    for rp, fp in zip(rec.pairs, full.pairs):
        assert rp.B == fp.B and rp.C == fp.C
        assert repr(rp.alpha) == repr(fp.alpha)  # bit-identical, not just close


def test_reconstruction_rejects_saturating_false_pair():
    # On path (1, 3) the pair ({0}, {1}, alpha=3) saturates both sides of
    # its Definition-5 network, so saturation alone cannot kill it; the
    # alpha <= 1 structural check must.
    g = path([1.0, 3.0])
    fake = BottleneckDecomposition(
        g, [BottleneckPair(1, frozenset([0]), frozenset([1]), 3.0)], FLOAT
    )
    with pytest.raises(DecompositionError, match="exceeds 1"):
        reconstruct_decomposition(g, fake, FLOAT)


def test_reconstruction_rejects_structural_mismatches():
    # A hint's structure is only ever borrowed, so it may come from any
    # graph -- which is exactly how pair-count mismatches arise.
    donor_graph = path([10.0, 1.0, 5.0, 4.0])
    donor = bottleneck_decomposition(donor_graph, FLOAT)
    assert len(donor.pairs) == 2
    # surplus: two donor pairs against a 2-vertex target (one pair covers it)
    with pytest.raises(DecompositionError, match="surplus"):
        reconstruct_decomposition(path([3.0, 1.0]), donor, FLOAT)
    # missing coverage: a single-pair hint against the 4-vertex target
    short = bottleneck_decomposition(path([10.0, 1.0]), FLOAT)
    assert len(short.pairs) == 1
    with pytest.raises(DecompositionError, match="cover"):
        reconstruct_decomposition(donor_graph, short, FLOAT)


def test_reconstruction_counts_on_context():
    pa, _, _ = _split_path(1.0)
    pb, _, _ = _split_path(1.25)
    ctx = EngineContext()
    hint = bottleneck_decomposition(pa, FLOAT, ctx)
    reconstruct_decomposition(pb, hint, FLOAT, ctx)
    assert ctx.counters.decomp_reconstructions == 1


@pytest.mark.parametrize("backend", [FLOAT, EXACT], ids=["float", "exact"])
def test_certified_utilities_match_full_allocation(backend):
    g = ring([backend.scalar(w) for w in (4, 1, 2, 3, 5)])
    w1 = backend.scalar(1)
    p, v1, v2 = cut_ring_at(g, 0, w1, backend.scalar(4) - w1)
    d = bottleneck_decomposition(p, backend)
    alloc = bd_allocation(p, d, backend)
    # plain endpoint utilities: same flows, only the two requested vertices
    u1, u2 = endpoint_utilities(p, d, (v1, v2), backend)
    assert u1 == alloc.utilities[v1] and u2 == alloc.utilities[v2]
    # certified against a bit-identical hint: every untouched pair is
    # certified analytically, and the answers still match exactly
    c1, c2 = certified_endpoint_utilities(p, d, d, (v1, v2), backend)
    assert c1 == alloc.utilities[v1] and c2 == alloc.utilities[v2]


def test_columnar_sweep_reconstructs_and_matches_classic():
    # End-to-end: a best-response sweep under the columnar engine actually
    # exercises segment reuse (reconstructions + warm starts, strictly
    # fewer full solves) and still lands on the classic answer bit-for-bit.
    from repro.attack import best_split

    g = ring([4.0, 1.0, 2.0, 3.0, 5.0, 2.5, 1.5, 3.5])
    cols, classic = EngineContext(engine="columnar"), EngineContext(engine="classic")
    rk = best_split(g, 0, grid=24, ctx=cols)
    rc = best_split(g, 0, grid=24, ctx=classic)
    assert (rk.w1, rk.w2, rk.utility, rk.honest_utility) == (
        rc.w1, rc.w2, rc.utility, rc.honest_utility
    )
    assert cols.counters.decomp_reconstructions > 0
    assert cols.counters.warm_starts > 0
    assert cols.counters.decompositions < classic.counters.decompositions


def test_certified_utilities_resolve_touched_pairs():
    # A hint whose alphas differ from the decomposition's must not be
    # trusted: every pair falls back to the solve-and-check path.
    p, v1, v2 = _split_path(1.0)
    d = bottleneck_decomposition(p, FLOAT)
    stale = BottleneckDecomposition(
        p,
        [BottleneckPair(q.index, q.B, q.C, q.alpha * (1 + 1e-9)) for q in d.pairs],
        FLOAT,
    )
    alloc = bd_allocation(p, d, FLOAT)
    c1, c2 = certified_endpoint_utilities(p, d, stale, (v1, v2), FLOAT)
    assert c1 == alloc.utilities[v1] and c2 == alloc.utilities[v2]
