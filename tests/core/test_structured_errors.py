"""Typed numeric failures: structure the supervisor's retry logic relies on.

The runtime layer classifies failures by type (`is_retryable` /
`is_escalatable`) and reads `signature`/`residual` off them for logging
and corpus filing -- these tests pin down that the core iterations
actually populate those fields.
"""

import numpy as np
import pytest

from repro.core import bottleneck_decomposition, proportional_response
from repro.engine import EngineContext, instance_signature
from repro.exceptions import (
    ConvergenceError,
    NumericalInstabilityError,
    is_escalatable,
    is_retryable,
)
from repro.graphs import random_ring, ring
from repro.numeric import EXACT, FLOAT


def test_dinkelbach_convergence_error_is_structured(monkeypatch):
    import repro.core.bottleneck as bn

    monkeypatch.setattr(bn, "_MAX_DINKELBACH_ITERS", 1)
    g = random_ring(5, np.random.default_rng(0), "loguniform", 0.1, 10)
    with pytest.raises(ConvergenceError) as ei:
        bottleneck_decomposition(g)
    exc = ei.value
    assert exc.signature == instance_signature(g, FLOAT)
    assert exc.iterations == 1
    assert exc.residual is not None and exc.residual >= 0
    assert exc.signature in str(exc)
    assert is_retryable(exc) and is_escalatable(exc)


def test_dynamics_convergence_error_is_structured():
    g = ring((1.0, 2.0, 3.0, 4.0))
    with pytest.raises(ConvergenceError) as ei:
        proportional_response(g, max_iters=1, tol=0.0, raise_on_failure=True)
    exc = ei.value
    assert exc.signature == instance_signature(g)
    assert exc.iterations == 1
    assert exc.residual is not None


def test_overflow_ring_raises_typed_instability_not_silent_nan():
    # The corpus-witnessed class (decomposition-6d8d521248e9): weights near
    # DBL_MAX overflow the parametric weight sums, lambda = inf/inf = nan,
    # and the float decomposition used to return alpha = nan silently.
    g = ring((1e308, 5e307, 1e308))
    with pytest.raises(NumericalInstabilityError) as ei:
        bottleneck_decomposition(g)
    # Caught either at the engine's finiteness boundary or earlier, by the
    # network constructor's NaN-capacity guard; both are the same typed class.
    assert "finite" in str(ei.value) or "NaN" in str(ei.value)
    assert is_retryable(ei.value) and is_escalatable(ei.value)


def test_overflow_ring_is_fine_under_exact_backend():
    # ... which is exactly why the supervisor escalates it there.
    g = ring((1e308, 5e307, 1e308))
    d = bottleneck_decomposition(g, EXACT, EngineContext(cache_size=0))
    assert all(d.alpha_of(v) > 0 for v in range(g.n))


def test_instance_signature_is_stable_and_input_sensitive():
    g = ring((1.0, 2.0, 3.0))
    assert instance_signature(g) == instance_signature(g)
    assert instance_signature(g) != instance_signature(ring((1.0, 2.0, 4.0)))
    assert instance_signature(g) != instance_signature(g, EXACT)
