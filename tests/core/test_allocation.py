"""Tests for the BD Allocation Mechanism (Definition 5)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    Allocation,
    bd_allocation,
    bottleneck_decomposition,
    closed_form_utilities,
)
from repro.exceptions import AllocationError
from repro.graphs import (
    WeightedGraph,
    path,
    random_connected_graph,
    random_ring,
    ring,
    star,
)
from repro.numeric import EXACT, FLOAT


def test_star_allocation_exact():
    g = star(10, [1, 1, 1])
    alloc = bd_allocation(g, backend=EXACT)
    # center (B class) sends everything: 10 split so each leaf receives w/alpha = 10/3
    assert alloc.sent(0) == 10
    for leaf in (1, 2, 3):
        assert alloc.received(leaf) == Fraction(10, 3)
        # each leaf returns its full weight to the center
        assert alloc.x[(leaf, 0)] == 1
    assert alloc.utilities[0] == 3  # w * alpha = 10 * 3/10


def test_two_vertex_path():
    g = path([1, 4])
    alloc = bd_allocation(g, backend=EXACT)
    assert alloc.x[(1, 0)] == 4
    assert alloc.x[(0, 1)] == 1
    assert alloc.utilities == (4, 1)


def test_uniform_ring_unit_pair_allocation():
    g = ring([1, 1, 1, 1, 1])
    alloc = bd_allocation(g, backend=EXACT)
    # everyone spends exactly its endowment and earns exactly w_v
    for v in g.vertices():
        assert alloc.sent(v) == 1
        assert alloc.utilities[v] == 1
    alloc.check_feasible()


def test_allocation_zero_on_cross_pair_edges():
    g = WeightedGraph(
        6,
        [(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
        [Fraction(3, 2), Fraction(3, 2), 1, 1, 1, 1],
    )
    alloc = bd_allocation(g, backend=EXACT)
    # edge (2,3) joins C_1 to B_2: carries nothing in either direction
    assert alloc.x.get((2, 3), 0) == 0
    assert alloc.x.get((3, 2), 0) == 0


def test_utilities_match_closed_form_exact():
    rng = np.random.default_rng(7)
    for _ in range(8):
        g = random_ring(int(rng.integers(3, 10)), rng, "integer", 1, 12)
        d = bottleneck_decomposition(g, EXACT)
        alloc = bd_allocation(g, d, backend=EXACT)
        for v, cf in enumerate(closed_form_utilities(d)):
            assert cf is not None
            assert alloc.utilities[v] == cf


def test_utilities_match_closed_form_float():
    rng = np.random.default_rng(8)
    for _ in range(6):
        g = random_connected_graph(8, 4, rng, "uniform", 0.5, 5.0)
        d = bottleneck_decomposition(g, FLOAT)
        alloc = bd_allocation(g, d, backend=FLOAT)
        for v, cf in enumerate(closed_form_utilities(d)):
            assert float(alloc.utilities[v]) == pytest.approx(float(cf), rel=1e-7)


def test_everyone_spends_endowment_exact():
    rng = np.random.default_rng(9)
    for _ in range(8):
        g = random_connected_graph(7, 3, rng, "integer", 1, 9)
        alloc = bd_allocation(g, backend=EXACT)
        for v in g.vertices():
            assert alloc.sent(v) == g.weights[v]
        alloc.check_feasible()


def test_zero_weight_split_endpoint():
    # Case C-2 shape: a zero-weight leaf participates without breaking the flow
    g = path([0, 1, 4])
    alloc = bd_allocation(g, backend=EXACT)
    assert alloc.utilities[0] == 0
    assert alloc.sent(0) == 0
    assert alloc.utilities[2] == 1  # B class: w * alpha = 4 * 1/4
    alloc.check_feasible()


def test_allocation_support_is_edge_set():
    rng = np.random.default_rng(10)
    g = random_connected_graph(8, 5, rng, "integer", 1, 9)
    alloc = bd_allocation(g, backend=EXACT)
    for (u, v) in alloc.x:
        assert g.has_edge(u, v)


def test_check_feasible_detects_non_edge():
    g = path([1, 1, 1])
    alloc = bd_allocation(g, backend=EXACT)
    bad = Allocation(graph=g, x={(0, 2): 1}, utilities=(0, 0, 1))
    with pytest.raises(AllocationError):
        bad.check_feasible()


def test_check_feasible_detects_overspend():
    g = path([1, 1])
    bad = Allocation(graph=g, x={(0, 1): 5}, utilities=(0, 5))
    with pytest.raises(AllocationError):
        bad.check_feasible()


def test_check_feasible_detects_negative():
    g = path([1, 1])
    bad = Allocation(graph=g, x={(0, 1): -1}, utilities=(0, -1))
    with pytest.raises(AllocationError):
        bad.check_feasible()


def test_reuses_provided_decomposition():
    g = star(10, [1, 1, 1])
    d = bottleneck_decomposition(g, EXACT)
    alloc = bd_allocation(g, d, backend=EXACT)
    assert alloc.utilities[0] == 3
