"""Tests for alpha-ratio computations."""

from fractions import Fraction

import pytest

from repro.core import alpha_ratio, alpha_within, pair_alpha
from repro.graphs import path, ring, star
from repro.numeric import EXACT, FLOAT


def test_alpha_single_vertex_on_path():
    g = path([2, 4, 6])
    # Gamma({1}) = {0, 2}, alpha = (2+6)/4 = 2
    assert alpha_ratio(g, [1], EXACT) == Fraction(2)


def test_alpha_includes_internal_neighbors():
    g = ring([1, 1, 1])
    # Gamma({0,1}) = {0,1,2} on a triangle
    assert alpha_ratio(g, [0, 1], EXACT) == Fraction(3, 2)


def test_alpha_whole_graph_at_most_one():
    for g in (ring([1, 2, 3, 4]), path([1, 2, 3]), star(2, [1, 1, 1])):
        a = alpha_ratio(g, list(g.vertices()), EXACT)
        assert a <= 1


def test_alpha_empty_or_zero_weight_is_none():
    g = path([0, 1])
    assert alpha_ratio(g, [], EXACT) is None
    assert alpha_ratio(g, [0], EXACT) is None  # w(S) = 0


def test_alpha_float_matches_exact():
    g = ring([1.5, 2.5, 3.0, 0.5])
    a_f = alpha_ratio(g, [0, 2], FLOAT)
    a_e = alpha_ratio(g.with_weights([Fraction(3, 2), Fraction(5, 2), 3, Fraction(1, 2)]), [0, 2], EXACT)
    assert a_f == pytest.approx(float(a_e))


def test_alpha_within_restricts_neighborhood():
    g = path([1, 1, 1, 1])
    # within active {1,2,3}: Gamma({1}) ∩ active = {2}
    assert alpha_within(g, [1], [1, 2, 3], EXACT) == Fraction(1)
    # full graph: Gamma({1}) = {0, 2} -> alpha = 2
    assert alpha_ratio(g, [1], EXACT) == Fraction(2)


def test_alpha_within_requires_containment():
    g = path([1, 1, 1])
    assert alpha_within(g, [0], [1, 2], EXACT) is None


def test_pair_alpha():
    g = path([1, 2, 3])
    assert pair_alpha(g, [1], [0, 2], EXACT) == Fraction(4, 2)
    assert pair_alpha(g, [0], [], EXACT) == 0
    assert pair_alpha(g, [], [0], EXACT) is None
