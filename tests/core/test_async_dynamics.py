"""Tests for the asynchronous (gossip) proportional response variant."""

import numpy as np
import pytest

from repro.core import async_proportional_response, bd_allocation
from repro.exceptions import ConvergenceError
from repro.graphs import WeightedGraph, random_ring, ring, star
from repro.numeric import FLOAT


@pytest.mark.parametrize("seed", range(5))
def test_async_converges_to_bd_allocation(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 8))
    g = random_ring(n, rng, "uniform", 0.5, 5.0)
    res = async_proportional_response(g, np.random.default_rng(7), max_sweeps=20_000, tol=1e-11)
    assert res.converged
    alloc = bd_allocation(g, backend=FLOAT)
    for v in g.vertices():
        assert res.utility_of(v) == pytest.approx(float(alloc.utilities[v]), rel=1e-4, abs=1e-7)


def test_async_handles_even_rings_without_damping():
    """The bipartite 2-cycle of the synchronous raw update does not occur
    under the Gauss-Seidel schedule."""
    g = ring([1.0, 5.0, 2.0, 4.0, 3.0, 6.0])
    res = async_proportional_response(g, np.random.default_rng(0), tol=1e-11)
    assert res.converged


def test_async_star():
    g = star(10.0, [1.0, 1.0, 1.0])
    res = async_proportional_response(g, np.random.default_rng(1), tol=1e-12)
    assert res.converged
    assert res.utility_of(0) == pytest.approx(3.0)


def test_async_trace_recorded():
    g = ring([1.0, 2.0, 3.0, 4.0, 5.0])
    res = async_proportional_response(
        g, np.random.default_rng(2), max_sweeps=200, tol=0, record_every=10
    )
    assert len(res.trace) >= 1
    sweeps = [s for s, _ in res.trace]
    assert sweeps == sorted(sweeps)


def test_async_raise_on_failure():
    g = ring([1.0, 5.0, 2.0, 4.0, 3.0])
    with pytest.raises(ConvergenceError):
        async_proportional_response(
            g, np.random.default_rng(3), max_sweeps=1, tol=0, raise_on_failure=True
        )


def test_async_rejects_edgeless():
    g = WeightedGraph(2, [], [1, 1])
    with pytest.raises(ConvergenceError):
        async_proportional_response(g, np.random.default_rng(0))
