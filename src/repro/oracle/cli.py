"""Command-line entry point: ``repro-oracle``.

Usage::

    repro-oracle list   [--corpus DIR]        # enumerate corpus records
    repro-oracle replay [--corpus DIR] [--record PATH]
    repro-oracle shrink PATH [--corpus DIR]   # minimize a graph-kind record

``replay`` is the corpus-as-regression-suite surface: every record is
re-run against the current code and the exit status is non-zero iff any
historical failure still reproduces.  CI replays the checked-in corpus on
every push; a new bug found by ``repro-exp --audit`` lands here as a record
and stays green forever after the fix.
"""

from __future__ import annotations

import argparse
import sys

from ..exceptions import ReproError
from ..io.serialization import graph_from_dict, graph_to_dict
from .corpus import DEFAULT_CORPUS_DIR, FailureCorpus, FailureRecord
from .replay import replay_record

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-oracle",
        description="Replay and manage the oracle failure corpus",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list corpus records")
    list_p.add_argument("--corpus", default=DEFAULT_CORPUS_DIR, metavar="DIR")

    replay_p = sub.add_parser("replay", help="replay records as a regression suite")
    replay_p.add_argument("--corpus", default=DEFAULT_CORPUS_DIR, metavar="DIR")
    replay_p.add_argument("--record", default=None, metavar="PATH",
                          help="replay a single record instead of the whole corpus")

    shrink_p = sub.add_parser("shrink", help="minimize a graph-kind record in place")
    shrink_p.add_argument("record", metavar="PATH")
    shrink_p.add_argument("--max-evals", type=int, default=200)
    return parser


def _cmd_list(corpus: FailureCorpus) -> int:
    paths = corpus.paths()
    if not paths:
        print(f"corpus {corpus.root} is empty")
        return 0
    for path in paths:
        rec = corpus.load(path)
        summary = rec.problems[0] if rec.problems else "(no recorded problems)"
        print(f"{path.name:34s} {rec.kind:14s} {rec.created or '-':20s} {summary}")
    return 0


def _cmd_replay(corpus: FailureCorpus, record: str | None) -> int:
    if record is not None:
        targets = [record]
    else:
        targets = [str(p) for p in corpus.paths()]
        if not targets:
            print(f"corpus {corpus.root} is empty; nothing to replay")
            return 0
    reproduced = 0
    for path in targets:
        res = replay_record(corpus.load(path))
        tag = "REPRO" if res.reproduced else "clean"
        print(f"[{tag}] {path}")
        for problem in res.problems:
            print(f"        {problem}")
        reproduced += res.reproduced
    print(f"== corpus replay: {len(targets) - reproduced}/{len(targets)} clean"
          + (f"; {reproduced} still reproduce ==" if reproduced else " =="))
    return 1 if reproduced else 0


def _cmd_shrink(corpus: FailureCorpus, path: str, max_evals: int) -> int:
    import json

    from .corpus import shrink_graph

    rec = corpus.load(path)
    if "graph" not in rec.payload:
        print(f"record {path} has no graph payload; only graph-kind records shrink",
              file=sys.stderr)
        return 2
    g = graph_from_dict(rec.payload["graph"])

    def fails(candidate) -> bool:
        trial = FailureRecord(
            kind=rec.kind, problems=(), context=rec.context,
            payload=dict(rec.payload, graph=graph_to_dict(candidate)),
        )
        try:
            return replay_record(trial).reproduced
        except ReproError:
            return False

    if not fails(g):
        print(f"record {path} does not reproduce; nothing to shrink")
        return 0
    small = shrink_graph(g, fails, max_evals=max_evals)
    if small.n == g.n:
        print(f"record {path} is already minimal at n={g.n}")
        return 0
    shrunk = FailureRecord(
        kind=rec.kind, problems=rec.problems, context=rec.context,
        payload=dict(rec.payload, graph=graph_to_dict(small), shrunk_from_n=g.n),
        created=rec.created,
    )
    with open(path, "w") as f:
        json.dump(shrunk.to_dict(), f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"shrunk {path}: n={g.n} -> n={small.n}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        corpus = FailureCorpus(getattr(args, "corpus", DEFAULT_CORPUS_DIR))
        if args.command == "list":
            return _cmd_list(corpus)
        if args.command == "replay":
            return _cmd_replay(corpus, args.record)
        if args.command == "shrink":
            return _cmd_shrink(corpus, args.record, args.max_evals)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
