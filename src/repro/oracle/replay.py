"""Replay corpus records against a fresh engine.

A replay re-runs the recorded failing call -- same solver, same backend,
same zero-tolerance -- and applies the *same* invariant predicates the
auditor used, at the audit level stored in the record.  The verdict is
``reproduced`` when any predicate still fails (or the computation itself
raises), ``clean`` when the historical failure no longer manifests.

Replaying never consults the ``problems`` text stored in the record: those
document what was seen at record time, while the verdict must reflect the
code under test now.  Passing a custom solver registry lets tests replay a
record against the (possibly deliberately corrupted) solver that produced
it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import SOLVERS, EngineContext, SolverRegistry
from ..exceptions import (
    ConvergenceError,
    CorpusError,
    NumericalInstabilityError,
    ReproError,
)
from ..io.serialization import graph_from_dict, network_from_dict
from .corpus import FailureCorpus, FailureRecord, backend_from_dict
from .differential import (
    differential_decomposition_problems,
    differential_flow_problems,
)
from .invariants import (
    allocation_problems,
    best_response_problems,
    decomposition_problems,
    fixed_point_problems,
    flow_certificate_problems,
)

__all__ = ["ReplayResult", "replay_record", "replay_corpus"]


@dataclass(frozen=True)
class ReplayResult:
    """Verdict of one record replay."""

    kind: str
    reproduced: bool
    problems: tuple[str, ...]

    @property
    def verdict(self) -> str:
        return "REPRODUCED" if self.reproduced else "clean"


def _context(rec: FailureRecord, registry: SolverRegistry) -> EngineContext:
    solver = rec.context.get("solver", "dinic")
    if solver not in registry:
        raise CorpusError(
            f"record needs solver {solver!r} which is not registered "
            f"(have: {', '.join(registry.names())})"
        )
    return EngineContext(
        solver=solver,
        backend=backend_from_dict(rec.context.get("backend", {"tol": 0.0})),
        zero_tol=rec.context.get("zero_tol", 0.0),
        cache_size=0,
        registry=registry,
    )


def replay_record(
    rec: FailureRecord, registry: SolverRegistry | None = None
) -> ReplayResult:
    """Re-run one record's failing call and re-apply its audit predicates."""
    registry = registry if registry is not None else SOLVERS
    ctx = _context(rec, registry)
    level = rec.context.get("level", "cheap")
    differential = level in ("differential", "paranoid")
    try:
        if rec.kind == "flow":
            problems = _replay_flow(rec, ctx, differential)
        elif rec.kind == "decomposition":
            problems = _replay_decomposition(rec, ctx, differential)
        elif rec.kind == "allocation":
            problems = _replay_allocation(rec, ctx, level == "paranoid")
        elif rec.kind == "best_response":
            problems = _replay_best_response(rec, ctx)
        elif rec.kind == "fuzz":
            problems = _replay_fuzz(rec, ctx)
        else:  # pragma: no cover - FailureRecord validates kinds
            raise CorpusError(f"unknown record kind {rec.kind!r}")
    except CorpusError:
        raise
    except (ConvergenceError, NumericalInstabilityError):
        # Typed graceful degradation, not a reproduction: the engine now
        # *detects* the degeneracy (NaN/Inf flow value, non-convergent
        # iteration) and raises a structured, retryable error where it
        # historically returned silently wrong numbers.  The failure the
        # record witnessed -- bad output passing as good -- can no longer
        # manifest, so the record is clean; the supervisor's retry and
        # exact-backend escalation handle the raise at runtime.
        problems = []
    except ReproError as exc:
        # The recorded call itself still blows up -- strongest reproduction.
        problems = [f"{type(exc).__name__}: {exc}"]
    return ReplayResult(
        kind=rec.kind, reproduced=bool(problems), problems=tuple(problems)
    )


def _replay_flow(rec: FailureRecord, ctx: EngineContext, differential: bool) -> list[str]:
    p = rec.payload
    net = network_from_dict(p["network"])
    s, t, zero_tol = p["s"], p["t"], p.get("zero_tol", ctx.zero_tol)
    entry = ctx.registry.get(rec.context.get("solver", "dinic"))
    value = entry.fn(net, s, t, zero_tol)
    problems = flow_certificate_problems(
        net, s, t, value, zero_tol, arc_flows_valid=entry.supports_arc_flows
    )
    if differential:
        diff, _ = differential_flow_problems(
            net, s, t, value, zero_tol, solved_by=entry, registry=ctx.registry,
            nx_node_limit=64,
        )
        problems += diff
    return problems


def _replay_decomposition(
    rec: FailureRecord, ctx: EngineContext, differential: bool
) -> list[str]:
    from ..core.bottleneck import bottleneck_decomposition

    g = graph_from_dict(rec.payload["graph"])
    d = bottleneck_decomposition(g, ctx.backend, ctx)
    problems = decomposition_problems(g, d)
    if differential:
        diff, _ = differential_decomposition_problems(g, d)
        problems += diff
    return problems


def _replay_allocation(rec: FailureRecord, ctx: EngineContext, paranoid: bool) -> list[str]:
    from ..core.allocation import bd_allocation

    g = graph_from_dict(rec.payload["graph"])
    alloc = bd_allocation(g, backend=ctx.backend, ctx=ctx)
    problems = allocation_problems(g, alloc, ctx.backend)
    if paranoid:
        problems += fixed_point_problems(alloc)
    return problems


def _replay_best_response(rec: FailureRecord, ctx: EngineContext) -> list[str]:
    from ..attack.best_response import best_split

    g = graph_from_dict(rec.payload["graph"])
    v = rec.payload["vertex"]
    br = best_split(g, v, grid=rec.payload.get("grid", 32),
                    backend=ctx.backend, ctx=ctx)
    return best_response_problems(g, v, br)


def _replay_fuzz(rec: FailureRecord, ctx: EngineContext) -> list[str]:
    # Lazy: repro.guard.fuzz imports the whole public API, and the guard
    # package deliberately keeps it out of eager import chains.
    from ..guard.fuzz import run_pipeline

    level = rec.context.get("level", "off")
    if level and level != "off":
        # Audit-level escapes (e.g. a reference oracle crashing inside the
        # differential layer) only manifest with the auditor attached.
        from .audit import attach_auditor

        attach_auditor(ctx, level=level)
    outcome = run_pipeline(
        rec.payload["graph"], ctx, grid=rec.payload.get("grid", 6)
    )
    if outcome.status in ("ok", "rejected"):
        # Typed rejection IS the hardening contract holding: the payload a
        # fuzz campaign once crashed on is now refused (or handled) cleanly.
        return []
    return [f"{outcome.status} at {outcome.stage}: {outcome.detail}"]


def replay_corpus(
    corpus: FailureCorpus, registry: SolverRegistry | None = None
) -> list[tuple[str, ReplayResult]]:
    """Replay every record; returns ``(path, result)`` in path order."""
    results = []
    for path, rec in corpus:
        results.append((str(path), replay_record(rec, registry)))
    return results
