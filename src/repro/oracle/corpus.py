"""Versioned on-disk corpus of minimal reproducing failure instances.

Every audit violation is serialized as one self-contained JSON record under
the corpus directory (default ``corpus/``), named by a content hash so the
same failure discovered twice lands in the same file.  A record carries the
format version, the failure kind, the engine configuration that produced
it, and the exact instance (graph or flow network, scalars serialized
exactly via :mod:`repro.io.serialization`) -- everything the replayer needs
to re-run the failing call and the same invariant predicates against a
fresh engine.

The corpus doubles as a regression suite: ``repro-oracle replay`` re-audits
every checked-in record and exits non-zero if any failure still
*reproduces*.  A record whose replay comes back clean documents a fixed
bug; one that reproduces is a live defect.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import CorpusError
from ..graphs import WeightedGraph
from ..numeric import Backend, DEFAULT_TOL, EXACT, FLOAT, make_float_backend

__all__ = [
    "CORPUS_FORMAT",
    "DEFAULT_CORPUS_DIR",
    "FailureRecord",
    "FailureCorpus",
    "backend_to_dict",
    "backend_from_dict",
    "shrink_graph",
]

#: Record format version; bump on incompatible schema changes.  The
#: replayer refuses newer formats instead of misinterpreting them.
CORPUS_FORMAT = 1

#: Conventional corpus location at the repository root.
DEFAULT_CORPUS_DIR = "corpus"

#: Kinds a record may carry; the replayer dispatches on this.  ``fuzz``
#: records carry a *raw* (possibly malformed) graph payload dict found by
#: the ``repro-fuzz`` harness; replaying one re-runs the guarded pipeline
#: and reproduces iff an untyped exception or a NaN/Inf result escapes.
KINDS = ("flow", "decomposition", "allocation", "best_response", "fuzz")


def backend_to_dict(backend: Backend) -> dict:
    return {"name": backend.name, "tol": backend.tol}


def backend_from_dict(d: dict) -> Backend:
    tol = d.get("tol", 0.0)
    if tol == 0.0:
        return EXACT
    if tol == DEFAULT_TOL:
        return FLOAT
    return make_float_backend(tol)


@dataclass(frozen=True)
class FailureRecord:
    """One serialized audit failure.

    ``context`` holds the engine configuration (solver name, backend,
    zero-tolerance, audit level), ``payload`` the kind-specific instance
    data (a graph dict, or a network dict plus terminals).  ``problems``
    is the list of violated invariants at record time -- informational;
    the replay verdict always comes from re-running the predicates.
    """

    kind: str
    problems: tuple[str, ...]
    context: dict
    payload: dict
    format: int = CORPUS_FORMAT
    created: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise CorpusError(f"unknown failure kind {self.kind!r}; known: {KINDS}")

    def digest(self) -> str:
        """Content hash over everything replay-relevant (not ``created`` or
        the observed ``problems``, so rediscoveries deduplicate)."""
        canon = json.dumps(
            {"format": self.format, "kind": self.kind,
             "context": self.context, "payload": self.payload},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(canon.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {
            "format": self.format,
            "kind": self.kind,
            "problems": list(self.problems),
            "context": self.context,
            "payload": self.payload,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FailureRecord":
        if not isinstance(d, dict):
            raise CorpusError(
                f"corpus record is not an object: {type(d).__name__}")
        try:
            fmt = d["format"]
            if not isinstance(fmt, int) or isinstance(fmt, bool):
                raise CorpusError(f"record format is not an integer: {fmt!r}")
            if fmt > CORPUS_FORMAT:
                raise CorpusError(
                    f"record format {fmt} is newer than supported {CORPUS_FORMAT}"
                )
            return cls(
                kind=d["kind"],
                problems=tuple(d.get("problems", ())),
                context=dict(d["context"]),
                payload=dict(d["payload"]),
                format=fmt,
                created=d.get("created", ""),
            )
        except KeyError as exc:
            raise CorpusError(f"missing record field {exc}") from exc
        except (TypeError, ValueError) as exc:
            # dict()/comparison blowing up on wrong-shaped fields: typed
            # refusal, never a raw traceback out of corpus ingestion.
            raise CorpusError(f"malformed record field: {exc}") from exc


class FailureCorpus:
    """Directory of :class:`FailureRecord` JSON files.

    Lazy: the directory is created on the first ``add``, so configuring a
    corpus on an audit run that finds nothing leaves the tree untouched.
    """

    def __init__(self, root: str | Path = DEFAULT_CORPUS_DIR) -> None:
        self.root = Path(root)

    def record_path(self, rec: FailureRecord) -> Path:
        return self.root / f"{rec.kind}-{rec.digest()[:12]}.json"

    def add(self, rec: FailureRecord) -> Path:
        """Persist ``rec`` (no-op when the same failure is already filed)."""
        path = self.record_path(rec)
        if not path.exists():
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with open(tmp, "w") as f:
                json.dump(rec.to_dict(), f, indent=2, sort_keys=True)
                f.write("\n")
            tmp.replace(path)  # atomic publish: replayers never see half a record
        return path

    def paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.glob("*.json"))

    def load(self, path: str | Path) -> FailureRecord:
        try:
            with open(path) as f:
                return FailureRecord.from_dict(json.load(f))
        except (OSError, json.JSONDecodeError) as exc:
            raise CorpusError(f"unreadable corpus record {path}: {exc}") from exc

    def __len__(self) -> int:
        return len(self.paths())

    def __iter__(self):
        for path in self.paths():
            yield path, self.load(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureCorpus({str(self.root)!r}, records={len(self)})"


def now_stamp() -> str:
    """UTC second-resolution timestamp for record provenance."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def shrink_graph(g: WeightedGraph, fails, max_evals: int = 200) -> WeightedGraph:
    """Greedy instance minimization: drop vertices while ``fails`` holds.

    ``fails(graph) -> bool`` re-runs the violated check; the predicate must
    treat *any* exception as "still failing" itself if it wants crashes
    minimized.  Evaluation is bounded by ``max_evals`` so a slow predicate
    cannot stall the audit path; the best instance found so far is returned
    (always at least ``g`` itself).

    This is a one-pass greedy delta-debugger, not hypothesis-grade
    shrinking: good enough to strip padding vertices off a sweep instance
    before it is filed in the corpus.
    """
    current = g
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for v in sorted(range(current.n), key=lambda u: -u):
            if current.n <= 2:
                return current
            keep = [u for u in current.vertices() if u != v]
            candidate, _ = current.induced_subgraph(keep)
            evals += 1
            try:
                still_failing = fails(candidate)
            except Exception:
                still_failing = False  # malformed candidate: not a witness
            if still_failing:
                current = candidate
                improved = True
                break
            if evals >= max_evals:
                break
    return current
