"""The audit layer: every engine operation checked as it happens.

:class:`Auditor` implements the hook protocol ``EngineContext`` exposes
(``on_flow`` / ``on_decomposition`` / ``on_allocation`` /
``on_best_response``) at four levels:

``off``
    Not even attached; zero overhead.
``cheap``
    Self-consistency certificates on every operation: flow axioms + min-cut
    certificates on each max-flow solve, Proposition 3 structure and
    alpha-ratio consistency on each decomposition, budget balance and
    market clearing on each allocation, sweep monotonicity and the
    Theorem 8 bound on each best response.  O(instance) per operation.
``differential``
    Everything above, plus sampled re-solves against independent oracles
    (the other registered solvers, networkx, and -- for small instances --
    the brute-force subset enumeration).  Sampling is counter-based, never
    randomized, so a failing run replays deterministically.
``paranoid``
    Differential with the sample period forced to 1 (every call), plus the
    proportional-response fixed-point residual on every allocation.

On violation the instance is serialized into the failure corpus (when one
is configured), after a bounded greedy shrink for graph-shaped failures,
and an :class:`~repro.exceptions.AuditError` is raised -- or merely
counted, with ``on_violation="record"``, for harvesting corpora from runs
that should keep going.  All outcomes feed ``Counters`` so ``--stats``
reports audit work next to flow calls and cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..engine.context import EngineContext
from ..engine.registry import Solver
from ..exceptions import AuditError, EngineError
from ..flow.network import FlowNetwork
from ..graphs import WeightedGraph
from ..io.serialization import graph_to_dict, network_to_dict
from ..numeric import Backend
from .corpus import FailureCorpus, FailureRecord, backend_to_dict, now_stamp, shrink_graph
from .differential import (
    BRUTE_FORCE_LIMIT,
    differential_decomposition_problems,
    differential_flow_problems,
)
from .invariants import (
    allocation_problems,
    best_response_problems,
    decomposition_problems,
    fixed_point_problems,
    flow_certificate_problems,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..attack.best_response import BestResponse
    from ..core.allocation import Allocation
    from ..core.bottleneck import BottleneckDecomposition

__all__ = ["AUDIT_LEVELS", "AuditConfig", "Auditor", "attach_auditor"]

#: Recognized audit levels, cheapest first.
AUDIT_LEVELS = ("off", "cheap", "differential", "paranoid")


@dataclass(frozen=True)
class AuditConfig:
    """Knobs of one :class:`Auditor`.

    ``sample_period`` applies to the differential re-solves only (cheap
    certificates always run): every ``sample_period``-th flow solve and
    decomposition is cross-checked.  13 is deliberately prime so the sample
    does not alias with the loop structure of grid sweeps.
    """

    level: str = "cheap"
    sample_period: int = 13
    brute_limit: int = BRUTE_FORCE_LIMIT
    nx_node_limit: int = 48
    on_violation: str = "raise"  # or "record"
    shrink_evals: int = 60

    def __post_init__(self) -> None:
        if self.level not in AUDIT_LEVELS or self.level == "off":
            raise EngineError(
                f"audit level must be one of {AUDIT_LEVELS[1:]}, got {self.level!r}"
            )
        if self.on_violation not in ("raise", "record"):
            raise EngineError(
                f"on_violation must be 'raise' or 'record', got {self.on_violation!r}"
            )
        if self.sample_period < 1:
            raise EngineError(f"sample_period must be >= 1, got {self.sample_period}")

    @property
    def rank(self) -> int:
        return AUDIT_LEVELS.index(self.level)


class Auditor:
    """Stateful audit hook attached to one :class:`EngineContext`."""

    def __init__(self, config: AuditConfig, corpus: FailureCorpus | None = None) -> None:
        if config.level == "paranoid" and config.sample_period != 1:
            config = replace(config, sample_period=1)
        self.config = config
        self.corpus = corpus
        self._flow_seen = 0
        self._decomp_seen = 0

    # -- identification ---------------------------------------------------
    @property
    def level_name(self) -> str:
        return self.config.level

    @property
    def corpus_dir(self) -> str | None:
        return str(self.corpus.root) if self.corpus is not None else None

    @property
    def differential(self) -> bool:
        return self.config.rank >= AUDIT_LEVELS.index("differential")

    @property
    def paranoid(self) -> bool:
        return self.config.rank >= AUDIT_LEVELS.index("paranoid")

    def _sampled(self, seen: int) -> bool:
        return seen % self.config.sample_period == 0

    # -- hook protocol ----------------------------------------------------
    def on_flow(
        self,
        ctx: EngineContext,
        net: FlowNetwork,
        s: int,
        t: int,
        value,
        zero_tol: float,
        entry: Solver,
    ) -> None:
        counters = ctx.counters
        counters.audit_flow_checks += 1
        problems = flow_certificate_problems(
            net, s, t, value, zero_tol, arc_flows_valid=entry.supports_arc_flows
        )
        self._flow_seen += 1
        if self.differential and self._sampled(self._flow_seen):
            diff_problems, checks = differential_flow_problems(
                net, s, t, value, zero_tol,
                solved_by=entry,
                registry=ctx.registry,
                nx_node_limit=self.config.nx_node_limit,
            )
            counters.audit_differential_checks += checks
            if diff_problems:
                counters.audit_disagreements += len(diff_problems)
                problems = problems + diff_problems
        if problems:
            self._violation(
                ctx, "flow", problems,
                payload={
                    "network": network_to_dict(net),
                    "s": s, "t": t,
                    "zero_tol": zero_tol,
                    "solver": entry.name,
                },
            )

    def on_decomposition(
        self, ctx: EngineContext, g: WeightedGraph, decomp: "BottleneckDecomposition"
    ) -> None:
        counters = ctx.counters
        counters.audit_invariant_checks += 1
        problems = decomposition_problems(g, decomp)
        self._decomp_seen += 1
        if self.differential and self._sampled(self._decomp_seen):
            diff_problems, checks = differential_decomposition_problems(
                g, decomp, brute_limit=self.config.brute_limit
            )
            counters.audit_differential_checks += checks
            if diff_problems:
                counters.audit_disagreements += len(diff_problems)
                problems = problems + diff_problems
        if problems:
            self._violation(
                ctx, "decomposition", problems,
                payload={"graph": graph_to_dict(g)},
                backend=decomp.backend,
                shrink=(g, _decomposition_still_fails(decomp.backend)),
            )

    def on_allocation(
        self,
        ctx: EngineContext,
        g: WeightedGraph,
        decomp: "BottleneckDecomposition",
        alloc: "Allocation",
    ) -> None:
        counters = ctx.counters
        counters.audit_invariant_checks += 1
        problems = allocation_problems(g, alloc, decomp.backend)
        if self.paranoid:
            problems = problems + fixed_point_problems(alloc)
        if problems:
            self._violation(
                ctx, "allocation", problems,
                payload={"graph": graph_to_dict(g)},
                backend=decomp.backend,
                shrink=(g, _allocation_still_fails(decomp.backend, self.paranoid)),
            )

    def on_best_response(
        self, ctx: EngineContext, g: WeightedGraph, v: int, br: "BestResponse"
    ) -> None:
        ctx.counters.audit_invariant_checks += 1
        problems = best_response_problems(g, v, br)
        if problems:
            self._violation(
                ctx, "best_response", problems,
                payload={"graph": graph_to_dict(g), "vertex": v},
            )

    # -- violation path ---------------------------------------------------
    def _violation(
        self,
        ctx: EngineContext,
        kind: str,
        problems: list[str],
        payload: dict,
        backend: Backend | None = None,
        shrink: tuple[WeightedGraph, object] | None = None,
    ) -> None:
        ctx.counters.audit_violations += 1
        path = None
        if self.corpus is not None:
            if shrink is not None and self.config.shrink_evals > 0:
                g, fails = shrink
                small = shrink_graph(g, fails, max_evals=self.config.shrink_evals)
                if small.n < g.n:
                    payload = dict(payload, graph=graph_to_dict(small),
                                   shrunk_from_n=g.n)
            rec = FailureRecord(
                kind=kind,
                problems=tuple(problems),
                context={
                    "solver": ctx.solver,
                    "backend": backend_to_dict(
                        backend if backend is not None else ctx.backend
                    ),
                    "zero_tol": ctx.zero_tol,
                    "level": self.config.level,
                },
                payload=payload,
                created=now_stamp(),
            )
            path = str(self.corpus.add(rec))
        message = f"{kind} audit failed: " + "; ".join(problems)
        if self.config.on_violation == "raise":
            raise AuditError(message, record_path=path)


def _decomposition_still_fails(backend: Backend):
    """Shrink predicate: does the decomposition of a sub-instance still
    violate an invariant (or fail to compute at all)?"""

    def fails(sub: WeightedGraph) -> bool:
        from ..core.bottleneck import bottleneck_decomposition

        ctx = EngineContext(cache_size=0)
        try:
            d = bottleneck_decomposition(sub, backend, ctx)
        except AuditError:
            return True
        except Exception:
            return False  # structurally invalid candidate (isolated vertex, ...)
        return bool(decomposition_problems(sub, d))

    return fails


def _allocation_still_fails(backend: Backend, paranoid: bool):
    def fails(sub: WeightedGraph) -> bool:
        from ..core.allocation import bd_allocation

        ctx = EngineContext(cache_size=0)
        try:
            alloc = bd_allocation(sub, backend=backend, ctx=ctx)
        except AuditError:
            return True
        except Exception:
            return False
        problems = allocation_problems(sub, alloc, backend)
        if paranoid:
            problems = problems + fixed_point_problems(alloc)
        return bool(problems)

    return fails


def attach_auditor(
    ctx: EngineContext,
    level: str = "cheap",
    corpus_dir: str | None = None,
    **overrides,
) -> Auditor:
    """Build an :class:`Auditor` and install it on ``ctx``.

    ``level="off"`` detaches any existing auditor and returns ``None``.
    Extra keyword arguments override :class:`AuditConfig` fields.
    """
    if level == "off":
        ctx.auditor = None
        return None
    config = AuditConfig(level=level, **overrides)
    corpus = FailureCorpus(corpus_dir) if corpus_dir is not None else None
    auditor = Auditor(config, corpus=corpus)
    ctx.auditor = auditor
    return auditor
