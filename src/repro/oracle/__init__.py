"""Differential-oracle and invariant-audit subsystem.

Plugs into :class:`~repro.engine.EngineContext` via :func:`attach_auditor`
and turns every experiment run into a self-checking one: each max-flow
solve, bottleneck decomposition, BD allocation, and best-response sweep is
validated against the paper's structural invariants and (at the higher
audit levels) re-solved against independent oracles.  Violations are
serialized into a replayable on-disk failure corpus; ``repro-oracle
replay`` re-runs the corpus as a regression suite.

Layering: this package sits *above* ``engine`` and ``core`` (it imports
both), while ``engine`` only ever sees the auditor as an opaque hook --
the lazy import in ``EngineSpec.build`` keeps the engine a leaf of the
import graph.
"""

from .audit import AUDIT_LEVELS, AuditConfig, Auditor, attach_auditor
from .corpus import (
    CORPUS_FORMAT,
    DEFAULT_CORPUS_DIR,
    FailureCorpus,
    FailureRecord,
    backend_from_dict,
    backend_to_dict,
    shrink_graph,
)
from .differential import (
    BRUTE_FORCE_LIMIT,
    differential_decomposition_problems,
    differential_flow_problems,
    networkx_max_flow_value,
)
from .invariants import (
    allocation_problems,
    best_response_problems,
    decomposition_problems,
    fixed_point_problems,
    flow_certificate_problems,
)
from .replay import ReplayResult, replay_corpus, replay_record

__all__ = [
    "AUDIT_LEVELS",
    "AuditConfig",
    "Auditor",
    "attach_auditor",
    "CORPUS_FORMAT",
    "DEFAULT_CORPUS_DIR",
    "FailureCorpus",
    "FailureRecord",
    "backend_from_dict",
    "backend_to_dict",
    "shrink_graph",
    "BRUTE_FORCE_LIMIT",
    "differential_decomposition_problems",
    "differential_flow_problems",
    "networkx_max_flow_value",
    "allocation_problems",
    "best_response_problems",
    "decomposition_problems",
    "fixed_point_problems",
    "flow_certificate_problems",
    "ReplayResult",
    "replay_corpus",
    "replay_record",
]
