"""Paper invariants as pure, re-runnable predicates.

Each function inspects an *already computed* object (decomposition,
allocation, best response) and returns a list of human-readable problems --
empty when every invariant holds.  They deliberately never recompute the
object under audit (no ``bottleneck_decomposition`` calls), so they are
cheap enough to run on every engine operation and reusable verbatim by the
corpus replayer, which is what makes a recorded failure reproducible: the
replayer recomputes the object and runs the *same* predicates.

Unlike :mod:`repro.theory.propositions` -- whose checks target the clean
instances the experiments construct -- these predicates must accept every
graph the engine can legally see, including Sybil splits with zero-weight
fictitious vertices.  The degenerate corners (all-zero terminal pairs,
``alpha = 0`` pairs) therefore get explicit carve-outs that mirror the
documented behavior of ``core.bottleneck`` and ``core.allocation``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..exceptions import AllocationError, FlowError
from ..flow import (
    assert_valid_flow,
    cut_value,
    max_source_side,
    min_source_side,
    node_inflow,
    node_outflow,
)
from ..flow.network import FlowNetwork
from ..graphs import WeightedGraph
from ..numeric import Backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..attack.best_response import BestResponse
    from ..core.allocation import Allocation
    from ..core.bottleneck import BottleneckDecomposition

__all__ = [
    "flow_certificate_problems",
    "decomposition_problems",
    "allocation_problems",
    "fixed_point_problems",
    "best_response_problems",
]

#: Relative slack for float comparisons between independently computed
#: quantities (flow value vs cut capacity, alpha vs recomputed ratio).
#: Exact (Fraction/int) quantities are always compared literally.
REL_TOL = 1e-9


def _close(a, b) -> bool:
    """Equality, exact for exact scalars, relative for floats."""
    if isinstance(a, float) or isinstance(b, float):
        fa, fb = float(a), float(b)
        if math.isinf(fa) or math.isinf(fb):
            return fa == fb
        return abs(fa - fb) <= REL_TOL * max(1.0, abs(fa), abs(fb))
    return a == b


def _float_tol(net: FlowNetwork) -> float:
    """Absolute verify tolerance scaled to the largest finite capacity
    (multi-path reverse-arc accumulation can overshoot by a few ulps)."""
    biggest = 1.0
    exact = True
    for c in net.orig_cap:
        if isinstance(c, float):
            exact = False
            if not math.isinf(c):
                biggest = max(biggest, abs(c))
    return 0.0 if exact else 1e-12 * biggest


# ---------------------------------------------------------------------------
# flow level
# ---------------------------------------------------------------------------

def flow_certificate_problems(
    net: FlowNetwork,
    s: int,
    t: int,
    value,
    zero_tol: float,
    arc_flows_valid: bool = True,
) -> list[str]:
    """Validate one solved max-flow call against its own certificates.

    * both extracted min cuts (minimal and maximal source side) must have
      capacity equal to the returned value -- the max-flow = min-cut
      certificate, valid even for push-relabel's maximum-preflow residuals;
    * when ``arc_flows_valid`` (augmenting-path solvers, or any solve the
      caller reads arc flows from), the residual state must satisfy the
      flow axioms and route exactly ``value`` out of the source.
    """
    problems: list[str] = []
    if isinstance(value, float) and (math.isnan(value) or value < 0):
        problems.append(f"max-flow value {value!r} is not a non-negative number")
        return problems

    min_side = min_source_side(net, s, zero_tol)
    max_side = max_source_side(net, t, zero_tol)
    if s not in min_side or t in min_side:
        problems.append("minimal source side does not separate s from t")
    if s not in max_side or t in max_side:
        problems.append("maximal source side does not separate s from t")
    if not (min_side <= max_side):
        problems.append("min-cut lattice violated: minimal side not inside maximal side")
    for label, side in (("minimal", min_side), ("maximal", max_side)):
        cv = cut_value(net, side)
        if not _close(cv, value):
            problems.append(
                f"{label} min-cut capacity {cv!r} != max-flow value {value!r}"
            )

    if arc_flows_valid:
        try:
            assert_valid_flow(net, s, t, tol=_float_tol(net))
        except FlowError as exc:
            problems.append(f"flow axioms violated: {exc}")
        else:
            sent = node_outflow(net, s) - node_inflow(net, s)
            if not _close(sent, value):
                problems.append(
                    f"net outflow of source {sent!r} != reported value {value!r}"
                )
    return problems


# ---------------------------------------------------------------------------
# decomposition level (Proposition 3 + alpha-ratio bounds)
# ---------------------------------------------------------------------------

def _is_degenerate(g: WeightedGraph, pair, backend: Backend) -> bool:
    """All-zero-weight terminal pair emitted for leftover free vertices."""
    return pair.B == pair.C and g.weight_of(pair.B, backend) == 0


def decomposition_problems(g: WeightedGraph, d: "BottleneckDecomposition") -> list[str]:
    """Proposition 3 structure plus alpha-ratio consistency of ``d``.

    Checks, in the paper's numbering: (1) alphas strictly increase and lie
    in ``[0, 1]``; (2) below alpha=1 the pair is a disjoint ``(B_i, C_i)``
    with independent ``B_i`` and ``C_i = Gamma(B_i)`` inside the remaining
    graph; (3) the only B-B edges touch the unit pair, and no B_i-C_j edge
    has ``j > i``.  On top of Prop. 3, each ``alpha_i`` is recomputed as
    ``w(C_i)/w(B_i)`` -- the decomposition must be internally consistent,
    not just well-shaped.
    """
    backend = d.backend
    problems: list[str] = []
    pairs = d.pairs
    one = backend.scalar(1)

    # coverage / disjointness (the constructor enforces this; re-assert so a
    # hand-built or deserialized decomposition is audited to the same bar)
    seen: set[int] = set()
    for p in pairs:
        for v in p.members():
            if v in seen:
                problems.append(f"vertex {v} appears in more than one pair")
            seen.add(v)
    if seen != set(g.vertices()):
        problems.append("pairs do not partition the vertex set")

    # Classification is *structural* (B == C), and alpha comparisons below
    # are raw scalar comparisons, not backend-tolerance predicates: the
    # decomposition's own termination compares exactly (see
    # ``core.bottleneck``), so adjacent pairs may legitimately differ by
    # less than ``backend.tol`` and the audit must not call that a tie.
    degenerate = [_is_degenerate(g, p, backend) for p in pairs]
    unit = [p.B == p.C and not dg for p, dg in zip(pairs, degenerate)]

    for p, degen, is_unit in zip(pairs, degenerate, unit):
        if p.alpha < 0 or p.alpha > one:
            problems.append(f"alpha_{p.index} = {p.alpha!r} outside [0, 1]")
        if degen:
            continue
        wB = g.weight_of(p.B, backend)
        wC = g.weight_of(p.C, backend)
        if wB == 0:
            problems.append(f"pair {p.index}: B has zero weight but C does not")
            continue
        if not _close(p.alpha, wC / wB):
            problems.append(
                f"pair {p.index}: alpha {p.alpha!r} != w(C)/w(B) = {wC / wB!r}"
            )
        if is_unit:
            if not _close(p.alpha, one):
                problems.append(
                    f"pair {p.index} has B = C but alpha {p.alpha!r} != 1"
                )
        else:
            if p.B & p.C:
                problems.append(f"pair {p.index}: B intersects C below alpha = 1")
            if not g.is_independent(p.B):
                problems.append(f"pair {p.index}: B is not independent below alpha = 1")

    # increasing alphas.  Strictness is only decidable under exact
    # arithmetic: exact-distinct alphas can round to the same double or
    # even swap by one ulp (both observed in the wild on 9-vertex float
    # rings), so the float audit only flags a decrease beyond the relative
    # tolerance and leaves strictness to the exact backend.  A trailing
    # degenerate pair copies the previous alpha by construction and is
    # likewise only required not to decrease.
    strict = backend.tol == 0
    for (p, pd), (q, qd) in zip(
        zip(pairs, degenerate), zip(pairs[1:], degenerate[1:])
    ):
        if qd or pd or not strict:
            if q.alpha < p.alpha and not _close(p.alpha, q.alpha):
                problems.append(
                    f"alphas decrease at pair {q.index}: "
                    f"{p.alpha!r} -> {q.alpha!r}"
                )
        elif not (p.alpha < q.alpha):
            problems.append(
                f"alphas not strictly increasing at pair {q.index}: "
                f"{p.alpha!r} -> {q.alpha!r}"
            )

    # the unit pair, when present, closes the decomposition (followed at
    # most by the degenerate leftovers)
    for i, is_unit in enumerate(unit):
        if is_unit and any(
            not dg for dg in degenerate[i + 1:]
        ):
            problems.append(f"unit pair {pairs[i].index} is not the last proper pair")

    # C_i is exactly the neighborhood of B_i in the remaining graph, and the
    # cross-pair edge rules of Prop. 3-(3)
    remaining: set[int] = set()
    for p, degen, is_unit in reversed(list(zip(pairs, degenerate, unit))):
        remaining |= p.members()
        if degen or is_unit:
            continue
        want_C = g.neighborhood(p.B) & frozenset(remaining)
        if frozenset(p.C) != want_C:
            problems.append(
                f"pair {p.index}: C != Gamma(B) in remaining graph "
                f"({sorted(p.C)} vs {sorted(want_C)})"
            )
    pair_flags = {p.index: (dg, un) for p, dg, un in zip(pairs, degenerate, unit)}
    for p, pd, unit_p in zip(pairs, degenerate, unit):
        if pd:
            continue
        for u in p.B:
            for x in g.neighbors(u):
                q = d.pair_of(x)
                if q is p:
                    continue
                degen_q, unit_q = pair_flags[q.index]
                if degen_q:
                    continue
                if x in q.B and not (unit_p or unit_q):
                    problems.append(
                        f"edge between B_{p.index} and B_{q.index} below alpha = 1"
                    )
                if x in q.C and q.index > p.index and not unit_q:
                    problems.append(
                        f"edge B_{p.index} -> C_{q.index} with j > i"
                    )
    return sorted(set(problems))


# ---------------------------------------------------------------------------
# allocation level (Definition 5: feasibility, budget balance, clearing)
# ---------------------------------------------------------------------------

def _scaled_tol(backend: Backend, magnitude) -> float:
    if backend.is_exact:
        return 0.0
    return backend.tol * max(1.0, abs(float(magnitude))) * 16


def allocation_problems(g: WeightedGraph, alloc: "Allocation", backend: Backend) -> list[str]:
    """Feasibility + budget balance + market clearing of a BD allocation.

    * feasibility: allocations only on real edges, non-negative, nobody
      sends more than its endowment (``Allocation.check_feasible``);
    * budget balance: every vertex spends *exactly* its endowment -- the BD
      mechanism redistributes everything, creating and destroying nothing;
    * market clearing: total utility equals total weight.
    """
    problems: list[str] = []
    try:
        alloc.check_feasible(tol=_scaled_tol(backend, g.total_weight(backend)))
    except AllocationError as exc:
        problems.append(f"infeasible allocation: {exc}")
    for v in g.vertices():
        sent = alloc.sent(v)
        w = g.weights[v]
        tol = _scaled_tol(backend, w)
        if (abs(float(sent) - float(w)) > tol) if tol else (sent != w):
            problems.append(
                f"budget balance violated at vertex {v}: sends {sent!r}, owns {w!r}"
            )
    total_u = sum(alloc.utilities, backend.scalar(0))
    total_w = g.total_weight(backend)
    tol = _scaled_tol(backend, total_w)
    if (abs(float(total_u) - float(total_w)) > tol) if tol else (total_u != total_w):
        problems.append(
            f"market does not clear: total utility {total_u!r} != total weight {total_w!r}"
        )
    return problems


def fixed_point_problems(alloc: "Allocation", tol: float = 1e-8) -> list[str]:
    """Proportional-response fixed-point residual of the BD allocation.

    The BD allocation is a PR fixed point (the unit pair is symmetrized for
    exactly this reason; see ``core.fixedpoint``); a residual above ``tol``
    means some max flow broke the echo condition ``x_vu = x_uv / U_v * w_v``.
    """
    from ..core.fixedpoint import fixed_point_residual

    report = fixed_point_residual(alloc)
    if report.max_residual > tol:
        return [
            f"proportional-response fixed point violated: residual "
            f"{report.max_residual:.3e} at edge {report.worst_edge}"
        ]
    return []


# ---------------------------------------------------------------------------
# attack level (best-response sweeps)
# ---------------------------------------------------------------------------

def best_response_problems(g: WeightedGraph, v: int, br: "BestResponse") -> list[str]:
    """Sanity of one best-response search result.

    * the split is a genuine partition of ``w_v`` inside ``[0, w_v]``;
    * utility monotonicity of the sweep: the maximum over the candidate set
      can never fall below the honest split it always contains, so
      ``U* >= U_honest`` i.e. ``zeta_v >= 1``;
    * Theorem 8: ``zeta_v <= 2`` (the paper's headline bound, asserted on
      every search the engine runs, not only in the experiments).
    """
    problems: list[str] = []
    wv = float(g.weights[v])
    slack = REL_TOL * max(1.0, wv)
    if not (-slack <= br.w1 <= wv + slack) or not (-slack <= br.w2 <= wv + slack):
        problems.append(f"split ({br.w1!r}, {br.w2!r}) outside [0, w_v = {wv!r}]")
    if abs(br.w1 + br.w2 - wv) > slack:
        problems.append(f"split does not partition w_v: {br.w1!r} + {br.w2!r} != {wv!r}")
    u_slack = 1e-7 * max(1.0, abs(br.honest_utility))
    if br.utility < br.honest_utility - u_slack:
        problems.append(
            f"best-response sweep lost the honest candidate: U* = {br.utility!r} "
            f"< honest {br.honest_utility!r}"
        )
    if br.honest_utility > 0 and br.ratio > 2.0 + 1e-6:
        problems.append(
            f"Theorem 8 violated: zeta = {br.ratio!r} > 2 at vertex {v}"
        )
    return problems
