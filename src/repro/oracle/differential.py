"""Differential oracles: re-solve against independent implementations.

Certificates (``invariants.flow_certificate_problems``) catch a solver that
is inconsistent *with itself*; they cannot catch one that confidently
returns the wrong optimum with a matching wrong cut.  The differential
layer closes that gap by re-solving sampled calls against genuinely
independent references:

* every *other* solver in the engine's registry (three algorithm families
  ship built in: Dinic, Edmonds-Karp, FIFO push-relabel);
* ``networkx.maximum_flow_value`` -- an external implementation sharing no
  code with this library (float-capacity networks only; networkx's preflow
  push mixes ``float('inf')`` into its arithmetic, which would corrupt
  ``Fraction`` capacities);
* for decompositions on small instances, the exponential subset-enumeration
  oracle in :mod:`repro.core.bruteforce`.

Every function returns ``(problems, checks_run)`` so the auditor can feed
both the violation path and the ``--stats`` counters.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..core.bruteforce import brute_force_decomposition, brute_force_min_alpha
from ..engine.registry import Solver, SolverRegistry
from ..exceptions import ReproError
from ..flow.network import FlowNetwork
from ..graphs import WeightedGraph
from .invariants import _close

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.bottleneck import BottleneckDecomposition

try:  # networkx ships as a dependency, but stay importable without it
    import networkx as _nx
except ImportError:  # pragma: no cover - exercised only on trimmed installs
    _nx = None

__all__ = [
    "differential_flow_problems",
    "networkx_max_flow_value",
    "differential_decomposition_problems",
]

#: Hard cap on brute-force subset enumeration (2^n subsets per pair).
BRUTE_FORCE_LIMIT = 10


def _pristine(net: FlowNetwork) -> FlowNetwork:
    """A copy of ``net`` with construction-time capacities (no routed flow)."""
    out = net.clone()
    out.reset()
    return out


def differential_flow_problems(
    net: FlowNetwork,
    s: int,
    t: int,
    value,
    zero_tol: float,
    solved_by: Solver,
    registry: SolverRegistry,
    nx_node_limit: int = 0,
) -> tuple[list[str], int]:
    """Re-solve the original network with every other registered solver.

    ``net`` is the already-solved network (its ``orig_cap`` recovers the
    instance); ``solved_by`` names the solver whose answer is under audit.
    When ``nx_node_limit`` is positive and the network is float-capacity
    with at most that many nodes, networkx is consulted as well.
    """
    problems: list[str] = []
    checks = 0
    for name in registry.names():
        if name == solved_by.name:
            continue
        other = registry.get(name)
        try:
            other_value = other.fn(_pristine(net), s, t, zero_tol)
        except ReproError as exc:
            checks += 1
            problems.append(f"reference solver {name!r} failed on the instance: {exc}")
            continue
        checks += 1
        if not _close(other_value, value):
            problems.append(
                f"solver disagreement: {solved_by.name!r} = {value!r}, "
                f"{name!r} = {other_value!r}"
            )
    if nx_node_limit and net.n <= nx_node_limit:
        nx_value = networkx_max_flow_value(net, s, t)
        if nx_value is not None:
            checks += 1
            if not _close(nx_value, value):
                problems.append(
                    f"solver disagreement: {solved_by.name!r} = {value!r}, "
                    f"networkx = {nx_value!r}"
                )
    return problems, checks


def networkx_max_flow_value(net: FlowNetwork, s: int, t: int):
    """Max-flow value per networkx, or ``None`` when not applicable.

    Applicable means: networkx importable and every capacity a float/int
    (exact ``Fraction`` networks are out of scope, see module docstring).
    Parallel forward arcs are merged by capacity addition, which preserves
    the max-flow value.
    """
    if _nx is None:
        return None
    G = _nx.DiGraph()
    G.add_nodes_from(range(net.n))
    for arc in range(0, net.num_arcs, 2):
        cap = net.orig_cap[arc]
        if not isinstance(cap, (int, float)):
            return None
        u, v = net.head[arc ^ 1], net.head[arc]
        if G.has_edge(u, v):
            prev = G[u][v].get("capacity", math.inf)
            if math.isinf(prev) or (isinstance(cap, float) and math.isinf(cap)):
                G[u][v].pop("capacity", None)  # uncapacitated in networkx
            else:
                G[u][v]["capacity"] = prev + cap
        elif isinstance(cap, float) and math.isinf(cap):
            G.add_edge(u, v)  # missing capacity attribute = infinite
        else:
            G.add_edge(u, v, capacity=cap)
    try:
        return _nx.maximum_flow_value(G, s, t)
    except Exception:
        # networkx's preflow push has internal edge cases on extreme
        # capacity magnitudes (fuzz-found: ~1e±99 spreads raise a bare
        # ValueError from relabel()).  A reference that cannot solve the
        # instance is an unavailable oracle, not a disagreement -- and
        # never an untyped crash out of the audit layer.
        return None


def differential_decomposition_problems(
    g: WeightedGraph,
    d: "BottleneckDecomposition",
    brute_limit: int = BRUTE_FORCE_LIMIT,
) -> tuple[list[str], int]:
    """Cross-check a decomposition against the subset-enumeration oracle.

    Instances above ``brute_limit`` vertices are skipped (the oracle is
    exponential).  With the exact backend the full decomposition must match
    literally; with floats only the headline quantity -- the global minimum
    alpha, i.e. the first pair's ratio -- is compared (the enumeration uses
    the same arithmetic, so agreement to relative ``1e-9`` is expected,
    while tie-breaking of *sets* near equal ratios may legitimately differ
    by an ulp's worth of rounding).
    """
    if g.n > brute_limit:
        return [], 0
    backend = d.backend
    problems: list[str] = []
    if backend.is_exact:
        try:
            ref = brute_force_decomposition(g, backend)
        except ReproError as exc:
            return [f"brute-force oracle failed on the instance: {exc}"], 1
        if len(ref.pairs) != len(d.pairs):
            problems.append(
                f"brute force finds {len(ref.pairs)} pairs, decomposition has {len(d.pairs)}"
            )
        else:
            for p, q in zip(d.pairs, ref.pairs):
                if (p.B, p.C, p.alpha) != (q.B, q.C, q.alpha):
                    problems.append(
                        f"pair {p.index} disagrees with brute force: "
                        f"(B={sorted(p.B)}, C={sorted(p.C)}, a={p.alpha}) vs "
                        f"(B={sorted(q.B)}, C={sorted(q.C)}, a={q.alpha})"
                    )
        return problems, 1
    try:
        ref_alpha = brute_force_min_alpha(g, backend=backend)
    except ReproError as exc:
        return [f"brute-force oracle failed on the instance: {exc}"], 1
    if ref_alpha is None:
        return [], 1
    first = d.pairs[0].alpha
    if not _close(first, ref_alpha):
        problems.append(
            f"first alpha {first!r} disagrees with brute-force minimum {ref_alpha!r}"
        )
    return problems, 1
