"""EXP-F3: reproduce Fig. 3's bottleneck-pair merge/split dynamics.

Fig. 3 illustrates Proposition 12: as a C-class agent's weight crosses a
breakpoint, the pair containing it either combines with the neighboring
pair (Fig. 3b, weight increasing) or decomposes into two (Fig. 3a, weight
decreasing), with the alpha-ratios of the involved pairs *equal at the
breakpoint itself*.

The experiment builds instances with multi-pair decompositions, sweeps the
agent's report, tabulates every detected event with the alpha values on
both sides of the breakpoint, and verifies the alpha-equality at the
breakpoint to first order.
"""

from __future__ import annotations

import numpy as np

from ..analysis import trace_report_sweep
from ..core import bottleneck_decomposition
from ..graphs import WeightedGraph, random_ring
from ..numeric import FLOAT
from ..theory import CheckResult, check_proposition12
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-F3"
TITLE = "Fig. 3: merge/split of the pair containing the manipulative agent"


def showcase_graph() -> tuple[WeightedGraph, int]:
    """A ring whose report sweep exhibits merge/split events.

    Deterministic search over a seeded family: the first (ring, agent) whose
    sweep produces two or more structural events becomes the showcase (the
    search is cheap and pinned, so the figure is reproducible).
    """
    rng = np.random.default_rng(1234)
    for _ in range(40):
        n = int(rng.integers(5, 9))
        g = random_ring(n, rng, "loguniform", 0.05, 20)
        for v in range(n):
            t = trace_report_sweep(g, v, samples=8, probes=17)
            if sum(1 for e in t.events if e.kind in ("merge", "split")) >= 2:
                return g, v
    # fall back to any instance (the census still demonstrates the grammar)
    return random_ring(6, np.random.default_rng(100), "loguniform", 0.1, 10), 5


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    g, v = showcase_graph()
    trace = trace_report_sweep(g, v, samples=16 * scale_factor(scale), probes=33)

    event_rows = [
        [e.x, e.kind, e.pairs_before, e.pairs_after, e.alpha_before, e.alpha_after,
         abs(e.alpha_before - e.alpha_after)]
        for e in trace.events
    ]
    tables = [Table(
        title=f"Breakpoint events for v={v} on ring {[round(float(w), 3) for w in g.weights]}",
        headers=["x", "event", "k before", "k after", "alpha_v before", "alpha_v after", "|gap|"],
        rows=event_rows or [["-", "none", "-", "-", "-", "-", "-"]],
    )]

    # alpha-continuity at breakpoints: Prop 12's equalities make alpha_v(x)
    # continuous across merge/split events (the unit-crossing too)
    max_gap = max((abs(e.alpha_before - e.alpha_after) for e in trace.events), default=0.0)
    continuity = CheckResult(
        name="alpha equality at breakpoints (Prop 12)",
        ok=max_gap <= 1e-4,
        details=f"max |alpha jump| across {len(trace.events)} events = {max_gap:.2e}",
        data={"max_gap": max_gap, "events": len(trace.events)},
    )

    checks = [continuity, check_proposition12(g, v, probes=33)]

    # census over random rings: how often each event kind appears
    rng = np.random.default_rng(seed)
    counts = {"merge": 0, "split": 0, "unit-crossing": 0, "reorder": 0, "other": 0}
    instances = 4 * scale_factor(scale)
    for _ in range(instances):
        n = int(rng.integers(4, 8))
        gg = random_ring(n, rng, "loguniform", 0.05, 20)
        vv = int(rng.integers(0, n))
        t = trace_report_sweep(gg, vv, samples=8, probes=17)
        for e in t.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
    tables.append(Table(
        title=f"Event census over {instances} random rings",
        headers=["event kind", "count"],
        rows=[[k, c] for k, c in counts.items()],
    ))
    no_other = CheckResult(
        name="only Prop-12 event kinds occur",
        ok=counts.get("other", 0) == 0,
        details=f"census: {counts}",
        data=counts,
    )
    checks.append(no_other)
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=tables, checks=checks,
                            data={"counts": counts})
