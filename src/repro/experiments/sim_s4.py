"""EXP-S4: adaptive adversaries warm-starting across epochs.

Swap churn keeps the ring size constant while membership rotates, so
consecutive epochs share a topology fingerprint and the adaptive
adversary's truthful solve can *reconstruct* the previous epoch's
decomposition (:func:`repro.core.warm_decomposition`) instead of
re-running Dinkelbach from scratch.  Besides the standard ratio-bound
checks, this experiment asserts the reuse actually happened: at least one
certified reconstruction must appear in the counters (the weight range is
deliberately narrow, 0.5--2.0, so the near-uniform decomposition
structure stays stable under the swaps; a reconstruction that fails
certification falls back to a full solve and would zero this counter).
"""

from __future__ import annotations

from typing import Optional

from ..engine import EngineContext
from ..theory import CheckResult
from .base import ExperimentOutput, experiment_context
from .sim_family import run_family

EXP_ID = "EXP-S4"
TITLE = "Population sim: adaptive warm-started best responses"


def run(seed: int = 0, scale: str = "default",
        ctx: Optional[EngineContext] = None) -> ExperimentOutput:
    ctx = experiment_context(ctx)  # resolve now so the delta below is real
    counters = ctx.counters
    before = (counters.decomp_reconstructions, counters.reconstruction_fallbacks)

    def warm_checks(result, rctx):
        recon = rctx.counters.decomp_reconstructions - before[0]
        fallb = rctx.counters.reconstruction_fallbacks - before[1]
        return [CheckResult(
            name="adaptive epochs reused decomposition segments",
            ok=recon >= 1,
            details=f"{recon} certified reconstruction(s), "
                    f"{fallb} fallback full solve(s) across "
                    f"{result.epochs} epochs",
            data={"reconstructions": recon, "fallbacks": fallb},
        )]

    return run_family(EXP_ID, TITLE, seed, scale, ctx, extra_checks=warm_checks)
