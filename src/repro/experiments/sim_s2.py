"""EXP-S2: colluding neighbor coalitions.

Two adversaries coordinate: one under-reports its weight on a grid while
its partner Sybil-splits the ring, and the pair maximizes *joint* utility
(the partner's post-cut utility read through the relabelling index map).
Theorem 8 says nothing about coalitions; empirically the joint ratio has
stayed within the solo bound, and this experiment keeps that observation
under regression as the population churns.
"""

from __future__ import annotations

from typing import Optional

from ..engine import EngineContext
from .base import ExperimentOutput
from .sim_family import run_family

EXP_ID = "EXP-S2"
TITLE = "Population sim: colluding misreport + split coalitions"


def run(seed: int = 0, scale: str = "default",
        ctx: Optional[EngineContext] = None) -> ExperimentOutput:
    return run_family(EXP_ID, TITLE, seed, scale, ctx)
