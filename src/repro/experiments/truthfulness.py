"""EXP-T10: Theorem 10 -- misreporting never profits (and U_v(x) is monotone).

The Sybil analysis leans on [7]'s truthfulness theorem at every stage; this
experiment verifies it wholesale: for random rings *and* general graphs,
the utility curve U_v(x) over reports x in [0, w_v] is monotone
non-decreasing (so the truthful report w_v is optimal and the misreporting
incentive ratio is exactly 1).
"""

from __future__ import annotations

import numpy as np

from ..attack import utility_curve
from ..core import bd_allocation
from ..graphs import random_connected_graph, random_ring
from ..numeric import FLOAT
from ..theory import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-T10"
TITLE = "Theorem 10: U_v(x) monotone; misreporting incentive ratio = 1"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)
    families = [
        ("ring", lambda n: random_ring(n, rng, "loguniform", 0.05, 20)),
        ("general", lambda n: random_connected_graph(n, n // 2, rng, "loguniform", 0.05, 20)),
    ]
    samples = 17
    rows = []
    monotone_failures = 0
    worst_gain = 0.0
    for fam, make in families:
        checked = 0
        max_jump = 0.0
        for _ in range(4 * k):
            n = int(rng.integers(3, 9))
            g = make(n)
            v = int(rng.integers(0, n))
            wv = float(g.weights[v])
            xs = [wv * i / (samples - 1) for i in range(samples)]
            curve = [float(u) for u in utility_curve(g, v, xs, FLOAT)]
            truthful = float(bd_allocation(g, backend=FLOAT).utilities[v])
            checked += 1
            for i in range(len(curve) - 1):
                drop = curve[i] - curve[i + 1]
                if drop > 1e-7 * max(1.0, curve[i]):
                    monotone_failures += 1
                max_jump = max(max_jump, abs(curve[i + 1] - curve[i]))
            gain = (max(curve) - truthful) / max(truthful, 1e-12)
            worst_gain = max(worst_gain, gain)
        rows.append([fam, checked, samples, monotone_failures, worst_gain])
    table = Table(
        title="Misreport sweep census",
        headers=["family", "instances", "grid", "monotonicity violations", "max relative gain"],
        rows=rows,
    )
    monotone = CheckResult(
        name="U_v(x) monotone non-decreasing",
        ok=monotone_failures == 0,
        details=f"{monotone_failures} violations",
        data={},
    )
    truthful = CheckResult(
        name="misreporting incentive ratio = 1",
        ok=worst_gain <= 1e-7,
        details=f"max relative gain over truthful: {worst_gain:.2e}",
        data={"worst_gain": worst_gain},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=[monotone, truthful],
                            data={"worst_gain": worst_gain})
