"""EXP-STG: the stage-wise delta inequalities behind Theorem 8's proof.

Lemmas 16/18/19 (C-class attacker) and 22/24 (B-class attacker) bound the
utility change of each fictitious node at each stage.  The experiment runs
the full stage bookkeeping (including the Adjusting Technique) across an
instance pool, tabulates the extreme observed deltas per inequality, and
asserts every inequality holds.
"""

from __future__ import annotations

import numpy as np

from ..attack import lower_bound_ring
from ..core import VertexClass
from ..graphs import random_ring
from ..theory import check_stage_lemmas
from ..theory.propositions import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-STG"
TITLE = "Stage inequalities (Lemmas 16/18/19/22/24) across instance pools"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)
    reports = []
    failures = []
    for _ in range(4 * k):
        n = int(rng.integers(3, 9))
        g = random_ring(n, rng, "loguniform", 0.05, 20)
        for v in range(0, n, 2):
            rep, verdict = check_stage_lemmas(g, v, grid=24 if scale == "smoke" else 48)
            reports.append(rep)
            if not verdict.ok:
                failures.append(f"n={n} v={v}: {verdict.details}")
    # the adversarial family too (B class, D-1 form, gain ~ U_v)
    for H in (10, 100, 1000):
        rep, verdict = check_stage_lemmas(lower_bound_ring(H), 1, grid=64)
        reports.append(rep)
        if not verdict.ok:
            failures.append(f"LB H={H}: {verdict.details}")

    c_reports = [r for r in reports if r.ring_class is VertexClass.C]
    b_reports = [r for r in reports if r.ring_class is VertexClass.B]

    def extreme_rows(rs, cols):
        """cols: (label, extractor, bound-text); reports the max of each
        extracted quantity, which the corresponding lemma bounds by <= 0."""
        if not rs:
            return [["-", 0, "-", "-"]]
        rows = []
        for label, extract, bound in cols:
            vals = [extract(r) for r in rs]
            rows.append([label, len(vals), max(vals), bound])
        return rows

    c_cols = [
        ("delta_v1^(1)", lambda r: r.delta_v1_stage1, "<= 0 (L16)"),
        ("delta_v2^(1)", lambda r: r.delta_v2_stage1, "<= 0 (L16)"),
        ("delta_v1^(2) - U_v", lambda r: r.delta_v1_stage2 - r.honest_utility, "<= 0 (L18)"),
        ("delta_v2^(2) - w1*", lambda r: r.delta_v2_stage2 - r.w1_star, "<= 0 (eq. 3)"),
        ("total gain - U_v", lambda r: r.total_gain - r.honest_utility, "<= 0 (Thm 8)"),
    ]
    b_cols = [
        ("Delta_v1^(1) - U_v", lambda r: r.delta_v1_stage1 - r.honest_utility, "<= 0 (L22)"),
        ("|Delta_v2^(1)|", lambda r: abs(r.delta_v2_stage1), "= 0 (L22)"),
        ("Delta_v1^(2)", lambda r: r.delta_v1_stage2, "<= 0 (L24)"),
        ("Delta_v2^(2)", lambda r: r.delta_v2_stage2, "<= 0 (L24)"),
        ("total gain - U_v", lambda r: r.total_gain - r.honest_utility, "<= 0 (Thm 8)"),
    ]
    tables = [
        Table(
            title=f"C-class attackers ({len(c_reports)} cases): extremes of each delta",
            headers=["quantity", "cases", "max observed", "lemma bound"],
            rows=extreme_rows(c_reports, c_cols),
        ),
        Table(
            title=f"B-class attackers ({len(b_reports)} cases): extremes of each Delta",
            headers=["quantity", "cases", "max observed", "lemma bound"],
            rows=extreme_rows(b_reports, b_cols),
        ),
    ]
    all_hold = CheckResult(
        name="all stage inequalities hold",
        ok=not failures,
        details="; ".join(failures[:5]) or f"{len(reports)} attacker cases verified",
        data={"cases": len(reports), "adjusted": sum(1 for r in reports if r.adjusted)},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=tables,
                            checks=[all_hold],
                            data={"cases": len(reports)})
