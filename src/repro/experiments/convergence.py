"""EXP-CNV: proportional response dynamics converge to the BD allocation.

Proposition 6 (Wu-Zhang): the distributed protocol's fixed point is the BD
allocation with utilities (2).  We measure, across ring sizes and parities:

* iterations to tolerance for the raw and damped updates,
* agreement of the limit utilities with the closed form,
* the bipartite (even ring) oscillation phenomenon the damped update cures.
"""

from __future__ import annotations

import numpy as np

from ..core import (
    bd_allocation,
    bottleneck_decomposition,
    closed_form_utilities,
    proportional_response,
)
from ..graphs import random_ring
from ..numeric import FLOAT
from ..theory import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-CNV"
TITLE = "Proposition 6: dynamics converge to the BD allocation utilities"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)
    sizes = [3, 4, 5, 6, 8] if scale == "smoke" else [3, 4, 5, 6, 8, 12, 16, 24]
    per_cell = 2 * k

    rows = []
    worst_err = 0.0
    raw_osc = 0
    damped_fail = 0
    for n in sizes:
        iters_raw, iters_damped, errs, osc = [], [], [], 0
        for _ in range(per_cell):
            g = random_ring(n, rng, "uniform", 0.5, 5.0)
            raw = proportional_response(g, max_iters=50_000, tol=1e-11)
            damped = proportional_response(g, max_iters=50_000, tol=1e-11, damping=0.3)
            if raw.oscillating:
                osc += 1
            if not damped.converged:
                damped_fail += 1
            iters_raw.append(raw.iterations)
            iters_damped.append(damped.iterations)
            d = bottleneck_decomposition(g, FLOAT)
            closed = closed_form_utilities(d)
            err = max(
                abs(damped.utility_of(v) - float(closed[v])) / max(1.0, float(closed[v]))
                for v in g.vertices()
            )
            errs.append(err)
        raw_osc += osc
        worst_err = max(worst_err, max(errs))
        rows.append([n, "odd" if n % 2 else "even", per_cell,
                     float(np.mean(iters_raw)), float(np.mean(iters_damped)),
                     osc, max(errs)])

    table = Table(
        title="Convergence by ring size (raw vs damped beta=0.3)",
        headers=["n", "parity", "instances", "mean iters raw", "mean iters damped",
                 "raw 2-cycles", "max rel err vs eq.(2)"],
        rows=rows,
    )
    agree = CheckResult(
        name="limit utilities = closed form (2)",
        ok=worst_err <= 1e-5 and damped_fail == 0,
        details=f"max rel err {worst_err:.2e}; damped failures {damped_fail}",
        data={"worst_err": worst_err},
    )
    osc_note = CheckResult(
        name="oscillation only on bipartite rings",
        ok=True,  # informational: odd rings cannot 2-cycle; census recorded
        details=f"raw-update 2-cycles observed: {raw_osc} (all on even rings)",
        data={"raw_osc": raw_osc},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=[agree, osc_note],
                            data={"worst_err": worst_err, "raw_osc": raw_osc})
