"""EXP-F1: reproduce Fig. 1's bottleneck decomposition example.

The paper's figure shows a 6-vertex graph whose decomposition is
``(B_1, C_1) = ({v1, v2}, {v3})`` with ``alpha_1 = 1/3`` and
``(B_2, C_2) = ({v4, v5, v6}, {v4, v5, v6})`` with ``alpha_2 = 1``.  The
printed text does not list the weights, so we *reconstruct* a consistent
instance (w(C_1)/w(B_1) = 1/3 forces w3 = (w1 + w2)/3; a uniform triangle
gives the unit pair) and verify the mechanism reproduces the figure's pairs
exactly, plus every Proposition 3 invariant on it.
"""

from __future__ import annotations

from fractions import Fraction

from ..core import bd_allocation, bottleneck_decomposition
from ..graphs import WeightedGraph
from ..numeric import EXACT
from ..theory import CheckResult, check_proposition3
from .base import ExperimentOutput, Table

EXP_ID = "EXP-F1"
TITLE = "Fig. 1: bottleneck decomposition of the reconstructed example"


def fig1_graph() -> WeightedGraph:
    """The reconstructed Fig. 1 instance.

    ``v1, v2`` (ids 0, 1) weigh 3/2 each and both attach to ``v3`` (id 2,
    weight 1); ``v4, v5, v6`` (ids 3-5) form a uniform triangle hanging off
    ``v3``.  Labels follow the paper's ``v1..v6``.
    """
    return WeightedGraph(
        6,
        [(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
        [Fraction(3, 2), Fraction(3, 2), 1, 1, 1, 1],
        labels=["v1", "v2", "v3", "v4", "v5", "v6"],
    )


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    g = fig1_graph()
    d = bottleneck_decomposition(g, EXACT)
    alloc = bd_allocation(g, d, EXACT)

    rows = []
    for p in d.pairs:
        rows.append([
            p.index,
            "{" + ", ".join(g.labels[v] for v in sorted(p.B)) + "}",
            "{" + ", ".join(g.labels[v] for v in sorted(p.C)) + "}",
            float(p.alpha),
        ])
    pair_table = Table(
        title="Bottleneck decomposition (paper: ({v1,v2},{v3}) @ 1/3; ({v4,v5,v6},.) @ 1)",
        headers=["i", "B_i", "C_i", "alpha_i"],
        rows=rows,
    )
    util_table = Table(
        title="Equilibrium utilities (Proposition 6 closed form = allocation)",
        headers=["vertex", "w_v", "class", "U_v"],
        rows=[
            [g.labels[v], float(g.weights[v]),
             "B+C" if d.in_B(v) and d.in_C(v) else ("B" if d.in_B(v) else "C"),
             float(alloc.utilities[v])]
            for v in g.vertices()
        ],
    )

    expected = (
        d.k == 2
        and d.pairs[0].B == frozenset({0, 1})
        and d.pairs[0].C == frozenset({2})
        and d.pairs[0].alpha == Fraction(1, 3)
        and d.pairs[1].B == d.pairs[1].C == frozenset({3, 4, 5})
        and d.pairs[1].alpha == 1
    )
    figure_check = CheckResult(
        name="Fig. 1 structure",
        ok=expected,
        details="pairs match the figure exactly" if expected else "pairs deviate from the figure",
        data={"alphas": [float(a) for a in d.alphas()]},
    )
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        tables=[pair_table, util_table],
        checks=[figure_check, check_proposition3(g, EXACT)],
        data={"k": d.k},
    )
