"""EXP-BND: measured worst case vs the three published bounds.

The related-work arc: [5] proved ``zeta <= 4`` on rings, [9] improved it to
3, this paper closes it at 2 (tight).  The experiment's "who wins" shape:
the measured worst case over an adversarial instance pool must

* sit *under* every one of the three bounds (all are valid upper bounds),
* *exceed* ``2 - delta`` (so the prior bounds of 4 and 3 are demonstrably
  loose by factors ~2 and ~1.5, and only the new bound is tight).
"""

from __future__ import annotations

import numpy as np

from ..attack import incentive_ratio, lower_bound_ratio, search_worst_ring
from ..graphs import random_ring
from ..theory import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-BND"
TITLE = "Bound comparison: measured worst case vs 4 [5], 3 [9], 2 (this paper)"

BOUNDS = [("Chen et al. [5]", 4.0), ("Cheng-Zhou [9]", 3.0), ("this paper (Thm 8)", 2.0)]


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)

    observed = 0.0
    for _ in range(4 * k):
        n = int(rng.integers(4, 9))
        g = random_ring(n, rng, "loguniform", 1e-3, 1e3)
        observed = max(observed, incentive_ratio(g, grid=24 if scale == "smoke" else 48).zeta)
    search = search_worst_ring(5, rng, restarts=1, sweeps=2 + k // 2,
                               grid=24 if scale == "smoke" else 48)
    observed = max(observed, search.zeta)
    lb = lower_bound_ratio(1e5, grid=256)
    observed = max(observed, lb.ratio)

    rows = []
    for name, bound in BOUNDS:
        slack = bound - observed
        rows.append([name, bound, observed, slack,
                     "tight" if slack < 0.01 else f"loose by {slack:.3f}"])
    table = Table(
        title="Measured supremum vs published upper bounds",
        headers=["bound", "value", "measured max zeta", "slack", "verdict"],
        rows=rows,
    )
    under_all = CheckResult(
        name="measured max under every bound",
        ok=observed <= 2.0 + 1e-6,
        details=f"measured {observed:.6f} <= 2 <= 3 <= 4",
        data={"observed": observed},
    )
    only_two_tight = CheckResult(
        name="only the new bound is tight",
        ok=observed > 1.99 and (4.0 - observed) > 1.9 and (3.0 - observed) > 0.9,
        details=f"slack to 4: {4 - observed:.3f}; to 3: {3 - observed:.3f}; to 2: {2 - observed:.5f}",
        data={},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=[under_all, only_two_tight],
                            data={"observed": observed})
