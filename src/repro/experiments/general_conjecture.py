"""EXP-GEN: the conclusion's conjecture -- incentive ratio 2 on general graphs.

"The Adjusting Technique provides a new approach toward the problem on
general P2P networks, for which we also conjecture to demand an incentive
ratio of two." (Section IV.)  This experiment tests the conjecture
numerically: full bipartition x weight-split Sybil searches over random
connected graphs, trees, stars, and near-cliques.  Two shape claims:

* no instance exceeds 2 (the conjecture's bound holds empirically), and
* general graphs do reach meaningful gains (> 1), i.e. the bound is not
  vacuous off the ring.
"""

from __future__ import annotations

import numpy as np

from ..attack import general_incentive_ratio
from ..graphs import complete, random_connected_graph, star
from ..theory import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-GEN"
TITLE = "Conjecture (Section IV): incentive ratio <= 2 on general graphs"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)

    rows = []
    overall = 0.0
    violations = 0

    def record(label: str, zetas: list[float]):
        nonlocal overall, violations
        overall = max(overall, max(zetas))
        violations += sum(1 for z in zetas if z > 2 + 1e-6)
        rows.append([label, len(zetas), float(np.mean(zetas)), max(zetas),
                     "<= 2" if max(zetas) <= 2 + 1e-6 else "VIOLATION"])

    # random sparse and denser connected graphs
    for extra, label in ((0, "random trees"), (2, "sparse graphs"), (5, "denser graphs")):
        zetas = []
        for _ in range(3 * k):
            n = int(rng.integers(4, 7))
            g = random_connected_graph(n, extra, rng, "loguniform", 0.05, 20)
            z, _ = general_incentive_ratio(g, grid=12 if scale == "smoke" else 24)
            zetas.append(z)
        record(label, zetas)

    # structured families
    zetas = []
    for _ in range(2 * k):
        leaves = int(rng.integers(3, 6))
        g = star(float(rng.uniform(0.1, 20)), list(rng.uniform(0.1, 20, size=leaves)))
        z, _ = general_incentive_ratio(g, grid=12 if scale == "smoke" else 24)
        zetas.append(z)
    record("stars", zetas)

    zetas = []
    for _ in range(2 * k):
        n = int(rng.integers(4, 6))
        g = complete(list(rng.uniform(0.1, 20, size=n)))
        z, _ = general_incentive_ratio(g, grid=12 if scale == "smoke" else 24)
        zetas.append(z)
    record("cliques", zetas)

    table = Table(
        title="Worst general-graph Sybil ratio by family",
        headers=["family", "instances", "mean zeta", "max zeta", "verdict"],
        rows=rows,
    )
    bound = CheckResult(
        name="conjectured bound zeta <= 2",
        ok=violations == 0,
        details=f"max observed {overall:.6f}, violations: {violations}",
        data={"max_zeta": overall},
    )
    nonvacuous = CheckResult(
        name="general graphs show real gains",
        ok=overall > 1.05,
        details=f"max zeta {overall:.4f} > 1 (attack matters off the ring too)",
        data={},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=[bound, nonvacuous],
                            data={"max_zeta": overall})
