"""EXP-P12: class persistence and pair grammar across all breakpoints.

Propositions 11/12 and Lemma 13 drive every step of the proof; this
experiment sweeps the misreport interval of many (instance, agent) pairs
with the regime machinery and checks:

* alpha_v(x) takes one of the three Proposition 11 shapes,
* every breakpoint event is a merge, a split, or the alpha = 1 crossing
  (Proposition 12's grammar),
* protected pairs (Lemma 13) stay intact across each one-class regime.
"""

from __future__ import annotations

import numpy as np

from ..graphs import random_connected_graph, random_ring
from ..numeric import EXACT, FLOAT
from ..theory import (
    CheckResult,
    check_lemma13,
    check_proposition11,
    check_proposition12,
)
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-P12"
TITLE = "Props. 11/12 + Lemma 13: structure of the weight sweep"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)
    cases = {"B-1": 0, "B-2": 0, "B-3": 0}
    p11_fail, p12_fail, l13_fail = [], [], []
    regime_counts = []

    instances = 4 * k
    for _ in range(instances):
        n = int(rng.integers(3, 8))
        ring_like = bool(rng.integers(0, 2))
        g = (random_ring(n, rng, "loguniform", 0.1, 10) if ring_like
             else random_connected_graph(n, 2, rng, "integer", 1, 9))
        v = int(rng.integers(0, n))

        r11 = check_proposition11(g, v, samples=17, backend=FLOAT)
        cases[r11.data["case"]] = cases.get(r11.data["case"], 0) + 1
        if not r11.ok:
            p11_fail.append(r11.details)

        r12 = check_proposition12(g, v, probes=17, backend=FLOAT)
        regime_counts.append(r12.data["num_regimes"])
        if not r12.ok:
            p12_fail.append(r12.details)

        wv = g.weights[v]
        r13 = check_lemma13(g, v, wv / 2, wv, EXACT if isinstance(wv, int) else FLOAT)
        if not r13.ok:
            l13_fail.append(r13.details)

    tables = [
        Table(
            title=f"Proposition 11 case census over {instances} sweeps",
            headers=["case", "count"],
            rows=[[c, n] for c, n in sorted(cases.items())],
        ),
        Table(
            title="Regime statistics",
            headers=["metric", "value"],
            rows=[["mean regimes per sweep", float(np.mean(regime_counts))],
                  ["max regimes per sweep", int(np.max(regime_counts))]],
        ),
    ]
    checks = [
        CheckResult("Proposition 11 shapes", not p11_fail,
                    "; ".join(p11_fail[:3]) or f"{instances} sweeps conform", {}),
        CheckResult("Proposition 12 grammar", not p12_fail,
                    "; ".join(p12_fail[:3]) or "only merge/split/unit-crossing events", {}),
        CheckResult("Lemma 13 protected pairs", not l13_fail,
                    "; ".join(l13_fail[:3]) or "no protected pair impacted", {}),
    ]
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=tables, checks=checks,
                            data={"cases": cases})
