"""Shared scaffolding for the EXP-S population-simulator experiments.

Each EXP-S module is a thin wrapper over one :mod:`repro.sim` scenario
preset: the scenario's epoch count scales with the experiment ``scale``
(smoke ~ a couple of epochs, full ~ dozens), the run executes through
:func:`repro.sim.run_scenario` under the caller's engine context, and the
checks assert the paper-level contract -- every empirical per-agent
incentive ratio within ``2 + zeta_slack`` (Theorem 8 for solo Sybils,
conjectured and so far observed for the composed/colluding strategies)
and zero filed violations.
"""

from __future__ import annotations

from typing import Optional

from ..engine import EngineContext
from ..sim import SCENARIOS, reset_warm_store, run_scenario
from ..theory import CheckResult
from .base import ExperimentOutput, Table, experiment_context, scale_factor

__all__ = ["sim_epochs", "run_family"]


def sim_epochs(scale: str) -> int:
    """Epoch count per scale: smoke=2, default=6, full=18."""
    k = scale_factor(scale)
    return {1: 2, 4: 6, 16: 18}.get(k, 2 + k)


def run_family(
    exp_id: str,
    title: str,
    seed: int,
    scale: str,
    ctx: Optional[EngineContext] = None,
    extra_checks=(),
) -> ExperimentOutput:
    """Run one EXP-S scenario preset and package the standard output."""
    ctx = experiment_context(ctx)
    scenario = SCENARIOS[exp_id]
    reset_warm_store()  # determinism: no hints leak in from earlier runs
    result = run_scenario(scenario, seed=seed, epochs=sim_epochs(scale),
                          ctx=ctx)

    rows = []
    for r in result.reports:
        rows.append([
            r.epoch,
            r.n,
            f"+{len(r.joined)}/-{len(r.left)}",
            " ".join(f"{o.strategy}={o.ratio:.6f}" for o in r.outcomes),
            r.max_ratio,
        ])
    table = Table(
        title=f"{exp_id} population run (seed {result.scenario.seed}, "
              f"strategies {result.scenario.discriminator()})",
        headers=["epoch", "n", "churn", "per-adversary zeta", "max zeta"],
        rows=rows,
    )
    bound = 2.0 + scenario.zeta_slack
    checks = [
        CheckResult(
            name="empirical incentive ratio within 2 + slack every epoch",
            ok=result.max_ratio <= bound,
            details=f"max zeta {result.max_ratio:.9f} over "
                    f"{result.epochs} epochs (bound {bound:g})",
            data={"max_ratio": result.max_ratio},
        ),
        CheckResult(
            name="no zeta-bound violations filed",
            ok=not result.violations,
            details=f"{len(result.violations)} violation(s)",
            data={"violations": list(result.violations)},
        ),
    ]
    checks.extend(extra_checks(result, ctx) if callable(extra_checks)
                  else list(extra_checks))
    return ExperimentOutput(
        exp_id=exp_id,
        title=title,
        tables=[table],
        checks=checks,
        data={
            "max_ratio": result.max_ratio,
            "epochs": result.epochs,
            "violations": len(result.violations),
            "fingerprint": result.fingerprint,
            "reports": [r.to_dict() for r in result.reports],
        },
    )
