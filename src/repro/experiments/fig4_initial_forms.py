"""EXP-F4: reproduce Fig. 4's classification of the initial split path.

Lemma 14 (C-class attacker) and Lemma 20 (B-class attacker) assert the
honest-split decomposition ``B(w_1^0, w_2^0)`` takes one of four forms,
drawn in Fig. 4: Cases C-1, C-2, C-3 and D-1.  The experiment classifies
the honest split of every agent over a family of random rings and reports
the census; the check asserts that

* every B-class attacker lands in Case D-1, and
* every C-class attacker lands in one of C-1/C-2/C-3,

which is exactly the content of the two lemmas.
"""

from __future__ import annotations

import numpy as np

from ..attack import honest_split
from ..core import VertexClass
from ..graphs import random_ring
from ..numeric import FLOAT
from ..theory import CheckResult, InitialForm, classify_initial_form, ring_class_of
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-F4"
TITLE = "Fig. 4: forms of the initial split decomposition B(w1^0, w2^0)"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    rng = np.random.default_rng(seed)
    instances = 6 * scale_factor(scale)
    census: dict[tuple[str, str], int] = {}
    violations: list[str] = []
    examples: dict[str, list] = {}

    total = 0
    for _ in range(instances):
        n = int(rng.integers(3, 9))
        dist = ["uniform", "loguniform", "integer"][int(rng.integers(0, 3))]
        g = random_ring(n, rng, dist, 0.05, 20)
        for v in range(n):
            total += 1
            cls = ring_class_of(g, v, FLOAT)
            w1, w2 = honest_split(g, v, FLOAT)
            form = classify_initial_form(g, v, float(w1), float(w2), backend=FLOAT)
            key = (cls.value, form.value)
            census[key] = census.get(key, 0) + 1
            if form.value not in examples:
                examples[form.value] = [round(float(w), 3) for w in g.weights]
            if cls is VertexClass.B and form not in (InitialForm.D1, InitialForm.MIXED):
                violations.append(f"B-class v={v} classified {form.value}")
            if cls is VertexClass.C and form is InitialForm.D1:
                violations.append(f"C-class v={v} classified D-1")

    rows = sorted([[cls, form, cnt] for (cls, form), cnt in census.items()])
    tables = [
        Table(
            title=f"Initial-form census over {total} (ring, agent) pairs",
            headers=["ring class of v", "form of B(w1^0,w2^0)", "count"],
            rows=rows,
        ),
        Table(
            title="One exemplar ring per observed form",
            headers=["form", "ring weights"],
            rows=[[form, str(w)] for form, w in sorted(examples.items())],
        ),
    ]
    lemma_check = CheckResult(
        name="Lemmas 14/20 form constraints",
        ok=not violations,
        details="; ".join(violations[:5]) or "every attacker matches its lemma's form list",
        data={"census": {f"{k[0]}/{k[1]}": v for k, v in census.items()}},
    )
    coverage = CheckResult(
        name="Fig. 4 coverage",
        ok=any(form == InitialForm.C3.value for _, form in census)
        and any(form == InitialForm.D1.value for _, form in census),
        details="observed forms: " + ", ".join(sorted({form for _, form in census})),
        data={},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=tables,
                            checks=[lemma_check, coverage],
                            data={"census": {f"{k[0]}/{k[1]}": v for k, v in census.items()}})
