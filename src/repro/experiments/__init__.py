"""Experiment suite: one module per paper figure/claim (see DESIGN.md)."""

from .base import ExperimentOutput, Table, scale_factor

__all__ = ["ExperimentOutput", "Table", "scale_factor", "EXPERIMENTS",
           "run_experiment", "run_all"]


def __getattr__(name):
    # registry imports every experiment module; keep package import light
    if name in ("EXPERIMENTS", "run_experiment", "run_all"):
        from . import registry

        return getattr(registry, name)
    raise AttributeError(name)
