"""EXP-LB: the lower-bound family's ratio marches to 2.

Complements EXP-T8's tightness row with the full series zeta(H) along the
codified family ``[1, 1, 1/H, 1/H, H]``, against the first-order prediction
``2 - 2/H`` (derived in ``attack.lower_bound``'s module notes), and records
the optimal split weight ``w_2^* ~ 1/H^2``.
"""

from __future__ import annotations

from ..attack import lower_bound_series
from ..theory import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-LB"
TITLE = "Lower bound: zeta(H) -> 2 along the family [1, 1, 1/H, 1/H, H]"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    Hs = [10, 30, 100, 1000]
    if scale != "smoke":
        Hs += [1e4, 1e5, 1e6]
    if scale == "full":
        Hs += [1e8, 1e10]
    pts = lower_bound_series(Hs, grid=128 if scale == "smoke" else 256)
    rows = [[p.H, p.zeta, p.predicted, p.gap_to_two, p.w2_star, p.w2_star * p.H**2]
            for p in pts]
    table = Table(
        title="zeta(H), prediction 2 - 2/H, and the optimal split w2* ~ 1/H^2",
        headers=["H", "zeta(H)", "2 - 2/H", "2 - zeta", "w2*", "w2* x H^2"],
        rows=rows,
    )
    zetas = [p.zeta for p in pts]
    monotone = CheckResult(
        name="zeta(H) monotone toward 2",
        ok=all(zetas[i] <= zetas[i + 1] + 1e-9 for i in range(len(zetas) - 1)),
        details=f"series {', '.join(f'{z:.6f}' for z in zetas)}",
        data={"zetas": zetas},
    )
    prediction = CheckResult(
        name="first-order prediction 2 - 2/H",
        ok=all(abs(p.zeta - p.predicted) <= 30.0 / p.H**2 + 1e-9 for p in pts),
        details="|zeta - (2 - 2/H)| = O(1/H^2) on every point",
        data={},
    )
    bounded = CheckResult(
        name="never exceeds 2",
        ok=all(p.zeta <= 2.0 + 1e-9 for p in pts),
        details=f"max = {max(zetas):.9f}",
        data={},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=[monotone, prediction, bounded],
                            data={"zetas": zetas, "Hs": [p.H for p in pts]})
