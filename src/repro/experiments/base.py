"""Common experiment protocol.

Every experiment module exposes ``run(seed, scale) -> ExperimentOutput``.
``scale`` selects the sweep size: ``"smoke"`` for CI-speed runs (used by the
test suite), ``"default"`` for the EXPERIMENTS.md numbers, ``"full"`` for
overnight-quality sweeps.  Outputs carry printable tables plus structured
check verdicts so both the CLI and the benchmarks can consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import ExperimentError
from ..io.tables import format_table
from ..theory import CheckResult

__all__ = ["Table", "ExperimentOutput", "scale_factor"]

_SCALES = ("smoke", "default", "full")


def scale_factor(scale: str) -> int:
    """Multiplier applied to sweep sizes: smoke=1, default=4, full=16."""
    if scale not in _SCALES:
        raise ExperimentError(f"unknown scale {scale!r}; pick one of {_SCALES}")
    return {"smoke": 1, "default": 4, "full": 16}[scale]


@dataclass(frozen=True)
class Table:
    """One printable result table."""

    title: str
    headers: Sequence[str]
    rows: Sequence[Sequence]

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


@dataclass
class ExperimentOutput:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    checks: list[CheckResult] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} =="]
        for t in self.tables:
            parts.append(t.render())
        for c in self.checks:
            parts.append(f"[{'PASS' if c.ok else 'FAIL'}] {c.name}: {c.details}")
        return "\n\n".join(parts)
