"""Common experiment protocol.

Every experiment module exposes ``run(seed, scale) -> ExperimentOutput``.
``scale`` selects the sweep size: ``"smoke"`` for CI-speed runs (used by the
test suite), ``"default"`` for the EXPERIMENTS.md numbers, ``"full"`` for
overnight-quality sweeps.  Outputs carry printable tables plus structured
check verdicts so both the CLI and the benchmarks can consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..engine import EngineContext, resolve_context
from ..exceptions import ExperimentError
from ..io.tables import format_table
from ..runtime import decode_value, encode_value
from ..theory import CheckResult

__all__ = [
    "Table",
    "ExperimentOutput",
    "scale_factor",
    "experiment_context",
    "format_engine_stats",
    "encode_output",
    "decode_output",
]

_SCALES = ("smoke", "default", "full")


def scale_factor(scale: str) -> int:
    """Multiplier applied to sweep sizes: smoke=1, default=4, full=16."""
    if scale not in _SCALES:
        raise ExperimentError(f"unknown scale {scale!r}; pick one of {_SCALES}")
    return {"smoke": 1, "default": 4, "full": 16}[scale]


def experiment_context(ctx: Optional[EngineContext]) -> EngineContext:
    """Resolve the engine context an experiment should run under.

    ``None`` means the shared default context: identical configuration
    (Dinic, caching on, zero tolerance 0.0), so experiments behave
    bit-for-bit the same whether or not a context is supplied.
    """
    return resolve_context(ctx)


def format_engine_stats(stats: dict) -> str:
    """One-line human-readable rendering of ``EngineContext.stats()``."""
    cache = stats.get("cache", {})
    phases = ", ".join(
        f"{name}={secs:.3f}s" for name, secs in sorted(stats.get("phase_seconds", {}).items())
    )
    audit = ""
    if stats.get("audit_flow_checks") or stats.get("audit_invariant_checks"):
        audit = (
            f" | audit: flow={stats.get('audit_flow_checks', 0)} "
            f"invariant={stats.get('audit_invariant_checks', 0)} "
            f"differential={stats.get('audit_differential_checks', 0)} "
            f"disagreements={stats.get('audit_disagreements', 0)} "
            f"violations={stats.get('audit_violations', 0)}"
        )
    runtime_keys = (
        ("cell_retries", "retries"),
        ("cell_timeouts", "timeouts"),
        ("worker_respawns", "respawns"),
        ("precision_escalations", "escalations"),
        ("injected_faults", "injected"),
        ("checkpoint_hits", "checkpoint hits"),
    )
    if any(stats.get(k) for k, _ in runtime_keys):
        audit += " | runtime: " + " ".join(
            f"{label}={stats.get(k, 0)}" for k, label in runtime_keys
        )
    dynamics = ""
    if stats.get("dynamics_steps"):
        dynamics = f"dynamics steps={stats.get('dynamics_steps')} "
    spans = ""
    if stats.get("spans"):
        # Heaviest spans first; the full tree lives in the --json dump.
        top = sorted(stats["spans"].items(),
                     key=lambda kv: kv[1]["total_s"], reverse=True)[:5]
        spans = " | spans: " + " ".join(
            f"{path}={s['total_s']:.3f}s/{s['count']}" for path, s in top
        )
    return (
        f"engine: solver={stats.get('solver')} backend={stats.get('backend')} | "
        f"flow calls={stats.get('flow_calls')} "
        f"dinkelbach iters={stats.get('dinkelbach_iterations')} "
        f"decompositions={stats.get('decompositions')} "
        f"allocations={stats.get('allocations')} "
        + dynamics
        + f"| cache hits={cache.get('hits')} misses={cache.get('misses')} "
        f"size={cache.get('size')}/{cache.get('maxsize')}"
        + audit
        + (f" | {phases}" if phases else "")
        + spans
    )


@dataclass(frozen=True)
class Table:
    """One printable result table."""

    title: str
    headers: Sequence[str]
    rows: Sequence[Sequence]

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


@dataclass
class ExperimentOutput:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    checks: list[CheckResult] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    engine_stats: dict | None = None

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def render(self, stats: bool = False) -> str:
        parts = [f"== {self.exp_id}: {self.title} =="]
        for t in self.tables:
            parts.append(t.render())
        for c in self.checks:
            parts.append(f"[{'PASS' if c.ok else 'FAIL'}] {c.name}: {c.details}")
        if stats and self.engine_stats is not None:
            parts.append(format_engine_stats(self.engine_stats))
        return "\n\n".join(parts)


def encode_output(out: ExperimentOutput) -> dict:
    """Checkpoint-safe encoding of an :class:`ExperimentOutput`.

    Scalars go through the runtime's bit-exact tagged encoding (floats as
    hex, Fractions as ``p/q``), so a decoded output renders and compares
    identically to the one the experiment produced -- the property the
    experiment-level resume journal depends on.
    """
    return {
        "exp_id": out.exp_id,
        "title": out.title,
        "tables": encode_value([
            {"title": t.title, "headers": list(t.headers),
             "rows": [list(r) for r in t.rows]}
            for t in out.tables
        ]),
        "checks": encode_value([
            {"name": c.name, "ok": c.ok, "details": c.details, "data": c.data}
            for c in out.checks
        ]),
        "data": encode_value(out.data),
        "engine_stats": encode_value(out.engine_stats),
    }


def decode_output(obj: dict) -> ExperimentOutput:
    """Inverse of :func:`encode_output` (tuples round-trip as lists)."""
    tables = [
        Table(title=t["title"], headers=t["headers"], rows=t["rows"])
        for t in decode_value(obj["tables"])
    ]
    checks = [
        CheckResult(name=c["name"], ok=c["ok"], details=c["details"], data=c["data"])
        for c in decode_value(obj["checks"])
    ]
    return ExperimentOutput(
        exp_id=obj["exp_id"],
        title=obj["title"],
        tables=tables,
        checks=checks,
        data=decode_value(obj["data"]),
        engine_stats=decode_value(obj["engine_stats"]),
    )
