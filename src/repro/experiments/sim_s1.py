"""EXP-S1: solo Sybil splitting under membership churn.

Theorem 8 bounds the incentive ratio of a single Sybil-splitting agent by
2 on a *static* ring.  This experiment lets the honest population churn
(joins and leaves every epoch) while two solo adversaries re-run their
best-response search -- one via the Definition 7 two-way cut, one via the
m-way multi-split machinery -- and asserts the bound holds on every epoch
ring the churn schedule produces.
"""

from __future__ import annotations

from typing import Optional

from ..engine import EngineContext
from .base import ExperimentOutput
from .sim_family import run_family

EXP_ID = "EXP-S1"
TITLE = "Population sim: solo Sybil splits under churn"


def run(seed: int = 0, scale: str = "default",
        ctx: Optional[EngineContext] = None) -> ExperimentOutput:
    return run_family(EXP_ID, TITLE, seed, scale, ctx)
