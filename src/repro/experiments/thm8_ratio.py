"""EXP-T8: the headline result -- incentive ratio on rings is exactly 2.

Sweeps the worst observed Sybil incentive ratio over ring families
(size x weight distribution), including the adversarial lower-bound family
and hill-climbing search.  Theorem 8's two halves:

* upper bound: *no* instance exceeds 2 (checked across every cell);
* tightness: the supremum reaches 2 (the lower-bound family's zeta
  approaches it monotonically; see EXP-LB for the fine-grained series).
"""

from __future__ import annotations

import numpy as np

from ..attack import lower_bound_ratio, search_worst_ring
from ..engine import EngineContext
from ..graphs import random_ring
from ..numeric import FLOAT
from ..theory import CheckResult
from ..analysis import parallel_incentive_sweep, summarize
from .base import ExperimentOutput, Table, experiment_context, scale_factor

EXP_ID = "EXP-T8"
TITLE = "Theorem 8: max Sybil incentive ratio over ring families (bound = 2)"


def run(seed: int = 0, scale: str = "default", ctx: EngineContext | None = None) -> ExperimentOutput:
    ctx = experiment_context(ctx)
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)
    sizes = [4, 6, 8] if scale == "smoke" else [4, 5, 6, 8, 12, 16]
    dists = [("uniform", 0.5, 5.0), ("loguniform", 1e-3, 1e3)]
    per_cell = 3 * k

    rows = []
    overall_max = 0.0
    violations = 0
    for n in sizes:
        for dist, lo, hi in dists:
            # Generate the whole cell before solving: the solves consume no
            # rng, so batching preserves the stream, and routing the batch
            # through the sweep layer gives EXP-T8 parallel execution and
            # runtime supervision (zeta == max over v of the per-vertex
            # best-response ratio, which is exactly what the sweep returns).
            graphs = [random_ring(n, rng, dist, lo, hi) for _ in range(per_cell)]
            zetas = parallel_incentive_sweep(
                graphs, grid=24 if scale == "smoke" else 48, ctx=ctx
            )
            s = summarize(zetas)
            overall_max = max(overall_max, s.maximum)
            violations += sum(1 for z in zetas if z > 2.0 + 1e-6)
            rows.append([n, dist, per_cell, s.mean, s.maximum, "<= 2" if s.maximum <= 2 + 1e-6 else "VIOLATION"])

    # adversarial rows: search + the lower-bound family
    search = search_worst_ring(5, rng, restarts=1 + k // 4, sweeps=2 + k // 2,
                               grid=24 if scale == "smoke" else 48, ctx=ctx)
    overall_max = max(overall_max, search.zeta)
    rows.append([5, "hill-climb search", search.evaluations, search.zeta, search.zeta,
                 "<= 2" if search.zeta <= 2 + 1e-6 else "VIOLATION"])
    lb = lower_bound_ratio(1e4, grid=128, ctx=ctx)
    overall_max = max(overall_max, lb.ratio)
    rows.append([5, "lower-bound family H=1e4", 1, lb.ratio, lb.ratio,
                 "<= 2" if lb.ratio <= 2 + 1e-6 else "VIOLATION"])

    table = Table(
        title="Worst-case zeta by ring family (paper: tight bound 2)",
        headers=["n", "weights", "instances", "mean zeta", "max zeta", "verdict"],
        rows=rows,
    )
    upper = CheckResult(
        name="Theorem 8 upper bound",
        ok=violations == 0 and overall_max <= 2.0 + 1e-6,
        details=f"max observed zeta = {overall_max:.6f}, violations of 2: {violations}",
        data={"max_zeta": overall_max},
    )
    tight = CheckResult(
        name="Theorem 8 tightness",
        ok=lb.ratio > 1.999,
        details=f"lower-bound family reaches {lb.ratio:.6f} at H=1e4",
        data={"lb_zeta": lb.ratio},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=[upper, tight],
                            data={"max_zeta": overall_max, "lb_zeta": lb.ratio})
