"""EXP-SPC: ablation -- spectral prediction of convergence rates.

EXP-CNV measures how many iterations proportional response needs; this
ablation *explains* those numbers: the Jacobian of the update at the
equilibrium predicts the asymptotic decay factor rho (largest sub-unit
eigenvalue modulus) and hence iterations ~ log(tol)/log(rho).  Claims:

* measured iterations never exceed the spectral prediction by more than a
  small constant factor (the prediction can overshoot when the initial
  condition barely excites the slowest mode -- e.g. 4-rings converge in two
  steps -- but the dynamics is never *slower* than its linearization),
* every observed raw-update 2-cycle coincides with an eigenvalue at -1 (a
  swap-antisymmetric edge mode; every bipartite ring has one, and
  near-unit-pair odd rings can carry one too without exciting it), and
* damping maps every eigenvalue inside the unit circle
  (``lam -> d + (1-d) lam``), which is *why* damped runs always converge.
"""

from __future__ import annotations

import numpy as np

from ..analysis import predicted_iterations, spectral_report
from ..core import proportional_response
from ..graphs import random_ring
from ..theory import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-SPC"
TITLE = "Ablation: spectral prediction of dynamics convergence rates"

_TOL = 1e-10


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)
    sizes = [3, 4, 5, 6, 8] if scale == "smoke" else [3, 4, 5, 6, 8, 10, 12]

    rows = []
    ratio_fail = 0
    minus_one_mismatch = 0
    damped_stable_fail = 0
    cases = 0
    for n in sizes:
        for _ in range(max(1, k // 2)):
            g = random_ring(n, rng, "uniform", 0.5, 4.0)
            rep = spectral_report(g)
            raw = proportional_response(g, max_iters=400_000, tol=_TOL)
            pred = predicted_iterations(rep.rho, _TOL)
            cases += 1
            measured = raw.iterations
            if raw.oscillating:
                measured_str = f"{measured} (2-cycle)"
            else:
                measured_str = str(measured)
            # one-sided prediction quality: the dynamics must not be
            # slower than its linearization predicts (overshoot is fine:
            # the slow mode may simply not be excited)
            if measured > 8 * pred + 50:
                ratio_fail += 1
            if raw.oscillating and not rep.has_minus_one:
                minus_one_mismatch += 1
            if rep.damped_rho(0.3) >= 1.0:
                damped_stable_fail += 1
            rows.append([n, "even" if n % 2 == 0 else "odd",
                         rep.rho, pred, measured_str,
                         "yes" if rep.has_minus_one else "no",
                         rep.damped_rho(0.3)])

    table = Table(
        title=f"Spectral radius vs measured iterations (tol {_TOL:g})",
        headers=["n", "parity", "rho", "predicted iters", "measured iters",
                 "eig at -1", "damped rho (beta=0.3)"],
        rows=rows,
    )
    checks = [
        CheckResult("dynamics never slower than the spectral prediction",
                    ratio_fail == 0,
                    f"{ratio_fail}/{cases} cases slower than 8x the prediction", {}),
        CheckResult("every 2-cycle has a -1 mode",
                    minus_one_mismatch == 0,
                    f"{minus_one_mismatch} oscillating instances without a -1 eigenvalue", {}),
        CheckResult("damping stabilizes every instance",
                    damped_stable_fail == 0,
                    f"{damped_stable_fail} instances with damped rho >= 1", {}),
    ]
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=checks, data={"cases": cases})
