"""EXP-CMB: ablation -- does hiding weight help a Sybil attacker?

Definition 7 forces the fictitious identities' weights to sum to ``w_v``.
Theorem 10 rules out gains from under-reporting *without* a split; this
ablation extends the question: optimize the attacker over the whole
feasible triangle ``w_1 + w_2 <= w_v`` and compare with the Definition 7
diagonal.  Claims:

* the unconstrained optimum still respects the bound of 2, and
* it lies on the diagonal (hiding weight adds nothing) -- an empirical
  extension of truthfulness to the split setting, consistent with
  Theorem 10's monotone utilities.
"""

from __future__ import annotations

import numpy as np

from ..attack import best_combined_split, lower_bound_ring
from ..graphs import random_ring
from ..theory import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-CMB"
TITLE = "Ablation: split + under-reporting vs the Definition 7 split"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)
    grid = 12 if scale == "smoke" else 24

    rows = []
    max_ratio = 0.0
    max_gain = 0.0
    cases = 0
    for _ in range(3 * k):
        n = int(rng.integers(3, 8))
        g = random_ring(n, rng, "loguniform", 0.05, 20)
        v = int(rng.integers(0, n))
        r = best_combined_split(g, v, grid=grid, refine=2)
        cases += 1
        rel_gain = r.hiding_gain / max(r.honest_utility, 1e-12)
        max_ratio = max(max_ratio, r.ratio)
        max_gain = max(max_gain, rel_gain)
        rows.append([n, v, r.ratio, r.w1 + r.w2, float(g.weights[v]), rel_gain])
    # the adversarial family too
    r = best_combined_split(lower_bound_ring(1000), 1, grid=grid * 2, refine=3)
    cases += 1
    max_ratio = max(max_ratio, r.ratio)
    max_gain = max(max_gain, r.hiding_gain / max(r.honest_utility, 1e-12))
    rows.append(["LB H=1e3", 1, r.ratio, r.w1 + r.w2, 1.0,
                 r.hiding_gain / max(r.honest_utility, 1e-12)])

    table = Table(
        title="Unconstrained (w1 + w2 <= w_v) optimum per attacker",
        headers=["n", "v", "zeta (combined)", "w1* + w2*", "w_v", "relative hiding gain"],
        rows=rows,
    )
    bound = CheckResult(
        name="combined attack still bounded by 2",
        ok=max_ratio <= 2.0 + 1e-6,
        details=f"max ratio {max_ratio:.6f} over {cases} cases",
        data={"max_ratio": max_ratio},
    )
    diagonal = CheckResult(
        name="hiding weight never profits",
        ok=max_gain <= 1e-6,
        details=f"max relative gain from under-reporting: {max_gain:.2e}",
        data={"max_gain": max_gain},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=[bound, diagonal],
                            data={"max_ratio": max_ratio, "max_gain": max_gain})
