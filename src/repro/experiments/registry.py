"""Experiment registry and runner."""

from __future__ import annotations

import inspect
from typing import Callable, Optional

from ..engine import EngineContext
from ..exceptions import ExperimentError
from .base import ExperimentOutput
from . import (
    bounds_comparison,
    combined_attack,
    convergence,
    fig1_example,
    general_conjecture,
    multi_identity,
    spectral_rates,
    fig2_alpha_curves,
    fig3_pair_dynamics,
    fig4_initial_forms,
    lower_bound_family,
    stage_inequalities,
    structure_checks,
    thm8_ratio,
    truthfulness,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

#: Experiment id -> module (each module exposes EXP_ID, TITLE, run()).
EXPERIMENTS = {
    m.EXP_ID: m
    for m in (
        fig1_example,
        fig2_alpha_curves,
        fig3_pair_dynamics,
        fig4_initial_forms,
        thm8_ratio,
        lower_bound_family,
        bounds_comparison,
        convergence,
        truthfulness,
        stage_inequalities,
        structure_checks,
        general_conjecture,
        multi_identity,
        spectral_rates,
        combined_attack,
    )
}


def run_experiment(
    exp_id: str,
    seed: int = 0,
    scale: str = "default",
    ctx: Optional[EngineContext] = None,
) -> ExperimentOutput:
    """Run one experiment by id (e.g. ``"EXP-T8"``).

    ``ctx`` configures the engine (solver, cache, counters).  The runner
    forwards it only to ``run()`` signatures that accept a ``ctx``
    parameter; experiments that have not grown one simply run with their
    own defaults.  Whenever a context was supplied, its stats snapshot is
    attached to the output so the CLI can render ``--stats``.
    """
    from .base import scale_factor

    scale_factor(scale)  # validate up front, even for experiments that ignore it
    mod = EXPERIMENTS.get(exp_id.upper())
    if mod is None:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    out = _call_run(mod.run, seed=seed, scale=scale, ctx=ctx)
    if ctx is not None:
        out.engine_stats = ctx.stats()
    return out


def run_all(
    seed: int = 0, scale: str = "default", ctx: Optional[EngineContext] = None
) -> list[ExperimentOutput]:
    """Run the whole suite in registry order."""
    outs = []
    for mod in EXPERIMENTS.values():
        out = _call_run(mod.run, seed=seed, scale=scale, ctx=ctx)
        if ctx is not None:
            out.engine_stats = ctx.stats()
        outs.append(out)
    return outs


def _call_run(run: Callable[..., ExperimentOutput], seed: int, scale: str,
              ctx: Optional[EngineContext]) -> ExperimentOutput:
    if ctx is not None and "ctx" in inspect.signature(run).parameters:
        return run(seed=seed, scale=scale, ctx=ctx)
    return run(seed=seed, scale=scale)
