"""Experiment registry and runner."""

from __future__ import annotations

from typing import Callable

from ..exceptions import ExperimentError
from .base import ExperimentOutput
from . import (
    bounds_comparison,
    combined_attack,
    convergence,
    fig1_example,
    general_conjecture,
    multi_identity,
    spectral_rates,
    fig2_alpha_curves,
    fig3_pair_dynamics,
    fig4_initial_forms,
    lower_bound_family,
    stage_inequalities,
    structure_checks,
    thm8_ratio,
    truthfulness,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

#: Experiment id -> module (each module exposes EXP_ID, TITLE, run()).
EXPERIMENTS = {
    m.EXP_ID: m
    for m in (
        fig1_example,
        fig2_alpha_curves,
        fig3_pair_dynamics,
        fig4_initial_forms,
        thm8_ratio,
        lower_bound_family,
        bounds_comparison,
        convergence,
        truthfulness,
        stage_inequalities,
        structure_checks,
        general_conjecture,
        multi_identity,
        spectral_rates,
        combined_attack,
    )
}


def run_experiment(exp_id: str, seed: int = 0, scale: str = "default") -> ExperimentOutput:
    """Run one experiment by id (e.g. ``"EXP-T8"``)."""
    from .base import scale_factor

    scale_factor(scale)  # validate up front, even for experiments that ignore it
    mod = EXPERIMENTS.get(exp_id.upper())
    if mod is None:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return mod.run(seed=seed, scale=scale)


def run_all(seed: int = 0, scale: str = "default") -> list[ExperimentOutput]:
    """Run the whole suite in registry order."""
    return [mod.run(seed=seed, scale=scale) for mod in EXPERIMENTS.values()]
