"""Experiment registry and runner.

Beyond id -> module dispatch, the runner is where the runtime supervision
layer meets the experiment suite: each experiment invocation fires any
index-keyed ``exp`` fault rules (deterministic chaos testing), retryable
failures are re-run according to the context's
:class:`~repro.runtime.RuntimePolicy`, and an optional experiment-level
checkpoint journal records every finished experiment so a killed
``repro-exp all`` run resumes bit-identically instead of starting over.
"""

from __future__ import annotations

import hashlib
import inspect
import time
from typing import Callable, Optional

from ..engine import EngineContext
from ..exceptions import ExperimentError, is_retryable
from ..runtime import fire_site, open_journal, resolve_policy
from .base import ExperimentOutput, decode_output, encode_output
from . import (
    bounds_comparison,
    combined_attack,
    convergence,
    fig1_example,
    general_conjecture,
    multi_identity,
    spectral_rates,
    sim_s1,
    sim_s2,
    sim_s3,
    sim_s4,
    fig2_alpha_curves,
    fig3_pair_dynamics,
    fig4_initial_forms,
    lower_bound_family,
    stage_inequalities,
    structure_checks,
    thm8_ratio,
    truthfulness,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

#: Experiment id -> module (each module exposes EXP_ID, TITLE, run()).
EXPERIMENTS = {
    m.EXP_ID: m
    for m in (
        fig1_example,
        fig2_alpha_curves,
        fig3_pair_dynamics,
        fig4_initial_forms,
        thm8_ratio,
        lower_bound_family,
        bounds_comparison,
        convergence,
        truthfulness,
        stage_inequalities,
        structure_checks,
        general_conjecture,
        multi_identity,
        spectral_rates,
        combined_attack,
        sim_s1,
        sim_s2,
        sim_s3,
        sim_s4,
    )
}


def _suite_fingerprint(seed: int, scale: str, ctx: Optional[EngineContext]) -> str:
    """Fingerprint for the experiment-level checkpoint journal: everything
    that determines experiment outputs (seed, scale, engine config)."""
    engine = ()
    if ctx is not None:
        engine = (ctx.solver, ctx.backend.name, repr(ctx.zero_tol))
    return hashlib.sha256(repr((seed, scale, engine)).encode()).hexdigest()[:16]


def run_experiment(
    exp_id: str,
    seed: int = 0,
    scale: str = "default",
    ctx: Optional[EngineContext] = None,
    checkpoint: Optional[str] = None,
) -> ExperimentOutput:
    """Run one experiment by id (e.g. ``"EXP-T8"``).

    ``ctx`` configures the engine (solver, cache, counters) and, through
    its ``runtime`` policy, the retry budget for retryable failures.  The
    runner forwards it only to ``run()`` signatures that accept a ``ctx``
    parameter; experiments that have not grown one simply run with their
    own defaults.  Whenever a context was supplied, its stats snapshot is
    attached to the output so the CLI can render ``--stats``.  With
    ``checkpoint`` set, a finished experiment is journaled and replayed
    bit-identically by a rerun of the same (seed, scale, engine) suite.
    """
    from .base import scale_factor

    scale_factor(scale)  # validate up front, even for experiments that ignore it
    key = exp_id.upper()
    mod = EXPERIMENTS.get(key)
    if mod is None:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    exp_index = list(EXPERIMENTS).index(key)
    journal = open_journal(checkpoint, _suite_fingerprint(seed, scale, ctx))
    try:
        return _run_one(mod, exp_index, seed, scale, ctx, journal)
    finally:
        if journal is not None:
            journal.close()


def run_all(
    seed: int = 0,
    scale: str = "default",
    ctx: Optional[EngineContext] = None,
    checkpoint: Optional[str] = None,
) -> list[ExperimentOutput]:
    """Run the whole suite in registry order.

    With ``checkpoint`` set, every finished experiment lands in the resume
    journal as it completes; a rerun after a kill replays the finished
    prefix bit-identically and picks up at the first incomplete experiment.
    """
    journal = open_journal(checkpoint, _suite_fingerprint(seed, scale, ctx))
    try:
        return [
            _run_one(mod, i, seed, scale, ctx, journal)
            for i, mod in enumerate(EXPERIMENTS.values())
        ]
    finally:
        if journal is not None:
            journal.close()


def _run_one(mod, exp_index: int, seed: int, scale: str,
             ctx: Optional[EngineContext], journal) -> ExperimentOutput:
    if journal is not None and mod.EXP_ID in journal:
        if ctx is not None:
            ctx.counters.checkpoint_hits += 1
        out = decode_output(journal.get(mod.EXP_ID))
        if ctx is not None:
            # Tables/checks/data replay bit-identically, but the stats
            # describe *this* invocation: no engine work, one checkpoint hit.
            out.engine_stats = ctx.stats()
        return out
    out = _call_run(mod.run, exp_index, seed=seed, scale=scale, ctx=ctx)
    if ctx is not None:
        out.engine_stats = ctx.stats()
    if journal is not None:
        journal.record(mod.EXP_ID, encode_output(out))
    return out


def _call_run(run: Callable[..., ExperimentOutput], exp_index: int, seed: int,
              scale: str, ctx: Optional[EngineContext]) -> ExperimentOutput:
    """Invoke one experiment under the exp-level fault + retry machinery.

    ``exp`` fault rules match the experiment's registry position -- stable
    across runs and independent of which subset is requested by id.  A
    retryable failure (injected fault, typed convergence/instability
    error) re-runs the whole experiment up to the policy's retry budget;
    injected rules fire only on attempt 0, so one retry always recovers.
    """
    policy = resolve_policy(ctx)
    forward_ctx = ctx is not None and "ctx" in inspect.signature(run).parameters
    attempt = 0
    while True:
        try:
            fire_site("exp", index=exp_index, attempt=attempt)
            if forward_ctx:
                return run(seed=seed, scale=scale, ctx=ctx)
            return run(seed=seed, scale=scale)
        except Exception as exc:
            if not is_retryable(exc) or attempt >= policy.retries:
                raise
            attempt += 1
            if ctx is not None:
                ctx.counters.cell_retries += 1
            backoff = policy.backoff(attempt)
            if backoff > 0:
                time.sleep(backoff)
