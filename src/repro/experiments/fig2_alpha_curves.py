"""EXP-F2: reproduce Fig. 2's three alpha_v(x) curve shapes.

Proposition 11 (from [7]) says the alpha-ratio of a misreporting agent
follows one of three shapes; Fig. 2 draws them.  We exhibit one concrete
instance per case, sample the curve, and verify the claimed shape:

* Case B-1 (Fig. 2a): a star leaf -- C class throughout, alpha
  non-decreasing;
* Case B-2 (Fig. 2b): the hub of a two-center structure that stays B class
  -- alpha non-increasing;
* Case B-3 (Fig. 2c): a star center -- rises to alpha = 1 at x*, C class
  below, B class above.
"""

from __future__ import annotations

from ..analysis import trace_report_sweep
from ..graphs import WeightedGraph, star
from ..numeric import FLOAT
from ..theory import check_proposition11
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-F2"
TITLE = "Fig. 2: the three shapes of alpha_v(x) under misreporting"


def case_instances() -> dict[str, tuple[WeightedGraph, int]]:
    """(graph, vertex) per expected case."""
    b1 = (star(10.0, [1.0, 1.0, 1.0]), 1)  # leaf: C class, alpha rising
    # B-2: a heavy leaf of a poor-center star is in the bottleneck (with its
    # sibling leaves) for every report, and alpha_v = w_center / w(leaves)
    # only falls as it reports more
    b2 = (star(2.0, [5.0, 5.0, 5.0]), 1)
    b3 = (star(10.0, [1.0, 1.0, 1.0]), 0)  # center: crosses alpha = 1 at 3
    return {"B-1": b1, "B-2": b2, "B-3": b3}


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    samples = 16 * scale_factor(scale)
    tables = []
    checks = []
    series = {}
    for case, (g, v) in case_instances().items():
        trace = trace_report_sweep(g, v, samples=samples, probes=17, backend=FLOAT)
        series[case] = {"x": trace.xs, "alpha": trace.alphas, "class": trace.classes}
        stride = max(1, len(trace.xs) // 8)
        rows = [
            [trace.xs[i], trace.alphas[i], trace.classes[i], trace.utilities[i]]
            for i in range(0, len(trace.xs), stride)
        ]
        tables.append(Table(
            title=f"Case {case} (observed case: {trace.case_label()})",
            headers=["x", "alpha_v(x)", "class", "U_v(x)"],
            rows=rows,
        ))
        res = check_proposition11(g, v, samples=min(33, samples + 1), backend=FLOAT)
        res_named = type(res)(
            name=f"Proposition 11 shape for intended {case}",
            ok=res.ok and res.data["case"] == case,
            details=f"intended {case}, observed {res.data['case']}",
            data=res.data,
        )
        checks.append(res_named)
    return ExperimentOutput(
        exp_id=EXP_ID, title=TITLE, tables=tables, checks=checks,
        data={"series": series},
    )
