"""EXP-MSP: ablation -- do more than two identities help?

Definition 7 allows up to ``d_v`` identities, yet the paper's ring analysis
(and its general-graph conjecture) revolve around two.  This ablation runs
the full m-way best response for m = 2 and m = 3 on general graphs whose
attackers have degree >= 3 and asks two questions:

* does any m = 3 attack exceed the conjectured bound of 2?  (no), and
* how much can m = 3 add over the best m = 2 attack?  (note m = 3
  partitions all three neighbor groups nonempty, so it is *not* a superset
  of the m = 2 space; small genuine improvements are possible --
  empirically they stay within a few percent, evidence that the
  two-identity analysis captures the bulk of the attack power).
"""

from __future__ import annotations

import numpy as np

from ..attack import best_general_split, best_multi_split
from ..graphs import random_connected_graph, star
from ..theory import CheckResult
from .base import ExperimentOutput, Table, scale_factor

EXP_ID = "EXP-MSP"
TITLE = "Ablation: multi-identity (m = 3) vs two-identity Sybil attacks"


def run(seed: int = 0, scale: str = "default") -> ExperimentOutput:
    k = scale_factor(scale)
    rng = np.random.default_rng(seed)

    rows = []
    max_ratio = 0.0
    improvements = 0
    max_improvement = 0.0
    cases = 0

    def consider(g, label: str):
        nonlocal max_ratio, improvements, max_improvement, cases
        candidates = [v for v in g.vertices() if g.degree(v) >= 3]
        if not candidates:
            return
        v = max(candidates, key=lambda u: float(g.weights[u]))
        r2 = best_general_split(g, v, grid=12 if scale == "smoke" else 24)
        r3 = best_multi_split(g, v, 3, steps=8 if scale == "smoke" else 12)
        cases += 1
        max_ratio = max(max_ratio, r2.ratio, r3.ratio)
        gain = r3.ratio - r2.ratio
        if gain > 1e-6:
            improvements += 1
            max_improvement = max(max_improvement, gain)
        rows.append([label, g.degree(v), r2.ratio, r3.ratio, gain])

    for i in range(2 * k):
        n = int(rng.integers(5, 8))
        consider(random_connected_graph(n, n, rng, "loguniform", 0.05, 20),
                 f"random #{i}")
    for i in range(k):
        leaves = int(rng.integers(3, 6))
        consider(star(float(rng.uniform(0.1, 20)),
                      list(rng.uniform(0.1, 20, size=leaves))), f"star #{i}")

    table = Table(
        title="Best ratio by identity count (same attacker)",
        headers=["instance", "d_v", "zeta (m=2)", "zeta (m=3)", "m=3 gain"],
        rows=rows,
    )
    bound = CheckResult(
        name="m = 3 never exceeds the bound of 2",
        ok=max_ratio <= 2.0 + 1e-6,
        details=f"max ratio across {cases} cases: {max_ratio:.6f}",
        data={"max_ratio": max_ratio},
    )
    no_help = CheckResult(
        name="two identities capture the bulk of the attack power",
        ok=max_improvement <= 5e-2,
        details=(f"m=3 strictly improved {improvements}/{cases} cases, "
                 f"max improvement {max_improvement:.2e}"),
        data={"improvements": improvements, "max_improvement": max_improvement},
    )
    return ExperimentOutput(exp_id=EXP_ID, title=TITLE, tables=[table],
                            checks=[bound, no_help],
                            data={"max_ratio": max_ratio, "cases": cases})
