"""EXP-S3: composed misreport-then-Sybil attacks next to a pure misreporter.

One adversary composes the two attack primitives -- report ``x < w_v``,
then split the reported weight across fictitious identities
(:mod:`repro.attack.combined`); the other only under-reports (which
Theorem 10 proves can never profit).  The experiment checks both stay
within ``2 + slack`` on every churned epoch ring, extending the EXP-CMB
ablation from one static instance to a population trajectory.
"""

from __future__ import annotations

from typing import Optional

from ..engine import EngineContext
from .base import ExperimentOutput
from .sim_family import run_family

EXP_ID = "EXP-S3"
TITLE = "Population sim: misreport-then-Sybil compositions"


def run(seed: int = 0, scale: str = "default",
        ctx: Optional[EngineContext] = None) -> ExperimentOutput:
    return run_family(EXP_ID, TITLE, seed, scale, ctx)
