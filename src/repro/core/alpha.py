"""Inclusive expansion ratio ``alpha(S) = w(Gamma(S)) / w(S)`` (Section II-B).

``alpha`` drives everything: a *bottleneck* is a minimizer of ``alpha`` over
vertex subsets, pairs of Definition 2 carry the ratio ``alpha_i =
w(C_i)/w(B_i)``, and equilibrium utilities are ``w_v * alpha`` or
``w_v / alpha`` depending on the class of ``v`` (Proposition 6).

Subsets with ``w(S) = 0`` have an undefined (effectively ``+inf``) ratio --
they can never be bottlenecks -- and are reported as ``None`` so that exact
(`Fraction`) arithmetic does not need an infinity value.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..graphs import WeightedGraph
from ..numeric import Backend, FLOAT, Scalar

__all__ = ["alpha_ratio", "alpha_within", "pair_alpha"]


def alpha_ratio(
    g: WeightedGraph, S: Iterable[int], backend: Backend = FLOAT
) -> Optional[Scalar]:
    """``alpha(S)`` on the whole graph ``g``; ``None`` when ``w(S) = 0``."""
    S = set(S)
    if not S:
        return None
    wS = g.weight_of(S, backend)
    if wS == 0:
        return None
    wN = g.weight_of(g.neighborhood(S), backend)
    return wN / wS


def alpha_within(
    g: WeightedGraph,
    S: Iterable[int],
    active: Iterable[int],
    backend: Backend = FLOAT,
) -> Optional[Scalar]:
    """``alpha`` of ``S`` inside the induced subgraph on ``active``.

    Used by the decomposition loop: round ``i`` evaluates ratios inside
    ``G_i`` without materializing the induced graph -- ``Gamma_{G_i}(S) =
    Gamma(S) ∩ V_i`` because induced adjacency is plain restriction.
    """
    S = set(S)
    active = set(active)
    if not S or not S <= active:
        return None
    wS = g.weight_of(S, backend)
    if wS == 0:
        return None
    wN = g.weight_of(g.neighborhood(S) & active, backend)
    return wN / wS


def pair_alpha(g: WeightedGraph, B: Iterable[int], C: Iterable[int], backend: Backend = FLOAT) -> Optional[Scalar]:
    """``alpha_i = w(C_i) / w(B_i)`` of a bottleneck pair."""
    wB = g.weight_of(B, backend)
    if wB == 0:
        return None
    return g.weight_of(C, backend) / wB
