"""Exponential brute-force oracles (cross-checks for the fast paths).

These enumerate all ``2^n - 1`` subsets, so they are usable up to ~16
vertices -- exactly the regime where the test suite wants an independent
ground truth for the parametric machinery.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Sequence

from ..exceptions import DecompositionError
from ..graphs import WeightedGraph
from ..guard.resources import check_bruteforce_size
from ..numeric import Backend, EXACT, Scalar
from .alpha import alpha_within
from .bottleneck import BottleneckDecomposition, BottleneckPair

__all__ = [
    "brute_force_min_alpha",
    "brute_force_maximal_bottleneck",
    "brute_force_decomposition",
]


def _subsets(verts: Sequence[int]):
    for r in range(1, len(verts) + 1):
        yield from combinations(verts, r)


def brute_force_min_alpha(
    g: WeightedGraph,
    active: Sequence[int] | None = None,
    backend: Backend = EXACT,
) -> Optional[Scalar]:
    """Minimum ``alpha(S)`` over nonempty subsets of ``active`` by enumeration."""
    if active is None:
        active = list(g.vertices())
    # Size guard (repro.guard.resources): refuse before the 2^n loop, with
    # the typed ResourceExhaustedError the supervisor knows how to handle.
    # The cap travels with RuntimePolicy.max_bruteforce_n into workers.
    check_bruteforce_size(len(active), what="brute-force min-alpha")
    best = None
    for S in _subsets(active):
        a = alpha_within(g, S, active, backend)
        if a is not None and (best is None or a < best):
            best = a
    return best


def brute_force_maximal_bottleneck(
    g: WeightedGraph,
    active: Sequence[int] | None = None,
    backend: Backend = EXACT,
) -> tuple[frozenset[int], Scalar]:
    """Maximal bottleneck by enumeration: union of all minimizing subsets.

    The union of bottlenecks is itself a bottleneck (submodularity), which
    this oracle re-verifies as a built-in self-check.  Zero-weight subsets
    whose neighborhood also has zero weight are degenerate minimizers in the
    parametric formulation; to match the fast path they are unioned in as
    well when their neighborhood lies inside the union's neighborhood.
    """
    if active is None:
        active = list(g.vertices())
    active = list(active)
    best = brute_force_min_alpha(g, active, backend)
    if best is None:
        raise DecompositionError("no subset with positive weight")
    union: set[int] = set()
    for S in _subsets(active):
        a = alpha_within(g, S, active, backend)
        if a is not None and backend.eq(a, best):
            union |= set(S)
    check = alpha_within(g, union, active, backend)
    if check is None or not backend.eq(check, best):
        raise DecompositionError(
            f"union of bottlenecks is not a bottleneck: alpha={check!r} vs {best!r}"
        )
    # Absorb zero-weight freeloaders: a zero-weight vertex z joins the union
    # whenever the neighbors it would add to Gamma(union) carry zero weight,
    # because union ∪ {z} is then itself a bottleneck (same alpha).
    active_set = set(active)
    grown = True
    while grown:
        grown = False
        nbh = g.neighborhood(union) & active_set
        for v in active_set - union:
            added = (set(g.neighbors(v)) & active_set) - nbh
            if g.weights[v] == 0 and g.weight_of(added, backend) == 0:
                union.add(v)
                grown = True
    return frozenset(union), best


def brute_force_decomposition(
    g: WeightedGraph, backend: Backend = EXACT
) -> BottleneckDecomposition:
    """Full Definition-2 decomposition driven by the brute-force bottleneck."""
    pairs: list[BottleneckPair] = []
    active = sorted(g.vertices())
    index = 1
    while active:
        if g.weight_of(active, backend) == 0:
            alpha = pairs[-1].alpha if pairs else backend.scalar(1)
            pairs.append(BottleneckPair(index, frozenset(active), frozenset(active), alpha))
            break
        B, alpha = brute_force_maximal_bottleneck(g, active, backend)
        active_set = set(active)
        C = frozenset(g.neighborhood(B) & active_set)
        pairs.append(BottleneckPair(index, B, C, alpha))
        active = sorted(active_set - (B | C))
        index += 1
    return BottleneckDecomposition(g, pairs, backend)
