"""Fixed-point verification for the proportional response dynamics.

An allocation ``X`` is a fixed point of Definition 1 iff for every directed
edge ``(v, u)`` with ``U_v(X) > 0``:

    x_vu = x_uv / U_v * w_v.

The BD allocation is *a* fixed point, but Definition 5's max flows are not
unique and not every saturating flow satisfies the echo condition (a
directed circulation on a uniform triangle is the canonical counterexample
-- discovered by this project's property tests and fixed by symmetrizing
the unit-pair flow).  This module makes the condition a first-class check
so allocation code can assert it and experiments can report the residual.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import AllocationError
from ..numeric import Backend, FLOAT
from .allocation import Allocation

__all__ = ["FixedPointReport", "fixed_point_residual", "assert_fixed_point"]


@dataclass(frozen=True)
class FixedPointReport:
    """Residual of the proportional-response fixed point condition."""

    max_residual: float
    worst_edge: tuple[int, int] | None
    checked_edges: int
    skipped_zero_utility: int

    @property
    def is_fixed_point(self) -> bool:
        return self.max_residual <= 1e-9


def fixed_point_residual(alloc: Allocation, backend: Backend = FLOAT) -> FixedPointReport:
    """Max violation of ``x_vu = x_uv / U_v * w_v`` over directed edges.

    Edges out of zero-utility vertices are skipped (the response is
    undefined there; only degenerate zero-weight corners produce them).
    Residuals are measured relative to the vertex endowment so large and
    small instances are comparable.
    """
    g = alloc.graph
    worst = 0.0
    worst_edge: tuple[int, int] | None = None
    checked = 0
    skipped = 0
    for v in g.vertices():
        uv = alloc.utilities[v]
        wv = g.weights[v]
        if uv == 0:
            skipped += len(g.neighbors(v))
            continue
        for u in g.neighbors(v):
            expect = alloc.x.get((u, v), 0) / uv * wv
            got = alloc.x.get((v, u), 0)
            scale = max(1.0, abs(float(wv)))
            res = abs(float(got) - float(expect)) / scale
            checked += 1
            if res > worst:
                worst, worst_edge = res, (v, u)
    return FixedPointReport(
        max_residual=worst,
        worst_edge=worst_edge,
        checked_edges=checked,
        skipped_zero_utility=skipped,
    )


def assert_fixed_point(alloc: Allocation, tol: float = 1e-9, backend: Backend = FLOAT) -> None:
    """Raise :class:`AllocationError` unless ``alloc`` is a PR fixed point."""
    report = fixed_point_residual(alloc, backend)
    if report.max_residual > tol:
        raise AllocationError(
            f"allocation is not a proportional-response fixed point: residual "
            f"{report.max_residual:.3e} at edge {report.worst_edge}"
        )
