"""B class / C class labelling (Definition 4) with the ring refinement.

For a pair ``(B_i, C_i)`` with ``alpha_i < 1`` membership is unambiguous.
A terminal pair ``B_k = C_k`` with ``alpha_k = 1`` makes every member *both*
B and C class; Section III-C's analysis additionally needs a refinement on
rings/paths: when the induced subgraph of ``B_k`` is a path, classes can be
assigned alternately (the manipulative agent chosen as C class), and on an
even ring likewise, while an odd ring admits no proper alternation and all
vertices stay both-class (the paper's Case C-1 world).
"""

from __future__ import annotations

from enum import Enum

from ..exceptions import DecompositionError
from .bottleneck import BottleneckDecomposition

__all__ = ["VertexClass", "classify", "refine_unit_pair"]


class VertexClass(Enum):
    """Class of a vertex under Definition 4."""

    B = "B"
    C = "C"
    BOTH = "BC"

    @property
    def is_b(self) -> bool:
        return self in (VertexClass.B, VertexClass.BOTH)

    @property
    def is_c(self) -> bool:
        return self in (VertexClass.C, VertexClass.BOTH)


def classify(decomp: BottleneckDecomposition) -> dict[int, VertexClass]:
    """Raw Definition-4 classes: B, C, or BOTH (unit pairs)."""
    out: dict[int, VertexClass] = {}
    for p in decomp.pairs:
        for v in p.members():
            in_b = v in p.B
            in_c = v in p.C
            if in_b and in_c:
                out[v] = VertexClass.BOTH
            elif in_b:
                out[v] = VertexClass.B
            else:
                out[v] = VertexClass.C
    return out


def refine_unit_pair(
    decomp: BottleneckDecomposition, prefer_c: int
) -> dict[int, VertexClass]:
    """Classes with the Section III-C alternation applied to the unit pair.

    ``prefer_c`` is the vertex (typically the manipulative agent) that the
    refinement pins to C class; alternation then propagates along the
    induced path of the ``alpha = 1`` pair.  When the induced subgraph of
    the unit pair is not 2-colorable with this seed (e.g. an odd cycle),
    members keep the BOTH label -- exactly the situation the paper handles
    via its Case C-1.

    Vertices outside the unit pair always keep their unambiguous class.
    """
    labels = classify(decomp)
    if labels.get(prefer_c) is None:
        raise DecompositionError(f"vertex {prefer_c} not covered by the decomposition")
    if labels[prefer_c] is not VertexClass.BOTH:
        return labels

    pair = decomp.pair_of(prefer_c)
    members = pair.members()
    g = decomp.graph

    # BFS 2-coloring of the induced subgraph seeded at prefer_c = C
    color: dict[int, VertexClass] = {prefer_c: VertexClass.C}
    queue = [prefer_c]
    ok = True
    while queue and ok:
        u = queue.pop()
        for v in g.neighbors(u):
            if v not in members:
                continue
            want = VertexClass.B if color[u] is VertexClass.C else VertexClass.C
            if v not in color:
                color[v] = want
                queue.append(v)
            elif color[v] is not want:
                ok = False
                break
    if not ok:
        return labels  # odd component: alternation impossible, keep BOTH

    for v, c in color.items():
        labels[v] = c

    # Other connected components of the unit pair's induced subgraph get the
    # same treatment when they are bipartite, seeded (arbitrarily, as the
    # paper's "and so on") at their smallest vertex as C class.
    remaining = sorted(m for m in members if m not in color)
    while remaining:
        seed = remaining[0]
        comp_color: dict[int, VertexClass] = {seed: VertexClass.C}
        queue = [seed]
        comp_ok = True
        while queue and comp_ok:
            u = queue.pop()
            for x in g.neighbors(u):
                if x not in members or x in color:
                    continue
                want = VertexClass.B if comp_color[u] is VertexClass.C else VertexClass.C
                if x not in comp_color:
                    comp_color[x] = want
                    queue.append(x)
                elif comp_color[x] is not want:
                    comp_ok = False
                    break
        if comp_ok:
            for x, c in comp_color.items():
                labels[x] = c
        color.update(comp_color)  # mark visited either way
        remaining = sorted(m for m in members if m not in color)
    return labels
