"""Incremental decomposition reuse across constant-structure segments.

The best-response sweep evaluates a one-parameter family of instances
``g(w1)`` that differ only in two vertex weights.  By the breakpoint
analysis in :mod:`repro.theory.breakpoints`, the *combinatorial* structure
of the bottleneck decomposition -- which vertices form each ``(B_i, C_i)``
pair -- is piecewise constant in ``w1``: the parameter axis splits into
finitely many segments, and inside a segment only the alphas and flows
move.  So once two fully-solved evaluations bracket a candidate with the
same decomposition signature, the candidate's decomposition can be
*reconstructed* from that structure instead of re-solved: recompute each
alpha as ``w(Gamma(B_i) cap active) / w(B_i)`` on the candidate's weights
-- by the very code path the Dinkelbach stage loop would have used, so the
scalars come out bit-identical -- and let the allocation's saturation
checks certify the result.

Certification matters: bracketing is *evidence*, not proof (a sub-ulp
sliver segment could hide between two probes), and saturation alone can be
fooled -- on the 2-path with weights ``(1, 3)`` the false pair
``({a}, {b}, alpha=3)`` saturates both sides of its Definition-5 network.
The defense is layered, and every layer failing falls back to a full
solve, never to a wrong answer:

1. structural checks during reconstruction (stages partition the active
   sets, ``C_i`` recomputed fresh as ``Gamma(B_i) cap active``, alphas
   strictly increasing and ``<= 1`` -- which alone kills the counterexample
   above, since a false "bottleneck" passed over by the true one shows a
   ratio above a true pair's);
2. saturation: every reconstructed decomposition goes through the
   allocation layer's per-pair ``_solve_and_check``, which raises
   :class:`~repro.exceptions.InfeasibleFlowError` unless max flow
   saturates both network sides -- the Definition-5 certificate that each
   claimed ``B_i`` really is a bottleneck of its stage graph.  Pairs whose
   network is *bit-identical* to the corresponding pair of the
   ground-truth hint (member weights untouched, alpha bit-equal) are
   certified analytically instead of re-solved; see
   :func:`repro.core.allocation.certified_endpoint_utilities`.

Reconstruction is only used when no auditor is attached: the audit layers
deliberately see full-fidelity solves.
"""

from __future__ import annotations

from ..engine import EngineContext, decomposition_key, resolve_context
from ..exceptions import AllocationError, DecompositionError, InfeasibleFlowError
from ..graphs import WeightedGraph
from ..numeric import Backend
from .bottleneck import BottleneckDecomposition, BottleneckPair, bottleneck_decomposition

__all__ = [
    "reconstruct_decomposition",
    "topology_fingerprint",
    "warm_decomposition",
]


def topology_fingerprint(g: WeightedGraph) -> tuple[int, tuple[tuple[int, int], ...]]:
    """Weight-free structural identity of ``g``: vertex count + edge set.

    Two instances share a fingerprint iff they have the same vertex ids
    wired the same way -- the precondition for any cross-instance
    decomposition reuse.  A churn epoch that resizes the ring changes the
    fingerprint even though both instances "are rings", which is exactly
    the silent-reuse hazard the guard below exists for: a hint whose vertex
    ids mean different agents can pass every structural check in
    :func:`reconstruct_decomposition` and come back *wrong*, not invalid.
    """
    return (
        g.n,
        tuple(sorted((a, b) if a < b else (b, a) for a, b in g.edges)),
    )


def reconstruct_decomposition(
    g: WeightedGraph,
    hint: BottleneckDecomposition,
    backend: Backend | None = None,
    ctx: EngineContext | None = None,
) -> BottleneckDecomposition:
    """Rebuild ``hint``'s combinatorial structure on ``g``'s weights.

    ``hint`` must decompose an instance with the same vertex ids and
    topology as ``g`` -- enforced by an explicit
    :func:`topology_fingerprint` comparison, since a cross-topology hint
    can pass every structural check below yet describe a decomposition
    that is not ``g``'s (the typical valid source is a neighboring point
    of the same weight-parameter segment).  Alphas are
    recomputed from scratch on ``g`` -- deliberately via the same set
    constructions and accumulation order as the Dinkelbach stage loop, so
    that when the hint's structure *is* ``g``'s true structure the result
    is bit-identical to a full solve.  Raises
    :class:`~repro.exceptions.DecompositionError` on any structural
    inconsistency; the caller falls back to a full solve.

    The result is **uncertified** until the allocation layer's saturation
    checks pass; callers must run an allocation before trusting or caching
    it (see module docstring).
    """
    ctx = resolve_context(ctx)
    backend = ctx.resolve_backend(backend)
    if (hint.graph.n == g.n
            and topology_fingerprint(hint.graph) != topology_fingerprint(g)):
        # Hard guard for the one mismatch the structural checks below are
        # blind to: same vertex count, different wiring.  Such a hint can
        # satisfy every check (partition, alphas increasing and <= 1,
        # coverage) while describing a decomposition that is simply not
        # g's -- silent wrongness, the worst failure mode.  Size mismatches
        # are deliberately left to the structural checks, which diagnose
        # them precisely (surplus pairs / uncovered vertices).
        raise DecompositionError(
            f"hint decomposes a different topology (same n={g.n}, "
            "different edge set); refusing cross-topology reconstruction"
        )

    pairs: list[BottleneckPair] = []
    active = sorted(g.vertices())
    prev_alpha = None
    one = backend.scalar(1)
    index = 1
    for hp in hint.pairs:
        if not active:
            raise DecompositionError("hint decomposition has surplus pairs")
        active_set = set(active)
        w_active = g.weight_of(active, backend)
        if w_active == 0:
            # Degenerate all-zero tail: the stage loop emits one terminal
            # pair holding every remaining vertex.
            B = frozenset(active)
            if hp.B != B or hp.C != B:
                raise DecompositionError("hint mismatches the degenerate tail")
            alpha = pairs[-1].alpha if pairs else one
            pairs.append(BottleneckPair(index, B, B, alpha))
            active = []
            index += 1
            continue
        # Ascending insertion: small-int set layout (hence iteration order,
        # hence float accumulation order in weight_of) is a function of the
        # insertion sequence; the stage loop builds its sets ascending, so
        # we must too for the recomputed alphas to be bit-identical.
        S = set(v for v in sorted(hp.B) if v in active_set)
        if len(S) != len(hp.B):
            raise DecompositionError("hint stage leaks outside the active set")
        if not S:
            raise DecompositionError("hint stage is empty")
        wS = g.weight_of(S, backend)
        if wS == 0:
            raise DecompositionError("hint stage has zero weight")
        a = g.weight_of(g.neighborhood(S) & active_set, backend) / wS
        if a > one:
            # No true bottleneck pair exceeds alpha = 1 (Prop 3); this is
            # the signature of a non-bottleneck masquerading as one.
            raise DecompositionError("reconstructed alpha exceeds 1")
        if prev_alpha is not None and not (a > prev_alpha):
            raise DecompositionError("reconstructed alphas are not increasing")
        B = frozenset(S)
        C = frozenset(g.neighborhood(B) & active_set)
        pairs.append(BottleneckPair(index, B, C, a))
        active = sorted(active_set - (B | C))
        prev_alpha = a
        index += 1
    if active:
        raise DecompositionError("hint pairs do not cover the graph")
    decomp = BottleneckDecomposition(g, pairs, backend)
    ctx.counters.decomp_reconstructions += 1
    return decomp


def warm_decomposition(
    g: WeightedGraph,
    hint: BottleneckDecomposition | None,
    backend: Backend | None = None,
    ctx: EngineContext | None = None,
) -> BottleneckDecomposition:
    """Topology-guarded decomposition with cross-instance warm reuse.

    The entry point for callers that hold a decomposition of a *previous*
    instance of an evolving family -- the simulator's adaptive adversaries
    re-solving a churning ring epoch after epoch.  Behavior:

    * ``hint`` is ``None``, its topology fingerprint differs from ``g``'s
      (a churn epoch resized the ring -- counted as
      ``warm_hint_invalidations``), or an auditor is attached (audit
      layers see full-fidelity solves): full
      :func:`~repro.core.bottleneck.bottleneck_decomposition`.
    * same topology: reconstruct the hint's structure on ``g``'s weights,
      then **certify** it through the allocation layer's saturation checks
      before trusting or caching it.  Any failure (structural mismatch,
      unsaturated Definition-5 network) falls back to a full solve --
      counted as ``reconstruction_fallbacks`` -- never to a wrong answer.

    A certified reconstruction is inserted into the context's
    decomposition cache, so downstream code re-requesting the same
    instance (e.g. a best-response search recomputing the honest utility)
    hits the cache instead of paying the cold solve the reconstruction
    saved.  Reuse never changes values: a matching structure reconstructs
    bit-identically to a full solve, and a mismatch falls back to one.
    """
    ctx = resolve_context(ctx)
    backend = ctx.resolve_backend(backend)
    if hint is not None:
        if topology_fingerprint(hint.graph) != topology_fingerprint(g):
            ctx.counters.warm_hint_invalidations += 1
            hint = None
        elif ctx.auditor is not None:
            hint = None
    if hint is None:
        return bottleneck_decomposition(g, backend, ctx)
    key = decomposition_key(g, backend)
    cached = ctx.cache.get(key)
    if cached is not None:
        ctx.counters.cache_hits += 1
        return cached
    try:
        decomp = reconstruct_decomposition(g, hint, backend, ctx)
        # Saturation certificate (Definition 5) for every reconstructed
        # pair; lazy import keeps the bottleneck -> incremental ->
        # allocation chain acyclic.
        from .allocation import bd_allocation

        bd_allocation(g, decomp, backend=backend, ctx=ctx)
    except (DecompositionError, InfeasibleFlowError, AllocationError):
        ctx.counters.reconstruction_fallbacks += 1
        return bottleneck_decomposition(g, backend, ctx)
    ctx.cache.put(key, decomp)
    return decomp
