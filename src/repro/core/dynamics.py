"""Proportional response dynamics (Definition 1), NumPy-vectorized.

The update is

    x_vu(t+1) = x_uv(t) / U_v(t) * w_v,      U_v(t) = sum_k x_kv(t),

with ``x_vu(0) = w_v / d_v``.  The state lives on *directed* edges; the hot
loop is three vectorized operations (a ``bincount`` for utilities, a gather
through the reverse-edge permutation, and a scale), per the HPC guides'
vectorize-the-inner-loop rule -- no Python-level per-edge work.

Wu-Zhang prove convergence of the dynamics to the BD allocation; on
*bipartite* graphs (even rings!) the raw iteration can settle into a
2-cycle whose odd/even subsequences each converge, so the simulator also
offers a damped update ``x <- (1-beta) x + beta PR(x)`` and detects
2-cycles explicitly, reporting the averaged orbit in that case.  The
EXP-CNV experiment quantifies where which mode converges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import EngineContext, instance_signature, resolve_context
from ..exceptions import ConvergenceError
from ..graphs import WeightedGraph
from ..graphs.columnar import ColumnarGraph

__all__ = ["DynamicsResult", "proportional_response", "dynamics_utilities"]


@dataclass(frozen=True)
class DynamicsResult:
    """Outcome of a proportional response run.

    Attributes
    ----------
    converged:
        True if the allocation reached a fixed point within tolerance.
    oscillating:
        True if a 2-cycle was detected instead (bipartite mode); the
        reported state is then the average of the two orbit points.
    iterations:
        Update steps performed.
    utilities:
        Per-vertex utilities of the final (or orbit-averaged) allocation.
    x:
        Final allocation on directed edges, aligned with ``edge_index``.
    edge_index:
        Mapping ``(v, u) -> position`` into ``x``.
    residual:
        Max absolute change in ``x`` over the last step (or orbit gap).
    """

    converged: bool
    oscillating: bool
    iterations: int
    utilities: np.ndarray
    x: np.ndarray
    edge_index: dict[tuple[int, int], int]
    residual: float

    def utility_of(self, v: int) -> float:
        return float(self.utilities[v])

    def allocation_of(self, v: int, u: int) -> float:
        return float(self.x[self.edge_index[(v, u)]])


def _edge_arrays(g: WeightedGraph):
    """Directed edge arrays (src, dst) plus the reverse permutation."""
    pairs: list[tuple[int, int]] = []
    for (u, v) in g.edges:
        pairs.append((u, v))
        pairs.append((v, u))
    index = {p: i for i, p in enumerate(pairs)}
    src = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
    dst = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
    rev = np.fromiter((index[(p[1], p[0])] for p in pairs), dtype=np.int64, count=len(pairs))
    return src, dst, rev, index


def proportional_response(
    g: WeightedGraph,
    max_iters: int = 100_000,
    tol: float = 1e-10,
    damping: float = 0.0,
    raise_on_failure: bool = False,
    ctx: EngineContext | None = None,
) -> DynamicsResult:
    """Iterate Definition 1 until the allocation stabilizes.

    Parameters
    ----------
    damping:
        Fraction of the *old* state retained each step: the update becomes
        ``x <- damping * x + (1 - damping) * PR(x)``.  0 is the paper's raw
        update; any positive value kills bipartite 2-cycles.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    ctx:
        Engine context charged with the instrumentation: update steps land
        on ``counters.dynamics_steps`` and the whole run under a
        ``"dynamics"`` span (the per-step cost stays three vectorized ops
        -- steps are tallied once, after the loop).
    """
    rctx = resolve_context(ctx)
    if g.m == 0:
        raise ConvergenceError("dynamics undefined on an edgeless graph")
    if not (0.0 <= damping <= 1.0):
        raise ValueError(f"damping must be in [0, 1], got {damping}")

    n = g.n
    if rctx.engine == "columnar":
        # Same arrays in the same directed-pair order (the columnar builder
        # preserves _edge_arrays' (u,v),(v,u) emission), but cached on the
        # graph's CSR view, and the float64 weight column is reused when the
        # weights are float-able.  Fraction weights fall back to the same
        # per-element float() conversion as the classic path -- never an
        # object-dtype array.
        cols = ColumnarGraph.from_graph(g)
        src, dst, rev, index = cols.directed_arrays()
        wf = cols.float_weights()
        w = wf if wf is not None else np.asarray([float(x) for x in g.weights])
        deg = np.asarray(cols.indptr[1:] - cols.indptr[:-1], dtype=np.float64)
    else:
        src, dst, rev, index = _edge_arrays(g)
        w = np.asarray([float(x) for x in g.weights])
        deg = np.asarray([g.degree(v) for v in range(n)], dtype=np.float64)

    x = w[src] / deg[src]
    prev = x.copy()
    prev2 = np.full_like(x, np.nan)

    mix = damping > 0

    it = 0
    residual = np.inf
    oscillating = False
    scale = max(1.0, float(np.max(w))) if n else 1.0

    with rctx.span("dynamics"):
        for it in range(1, max_iters + 1):
            util = np.bincount(dst, weights=x, minlength=n)
            safe = util[src] > 0
            ratio = np.zeros_like(x)
            np.divide(x[rev], util[src], out=ratio, where=safe)
            new = np.where(safe, ratio * w[src], x)
            if mix:
                new = (1.0 - damping) * new + damping * x
            prev2, prev = prev, x
            x = new
            residual = float(np.max(np.abs(x - prev)))
            if residual <= tol * scale:
                break
            if it >= 2:
                orbit_gap = float(np.max(np.abs(x - prev2)))
                if orbit_gap <= tol * scale and residual > tol * scale:
                    oscillating = True
                    break
    rctx.counters.dynamics_steps += it

    converged = residual <= tol * scale
    if oscillating:
        x_report = 0.5 * (x + prev)
    else:
        x_report = x
    if not converged and not oscillating and raise_on_failure:
        raise ConvergenceError(
            f"proportional response did not settle in {it} iterations",
            signature=instance_signature(g),
            residual=residual,
            iterations=it,
        )
    utilities = np.bincount(dst, weights=x_report, minlength=n)
    return DynamicsResult(
        converged=converged,
        oscillating=oscillating,
        iterations=it,
        utilities=utilities,
        x=x_report,
        edge_index=index,
        residual=residual,
    )


def dynamics_utilities(g: WeightedGraph, **kwargs) -> np.ndarray:
    """Convenience wrapper returning only the utility vector."""
    return proportional_response(g, **kwargs).utilities
