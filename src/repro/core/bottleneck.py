"""Bottleneck decomposition (Definition 2) via exact parametric min-cut.

The maximal bottleneck ``argmin_S alpha(S)`` is computed by Dinkelbach
iteration on the parametric function ``g_lambda(S) = w(Gamma(S)) - lambda *
w(S)``:

1. start at ``lambda = alpha(V) <= 1``;
2. find the *maximal* minimizer ``S`` of ``g_lambda`` (a min cut in a
   bipartite auxiliary network, maximal source side);
3. if ``alpha(S) == lambda`` stop -- ``lambda`` is the minimum ratio and
   ``S`` the maximal bottleneck; otherwise set ``lambda = alpha(S)`` and
   repeat.

Why this yields Definition 2's object:

* ``S -> w(Gamma(S))`` is a coverage function, hence submodular, so
  ``g_lambda`` is submodular and its minimizers form a lattice; at
  ``lambda = alpha*`` the minimizers of value 0 are exactly the bottlenecks
  (plus harmless zero-weight freeloaders), so the *maximal* minimizer is the
  unique maximal bottleneck (the union of all bottlenecks).
* each Dinkelbach step strictly decreases ``lambda`` through values of the
  form ``w(A)/w(B)`` with ``A, B`` subset sums -- a finite set -- so exact
  (`Fraction`) arithmetic terminates with the exact ratio.

The auxiliary network for ``min_S g_lambda(S)`` has nodes ``{s, t}``, a left
copy ``u_L`` and right copy ``v_R`` of the active vertices, arcs
``s -> u_L`` with capacity ``lambda * w_u``, ``v_R -> t`` with capacity
``w_v``, and ``u_L -> v_R`` with infinite capacity for ``v in Gamma(u)``.
Choosing the left source-side set ``S`` forces ``Gamma(S)`` right vertices
into the source side, so the cut value is ``lambda * w(V \\ S) +
w(Gamma(S)) = lambda * w(V) + g_lambda(S)``; min cut therefore locates the
minimizer, and the maximal min cut (complement of the residual coreachable
set of ``t``) the maximal minimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..engine import EngineContext, decomposition_key, instance_signature, resolve_context
from ..exceptions import ConvergenceError, DecompositionError
from ..flow import FlowNetwork, max_source_side
from ..graphs import WeightedGraph, check_no_isolated
from ..numeric import Backend, FLOAT, Scalar

__all__ = [
    "BottleneckPair",
    "BottleneckDecomposition",
    "maximal_bottleneck",
    "bottleneck_decomposition",
    "parametric_network",
]

_MAX_DINKELBACH_ITERS = 10_000


@dataclass(frozen=True)
class BottleneckPair:
    """One pair ``(B_i, C_i)`` of the decomposition, in original vertex ids.

    ``alpha = w(C_i) / w(B_i)``; ``index`` is the 1-based ``i`` of
    Definition 2 (pairs are produced in increasing alpha order,
    Proposition 3-(1)).
    """

    index: int
    B: frozenset[int]
    C: frozenset[int]
    alpha: Scalar

    @property
    def is_unit(self) -> bool:
        """True for the terminal ``alpha = 1`` pair where ``B_k = C_k``."""
        return self.B == self.C

    def members(self) -> frozenset[int]:
        return self.B | self.C


class BottleneckDecomposition:
    """The full decomposition ``{(B_1, C_1), ..., (B_k, C_k)}`` of a graph.

    Exposes per-vertex lookups used throughout the paper: the pair
    containing ``v``, its alpha-ratio ``alpha_v``, and its class (Definition
    4; vertices of a terminal ``B_k = C_k`` pair are *both* B and C class).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        pairs: Sequence[BottleneckPair],
        backend: Backend,
    ) -> None:
        self.graph = graph
        self.pairs: tuple[BottleneckPair, ...] = tuple(pairs)
        self.backend = backend
        self._pair_of: dict[int, BottleneckPair] = {}
        for p in self.pairs:
            for v in p.members():
                if v in self._pair_of:
                    raise DecompositionError(
                        f"vertex {v} appears in two pairs ({self._pair_of[v].index}, {p.index})"
                    )
                self._pair_of[v] = p
        missing = set(graph.vertices()) - set(self._pair_of)
        if missing:
            raise DecompositionError(f"vertices {sorted(missing)} not covered by any pair")

    # -- lookups ---------------------------------------------------------
    @property
    def k(self) -> int:
        return len(self.pairs)

    def pair_of(self, v: int) -> BottleneckPair:
        return self._pair_of[v]

    def alpha_of(self, v: int) -> Scalar:
        """``alpha_v`` in the paper's notation."""
        return self._pair_of[v].alpha

    def in_B(self, v: int) -> bool:
        """B class membership (Definition 4)."""
        return v in self._pair_of[v].B

    def in_C(self, v: int) -> bool:
        """C class membership (Definition 4)."""
        return v in self._pair_of[v].C

    def alphas(self) -> list[Scalar]:
        return [p.alpha for p in self.pairs]

    def __iter__(self):
        return iter(self.pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"(B{p.index}={sorted(p.B)}, C{p.index}={sorted(p.C)}, a={p.alpha})"
            for p in self.pairs
        )
        return f"BottleneckDecomposition[{parts}]"


# ---------------------------------------------------------------------------
# parametric machinery
# ---------------------------------------------------------------------------

def parametric_network(
    g: WeightedGraph,
    active: Sequence[int],
    lam: Scalar,
    backend: Backend,
) -> tuple[FlowNetwork, list[int]]:
    """Auxiliary bipartite network for ``min_S g_lambda(S)`` on ``active``.

    Returns the network plus the active vertex list in left-copy order
    (left copy of ``verts[i]`` is node ``2 + i``, right copy ``2 + nh + i``).
    Exposed so the cross-solver property tests can exercise exactly the
    networks the decomposition solves.
    """
    verts = list(active)
    pos = {v: i for i, v in enumerate(verts)}
    nh = len(verts)
    s, t = 0, 1

    w = [backend.scalar(g.weights[v]) for v in verts]
    total_w = backend.total(w)
    if backend.is_exact:
        inf_cap = (lam + 1) * total_w + 1
    else:
        inf_cap = float("inf")

    net = FlowNetwork(2 + 2 * nh)
    active_set = set(verts)
    for i, v in enumerate(verts):
        net.add_edge(s, 2 + i, lam * w[i])
        net.add_edge(2 + nh + i, t, w[i])
        for u in g.neighbors(v):
            if u in active_set:
                net.add_edge(2 + i, 2 + nh + pos[u], inf_cap)
    return net, verts


def _instantiate_parametric(
    g: WeightedGraph,
    active: Sequence[int],
    lam: Scalar,
    backend: Backend,
    ctx: EngineContext,
    w: list | None = None,
) -> tuple[FlowNetwork, list[int]]:
    """Columnar-engine twin of :func:`parametric_network`.

    Same arc order and the same capacity *expressions* (``lam * w[i]``,
    ``w[i]``, backend-dependent inf cap), so the resulting network is
    bit-identical to the classically built one -- only the per-arc
    validation and list regrowth are skipped, via a structure template
    cached on the context.  The exact backend's inf cap depends on
    ``lam``, which is why capacities are recomputed per instantiation
    while only the arc structure is frozen.

    ``w`` optionally passes the already-scalared active weights (in
    ``active`` order); the Dinkelbach loop hoists it out of its
    per-lambda iterations.
    """
    verts = list(active)
    tpl = ctx.parametric_template(g, verts)
    if w is None:
        w = [backend.scalar(g.weights[v]) for v in verts]
    if backend.is_exact:
        inf_cap = (lam + 1) * backend.total(w) + 1
        zero = inf_cap - inf_cap
    else:
        inf_cap = float("inf")
        zero = 0.0
    return tpl.instantiate([lam * wi for wi in w], w, inf_cap, zero), verts


def _maximal_minimizer(
    g: WeightedGraph,
    active: Sequence[int],
    lam: Scalar,
    backend: Backend,
    ctx: EngineContext,
    w: list | None = None,
) -> set[int]:
    """Maximal minimizer of ``g_lambda`` inside the induced graph on ``active``.

    Returns original vertex ids.
    """
    if ctx.engine == "columnar":
        net, verts = _instantiate_parametric(g, active, lam, backend, ctx, w)
    else:
        net, verts = parametric_network(g, active, lam, backend)
    nh = len(verts)
    s, t = 0, 1

    # Flow-level tolerance is exactly zero even for floats: the solvers'
    # pushes zero the bottleneck arc *exactly* (c - c == 0.0 in IEEE), each
    # augmentation saturates an arc, and phase count is capacity-independent,
    # so termination does not need a tolerance -- while any positive
    # tolerance would swallow genuinely tiny capacities (instances here span
    # 12+ orders of magnitude) and corrupt the extracted cut.  Any registered
    # solver works here: only the min *cut* is read back, which is valid even
    # for push-relabel's maximum-preflow residuals (see engine.registry).
    ctx.max_flow(net, s, t, zero_tol=ctx.zero_tol)
    side = max_source_side(net, t, zero_tol=ctx.zero_tol)
    return {verts[i] for i in range(nh) if 2 + i in side}


def maximal_bottleneck(
    g: WeightedGraph,
    active: Sequence[int] | None = None,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
    lam0: Scalar | None = None,
) -> tuple[frozenset[int], Scalar]:
    """Maximal bottleneck of the induced graph on ``active`` (Definition 2).

    Returns ``(B, alpha_min)`` in original vertex ids.  Requires the induced
    graph to have positive total weight and some edge structure (the callers
    guarantee no isolated positive-weight vertices; see module notes in
    ``bottleneck_decomposition``).

    ``lam0`` optionally warm-starts the Dinkelbach descent.  Soundness: the
    caller must pass an *achieved ratio* ``alpha(H)`` of some subset ``H``
    of ``active`` with ``w(H) > 0`` -- any such value is ``>= alpha*`` by
    definition of the minimum, and the descent from any ``lambda >=
    alpha*`` converges to the same maximal minimizer with the same
    recomputed alpha.  A seed below the cold ``alpha(V_i)`` skips the
    iterations the cold start would spend descending to it.  If float
    rounding ever lands the seed a hair *below* ``alpha*`` (possible when
    the subset ratio was computed on a nearby weight vector), the first
    parametric step returns an empty or degenerate minimizer and the
    descent restarts from the cold ``lambda_0`` -- so a bad seed costs one
    wasted solve, never a wrong answer.
    """
    ctx = resolve_context(ctx)
    if active is None:
        active = list(g.vertices())
    active = list(active)
    if not active:
        raise DecompositionError("maximal_bottleneck on an empty vertex set")

    active_set = set(active)
    w_active = g.weight_of(active, backend)
    if w_active == 0:
        raise DecompositionError("active set has zero total weight; alpha undefined")

    # lambda_0 = alpha(V_i) (Gamma within the induced graph)
    gamma_all = g.neighborhood(active) & active_set
    cold_lam = g.weight_of(gamma_all, backend) / w_active
    warm = lam0 is not None and lam0 < cold_lam
    lam = lam0 if warm else cold_lam
    if warm:
        ctx.counters.warm_starts += 1

    # Termination uses *exact* scalar comparison (Fraction or the computed
    # double), not the backend's structural tolerance: lambda strictly
    # decreases through achieved ratio values -- a finite set for Fractions
    # and for IEEE doubles alike -- so the loop provably terminates, and
    # stopping early at a tolerance would hand back a set that is not a
    # bottleneck (its allocation flow would not saturate).
    prev: frozenset[int] | None = None
    prev_lam = lam
    # The active weights (scalared once, in `active` order) are constant
    # across the descent; only lambda moves between iterations.
    w_cols = (
        [backend.scalar(g.weights[v]) for v in active]
        if ctx.engine == "columnar"
        else None
    )
    for _ in range(_MAX_DINKELBACH_ITERS):
        ctx.counters.dinkelbach_iterations += 1
        with ctx.span("dinkelbach"):
            S = _maximal_minimizer(g, active, lam, backend, ctx, w_cols)
        if not S:
            if warm and prev is None:
                # The warm seed rounded below the true minimum ratio, so no
                # nonempty set reaches g_lambda <= 0.  Restart cold rather
                # than returning: from here on the trajectory is exactly the
                # cold-start one.
                warm = False
                lam = prev_lam = cold_lam
                continue
            # Float-only corner: the last ratio was rounded a hair below the
            # true minimum, so at this lambda no nonempty set reaches
            # g_lambda <= 0.  The previous iterate achieved alpha == lambda
            # to machine precision and is the bottleneck.  (Exact backend
            # can never get here: lambda >= alpha* is maintained exactly.)
            if backend.is_exact:
                raise DecompositionError(
                    "parametric step returned an empty minimizer with exact "
                    "arithmetic; this indicates a bug"
                )
            return (prev if prev is not None else frozenset(active)), lam
        wS = g.weight_of(S, backend)
        if wS == 0:
            if warm and prev is None:
                # Same degenerate-seed escape as above: never let a warm
                # seed change which terminal set a cold start would return.
                warm = False
                lam = prev_lam = cold_lam
                continue
            # all-zero-weight minimizer: only possible when the remaining
            # graph is degenerate; treat as terminal with the current lambda
            return frozenset(S), lam
        a = g.weight_of(g.neighborhood(S) & active_set, backend) / wS
        if a >= lam:
            return frozenset(S), a
        prev_lam, lam = lam, a
        prev = frozenset(S)
    # Typed and retryable: the supervisor re-runs the cell and, if the
    # failure is deterministic, escalates it to the exact backend (where the
    # strict lambda descent through a finite ratio set provably terminates).
    raise ConvergenceError(
        f"Dinkelbach iteration did not converge in {_MAX_DINKELBACH_ITERS} steps",
        signature=instance_signature(g, backend),
        residual=abs(float(prev_lam) - float(lam)),
        iterations=_MAX_DINKELBACH_ITERS,
    )


def bottleneck_decomposition(
    g: WeightedGraph,
    backend: Backend | None = None,
    ctx: EngineContext | None = None,
    hint: BottleneckDecomposition | None = None,
) -> BottleneckDecomposition:
    """Full bottleneck decomposition of ``g`` (Definition 2).

    Iteratively extracts the maximal bottleneck ``B_i`` of ``G_i`` and its
    in-``G_i`` neighborhood ``C_i``, removing both, until no vertices
    remain.  Results are memoized in ``ctx``'s decomposition cache: the
    decomposition is a pure function of ``(structure, weights, backend)``,
    and the Sybil sweeps re-request the same instance many times.

    ``hint`` optionally passes a decomposition of a *nearby* instance (same
    vertex ids, different weights -- e.g. the previous candidate split of a
    best-response sweep).  Each stage then seeds its Dinkelbach descent
    with the achieved ratio of the hint's stage-``i`` bottleneck restricted
    to the current active set, computed on **this** graph's weights -- a
    valid warm start per :func:`maximal_bottleneck`'s contract, so the
    result is the same as without the hint; only the iteration count
    changes.

    Zero-weight corner cases: a zero-weight vertex whose remaining
    neighbors all sit in the current ``C_i`` is absorbed into ``B_i`` for
    free by the *maximal* min cut, so (in particular) the paper's Case C-2
    split vertex ``v^1`` with ``w = 0`` lands in a B class as Lemma 14
    asserts.  A degenerate all-zero component is emitted as a terminal pair
    with ``alpha`` equal to the last parametric value.
    """
    ctx = resolve_context(ctx)
    backend = ctx.resolve_backend(backend)
    key = decomposition_key(g, backend)
    cached = ctx.cache.get(key)
    if cached is not None:
        ctx.counters.cache_hits += 1
        return cached
    ctx.counters.cache_misses += 1

    with ctx.counters.timed("decompose"), ctx.span("decompose"):
        check_no_isolated(g)
        if g.total_weight(backend) == 0:
            raise DecompositionError("graph has zero total weight; sharing is degenerate")

        pairs: list[BottleneckPair] = []
        active = sorted(g.vertices())
        index = 1
        hint_pairs = hint.pairs if hint is not None else ()
        while active:
            active_set = set(active)
            w_active = g.weight_of(active, backend)
            if w_active == 0:
                # leftover zero-weight vertices: terminal degenerate pair; they
                # give and receive nothing.  Keep alpha of the previous pair so
                # the monotone alphas invariant (Prop 3-(1)) is not violated by
                # a synthetic value.
                B = frozenset(active)
                alpha = pairs[-1].alpha if pairs else backend.scalar(1)
                pairs.append(BottleneckPair(index, B, B, alpha))
                break
            lam0 = None
            if index <= len(hint_pairs):
                H = set(v for v in sorted(hint_pairs[index - 1].B)
                        if v in active_set)
                if H:
                    wH = g.weight_of(H, backend)
                    if wH != 0:
                        lam0 = g.weight_of(
                            g.neighborhood(H) & active_set, backend) / wH
            B, alpha = maximal_bottleneck(g, active, backend, ctx, lam0=lam0)
            C = frozenset(g.neighborhood(B) & active_set)
            members = B | C
            if not members:
                raise DecompositionError("empty pair extracted; decomposition stuck")
            pairs.append(BottleneckPair(index, frozenset(B), C, alpha))
            active = sorted(active_set - members)
            index += 1
        decomp = BottleneckDecomposition(g, pairs, backend)
    ctx.counters.decompositions += 1
    # Audit before caching: a decomposition that fails its invariants must
    # never be served from the cache on a later request.
    ctx.audit_decomposition(g, decomp)
    ctx.cache.put(key, decomp)
    return decomp
