"""BD Allocation Mechanism (Definition 5).

Given the bottleneck decomposition, the equilibrium allocation is assembled
pair by pair from max flows:

* pair with ``alpha_i < 1``: network ``s -> u`` (cap ``w_u``, ``u in B_i``),
  ``v -> t`` (cap ``w_v / alpha_i``, ``v in C_i``), infinite arcs on the
  *actual graph edges* between ``B_i`` and ``C_i``.  The bottleneck property
  guarantees the max flow saturates both sides; ``x_uv = f_uv`` and
  ``x_vu = alpha_i * f_uv``.

  (Definition 5 writes ``E_i = B_i x C_i``, but a complete-bipartite reading
  would let non-adjacent agents exchange resource; following Wu-Zhang we use
  the edges of ``G``.)

* terminal pair ``B_k = C_k`` with ``alpha_k = 1``: bipartite double cover
  ``(B_k, B_k'; (u, v') iff (u,v) in E[B_k])`` with unit-ratio capacities;
  ``x_uv = f_{uv'}``.

* every other edge carries zero.

Degenerate corner: a pair with ``alpha_i = 0`` (possible only when every
``C_i`` vertex has zero weight, e.g. after an extreme Sybil split) uses
infinite sink capacities; B-side saturation still pins down utilities and
the C side returns nothing.

Utilities are always read off the realized allocation ``X`` (never from the
closed form (2)), so zero-weight corner cases are well defined; Proposition
6's formula is *checked* against X by ``tests`` and the EXP-CNV experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..engine import EngineContext, resolve_context
from ..exceptions import AllocationError, InfeasibleFlowError
from ..flow import FlowNetwork, assert_valid_flow
from ..graphs import WeightedGraph
from ..numeric import Backend, FLOAT, Scalar
from .bottleneck import BottleneckDecomposition, bottleneck_decomposition

__all__ = [
    "Allocation",
    "bd_allocation",
    "certified_endpoint_utilities",
    "endpoint_utilities",
]


@dataclass(frozen=True)
class Allocation:
    """A resource allocation ``X = {x_vu}`` on the directed edges of ``G``.

    ``x`` maps ordered pairs ``(v, u)`` (edge of G) to the amount vertex
    ``v`` hands to ``u``; absent keys mean zero.  ``utilities[v]`` is
    ``U_v(X) = sum_u x_uv``.
    """

    graph: WeightedGraph
    x: Mapping[tuple[int, int], Scalar]
    utilities: tuple[Scalar, ...]

    def sent(self, v: int) -> Scalar:
        """Total resource ``v`` gives away."""
        total = 0
        for u in self.graph.neighbors(v):
            total = total + self.x.get((v, u), 0)
        return total

    def received(self, v: int) -> Scalar:
        total = 0
        for u in self.graph.neighbors(v):
            total = total + self.x.get((u, v), 0)
        return total

    def check_feasible(self, tol: float = 0.0) -> None:
        """Raise unless X is a feasible allocation: non-negative amounts on
        real edges only, and nobody gives away more than its endowment."""
        g = self.graph
        for (v, u), amount in self.x.items():
            if not g.has_edge(v, u):
                raise AllocationError(f"allocation on non-edge ({v},{u})")
            if amount < -tol:
                raise AllocationError(f"negative allocation {amount!r} on ({v},{u})")
        for v in g.vertices():
            s = self.sent(v)
            if s > g.weights[v] + tol:
                raise AllocationError(
                    f"vertex {v} sends {s!r} > endowment {g.weights[v]!r}"
                )


def _pair_network(
    g: WeightedGraph,
    B: list[int],
    C: list[int],
    sink_caps: list,
    backend: Backend,
    ctx: EngineContext | None = None,
):
    """Build the Definition-5 network for one pair; returns (net, arc map).

    Under the columnar engine the arc structure comes from a context-cached
    template (one per ``(topology, B, C)``); capacities are the same
    expressions as the classic ``add_edge`` build, so the network -- and
    every flow read off it -- is bit-identical either way.
    """
    if ctx is not None and ctx.engine == "columnar":
        tpl, arc_of = ctx.pair_template(g, B, C)
        avals = [backend.scalar(g.weights[u]) for u in B]
        if backend.is_exact:
            inf_cap = backend.total(avals) + 1
            zero = inf_cap - inf_cap
        else:
            inf_cap = math.inf
            zero = 0.0
        return tpl.instantiate(avals, sink_caps, inf_cap, zero), arc_of
    nb, nc = len(B), len(C)
    s, t = 0, 1
    bpos = {v: i for i, v in enumerate(B)}
    cpos = {v: i for i, v in enumerate(C)}
    net = FlowNetwork(2 + nb + nc)
    if backend.is_exact:
        total = backend.total([backend.scalar(g.weights[v]) for v in B])
        inf_cap = total + 1
    else:
        inf_cap = math.inf
    for i, u in enumerate(B):
        net.add_edge(s, 2 + i, backend.scalar(g.weights[u]))
    for j, v in enumerate(C):
        net.add_edge(2 + nb + j, t, sink_caps[j])
    arc_of: dict[tuple[int, int], int] = {}
    for u in B:
        for v in g.neighbors(u):
            if v in cpos and v != u:
                arc = net.add_edge(2 + bpos[u], 2 + nb + cpos[v], inf_cap)
                arc_of[(u, v)] = arc
    return net, arc_of


def _accumulate_pair(
    g: WeightedGraph,
    pair,
    x: dict[tuple[int, int], Scalar],
    backend: Backend,
    zero_tol: float,
    ctx: EngineContext,
) -> None:
    """Solve one pair's Definition-5 network and fold its edges into ``x``.

    Shared verbatim by the full allocation and :func:`endpoint_utilities`;
    allocation edges never cross pairs, so solving any subset of pairs
    yields exactly the corresponding subset of ``x``.
    """
    alpha = pair.alpha
    if pair.is_unit:
        # alpha = 1 terminal pair: bipartite double cover of E[B_k].
        # Any saturating flow yields the right utilities (U_v = w_v), but
        # the proportional-response *fixed point* additionally needs
        # x_uv = x_vu on a unit pair (the response of u to v must echo
        # v's gift exactly when alpha = 1).  Max flows are not unique --
        # e.g. a uniform triangle admits a directed circulation -- so we
        # symmetrize: the average of a saturating flow and its reverse is
        # again saturating (capacities are symmetric) and is symmetric.
        members = sorted(pair.B)
        caps = [backend.scalar(g.weights[v]) for v in members]
        net, arc_of = _pair_network(g, members, members, caps, backend, ctx)
        _solve_and_check(net, g, members, members, caps, backend, zero_tol,
                         pair.index, ctx=ctx)
        two = backend.scalar(2)
        for (u, v), arc in arc_of.items():
            f = (net.flow_on(arc) + net.flow_on(arc_of[(v, u)])) / two
            if f != 0:
                x[(u, v)] = f
        return

    B = sorted(pair.B)
    C = sorted(pair.C)
    if backend.is_zero(alpha):
        caps = [math.inf if not backend.is_exact else _big(g, backend) for _ in C]
    else:
        caps = [backend.scalar(g.weights[v]) / alpha for v in C]
    net, arc_of = _pair_network(g, B, C, caps, backend, ctx)
    _solve_and_check(
        net, g, B, C, caps, backend, zero_tol, pair.index,
        check_sink=not backend.is_zero(alpha), ctx=ctx,
    )
    for (u, v), arc in arc_of.items():
        f = net.flow_on(arc)
        if f != 0:
            x[(u, v)] = f
            back = alpha * f
            if back != 0:
                x[(v, u)] = back


def bd_allocation(
    g: WeightedGraph,
    decomp: BottleneckDecomposition | None = None,
    backend: Backend | None = None,
    ctx: EngineContext | None = None,
) -> Allocation:
    """Compute the BD allocation of ``g`` (Definition 5).

    ``decomp`` may be passed to reuse an existing decomposition; it must
    have been computed with the same backend.
    """
    ctx = resolve_context(ctx)
    backend = ctx.resolve_backend(backend)
    if decomp is None:
        decomp = bottleneck_decomposition(g, backend, ctx)
    x: dict[tuple[int, int], Scalar] = {}
    # Zero flow tolerance even for floats (see bottleneck._maximal_minimizer:
    # the solvers saturate arcs exactly); the backend tol only enters the
    # final saturation comparison.
    zero_tol = ctx.zero_tol

    ctx.counters.allocations += 1
    with ctx.counters.timed("allocate"), ctx.span("allocate"):
        for pair in decomp.pairs:
            _accumulate_pair(g, pair, x, backend, zero_tol, ctx)

        utilities = []
        for v in g.vertices():
            total = backend.scalar(0)
            for u in g.neighbors(v):
                total = total + x.get((u, v), 0)
            utilities.append(total)
    alloc = Allocation(graph=g, x=x, utilities=tuple(utilities))
    ctx.audit_allocation(g, decomp, alloc)
    return alloc


def endpoint_utilities(
    g: WeightedGraph,
    decomp: BottleneckDecomposition,
    vertices,
    backend: Backend | None = None,
    ctx: EngineContext | None = None,
) -> tuple[Scalar, ...]:
    """Utilities of just ``vertices`` under the BD allocation.

    Solves only the pairs containing the requested vertices.  This is
    bit-identical to reading the same entries off :func:`bd_allocation`:
    the pair networks are independent and allocation edges never cross
    pairs, so every ``x`` entry that feeds ``U_v`` comes from ``v``'s own
    pair, and the per-vertex accumulation below walks neighbors in the
    same order over the same scalars.

    This is the best-response fast path (the attacker only needs
    ``U_{v1} + U_{v2}``); it deliberately does *not* construct an
    :class:`Allocation` and does not fire the allocation audit hook -- a
    partial ``x`` would be flagged as infeasible -- so callers must use
    :func:`bd_allocation` whenever an auditor is attached.  Saturation of
    the solved pairs is still checked (``_solve_and_check`` raises
    :class:`InfeasibleFlowError` exactly as in the full allocation).
    """
    ctx = resolve_context(ctx)
    backend = ctx.resolve_backend(backend)
    zero_tol = ctx.zero_tol
    needed = []
    seen: set[int] = set()
    for v in vertices:
        p = decomp.pair_of(v)
        if p.index not in seen:
            seen.add(p.index)
            needed.append(p)
    needed.sort(key=lambda p: p.index)

    x: dict[tuple[int, int], Scalar] = {}
    ctx.counters.allocations += 1
    with ctx.counters.timed("allocate"), ctx.span("allocate"):
        for pair in needed:
            _accumulate_pair(g, pair, x, backend, zero_tol, ctx)
        utilities = []
        for v in vertices:
            total = backend.scalar(0)
            for u in g.neighbors(v):
                total = total + x.get((u, v), 0)
            utilities.append(total)
    return tuple(utilities)


def certified_endpoint_utilities(
    g: WeightedGraph,
    decomp: BottleneckDecomposition,
    hint: BottleneckDecomposition,
    vertices,
    backend: Backend | None = None,
    ctx: EngineContext | None = None,
) -> tuple[Scalar, ...]:
    """Certify a *reconstructed* ``decomp`` and return ``vertices``'
    utilities.

    ``decomp`` must come from
    :func:`repro.core.incremental.reconstruct_decomposition` with ``hint``
    a ground-truth (fully solved) decomposition of an instance differing
    from ``g`` only in the weights of ``vertices``.  The certificate for a
    reconstruction is that every pair's Definition-5 network saturates
    (plus the structural checks reconstruction already ran); this variant
    evaluates part of that certificate analytically instead of by flow:

    * a pair whose ``B`` and ``C`` avoid ``vertices`` and whose alpha is
      bit-equal to ``hint``'s has a network *bit-identical* to the hint
      pair's (the network is a function of the pair's member weights and
      alpha only).  Saturation of a true decomposition's pairs is a
      theorem, and the solver is deterministic, so re-running an identical
      network cannot change the verdict -- the check is skipped.
    * every other pair (weights or alpha moved, or an exact-backend
      alpha-0 pair whose sink caps depend on the total weight) is solved
      and saturation-checked exactly as in :func:`bd_allocation`, raising
      :class:`InfeasibleFlowError` on failure.

    Every ``x`` entry feeding a requested vertex's utility lives on an
    edge inside a pair containing that vertex -- always in the solved set
    -- so the returned utilities are bit-identical to the full
    allocation's.  Like :func:`endpoint_utilities` this fires no audit
    hook; callers must not use it with an auditor attached.
    """
    ctx = resolve_context(ctx)
    backend = ctx.resolve_backend(backend)
    zero_tol = ctx.zero_tol
    touched = set(vertices)
    x: dict[tuple[int, int], Scalar] = {}
    ctx.counters.allocations += 1
    with ctx.counters.timed("allocate"), ctx.span("allocate"):
        for pair, hp in zip(decomp.pairs, hint.pairs):
            unchanged = (
                pair.alpha == hp.alpha
                and touched.isdisjoint(pair.B)
                and touched.isdisjoint(pair.C)
                and not (backend.is_exact and backend.is_zero(pair.alpha))
            )
            if unchanged:
                continue
            _accumulate_pair(g, pair, x, backend, zero_tol, ctx)
        utilities = []
        for v in vertices:
            total = backend.scalar(0)
            for u in g.neighbors(v):
                total = total + x.get((u, v), 0)
            utilities.append(total)
    return tuple(utilities)


def _big(g: WeightedGraph, backend: Backend):
    return g.total_weight(backend) + 1


def _solve_and_check(
    net: FlowNetwork,
    g: WeightedGraph,
    B: list[int],
    C: list[int],
    sink_caps: list,
    backend: Backend,
    zero_tol: float,
    pair_index: int,
    check_sink: bool = True,
    ctx: EngineContext | None = None,
) -> None:
    """Max-flow the pair network and assert Definition 5's saturation.

    Definition 5 reads the realized per-arc flows back out of the residual
    state, so ``need_arc_flows=True``: a value-only solver (push-relabel)
    is transparently replaced by Dinic for these solves.
    """
    ctx = resolve_context(ctx)
    value = ctx.max_flow(net, 0, 1, zero_tol=zero_tol, need_arc_flows=True)
    # Verification tolerance: reverse-arc flow accumulation can overshoot the
    # forward capacity by a few ulps when flow arrives over several paths.
    if backend.is_exact:
        verify_tol = 0.0
    else:
        biggest = max((float(c) for c in net.orig_cap if not math.isinf(c)), default=1.0)
        verify_tol = 1e-12 * max(1.0, biggest)
    assert_valid_flow(net, 0, 1, tol=verify_tol)
    want = backend.total([backend.scalar(g.weights[u]) for u in B])

    def matches(a, b) -> bool:
        # relative comparison so large endowments do not defeat the float tol
        if backend.is_exact:
            return a == b
        scale = max(1.0, abs(float(b)))
        return abs(float(a) - float(b)) <= backend.tol * scale * 16

    if not matches(value, want):
        raise InfeasibleFlowError(
            f"pair {pair_index}: max flow {value!r} does not saturate the B side {want!r}; "
            "the claimed set is not a bottleneck"
        )
    if check_sink:
        want_sink = backend.total(sink_caps)
        if not matches(value, want_sink):
            raise InfeasibleFlowError(
                f"pair {pair_index}: flow {value!r} does not saturate the C side {want_sink!r}"
            )
