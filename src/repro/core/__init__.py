"""Core machinery: alpha-ratios, bottleneck decomposition, BD allocation,
vertex classes, and proportional response dynamics."""

from .alpha import alpha_ratio, alpha_within, pair_alpha
from .bottleneck import (
    BottleneckDecomposition,
    BottleneckPair,
    bottleneck_decomposition,
    maximal_bottleneck,
)
from .bruteforce import (
    brute_force_decomposition,
    brute_force_maximal_bottleneck,
    brute_force_min_alpha,
)
from .classes import VertexClass, classify, refine_unit_pair
from .allocation import (
    Allocation,
    bd_allocation,
    certified_endpoint_utilities,
    endpoint_utilities,
)
from .incremental import (
    reconstruct_decomposition,
    topology_fingerprint,
    warm_decomposition,
)
from .utilities import closed_form_utilities, closed_form_utility
from .dynamics import DynamicsResult, dynamics_utilities, proportional_response
from .fixedpoint import FixedPointReport, assert_fixed_point, fixed_point_residual
from .async_dynamics import AsyncResult, async_proportional_response

__all__ = [
    "alpha_ratio",
    "alpha_within",
    "pair_alpha",
    "BottleneckDecomposition",
    "BottleneckPair",
    "bottleneck_decomposition",
    "maximal_bottleneck",
    "brute_force_decomposition",
    "brute_force_maximal_bottleneck",
    "brute_force_min_alpha",
    "VertexClass",
    "classify",
    "refine_unit_pair",
    "Allocation",
    "bd_allocation",
    "certified_endpoint_utilities",
    "endpoint_utilities",
    "reconstruct_decomposition",
    "topology_fingerprint",
    "warm_decomposition",
    "closed_form_utilities",
    "closed_form_utility",
    "DynamicsResult",
    "dynamics_utilities",
    "proportional_response",
    "FixedPointReport",
    "assert_fixed_point",
    "fixed_point_residual",
    "AsyncResult",
    "async_proportional_response",
]
