"""Asynchronous proportional response: gossip-style update orders.

Definition 1 updates every directed edge simultaneously.  Real P2P swarms
do not tick in lockstep, so this module provides the asynchronous variant:
at each step a random *vertex* wakes up and re-divides its weight among its
neighbors proportionally to what it currently receives from each.  The
fixed points coincide with the synchronous ones (the update condition per
edge is identical), and empirically the async schedule also kills the
bipartite 2-cycles that plague the synchronous raw update -- measured by
the EXP-CNV ablation and this module's tests.

A trace facility records utility snapshots so convergence curves can be
tabulated (the synchronous simulator in :mod:`.dynamics` stays lean).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine import instance_signature
from ..exceptions import ConvergenceError
from ..graphs import WeightedGraph

__all__ = ["AsyncResult", "async_proportional_response"]


@dataclass(frozen=True)
class AsyncResult:
    """Outcome of an asynchronous run."""

    converged: bool
    sweeps: int
    utilities: np.ndarray
    residual: float
    trace: list[tuple[int, float]] = field(default_factory=list)

    def utility_of(self, v: int) -> float:
        return float(self.utilities[v])


def async_proportional_response(
    g: WeightedGraph,
    rng: np.random.Generator,
    max_sweeps: int = 20_000,
    tol: float = 1e-10,
    record_every: int = 0,
    raise_on_failure: bool = False,
) -> AsyncResult:
    """Random-permutation asynchronous proportional response.

    One *sweep* wakes every vertex once in a fresh random order.  A woken
    vertex ``v`` resets its outgoing allocation to
    ``x_vu = (x_uv / U_v) * w_v`` using the *current* incoming amounts --
    the Gauss-Seidel counterpart of Definition 1's Jacobi update.

    Parameters
    ----------
    record_every:
        If positive, snapshot ``(sweep, max |U - U_prev|)`` every that many
        sweeps into ``trace``.
    """
    if g.m == 0:
        raise ConvergenceError("dynamics undefined on an edgeless graph")
    n = g.n
    w = np.asarray([float(x) for x in g.weights])
    # dense-enough representation: dict of dicts would be slow; use arrays
    nbrs = [list(g.neighbors(v)) for v in range(n)]
    x: dict[tuple[int, int], float] = {}
    for v in range(n):
        if nbrs[v]:
            share = w[v] / len(nbrs[v])
            for u in nbrs[v]:
                x[(v, u)] = share

    def utility(v: int) -> float:
        return sum(x.get((u, v), 0.0) for u in nbrs[v])

    scale = max(1.0, float(np.max(w))) if n else 1.0
    trace: list[tuple[int, float]] = []
    prev_util = np.array([utility(v) for v in range(n)])
    residual = np.inf
    sweep = 0
    for sweep in range(1, max_sweeps + 1):
        order = rng.permutation(n)
        for v in order:
            uv = utility(v)
            if uv <= 0:
                continue
            for u in nbrs[v]:
                x[(v, u)] = x.get((u, v), 0.0) / uv * w[v]
        util = np.array([utility(v) for v in range(n)])
        residual = float(np.max(np.abs(util - prev_util)))
        prev_util = util
        if record_every and sweep % record_every == 0:
            trace.append((sweep, residual))
        if residual <= tol * scale:
            break
    converged = residual <= tol * scale
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"async dynamics did not settle in {sweep} sweeps",
            signature=instance_signature(g),
            residual=residual,
            iterations=sweep,
        )
    return AsyncResult(
        converged=converged,
        sweeps=sweep,
        utilities=prev_util,
        residual=residual,
        trace=trace,
    )
