"""Closed-form equilibrium utilities (Proposition 6, equation (2)).

``U_v = w_v * alpha_i`` for ``v in B_i`` and ``U_v = w_v / alpha_i`` for
``v in C_i`` (both reduce to ``w_v`` in a terminal ``alpha = 1`` pair).
These are the quantities the whole incentive analysis runs on; the
allocation module computes utilities from the realized flows instead, and
the test suite requires the two to agree wherever the closed form is
defined (``alpha_i > 0``).
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import DecompositionError
from ..numeric import Backend, Scalar
from .bottleneck import BottleneckDecomposition

__all__ = ["closed_form_utility", "closed_form_utilities"]


def closed_form_utility(decomp: BottleneckDecomposition, v: int) -> Optional[Scalar]:
    """Equation (2) for one vertex; ``None`` when ``alpha = 0`` makes the
    C-class branch undefined (the realized utility is then read from the
    allocation)."""
    pair = decomp.pair_of(v)
    w = decomp.backend.scalar(decomp.graph.weights[v])
    if v in pair.B:
        return w * pair.alpha
    if pair.alpha == 0:
        return None
    return w / pair.alpha


def closed_form_utilities(decomp: BottleneckDecomposition) -> list[Optional[Scalar]]:
    """Equation (2) for every vertex, indexed by vertex id."""
    return [closed_form_utility(decomp, v) for v in decomp.graph.vertices()]
