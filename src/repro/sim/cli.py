"""Command-line entry point: ``repro-sim``.

Usage::

    repro-sim list                          # enumerate scenario presets
    repro-sim run EXP-S1 [--seed 0] [--epochs N] [--json out.json]
    repro-sim replay out.json               # re-run a dump, compare bit-exactly
    repro-sim sweep EXP-S1 --seeds 8        # the same scenario across seeds

``run`` executes one population scenario epoch by epoch and prints a
per-epoch summary (population size, churn, per-strategy best-response
ratio); the exit code is 0 when every empirical incentive ratio stayed
within ``2 + zeta_slack`` and no corpus record was filed, 1 otherwise.
All the ``repro-exp`` engine/runtime flags apply (same semantics):
``--workers`` parallelizes the attack cells, ``--checkpoint`` journals
them for bit-identical resume (the journal fingerprint covers the full
scenario including the adversary-strategy mix, so resuming against a
different scenario refuses loudly), ``--inject-faults`` arms chaos
testing, ``--audit`` attaches the oracle layer to every underlying solve.

``replay`` re-executes the scenario recorded in a ``--json`` dump with
the same seed/epochs and verifies the result is bit-identical -- the
determinism gate CI's chaos leg diffs against a clean run.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..cli import _engine_context
from ..engine import SOLVERS, using_context
from ..exceptions import ReproError
from ..io import dump_result
from ..runtime import START_METHODS, clear_injector
from .runner import run_scenario
from .scenario import SCENARIOS, resolve_scenario

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Adversarial population simulator over the paper's rings "
                    "(EXP-S scenario family)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list scenario presets")

    run_p = sub.add_parser("run", help="run one scenario")
    run_p.add_argument("scenario", help="scenario name, e.g. EXP-S1")
    _common(run_p)

    rep_p = sub.add_parser("replay", help="re-run a --json dump and compare")
    rep_p.add_argument("path", help="JSON file produced by 'run --json'")
    _common(rep_p)

    sw_p = sub.add_parser("sweep", help="one scenario across a seed range")
    sw_p.add_argument("scenario", help="scenario name, e.g. EXP-S1")
    sw_p.add_argument("--seeds", type=int, default=4, metavar="N",
                      help="run seeds 0..N-1 (default 4)")
    _common(sw_p)
    return parser


def _common(p: argparse.ArgumentParser) -> None:
    """The ``repro-exp`` engine/runtime flag set, minus ``--scale`` (a
    scenario's size is its ``--epochs``), so :func:`repro.cli._engine_context`
    can build the context for both CLIs."""
    p.add_argument("--seed", type=int, default=None,
                   help="override the scenario's seed")
    p.add_argument("--epochs", type=int, default=None,
                   help="override the scenario's epoch count")
    p.add_argument("--json", default=None,
                   help="also dump the full structured result to this path")
    p.add_argument("--solver", default=None, choices=sorted(SOLVERS.names()))
    p.add_argument("--no-cache", action="store_true",
                   help="disable the bottleneck-decomposition cache")
    p.add_argument("--engine", default="columnar",
                   choices=["columnar", "classic"])
    p.add_argument("--stats", action="store_true",
                   help="print engine counters after the run")
    p.add_argument("--trace", action="store_true",
                   help="attach a span tracer (breakdown under --stats)")
    p.add_argument("--audit", default="off",
                   choices=["off", "cheap", "differential", "paranoid"],
                   help="attach the oracle audit layer to every solve")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="failure-corpus directory; zeta-bound violations "
                        "file shrunken best_response records here")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="processes for the attack cells (0 = serial)")
    p.add_argument("--timeout", type=float, default=None, metavar="S")
    p.add_argument("--retries", type=int, default=0, metavar="K")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="append-only resume journal for the attack cells; "
                        "fingerprint covers the full scenario incl. the "
                        "strategy mix")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault-injection spec "
                        "(e.g. 'cell:exc@3;worker:kill@5')")
    p.add_argument("--start-method", default="fork", choices=list(START_METHODS))
    p.add_argument("--max-memory", type=float, default=None, metavar="MB")
    p.add_argument("--max-cpu", type=float, default=None, metavar="S")
    p.add_argument("--max-bruteforce", type=int, default=None, metavar="N")


def _execute(args: argparse.Namespace, scenario, seed=None, epochs=None):
    """Build the engine context and run one scenario under it."""
    ctx = _engine_context(args)
    try:
        with using_context(ctx):
            result = run_scenario(
                scenario,
                seed=args.seed if seed is None else seed,
                epochs=args.epochs if epochs is None else epochs,
                ctx=ctx,
                processes=args.workers,
                checkpoint=args.checkpoint,
                corpus_dir=args.corpus,
            )
    finally:
        clear_injector()
    return ctx, result


def _render(result, stats: bool, ctx) -> str:
    s = result.scenario
    bound = 2.0 + s.zeta_slack
    lines = [
        f"== {s.name} seed={s.seed} epochs={result.epochs} "
        f"strategies={s.discriminator()} fingerprint={result.fingerprint}",
        f"{'epoch':>5s} {'n':>4s} {'churn':>12s} {'max zeta':>12s}  outcomes",
    ]
    for r in result.reports:
        churn = f"+{len(r.joined)}/-{len(r.left)}"
        outs = " ".join(
            f"{o.strategy}[a{o.agent_id}]={o.ratio:.6f}" for o in r.outcomes
        )
        lines.append(f"{r.epoch:>5d} {r.n:>4d} {churn:>12s} "
                     f"{r.max_ratio:>12.6f}  {outs}")
    verdict = "PASS" if result.max_ratio <= bound and not result.violations \
        else "FAIL"
    lines.append(
        f"== {verdict}: max zeta {result.max_ratio:.9f} vs bound 2 + "
        f"{s.zeta_slack:g}; violations: {len(result.violations)}"
    )
    for v in result.violations:
        lines.append(f"   VIOLATION epoch {v['epoch']} agent {v['agent_id']} "
                     f"{v['strategy']}: zeta={v['ratio']:.9f}"
                     + (f" -> {v['record']}" if "record" in v else ""))
    if stats:
        from ..experiments.base import format_engine_stats

        lines.append(format_engine_stats(ctx.stats()))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for name, scen in sorted(SCENARIOS.items()):
                print(f"{name:8s} n0={scen.n0:<3d} adversaries={scen.adversaries} "
                      f"churn={scen.churn_rate:g}"
                      f"{' swap' if scen.swap_churn else ''}  "
                      f"[{scen.discriminator()}]")
            return 0

        if args.command == "run":
            ctx, result = _execute(args, args.scenario)
            print(_render(result, args.stats, ctx))
            if args.json:
                dump_result(result.to_dict(), args.json)
            ok = (result.max_ratio <= 2.0 + result.scenario.zeta_slack
                  and not result.violations)
            return 0 if ok else 1

        if args.command == "replay":
            with open(args.path) as f:
                recorded = json.load(f)
            scenario = resolve_scenario(recorded["scenario"])
            ctx, result = _execute(args, scenario,
                                   seed=recorded["seed"],
                                   epochs=recorded["epochs"])
            fresh = result.to_dict()
            mismatches = [
                k for k in ("fingerprint", "max_ratio", "reports")
                if fresh[k] != recorded.get(k)
            ]
            if mismatches:
                print(f"replay MISMATCH on {', '.join(mismatches)} "
                      f"for {recorded['scenario']} seed={recorded['seed']}")
                return 1
            print(f"replay OK: {recorded['scenario']} seed={recorded['seed']} "
                  f"epochs={recorded['epochs']} bit-identical "
                  f"(max zeta {result.max_ratio:.9f})")
            return 0

        if args.command == "sweep":
            worst = 1.0
            violated = 0
            rows = {}
            for seed in range(max(1, args.seeds)):
                ctx, result = _execute(args, args.scenario, seed=seed)
                rows[str(seed)] = result.to_dict()
                worst = max(worst, result.max_ratio)
                violated += len(result.violations)
                print(f"seed {seed:>3d}: max zeta {result.max_ratio:.9f} "
                      f"violations {len(result.violations)}")
            print(f"== sweep {args.scenario}: worst zeta {worst:.9f} over "
                  f"{max(1, args.seeds)} seeds; violations: {violated}")
            if args.json:
                dump_result(rows, args.json)
            return 0 if violated == 0 else 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
