"""Adversarial population simulator (the EXP-S experiment family).

Seeded, epoch-based multi-agent simulation over the paper's rings: a
population of agents joins and leaves a ring over epochs under a churn
schedule while a fixed set of adversaries plays per-scenario strategies
-- solo Sybil splits, misreport-then-Sybil compositions, colluding
neighbor coalitions, and adaptive best responders that warm-start each
epoch's solve from the previous epoch's decomposition.  Every epoch
records the empirical per-agent incentive ratio; anything above the
Theorem 8 bound (plus float slack) files a shrunken failure-corpus
record for oracle replay.

Layering: ``scenario`` (declarative presets) -> ``schedule`` (seeded
churn stream) -> ``population`` (membership and the epoch ring) ->
``coalition`` (strategy evaluators) -> ``runner`` (epoch executor with
serial/parallel/supervised paths and checkpoint resume) -> ``cli``
(``repro-sim``).
"""

from .coalition import AttackOutcome, evaluate_strategy
from .population import Agent, Population
from .runner import (
    EpochReport,
    SimResult,
    reset_warm_store,
    run_scenario,
    scenario_fingerprint,
)
from .scenario import SCENARIOS, STRATEGIES, Scenario, resolve_scenario
from .schedule import ChurnEvent, ChurnSchedule, sim_rng

__all__ = [
    "Agent",
    "AttackOutcome",
    "ChurnEvent",
    "ChurnSchedule",
    "EpochReport",
    "Population",
    "SCENARIOS",
    "STRATEGIES",
    "Scenario",
    "SimResult",
    "evaluate_strategy",
    "reset_warm_store",
    "resolve_scenario",
    "run_scenario",
    "scenario_fingerprint",
    "sim_rng",
]
