"""Adversary strategy evaluation: solo, composed, colluding, adaptive.

One evaluator per strategy name in :data:`repro.sim.scenario.STRATEGIES`.
Every evaluator is a pure function of ``(epoch ring, vertex, scenario
knobs)`` returning a plain-float :class:`AttackOutcome`, so outcomes are
picklable work-cell results and encode bit-exactly into checkpoint
journals.  The empirical per-agent incentive ratio of an epoch is the max
of ``outcome.ratio`` over its adversaries -- the quantity Theorem 8 bounds
by 2 for solo Sybil attacks and the simulator measures for everything
else.

The ``coalition`` evaluator is deliberately built on the post-split index
map (:func:`repro.graphs.cut_index_map`): the splitting partner's cut
relabels every vertex of the ring, so the misreporting partner's utility
*must* be read through the map -- the exact seam the stale-index bugfix in
:mod:`repro.attack.combined` regression-tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attack import best_combined_split, best_multi_split, best_split
from ..attack.misreport import report_weight, utility_of_report
from ..core import bd_allocation, warm_decomposition
from ..engine import EngineContext
from ..exceptions import SimError
from ..graphs import WeightedGraph, cut_index_map, cut_ring_at
from ..numeric import Backend, FLOAT

__all__ = ["AttackOutcome", "evaluate_strategy"]


@dataclass(frozen=True)
class AttackOutcome:
    """One adversary's best response in one epoch, in plain floats."""

    agent_id: int
    vertex: int
    strategy: str
    utility: float
    honest_utility: float
    #: Coalition partners' agent ids (empty for solo strategies).
    partners: tuple[int, ...] = ()

    @property
    def ratio(self) -> float:
        """Empirical incentive ratio; 1 when the honest utility is zero
        (a zero-endowment agent gains nothing by Definition 7's budget)."""
        if self.honest_utility == 0:
            return 1.0
        return self.utility / self.honest_utility

    def to_payload(self) -> dict:
        return {
            "agent_id": self.agent_id,
            "vertex": self.vertex,
            "strategy": self.strategy,
            "utility": self.utility,
            "honest_utility": self.honest_utility,
            "partners": list(self.partners),
        }

    @classmethod
    def from_payload(cls, d: dict) -> "AttackOutcome":
        return cls(
            agent_id=int(d["agent_id"]),
            vertex=int(d["vertex"]),
            strategy=str(d["strategy"]),
            utility=float(d["utility"]),
            honest_utility=float(d["honest_utility"]),
            partners=tuple(int(p) for p in d.get("partners", [])),
        )


def _honest_utility(g: WeightedGraph, v: int, backend: Backend,
                    ctx: EngineContext | None) -> float:
    return float(bd_allocation(g, backend=backend, ctx=ctx).utilities[v])


def _eval_sybil(g, v, grid, backend, ctx) -> tuple[float, float]:
    r = best_split(g, v, grid=grid, backend=backend, ctx=ctx)
    return float(r.utility), float(r.honest_utility)


def _eval_multi(g, v, grid, backend, ctx) -> tuple[float, float]:
    # d_v = 2 on a ring caps the split at two identities; the m-way search
    # still exercises the partition/simplex machinery end to end.
    m = min(2, g.degree(v))
    r = best_multi_split(g, v, m=m, steps=max(4, grid // 2),
                         refine_rounds=2, backend=backend)
    return float(r.utility), float(r.honest_utility)


def _eval_misreport(g, v, grid, backend, ctx) -> tuple[float, float]:
    honest = _honest_utility(g, v, backend, ctx)
    wv = float(g.weights[v])
    best = honest  # x = w_v (truthful) is always in the feasible set
    for t in range(grid):
        x = wv * t / grid
        best = max(best, float(utility_of_report(g, v, x, backend, ctx)))
    return best, honest


def _eval_combined(g, v, grid, backend, ctx) -> tuple[float, float]:
    r = best_combined_split(g, v, grid=min(grid, 16), refine=2, backend=backend)
    return float(r.utility), float(r.honest_utility)


def _eval_coalition(g, v, grid, backend, ctx,
                    partner: int) -> tuple[float, float]:
    """Colluding pair: ``partner`` misreports, ``v`` Sybil-splits.

    Joint utility of the coalition vs its joint honest utility.  The
    partner's post-attack utility is read through the cut's index map --
    the relabelled path has no vertex with the partner's original id
    pointing at the partner.
    """
    if partner == v:
        raise SimError("coalition partner must differ from the splitter")
    alloc = bd_allocation(g, backend=backend, ctx=ctx)
    honest = float(alloc.utilities[v] + alloc.utilities[partner])
    # Backend arithmetic so the split budget w1 + w2 == w_v holds exactly
    # on the Fraction backend (a float lattice would fail its equality).
    wv = backend.scalar(g.weights[v])
    wp = backend.scalar(g.weights[partner])
    imap = cut_index_map(g, v)
    best = honest
    x_steps = 4
    for t in range(1, x_steps + 1):
        x = wp * t / x_steps  # t == x_steps is the truthful report
        reported = report_weight(g, partner, x, backend)
        for i in range(grid + 1):
            w1 = wv * i / grid
            p, v1, v2 = cut_ring_at(reported, v, w1, wv - w1)
            a = bd_allocation(p, backend=backend, ctx=ctx)
            joint = float(a.utilities[v1] + a.utilities[v2]
                          + a.utilities[imap[partner]])
            if joint > best:
                best = joint
    return best, honest


def _eval_adaptive(g, v, grid, backend, ctx, hint) -> tuple[float, float, object]:
    """Warm-start Sybil best response.

    The truthful solve goes through
    :func:`repro.core.warm_decomposition`: with a same-topology hint from
    the previous epoch the decomposition is *reconstructed* (and certified)
    instead of re-solved, and the certified result lands in the context
    cache so the best-response search's own honest-utility solve is a
    cache hit.  Values are bit-identical with or without the hint; only
    the work counters move.  Returns the epoch's decomposition as the next
    epoch's hint.
    """
    decomp = warm_decomposition(g, hint, backend=backend, ctx=ctx)
    r = best_split(g, v, grid=grid, backend=backend, ctx=ctx)
    return float(r.utility), float(r.honest_utility), decomp


def evaluate_strategy(
    g: WeightedGraph,
    vertex: int,
    agent_id: int,
    strategy: str,
    grid: int,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
    partner_vertex: int | None = None,
    partner_agent: int | None = None,
    hint=None,
):
    """Evaluate one adversary cell.

    Returns ``(outcome, hint_out)`` where ``hint_out`` is a decomposition
    to carry into the next epoch (``None`` for every strategy but
    ``adaptive``).
    """
    hint_out = None
    partners: tuple[int, ...] = ()
    if strategy == "sybil":
        utility, honest = _eval_sybil(g, vertex, grid, backend, ctx)
    elif strategy == "multi":
        utility, honest = _eval_multi(g, vertex, grid, backend, ctx)
    elif strategy == "misreport":
        utility, honest = _eval_misreport(g, vertex, grid, backend, ctx)
    elif strategy == "combined":
        utility, honest = _eval_combined(g, vertex, grid, backend, ctx)
    elif strategy == "coalition":
        if partner_vertex is None:
            raise SimError("coalition strategy needs a partner vertex")
        utility, honest = _eval_coalition(g, vertex, grid, backend, ctx,
                                          partner_vertex)
        partners = (partner_agent,) if partner_agent is not None else ()
    elif strategy == "adaptive":
        utility, honest, hint_out = _eval_adaptive(g, vertex, grid, backend,
                                                   ctx, hint)
    else:
        raise SimError(f"unknown strategy {strategy!r}")
    outcome = AttackOutcome(
        agent_id=agent_id, vertex=vertex, strategy=strategy,
        utility=utility, honest_utility=honest, partners=partners,
    )
    return outcome, hint_out
