"""The agent population and its epoch ring.

A :class:`Population` is an ordered list of agents; the ring instance of
an epoch places them on a cycle in insertion order (joins append at the
"end" of the ring, next to agent 0 -- a deterministic convention, so the
epoch graph is a pure function of the membership history).  Agent ids are
*persistent* across epochs while ring vertex indices are positional and
reshuffle whenever membership changes -- precisely the id/index seam the
checkpoint keys and attack index maps have to be careful about, so the
translation lives here and nowhere else.

Role assignment follows the gasper-attack convention: the first
``adversaries`` agents of the initial population are the adversarial ones
(``is_adversarial(i) = i < F``), with strategies cycling the scenario's
mix; joins are always honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import SimError
from ..graphs import WeightedGraph, ring
from .schedule import ChurnEvent, sim_rng

__all__ = ["Agent", "Population"]

_TAG_INIT = 0


@dataclass(frozen=True)
class Agent:
    """One participant; ``strategy`` is ``None`` for honest agents."""

    agent_id: int
    weight: float
    strategy: Optional[str] = None

    @property
    def adversarial(self) -> bool:
        return self.strategy is not None


class Population:
    """Ordered agent set; immutable-by-convention (``apply`` returns new)."""

    def __init__(self, agents: list[Agent], next_id: int) -> None:
        self.agents: tuple[Agent, ...] = tuple(agents)
        self.next_id = next_id
        ids = [a.agent_id for a in self.agents]
        if len(set(ids)) != len(ids):
            raise SimError(f"duplicate agent ids in population: {ids}")

    @classmethod
    def initial(cls, scenario) -> "Population":
        """The epoch-0 population: ``n0`` agents, first ``adversaries`` of
        them adversarial, weights drawn from the scenario distribution."""
        from .schedule import ChurnSchedule

        sched = ChurnSchedule(scenario)
        rng = sim_rng(scenario.seed, _TAG_INIT)
        agents = []
        for i in range(scenario.n0):
            strategy = (
                scenario.strategy_of(i) if i < scenario.adversaries else None
            )
            agents.append(Agent(agent_id=i, weight=sched.draw_weight(rng),
                                strategy=strategy))
        return cls(agents, next_id=scenario.n0)

    # -- membership -------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.agents)

    def honest_ids(self) -> list[int]:
        return [a.agent_id for a in self.agents if not a.adversarial]

    def adversaries(self) -> list[tuple[int, Agent]]:
        """``(vertex_index, agent)`` for every adversary, in ring order."""
        return [(i, a) for i, a in enumerate(self.agents) if a.adversarial]

    def vertex_of(self, agent_id: int) -> int:
        for i, a in enumerate(self.agents):
            if a.agent_id == agent_id:
                return i
        raise SimError(f"agent {agent_id} is not in the population")

    def apply(self, event: ChurnEvent) -> "Population":
        """The population after one churn event (leaves, then joins)."""
        leaving = set(event.leaves)
        unknown = leaving - {a.agent_id for a in self.agents}
        if unknown:
            raise SimError(f"churn removes unknown agents {sorted(unknown)}")
        adversarial_leavers = [
            a.agent_id for a in self.agents
            if a.agent_id in leaving and a.adversarial
        ]
        if adversarial_leavers:
            raise SimError(
                f"adversaries {adversarial_leavers} cannot leave "
                "(roles persist for the scenario lifetime)"
            )
        agents = [a for a in self.agents if a.agent_id not in leaving]
        next_id = self.next_id
        for agent_id, weight in event.joins:
            if agent_id != next_id:
                raise SimError(
                    f"join id {agent_id} is not the next fresh id {next_id}"
                )
            agents.append(Agent(agent_id=agent_id, weight=float(weight)))
            next_id += 1
        return Population(agents, next_id=next_id)

    # -- the epoch instance ----------------------------------------------
    def ring(self) -> tuple[WeightedGraph, tuple[int, ...]]:
        """The epoch's ring instance plus the vertex -> agent-id map.

        Vertex ``i`` of the ring is ``self.agents[i]``; the returned tuple
        maps ring indices back to persistent agent ids.
        """
        if self.n < 3:
            raise SimError(f"population of {self.n} cannot form a ring")
        g = ring([a.weight for a in self.agents],
                 labels=[f"a{a.agent_id}" for a in self.agents])
        return g, tuple(a.agent_id for a in self.agents)
