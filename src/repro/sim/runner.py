"""Epoch executor for population scenarios.

``run_scenario`` turns a :class:`~repro.sim.scenario.Scenario` into a
:class:`SimResult`: it derives every epoch's population from the churn
schedule (membership is seed-driven and independent of attack results, so
the whole epoch sequence is known up front), flattens all
``(epoch, adversary)`` best-response cells into **one** work list, and
executes it through the same three paths as
:func:`repro.analysis.parallel.parallel_incentive_sweep` -- serial sharing
the caller's context, process-parallel with worker-metrics piggybacking,
or supervised under :func:`repro.runtime.supervised_map` whenever the
resolved policy wants timeouts/retries/fault-injection or a checkpoint
journal is requested.  All three produce bit-identical results; a run
resumed from a journal after ``kill -9`` is indistinguishable from an
uninterrupted one.

The journal fingerprint is built with
:func:`repro.runtime.fingerprint_of` over the scenario's *complete* field
set -- including the adversary-strategy discriminator -- plus the engine
configuration, so resuming a checkpoint with a different strategy mix (or
seed, or solver) refuses with a typed
:class:`~repro.exceptions.CheckpointError` instead of replaying stale
cells.

Warm-start plumbing: adaptive adversaries route their truthful solve
through :func:`repro.core.warm_decomposition` with the previous epoch's
decomposition as hint, held in a per-process store keyed by
``(scenario name, seed, agent id)``.  Reuse is value-neutral (the
reconstruction is certified and bit-identical), so partial reuse in
workers does not break the serial/parallel identity contract -- only the
work counters move.

Any per-agent empirical ratio above ``2 + zeta_slack`` is a Theorem 8
counterexample candidate: it increments ``sim_zeta_violations`` and, when
a corpus directory is configured, files a shrunken ``best_response``
record through the oracle machinery for replay.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional

from ..analysis.parallel import _cell_with_metrics, _context_for, parallel_map
from ..attack import best_split
from ..engine import EngineContext, EngineSpec, resolve_context
from ..graphs import WeightedGraph
from ..numeric import EXACT
from ..obs.metrics import absorb_metrics, sync_worker_metrics
from ..oracle import (
    FailureCorpus,
    FailureRecord,
    backend_to_dict,
    shrink_graph,
)
from ..oracle.corpus import now_stamp
from ..io import graph_to_dict
from ..runtime import RuntimePolicy, fingerprint_of, open_journal, resolve_policy, supervised_map
from .coalition import AttackOutcome, evaluate_strategy
from .population import Population
from .scenario import Scenario, resolve_scenario
from .schedule import ChurnSchedule

__all__ = [
    "EpochReport",
    "SimResult",
    "reset_warm_store",
    "run_scenario",
    "scenario_fingerprint",
]

#: Per-process hint store for adaptive adversaries:
#: ``(scenario, seed, agent_id) -> last certified decomposition``.
_WARM_HINTS: dict[tuple[str, int, int], object] = {}


def reset_warm_store() -> None:
    """Drop all cross-epoch decomposition hints (bench/test isolation)."""
    _WARM_HINTS.clear()


def scenario_fingerprint(scenario: Scenario, spec: EngineSpec | None) -> str:
    """Journal fingerprint for one scenario run.

    Folds the scenario's full field set (``fingerprint_fields`` includes
    the strategy discriminator by name) and the value-determining engine
    configuration.
    """
    engine = ()
    if spec is not None:
        engine = (spec.solver, spec.backend.name, spec.zero_tol, spec.engine)
    return fingerprint_of(
        kind="repro-sim/1",
        scenario=scenario.fingerprint_fields(),
        engine=engine,
    )


def _run_cell(
    g: WeightedGraph,
    vertex: int,
    agent_id: int,
    strategy: str,
    grid: int,
    partner_vertex: Optional[int],
    partner_agent: Optional[int],
    hint_key: tuple[str, int, int],
    ctx: EngineContext,
    backend=None,
) -> dict:
    """One adversary cell against a live context; returns a plain payload."""
    backend = ctx.resolve_backend(backend)
    ctx.counters.sim_attacks += 1
    hint = _WARM_HINTS.get(hint_key) if strategy == "adaptive" else None
    with ctx.span("sim/attack"):
        outcome, hint_out = evaluate_strategy(
            g, vertex, agent_id, strategy, grid, backend=backend, ctx=ctx,
            partner_vertex=partner_vertex, partner_agent=partner_agent,
            hint=hint,
        )
    if hint_out is not None:
        _WARM_HINTS[hint_key] = hint_out
    return outcome.to_payload()


def _sim_cell(args: tuple) -> dict:
    """Picklable cell for workers/supervision: last slot is an
    :class:`EngineSpec` rebuilt into the per-process memoized context."""
    (g, vertex, agent_id, strategy, grid, partner_vertex, partner_agent,
     scen_name, seed, spec) = args
    ctx = _context_for(spec)
    return _run_cell(g, vertex, agent_id, strategy, grid, partner_vertex,
                     partner_agent, (scen_name, seed, agent_id), ctx)


def _sim_cell_exact(args: tuple) -> dict:
    """Precision-escalated twin of :func:`_sim_cell` (exact backend), used
    by the supervisor after typed numeric failures exhaust float retries."""
    (g, vertex, agent_id, strategy, grid, partner_vertex, partner_agent,
     scen_name, seed, spec) = args
    ctx = _context_for(spec)
    return _run_cell(g, vertex, agent_id, strategy, grid, partner_vertex,
                     partner_agent, (scen_name, seed, agent_id), ctx,
                     backend=EXACT)


@dataclass(frozen=True)
class EpochReport:
    """One epoch's population snapshot and adversary outcomes."""

    epoch: int
    n: int
    joined: tuple[int, ...]
    left: tuple[int, ...]
    outcomes: tuple[AttackOutcome, ...]

    @property
    def max_ratio(self) -> float:
        return max((o.ratio for o in self.outcomes), default=1.0)

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "n": self.n,
            "joined": list(self.joined),
            "left": list(self.left),
            "max_ratio": self.max_ratio,
            "outcomes": [o.to_payload() for o in self.outcomes],
        }


@dataclass(frozen=True)
class SimResult:
    """The full scenario run: per-epoch reports plus violation records."""

    scenario: Scenario
    reports: tuple[EpochReport, ...]
    violations: tuple[dict, ...]
    fingerprint: str

    @property
    def max_ratio(self) -> float:
        return max((r.max_ratio for r in self.reports), default=1.0)

    @property
    def epochs(self) -> int:
        return len(self.reports)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.name,
            "seed": self.scenario.seed,
            "strategies": list(self.scenario.strategies),
            "fingerprint": self.fingerprint,
            "epochs": self.epochs,
            "max_ratio": self.max_ratio,
            "violations": list(self.violations),
            "reports": [r.to_dict() for r in self.reports],
        }


def _coalition_partner(adversaries, k):
    """Deterministic partner choice: the next adversary, cyclically."""
    if len(adversaries) < 2:
        from ..exceptions import SimError

        raise SimError(
            "coalition strategy needs at least 2 adversaries in the scenario"
        )
    return adversaries[(k + 1) % len(adversaries)]


def _zeta_record(scenario, epoch, g, outcome, ctx) -> FailureRecord:
    """Build the shrunken corpus record for one ratio-bound violation."""
    slack = scenario.zeta_slack
    grid = scenario.grid

    def fails(candidate: WeightedGraph) -> bool:
        if not candidate.is_ring():
            return False  # leaving the ring family leaves the theorem too
        try:
            return any(
                best_split(candidate, v, grid=grid, ctx=ctx).ratio > 2.0 + slack
                for v in candidate.vertices()
            )
        except Exception:
            return True  # crashes are failures too; keep them minimized

    small = shrink_graph(g, fails, max_evals=60) if fails(g) else g
    if small.n != g.n:
        vertex = max(small.vertices(),
                     key=lambda v: best_split(small, v, grid=grid, ctx=ctx).ratio)
    else:
        small, vertex = g, outcome.vertex
    return FailureRecord(
        kind="best_response",
        problems=(
            f"empirical zeta {outcome.ratio:.9g} > 2 + {slack:g} "
            f"(strategy {outcome.strategy}, epoch {epoch})",
        ),
        context={
            "solver": ctx.solver,
            "backend": backend_to_dict(ctx.backend),
            "zero_tol": ctx.zero_tol,
            "level": "sim",
        },
        payload={
            "graph": graph_to_dict(small),
            "vertex": int(vertex),
            "grid": int(grid),
            "scenario": scenario.name,
            "seed": scenario.seed,
            "epoch": int(epoch),
            "strategy": outcome.strategy,
            "agent_id": int(outcome.agent_id),
            "ratio": float(outcome.ratio),
            "shrunk_from_n": int(g.n),
        },
        created=now_stamp(),
    )


def run_scenario(
    scenario: Scenario | str,
    seed: Optional[int] = None,
    epochs: Optional[int] = None,
    ctx: EngineContext | None = None,
    processes: Optional[int] = None,
    policy: Optional[RuntimePolicy] = None,
    checkpoint: Optional[str] = None,
    corpus_dir: Optional[str] = None,
) -> SimResult:
    """Execute one scenario and return its :class:`SimResult`.

    ``seed``/``epochs`` override the scenario's own fields (the CLI's
    ``--seed``/``--epochs``).  ``processes=None`` defers to
    ``ctx.workers``; supervision engages exactly as in
    :func:`~repro.analysis.parallel.parallel_incentive_sweep` -- when the
    resolved policy asks for it or a checkpoint path is given.
    """
    scenario = resolve_scenario(scenario, seed=seed, epochs=epochs)
    rctx = resolve_context(ctx)
    rpolicy = resolve_policy(rctx, policy)
    checkpoint = checkpoint if checkpoint is not None else rpolicy.checkpoint
    procs = rctx.resolve_workers(processes)
    sched = ChurnSchedule(scenario)

    # -- phase 1: derive the full epoch sequence (seed-driven, cheap) -----
    with rctx.span("sim/churn"):
        pop = Population.initial(scenario)
        epoch_pops: list[tuple[Population, WeightedGraph, tuple]] = []
        events = []
        for epoch in range(scenario.epochs):
            event = sched.event(epoch, pop.honest_ids(), pop.n, pop.next_id)
            if not event.empty:
                rctx.counters.sim_churn_events += 1
            pop = pop.apply(event)
            g, agent_ids = pop.ring()
            epoch_pops.append((pop, g, agent_ids))
            events.append(event)

    # -- phase 2: flatten every (epoch, adversary) cell -------------------
    cells: list[tuple] = []   # args minus the trailing spec slot
    keys: list[str] = []
    meta: list[tuple[int, int]] = []  # (epoch, cells-offset bookkeeping)
    for epoch, (pop, g, _agent_ids) in enumerate(epoch_pops):
        advs = pop.adversaries()
        for k, (vertex, agent) in enumerate(advs):
            partner_vertex = partner_agent = None
            if agent.strategy == "coalition":
                pv, pa = _coalition_partner(advs, k)
                partner_vertex, partner_agent = pv, pa.agent_id
            cells.append((g, vertex, agent.agent_id, agent.strategy,
                          scenario.grid, partner_vertex, partner_agent,
                          scenario.name, scenario.seed))
            keys.append(f"e{epoch}:a{agent.agent_id}:{agent.strategy}")
            meta.append((epoch, agent.agent_id))
    rctx.counters.sim_epochs += scenario.epochs

    # -- phase 3: execute -------------------------------------------------
    supervised = rpolicy.supervised or checkpoint is not None
    with rctx.span("sim/attacks"):
        if not supervised and (procs <= 0 or len(cells) <= 1):
            payloads = [
                _run_cell(*args[:7],
                          hint_key=(args[7], args[8], args[2]), ctx=rctx)
                for args in cells
            ]
        elif not supervised:
            spec = rctx.spec()
            items = [args + (spec,) for args in cells]
            sync_worker_metrics()
            pairs = parallel_map(
                functools.partial(_cell_with_metrics, _sim_cell),
                items, processes=procs, start_method=rpolicy.start_method,
            )
            payloads = [value for value, _ in pairs]
            for _, delta in pairs:
                absorb_metrics(delta, counters=rctx.counters,
                               tracer=getattr(rctx, "tracer", None))
        else:
            spec = rctx.spec()
            items = [args + (spec,) for args in cells]
            fingerprint = scenario_fingerprint(scenario, spec)
            journal = open_journal(checkpoint, fingerprint)
            try:
                payloads = supervised_map(
                    _sim_cell,
                    items,
                    processes=procs,
                    policy=rpolicy,
                    counters=rctx.counters,
                    escalate_fn=_sim_cell_exact,
                    journal=journal,
                    key_fn=lambda i: keys[i],
                    tracer=getattr(rctx, "tracer", None),
                )
            finally:
                if journal is not None:
                    journal.close()

    # -- phase 4: fold back into epochs, police the zeta bound ------------
    by_epoch: dict[int, list[AttackOutcome]] = {e: [] for e in range(scenario.epochs)}
    for (epoch, _agent_id), payload in zip(meta, payloads):
        by_epoch[epoch].append(AttackOutcome.from_payload(payload))

    corpus = FailureCorpus(corpus_dir) if corpus_dir else None
    bound = 2.0 + scenario.zeta_slack
    violations: list[dict] = []
    reports: list[EpochReport] = []
    for epoch, (pop, g, _agent_ids) in enumerate(epoch_pops):
        outcomes = tuple(by_epoch[epoch])
        event = events[epoch]
        reports.append(EpochReport(
            epoch=epoch, n=pop.n,
            joined=tuple(a for a, _w in event.joins),
            left=tuple(event.leaves),
            outcomes=outcomes,
        ))
        for outcome in outcomes:
            if outcome.ratio > bound:
                rctx.counters.sim_zeta_violations += 1
                entry = {
                    "epoch": epoch,
                    "agent_id": outcome.agent_id,
                    "strategy": outcome.strategy,
                    "ratio": outcome.ratio,
                }
                if corpus is not None:
                    rec = _zeta_record(scenario, epoch, g, outcome, rctx)
                    entry["record"] = str(corpus.add(rec))
                violations.append(entry)

    return SimResult(
        scenario=scenario,
        reports=tuple(reports),
        violations=tuple(violations),
        fingerprint=scenario_fingerprint(scenario, rctx.spec()),
    )
