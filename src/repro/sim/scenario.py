"""Scenario description for the adversarial population simulator.

A :class:`Scenario` is the frozen, seed-complete specification of one
simulated world: initial ring size, churn intensity, population bounds,
weight distribution, and the adversary roles -- in the style of
gasper-attack's ``Scenario`` dataclass, where the first ``F`` of ``N``
agents are the adversarial ones and everything downstream is a pure
function of ``(scenario, seed)``.  The paper proves ``zeta <= 2`` for a
*single* Sybil-splitting agent on a *static* ring; scenarios are how the
library probes that bound under the populations the ROADMAP's production
north star actually faces: churning memberships, colluding neighbors, and
adversaries that adapt their best response epoch over epoch.

Everything here is declarative -- no RNG is drawn and no solve happens at
construction; :mod:`repro.sim.schedule` derives the churn stream and
:mod:`repro.sim.runner` executes epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from ..exceptions import SimError

__all__ = ["STRATEGIES", "Scenario", "SCENARIOS", "resolve_scenario"]

#: Adversary strategies the coalition layer implements.
#:
#: * ``sybil``      -- Definition 7 two-way split, full best-response search.
#: * ``multi``      -- m-way split via :mod:`repro.attack.multi_split`
#:                     (capped at m = 2 on rings, where d_v = 2).
#: * ``misreport``  -- weight under-reporting alone (Theorem 10 says this
#:                     never profits; the simulator watches it anyway).
#: * ``combined``   -- misreport-then-Sybil composition via
#:                     :mod:`repro.attack.combined`.
#: * ``coalition``  -- two colluding adversaries: one misreports, its
#:                     partner splits, joint utility compared to joint
#:                     honest utility.
#: * ``adaptive``   -- Sybil best response that re-solves each epoch
#:                     through the warm-start incremental engine, reusing
#:                     the previous epoch's decomposition when topology
#:                     permits.
STRATEGIES = ("sybil", "multi", "misreport", "combined", "coalition", "adaptive")

_WEIGHT_DISTS = ("loguniform", "uniform")


@dataclass(frozen=True)
class Scenario:
    """One seed-complete population scenario."""

    name: str
    seed: int = 0
    epochs: int = 4
    n0: int = 8
    n_min: int = 4
    n_max: int = 24
    #: Per-epoch probability of one join and (independently) one leave.
    churn_rate: float = 0.5
    #: When True every join is paired with a leave (membership rotates but
    #: ``n`` stays constant) -- the regime where epoch-to-epoch topology is
    #: stable and adaptive warm reuse pays off.
    swap_churn: bool = False
    adversaries: int = 2
    #: Strategy mix; adversary ``k`` plays ``strategies[k % len]``.  This
    #: tuple is the *strategy discriminator* that must reach every journal
    #: fingerprint derived from the scenario.
    strategies: tuple[str, ...] = ("sybil",)
    weight_dist: str = "loguniform"
    w_lo: float = 0.05
    w_hi: float = 20.0
    #: Best-response search resolution forwarded to the attack layer.
    grid: int = 16
    #: Empirical slack on the Theorem 8 bound: a float best-response ratio
    #: a few ulps above 2 is rounding, not a counterexample.  Anything
    #: above ``2 + zeta_slack`` is a violation and files a corpus record.
    zeta_slack: float = 1e-6

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise SimError(f"scenario {self.name!r}: epochs must be >= 1")
        if not (3 <= self.n_min <= self.n0 <= self.n_max):
            raise SimError(
                f"scenario {self.name!r}: need 3 <= n_min <= n0 <= n_max, got "
                f"({self.n_min}, {self.n0}, {self.n_max})"
            )
        if not (0.0 <= self.churn_rate <= 1.0):
            raise SimError(f"scenario {self.name!r}: churn_rate outside [0, 1]")
        if not self.strategies:
            raise SimError(f"scenario {self.name!r}: empty strategy mix")
        unknown = [s for s in self.strategies if s not in STRATEGIES]
        if unknown:
            raise SimError(
                f"scenario {self.name!r}: unknown strategies {unknown}; "
                f"known: {STRATEGIES}"
            )
        if not (1 <= self.adversaries < self.n_min):
            raise SimError(
                f"scenario {self.name!r}: need 1 <= adversaries < n_min "
                f"(honest majority keeps churn well-defined), got "
                f"{self.adversaries}"
            )
        if self.weight_dist not in _WEIGHT_DISTS:
            raise SimError(
                f"scenario {self.name!r}: unknown weight_dist "
                f"{self.weight_dist!r}; known: {_WEIGHT_DISTS}"
            )
        if not (0 < self.w_lo <= self.w_hi):
            raise SimError(f"scenario {self.name!r}: need 0 < w_lo <= w_hi")
        if self.grid < 4:
            raise SimError(f"scenario {self.name!r}: grid must be >= 4")

    def strategy_of(self, adversary_index: int) -> str:
        """Strategy played by the ``k``-th adversary (cycling the mix)."""
        return self.strategies[adversary_index % len(self.strategies)]

    def discriminator(self) -> str:
        """The adversary-strategy discriminator (satellite of the journal
        fingerprint): compact, order-sensitive rendering of the mix."""
        return "+".join(self.strategies)

    def fingerprint_fields(self) -> dict:
        """Every scenario field, for journal fingerprints.

        Includes :meth:`discriminator` explicitly even though
        ``strategies`` is already present: the discriminator is the field
        whose omission once made strategy-swapped resumes replay stale
        cells, and keeping it named makes the regression test read off the
        contract directly.
        """
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["strategies"] = tuple(self.strategies)
        out["discriminator"] = self.discriminator()
        return out


def resolve_scenario(name_or_scenario, **overrides) -> Scenario:
    """Look up a named preset (or pass a :class:`Scenario` through) and
    apply field overrides (``seed=...``, ``epochs=...``)."""
    if isinstance(name_or_scenario, Scenario):
        scen = name_or_scenario
    else:
        scen = SCENARIOS.get(str(name_or_scenario).upper())
        if scen is None:
            raise SimError(
                f"unknown scenario {name_or_scenario!r}; known: "
                f"{', '.join(sorted(SCENARIOS))}"
            )
    overrides = {k: v for k, v in overrides.items() if v is not None}
    return replace(scen, **overrides) if overrides else scen


#: The EXP-S experiment family's scenario presets.  EXP-S1: solo Sybil
#: splitting (2-way and m-way) under membership churn.  EXP-S2: colluding
#: neighbor coalitions.  EXP-S3: combined misreport-then-Sybil
#: compositions next to a pure misreporter.  EXP-S4: adaptive adversaries
#: under swap churn -- constant ring size, rotating membership -- the
#: regime exercising the warm-start incremental engine every epoch.
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(name="EXP-S1", strategies=("sybil", "multi"), n0=8,
                 churn_rate=0.5),
        Scenario(name="EXP-S2", strategies=("coalition",), adversaries=2,
                 n0=8, churn_rate=0.5),
        Scenario(name="EXP-S3", strategies=("combined", "misreport"), n0=7,
                 churn_rate=0.5, grid=12),
        Scenario(name="EXP-S4", strategies=("adaptive",), n0=10,
                 churn_rate=1.0, swap_churn=True, w_lo=0.5, w_hi=2.0),
    )
}
