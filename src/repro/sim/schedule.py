"""Deterministic churn stream: who joins and leaves at each epoch.

The schedule is the gasper-attack ``RandomSchedule`` idea transplanted
onto the paper's rings: every epoch's randomness is re-derived from the
scenario seed and the epoch index through a ``SeedSequence`` -- never
carried as shared generator state -- so epoch ``e``'s events are a pure
function of ``(scenario, e, population-so-far)`` and replay bit-identically
across serial, parallel, and resumed executions.

Leaves only ever pick *honest* agents: the scenario's adversaries persist
for its whole lifetime (the interesting question is how a fixed coalition
fares against a drifting honest population, and reassigning roles
mid-scenario would conflate churn with strategy changes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["ChurnEvent", "ChurnSchedule", "sim_rng"]

_MASK = 0x7FFFFFFF


def sim_rng(seed: int, *coords: int) -> np.random.Generator:
    """Per-cell generator for the simulator's coordinate space.

    Same discipline as :func:`repro.analysis.sweep.cell_rng`, but over
    integer coordinates only -- no ``hash()`` of strings, whose salt would
    differ across worker processes and break replay.
    """
    return np.random.default_rng(
        np.random.SeedSequence([int(seed) & _MASK] + [int(c) & _MASK for c in coords])
    )


@dataclass(frozen=True)
class ChurnEvent:
    """The membership delta applied between epoch ``epoch - 1`` and
    ``epoch``; ``joins`` are ``(agent_id, weight)`` pairs, ``leaves``
    agent ids.  Epoch 0 has no event (the initial population stands)."""

    epoch: int
    joins: tuple[tuple[int, float], ...] = ()
    leaves: tuple[int, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.joins and not self.leaves


class ChurnSchedule:
    """Derives each epoch's :class:`ChurnEvent` from the scenario seed."""

    #: Coordinate tags keeping the schedule's RNG streams disjoint from
    #: the population's initial draw (tag 0 in population.py).
    _TAG_CHURN = 1

    def __init__(self, scenario) -> None:
        self.scenario = scenario

    def draw_weight(self, rng: np.random.Generator) -> float:
        s = self.scenario
        if s.weight_dist == "loguniform":
            return float(math.exp(rng.uniform(math.log(s.w_lo), math.log(s.w_hi))))
        return float(rng.uniform(s.w_lo, s.w_hi))

    def event(self, epoch: int, honest_ids, n: int, next_id: int) -> ChurnEvent:
        """The event entering ``epoch``.

        ``honest_ids`` are the current population's honest agents in a
        deterministic order, ``n`` its total size, ``next_id`` the next
        fresh agent id.  Bounds are respected: no leave below ``n_min``,
        no join above ``n_max`` (``swap_churn`` pairs them so ``n`` is
        invariant).
        """
        s = self.scenario
        if epoch <= 0:
            return ChurnEvent(epoch=epoch)
        rng = sim_rng(s.seed, self._TAG_CHURN, epoch)
        joins: list[tuple[int, float]] = []
        leaves: list[int] = []
        honest_ids = list(honest_ids)
        if s.swap_churn:
            # Paired join+leave: membership rotates, n stays constant.
            if rng.random() < s.churn_rate and honest_ids and n - 1 >= s.n_min:
                leaves.append(int(honest_ids[int(rng.integers(len(honest_ids)))]))
                joins.append((next_id, self.draw_weight(rng)))
        else:
            if rng.random() < s.churn_rate and n + 1 <= s.n_max:
                joins.append((next_id, self.draw_weight(rng)))
            if rng.random() < s.churn_rate and honest_ids and n + len(joins) - 1 >= s.n_min:
                leaves.append(int(honest_ids[int(rng.integers(len(honest_ids)))]))
        return ChurnEvent(epoch=epoch, joins=tuple(joins), leaves=tuple(leaves))
