"""Columnar (CSR) substrate of a :class:`WeightedGraph`.

The per-object adjacency of :class:`~repro.graphs.WeightedGraph` (tuples of
tuples, one Python object per neighbor list) is the right interface for the
combinatorial code, but the numeric layers keep paying for it: decomposition
cache keys walked the whole edge list per probe, the dynamics rebuilt its
directed-edge arrays from Python pairs on every call, and every parametric
flow network re-validated arcs one ``add_edge`` at a time.  This module is
the flat-array view those layers share:

* ``indptr``/``indices`` are the classic CSR pair over **sorted** neighbor
  lists, so the representation is canonical: two equal graphs produce
  byte-identical buffers, which is what makes :func:`graph_signature_bytes`
  a valid cache key (see :mod:`repro.engine.cache`).
* ``weights``/``labels`` are carried unchanged (the original Python
  objects), so :meth:`ColumnarGraph.to_graph` round-trips **bit-identically**
  -- same edge tuple, same weight objects, same labels.
* float weights additionally materialize as a ``float64`` array
  (:meth:`float_weights`) for the vectorized dynamics.  Non-float scalars
  (``Fraction``) deliberately do **not**: the exact backend routes to the
  scalar code paths, never through an object-dtype numpy array (object
  arrays would silently trade exact arithmetic for pointer chasing).

Weight bytes are canonical at the bit level: floats serialize as their IEEE
little-endian image (so ``-0.0`` and ``0.0``, or one-ulp-distinct values,
key differently -- matching ``instance_signature``'s hex discipline), ints
and Fractions by tagged ``repr``.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .weighted_graph import WeightedGraph

__all__ = [
    "ColumnarGraph",
    "canonical_form",
    "canonical_signature_bytes",
    "graph_structure_bytes",
    "graph_signature_bytes",
    "weight_bytes",
]


def weight_bytes(weights) -> bytes:
    """Canonical byte image of a weight vector.

    Floats by exact IEEE-754 image, everything else by type-tagged repr;
    distinct values can never collide, and a float is never conflated with
    the equal-valued int or Fraction (that only costs a duplicate cache
    entry, never a wrong hit).
    """
    parts = []
    for w in weights:
        if isinstance(w, float):
            parts.append(b"f" + struct.pack("<d", w))
        elif isinstance(w, int):
            parts.append(b"i" + repr(w).encode())
        else:
            parts.append(b"r" + repr(w).encode())
    return b"|".join(parts)


class ColumnarGraph:
    """CSR adjacency plus columnar weight storage for one graph.

    Construction is cheap (one pass over the adjacency) and cached on the
    source :class:`WeightedGraph`, so repeated ``from_graph`` calls on the
    same instance are attribute loads.
    """

    __slots__ = ("n", "indptr", "indices", "weights", "labels",
                 "_f64", "_directed")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray,
                 weights: tuple, labels: tuple) -> None:
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.labels = labels
        self._f64 = None
        self._directed = None

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, g: "WeightedGraph") -> "ColumnarGraph":
        cached = g._cols
        if cached is not None:
            return cached
        n = g.n
        indptr = np.zeros(n + 1, dtype=np.int64)
        for v in range(n):
            indptr[v + 1] = indptr[v] + len(g._adj[v])
        total = int(indptr[-1]) if n else 0
        if total:
            indices = np.fromiter(
                (u for v in range(n) for u in g._adj[v]),
                dtype=np.int64, count=total,
            )
        else:
            indices = np.zeros(0, dtype=np.int64)
        cols = cls(n, indptr, indices, g.weights, g.labels)
        g._cols = cols
        return cols

    def to_graph(self) -> "WeightedGraph":
        """Rebuild the :class:`WeightedGraph` from the CSR buffers.

        Edges are *re-derived from the arrays* (not replayed from a stashed
        tuple) so the round-trip actually exercises the representation; the
        ``u < v`` sweep over ascending rows reproduces the sorted edge
        tuple bit-for-bit, and weights/labels are the original objects.
        """
        from .weighted_graph import WeightedGraph

        indptr, indices = self.indptr, self.indices
        edges = [
            (u, int(indices[j]))
            for u in range(self.n)
            for j in range(int(indptr[u]), int(indptr[u + 1]))
            if u < indices[j]
        ]
        return WeightedGraph(self.n, edges, list(self.weights),
                             list(self.labels), validate=False)

    # ------------------------------------------------------------------
    def float_weights(self) -> np.ndarray | None:
        """``float64`` weight array, or ``None`` for non-float scalars.

        ``None`` (e.g. ``Fraction`` weights) tells the caller to take the
        scalar path; an object-dtype array is never produced.
        """
        if self._f64 is None:
            if all(isinstance(w, (int, float)) for w in self.weights):
                self._f64 = np.asarray([float(w) for w in self.weights],
                                       dtype=np.float64)
            else:
                self._f64 = False
        return self._f64 if self._f64 is not False else None

    def directed_arrays(self):
        """Directed edge arrays ``(src, dst, rev, index)`` for the dynamics.

        Ordering contract: pairs are emitted per sorted undirected edge as
        ``(u, v), (v, u)`` -- exactly the order the scalar
        ``dynamics._edge_arrays`` historically produced -- so ``bincount``
        accumulations are bit-identical between the engines.  The reverse
        permutation is then just ``i ^ 1``.
        """
        if self._directed is None:
            indptr, indices = self.indptr, self.indices
            pairs: list[tuple[int, int]] = []
            for u in range(self.n):
                for j in range(int(indptr[u]), int(indptr[u + 1])):
                    v = int(indices[j])
                    if u < v:
                        pairs.append((u, v))
                        pairs.append((v, u))
            m2 = len(pairs)
            src = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=m2)
            dst = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=m2)
            rev = np.arange(m2, dtype=np.int64) ^ 1
            index = {p: i for i, p in enumerate(pairs)}
            self._directed = (src, dst, rev, index)
        return self._directed

    # ------------------------------------------------------------------
    def structure_bytes(self) -> bytes:
        """Topology + labels as canonical bytes (weights excluded)."""
        return (
            struct.pack("<q", self.n)
            + self.indptr.tobytes()
            + self.indices.tobytes()
            + repr(self.labels).encode()
        )

    def signature_bytes(self) -> bytes:
        """Full instance signature: structure + canonical weight bytes."""
        return self.structure_bytes() + b"#" + weight_bytes(self.weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarGraph(n={self.n}, m={len(self.indices) // 2})"


def graph_structure_bytes(g: "WeightedGraph") -> bytes:
    """Canonical structure bytes of ``g``, cached on the graph.

    The cache survives :meth:`WeightedGraph._with_weights_unchecked` (the
    structure is shared), so a best-response sweep pays for the CSR build
    once per topology rather than once per candidate split.
    """
    cached = g._struct
    if cached is None:
        cached = ColumnarGraph.from_graph(g).structure_bytes()
        g._struct = cached
    return cached


def graph_signature_bytes(g: "WeightedGraph") -> bytes:
    """Canonical full-instance bytes of ``g`` (structure + weights), cached."""
    cached = g._sig
    if cached is None:
        cached = graph_structure_bytes(g) + b"#" + weight_bytes(g.weights)
        g._sig = cached
    return cached


# ---------------------------------------------------------------------------
# isomorphism-canonical fingerprints (the serving layer's cache key)
# ---------------------------------------------------------------------------
#
# ``graph_signature_bytes`` keys by the *labelled* instance: rotating a
# ring's vertex ids produces a different signature even though every
# rotation describes the same economy.  The serving layer wants the
# opposite discipline -- isomorphic requests must share one cache entry --
# so ``canonical_form`` quotients out the automorphisms we can afford to
# compute.  For rings (the paper's universe, and the only topology whose
# isomorphism group is cheap: 2n rotations/reflections) the canonical key
# is the lexicographically minimal cyclic arrangement of the bit-exact
# per-vertex weight bytes.  Everything else keys by its exact (label-free)
# CSR structure plus weight bytes -- general graph canonization is
# isomorphism-complete and not worth guessing at.

def _ring_cycle(g: "WeightedGraph") -> list[int]:
    """Vertices of a ring in one deterministic cyclic order.

    Local twin of :func:`repro.graphs.rings.ring_order` (not imported to
    keep this module's import graph a leaf): starts at vertex 0, steps to
    the smaller-id neighbor first.  The caller guarantees ``g.is_ring()``.
    """
    order = [0]
    prev, cur = 0, min(g._adj[0])
    while cur != 0:
        order.append(cur)
        a, b = g._adj[cur]
        prev, cur = cur, (a if b == prev else b)
    return order


def canonical_form(g: "WeightedGraph") -> tuple[bytes, tuple[int, ...]]:
    """Isomorphism-canonical cache key of ``g`` plus the witnessing map.

    Returns ``(key, order)`` where ``order[k]`` is the original vertex id
    placed at canonical position ``k``; the canonical representative is the
    graph with default labels whose position-``k`` weight is
    ``g.weights[order[k]]`` (for a ring, positions are cyclically adjacent,
    so it is the ring built directly over ``order``).

    Guarantees:

    * **Rings** -- any two rings related by rotation, reflection, or label
      renaming produce byte-identical keys *and* byte-identical canonical
      representatives; only ``order`` differs.  The key compares weights by
      their bit-exact byte image (:func:`weight_bytes` discipline), so
      ``-0.0``/``0.0``, subnormals, and one-ulp-distinct weights -- and
      equal values of different scalar types -- never collide.
    * **Everything else** -- ``order`` is the identity and the key is the
      exact CSR structure (labels excluded -- labels never influence an
      allocation) plus weight bytes, i.e. only trivially-relabelled copies
      share an entry.
    * The mapping is a fixed point: the canonical representative's own
      ``canonical_form`` has the identity ``order`` (ties between equal
      minimal arrangements are broken by enumeration order, and the
      representative is enumerated first), so re-canonicalizing a served
      instance never introduces a second permutation.
    """
    n = g.n
    if g.is_ring():
        per_vertex = [weight_bytes((w,)) for w in g.weights]
        cyc = _ring_cycle(g)
        reflected = [cyc[0]] + cyc[:0:-1]
        best: tuple[bytes, ...] | None = None
        best_order: tuple[int, ...] = ()
        for seq in (cyc, reflected):
            for r in range(n):
                order = tuple(seq[r:] + seq[:r])
                cand = tuple(per_vertex[v] for v in order)
                if best is None or cand < best:
                    best, best_order = cand, order
        key = b"ring:" + struct.pack("<q", n) + b"|".join(best)  # type: ignore[arg-type]
        return key, best_order
    cols = ColumnarGraph.from_graph(g)
    key = (b"gen:" + struct.pack("<q", n) + cols.indptr.tobytes()
           + cols.indices.tobytes() + b"#" + weight_bytes(g.weights))
    return key, tuple(range(n))


def canonical_signature_bytes(g: "WeightedGraph") -> bytes:
    """Just the key half of :func:`canonical_form`."""
    return canonical_form(g)[0]
