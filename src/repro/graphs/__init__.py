"""Graph substrate: weighted undirected graphs, builders, ring helpers."""

from .weighted_graph import WeightedGraph
from .builders import (
    ring,
    path,
    star,
    complete,
    grid2d,
    random_weights,
    random_ring,
    random_connected_graph,
    from_edge_list,
)
from .rings import (
    ring_order,
    ring_neighbors,
    path_order,
    path_endpoints,
    cut_ring_at,
    honest_ids_after_cut,
)
from .validation import require_positive_weights, require_ring, check_no_isolated

__all__ = [
    "WeightedGraph",
    "ring",
    "path",
    "star",
    "complete",
    "grid2d",
    "random_weights",
    "random_ring",
    "random_connected_graph",
    "from_edge_list",
    "ring_order",
    "ring_neighbors",
    "path_order",
    "path_endpoints",
    "cut_ring_at",
    "honest_ids_after_cut",
    "require_positive_weights",
    "require_ring",
    "check_no_isolated",
]
