"""Graph substrate: weighted undirected graphs, builders, ring helpers."""

from .weighted_graph import WeightedGraph
from .columnar import (
    ColumnarGraph,
    canonical_form,
    canonical_signature_bytes,
    graph_signature_bytes,
    graph_structure_bytes,
    weight_bytes,
)
from .builders import (
    ring,
    path,
    star,
    complete,
    grid2d,
    random_weights,
    random_ring,
    random_connected_graph,
    from_edge_list,
)
from .rings import (
    ring_order,
    ring_neighbors,
    path_order,
    path_endpoints,
    cut_index_map,
    cut_ring_at,
    honest_ids_after_cut,
)
from .validation import (
    check_no_isolated,
    require_finite_weights,
    require_positive_weights,
    require_ring,
    require_simple,
)

__all__ = [
    "WeightedGraph",
    "ColumnarGraph",
    "canonical_form",
    "canonical_signature_bytes",
    "graph_signature_bytes",
    "graph_structure_bytes",
    "weight_bytes",
    "ring",
    "path",
    "star",
    "complete",
    "grid2d",
    "random_weights",
    "random_ring",
    "random_connected_graph",
    "from_edge_list",
    "ring_order",
    "ring_neighbors",
    "path_order",
    "path_endpoints",
    "cut_index_map",
    "cut_ring_at",
    "honest_ids_after_cut",
    "require_positive_weights",
    "require_finite_weights",
    "require_ring",
    "require_simple",
    "check_no_isolated",
]
