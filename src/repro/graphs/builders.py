"""Constructors for the graph families used across the experiments.

The paper's theorems are about rings, but the substrate (bottleneck
decomposition, BD allocation, dynamics) is defined for arbitrary graphs, so
the test suite exercises it on paths, stars, complete and random graphs too.
All randomness flows through an explicit ``numpy.random.Generator`` for
reproducibility (no hidden global RNG state -- sweeps are seeded per cell).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import GraphError
from ..numeric import Scalar
from .weighted_graph import WeightedGraph

__all__ = [
    "ring",
    "path",
    "star",
    "complete",
    "grid2d",
    "random_weights",
    "random_ring",
    "random_connected_graph",
    "from_edge_list",
]


def ring(weights: Sequence[Scalar], labels: Sequence[str] | None = None) -> WeightedGraph:
    """Cycle ``v0 - v1 - ... - v_{n-1} - v0`` with the given weights."""
    n = len(weights)
    if n < 3:
        raise GraphError(f"a ring needs >= 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return WeightedGraph(n, edges, weights, labels)


def path(weights: Sequence[Scalar], labels: Sequence[str] | None = None) -> WeightedGraph:
    """Simple path ``v0 - v1 - ... - v_{n-1}``."""
    n = len(weights)
    if n < 2:
        raise GraphError(f"a path needs >= 2 vertices, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    return WeightedGraph(n, edges, weights, labels)


def star(center_weight: Scalar, leaf_weights: Sequence[Scalar]) -> WeightedGraph:
    """Star with vertex 0 at the center."""
    k = len(leaf_weights)
    if k < 1:
        raise GraphError("a star needs at least one leaf")
    edges = [(0, i + 1) for i in range(k)]
    return WeightedGraph(k + 1, edges, [center_weight, *leaf_weights])


def complete(weights: Sequence[Scalar]) -> WeightedGraph:
    """Complete graph K_n."""
    n = len(weights)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return WeightedGraph(n, edges, weights)


def grid2d(rows: int, cols: int, weights: Sequence[Scalar]) -> WeightedGraph:
    """``rows x cols`` grid; vertex ``(r, c)`` has id ``r*cols + c``."""
    n = rows * cols
    if len(weights) != n:
        raise GraphError(f"grid2d({rows},{cols}) needs {n} weights, got {len(weights)}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return WeightedGraph(n, edges, weights)


def random_weights(
    n: int,
    rng: np.random.Generator,
    distribution: str = "uniform",
    low: float = 0.1,
    high: float = 10.0,
) -> list[float]:
    """Draw ``n`` positive weights.

    ``distribution`` is one of:

    * ``"uniform"`` -- Uniform(low, high);
    * ``"loguniform"`` -- exp(Uniform(log low, log high)), heavy spread, the
      regime where worst-case incentive ratios live;
    * ``"integer"`` -- uniform integers in [max(1,int(low)), int(high)],
      convenient for exact-backend tests;
    * ``"equal"`` -- all weights equal to ``high``.
    """
    if distribution == "uniform":
        return list(rng.uniform(low, high, size=n))
    if distribution == "loguniform":
        return list(np.exp(rng.uniform(np.log(low), np.log(high), size=n)))
    if distribution == "integer":
        lo = max(1, int(low))
        return [int(x) for x in rng.integers(lo, int(high) + 1, size=n)]
    if distribution == "equal":
        return [float(high)] * n
    raise GraphError(f"unknown weight distribution {distribution!r}")


def random_ring(
    n: int,
    rng: np.random.Generator,
    distribution: str = "uniform",
    low: float = 0.1,
    high: float = 10.0,
) -> WeightedGraph:
    """Ring on ``n`` vertices with random weights (see :func:`random_weights`)."""
    return ring(random_weights(n, rng, distribution, low, high))


def random_connected_graph(
    n: int,
    extra_edges: int,
    rng: np.random.Generator,
    distribution: str = "uniform",
    low: float = 0.1,
    high: float = 10.0,
) -> WeightedGraph:
    """Random connected graph: a random spanning tree plus ``extra_edges``.

    Spanning tree via random attachment (each new vertex links to a uniform
    earlier vertex), then extra non-duplicate edges drawn uniformly.  This is
    the general-graph workload for the substrate tests (the paper's theorem
    is ring-only, but Props. 3/6 and Thm. 10 hold on any graph).
    """
    if n < 1:
        raise GraphError("need at least one vertex")
    edges: set[tuple[int, int]] = set()
    for v in range(1, n):
        u = int(rng.integers(0, v))
        edges.add((u, v))
    possible = n * (n - 1) // 2 - len(edges)
    extra = min(extra_edges, possible)
    while extra > 0:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in edges:
            continue
        edges.add(key)
        extra -= 1
    return WeightedGraph(n, sorted(edges), random_weights(n, rng, distribution, low, high))


def from_edge_list(
    edges: Sequence[tuple[int, int]], weights: Sequence[Scalar]
) -> WeightedGraph:
    """Thin convenience wrapper matching the paper's ``G = (V, E; w)``."""
    return WeightedGraph(len(weights), edges, weights)
