"""Core weighted undirected graph used by the whole library.

The resource sharing model of the paper is an undirected graph
``G = (V, E; w)`` where vertex ``v`` owns ``w_v >= 0`` units of a divisible
resource.  This module provides a small, immutable-by-convention structure
with the exact operations the algorithms need:

* integer vertex ids ``0..n-1`` (labels are carried separately, so hot loops
  index plain lists/arrays -- per the HPC guides, no per-access dict hashing),
* adjacency as sorted tuples for deterministic iteration,
* neighborhood of a set ``Gamma(S)``, induced subgraphs with id remapping,
* weight totals with a pluggable numeric backend.

The structure intentionally forbids self-loops and parallel edges: the
proportional response model has no use for either, and Definition 2's
``Gamma(S)`` would become ambiguous with self-loops.
"""

from __future__ import annotations

import math
from operator import index as _as_index
from typing import Iterable, Mapping, Sequence

from ..exceptions import GraphError, InvalidWeightError
from ..numeric import Backend, FLOAT, Scalar

__all__ = ["WeightedGraph"]


class WeightedGraph:
    """Undirected vertex-weighted graph with integer vertex ids.

    Parameters
    ----------
    n:
        Number of vertices; ids are ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs, undirected, no self-loops, no
        duplicates (in either orientation).
    weights:
        Sequence of ``n`` non-negative scalars (int/float/Fraction).
    labels:
        Optional human-readable labels (e.g. ``"v1"``) used by reports and
        the Sybil-split bookkeeping; defaults to ``"v0".."v{n-1}"``.
    validate:
        ``True`` (default) runs the full constructor checks: integer
        in-range endpoints, no self-loops/duplicates, and finite
        non-negative, non-NaN numeric weights.  ``False`` is the trusted
        fast path for internal reconstructions whose inputs were validated
        once already (e.g. :meth:`induced_subgraph` in the decomposition's
        recursion); it skips the per-element checks but still builds the
        same structures, so downstream validators
        (:mod:`repro.graphs.validation`) can detect anything smuggled in.
    """

    __slots__ = ("n", "edges", "weights", "labels", "_adj", "_edge_set",
                 "_cols", "_struct", "_sig")

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]],
        weights: Sequence[Scalar],
        labels: Sequence[str] | None = None,
        validate: bool = True,
    ) -> None:
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        if len(weights) != n:
            raise GraphError(f"expected {n} weights, got {len(weights)}")
        if validate:
            for i, w in enumerate(weights):
                try:
                    neg = w < 0
                except TypeError as exc:  # e.g. None, str
                    raise InvalidWeightError(
                        f"weight of vertex {i} is not a number: {w!r}") from exc
                if neg or (isinstance(w, float) and not math.isfinite(w)):
                    raise InvalidWeightError(
                        f"weight of vertex {i} must be finite and >= 0, got {w!r}")

        edge_set: set[tuple[int, int]] = set()
        adj: list[list[int]] = [[] for _ in range(n)]
        for u, v in edges:
            if validate:
                try:
                    u, v = _as_index(u), _as_index(v)
                except TypeError as exc:
                    raise GraphError(
                        f"edge ({u!r},{v!r}) endpoints must be integers") from exc
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphError(f"edge ({u},{v}) out of range for n={n}")
                if u == v:
                    raise GraphError(f"self-loop at vertex {u} is not allowed")
                key = (u, v) if u < v else (v, u)
                if key in edge_set:
                    raise GraphError(f"duplicate edge ({u},{v})")
            else:
                key = (u, v) if u < v else (v, u)
            edge_set.add(key)
            adj[u].append(v)
            adj[v].append(u)

        if labels is None:
            labels = tuple(f"v{i}" for i in range(n))
        else:
            if len(labels) != n:
                raise GraphError(f"expected {n} labels, got {len(labels)}")
            labels = tuple(labels)

        self.n = n
        self.edges: tuple[tuple[int, int], ...] = tuple(sorted(edge_set))
        self.weights: tuple[Scalar, ...] = tuple(weights)
        self.labels: tuple[str, ...] = labels
        self._adj: tuple[tuple[int, ...], ...] = tuple(tuple(sorted(a)) for a in adj)
        self._edge_set = edge_set
        # Lazily-populated columnar caches (see repro.graphs.columnar):
        # the CSR view, the canonical structure bytes (shared across weight
        # replacements), and the full instance signature bytes.
        self._cols = None
        self._struct = None
        self._sig = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted neighborhood ``Gamma(v)`` of a single vertex."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        key = (u, v) if u < v else (v, u)
        return key in self._edge_set

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    def vertices(self) -> range:
        return range(self.n)

    # ------------------------------------------------------------------
    # set operations used by the bottleneck machinery
    # ------------------------------------------------------------------
    def neighborhood(self, S: Iterable[int]) -> frozenset[int]:
        """``Gamma(S) = union of Gamma(v) for v in S`` (may intersect S)."""
        out: set[int] = set()
        for v in S:
            out.update(self._adj[v])
        return frozenset(out)

    def weight_of(self, S: Iterable[int], backend: Backend = FLOAT) -> Scalar:
        """``w(S)`` with the given numeric backend."""
        w = self.weights
        return backend.total([backend.scalar(w[v]) for v in S])

    def total_weight(self, backend: Backend = FLOAT) -> Scalar:
        return self.weight_of(self.vertices(), backend)

    def is_independent(self, S: Iterable[int]) -> bool:
        """True iff no edge of G joins two vertices of ``S``."""
        S = set(S)
        return all(not (set(self._adj[v]) & S) for v in S)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, S: Sequence[int]) -> tuple["WeightedGraph", dict[int, int]]:
        """Induced subgraph on ``S`` plus the old-id -> new-id map.

        Vertices are renumbered ``0..len(S)-1`` in the sorted order of ``S``
        so the result is deterministic; labels and weights carry over.
        """
        S_sorted = sorted(set(S))
        remap = {old: new for new, old in enumerate(S_sorted)}
        sub_edges = [
            (remap[u], remap[v])
            for (u, v) in self.edges
            if u in remap and v in remap
        ]
        return (
            WeightedGraph(
                len(S_sorted),
                sub_edges,
                [self.weights[v] for v in S_sorted],
                [self.labels[v] for v in S_sorted],
                # Fast path: edges/weights come from this (already
                # validated) graph, remapped injectively.
                validate=False,
            ),
            remap,
        )

    def with_weight(self, v: int, w: Scalar) -> "WeightedGraph":
        """Copy of the graph with vertex ``v``'s weight replaced.

        This is the primitive behind the misreporting strategy of [7]
        (vertex reports ``x`` in ``[0, w_v]``): everything else is shared
        structurally, only the weight tuple is rebuilt.
        """
        if not (0 <= v < self.n):
            raise GraphError(f"vertex {v} out of range")
        ws = list(self.weights)
        ws[v] = w
        return WeightedGraph(self.n, self.edges, ws, self.labels)

    def with_weights(self, weights: Sequence[Scalar]) -> "WeightedGraph":
        """Copy with the full weight vector replaced (same topology)."""
        return WeightedGraph(self.n, self.edges, weights, self.labels)

    def _with_weights_unchecked(self, weights: Sequence[Scalar]) -> "WeightedGraph":
        """Trusted weight replacement sharing every structural member.

        The best-response sweep materializes one candidate graph per split;
        rebuilding ``_adj``/``_edge_set`` (and re-sorting the edge tuple)
        per candidate was pure waste since the topology never changes.  The
        caller vouches that ``weights`` is a valid vector of length ``n``
        (derived from already-validated scalars).  Structural caches are
        shared -- including the canonical structure bytes -- while the
        weight-dependent caches start empty.
        """
        out = WeightedGraph.__new__(WeightedGraph)
        out.n = self.n
        out.edges = self.edges
        out.weights = tuple(weights)
        out.labels = self.labels
        out._adj = self._adj
        out._edge_set = self._edge_set
        out._cols = None
        out._struct = self._struct
        out._sig = None
        return out

    def relabel(self, labels: Sequence[str]) -> "WeightedGraph":
        return WeightedGraph(self.n, self.edges, self.weights, labels,
                             validate=False)

    # ------------------------------------------------------------------
    # structure predicates
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        seen = [False] * self.n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self.n

    def is_ring(self) -> bool:
        """True iff G is a single cycle on >= 3 vertices."""
        return (
            self.n >= 3
            and all(self.degree(v) == 2 for v in self.vertices())
            and self.is_connected()
        )

    def is_path_graph(self) -> bool:
        """True iff G is a single simple path (>= 2 vertices)."""
        if self.n < 2 or not self.is_connected():
            return False
        degs = sorted(self.degree(v) for v in self.vertices())
        return degs[0] == degs[1] == 1 and all(d == 2 for d in degs[2:])

    def is_bipartite(self) -> bool:
        color = [-1] * self.n
        for s in self.vertices():
            if color[s] != -1:
                continue
            color[s] = 0
            stack = [s]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if color[v] == -1:
                        color[v] = 1 - color[u]
                        stack.append(v)
                    elif color[v] == color[u]:
                        return False
        return True

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(n={self.n}, m={self.m})"

    def __getstate__(self):
        # Pickle only the defining data; adjacency, edge-set and columnar
        # caches are derived state.  This keeps EngineSpec/worker payloads
        # small (cheap spawn) and guarantees unpickled graphs rebuild their
        # caches against the local numpy rather than shipping arrays.
        return (self.n, self.edges, self.weights, self.labels)

    def __setstate__(self, state):
        n, edges, weights, labels = state
        self.__init__(n, edges, weights, labels, validate=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.edges == other.edges
            and self.weights == other.weights
        )

    def __hash__(self) -> int:
        return hash((self.n, self.edges, self.weights))

    def label_map(self) -> Mapping[str, int]:
        """Label -> id lookup (labels are not required to be unique; the
        last occurrence wins, matching dict construction order)."""
        return {lab: i for i, lab in enumerate(self.labels)}
