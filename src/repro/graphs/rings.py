"""Ring- and path-specific helpers.

The Sybil analysis of the paper lives entirely on rings and on the paths
obtained by splitting one ring vertex.  This module provides the coordinate
bookkeeping for that world: ring order recovery, the canonical
"cut-at-vertex" path, and neighbor identification, so that the attack code
never re-derives adjacency by hand.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import GraphError
from .weighted_graph import WeightedGraph

__all__ = [
    "ring_order",
    "ring_neighbors",
    "path_order",
    "path_endpoints",
    "cut_ring_at",
    "cut_index_map",
    "honest_ids_after_cut",
]


def ring_order(g: WeightedGraph, start: int = 0) -> list[int]:
    """Vertices of a ring in cyclic order starting at ``start``.

    The direction is chosen so the second vertex is the smaller-id neighbor
    of ``start``, making the order deterministic.
    """
    if not g.is_ring():
        raise GraphError("ring_order requires a ring graph")
    order = [start]
    prev = start
    cur = min(g.neighbors(start))
    while cur != start:
        order.append(cur)
        nbrs = g.neighbors(cur)
        nxt = nbrs[0] if nbrs[1] == prev else nbrs[1]
        prev, cur = cur, nxt
    return order


def ring_neighbors(g: WeightedGraph, v: int) -> tuple[int, int]:
    """The two neighbors of ``v`` on a ring, as a sorted pair."""
    if not g.is_ring():
        raise GraphError("ring_neighbors requires a ring graph")
    a, b = g.neighbors(v)
    return (a, b)


def path_order(g: WeightedGraph) -> list[int]:
    """Vertices of a path graph from one endpoint to the other.

    Starts at the smaller-id endpoint for determinism.
    """
    if g.n == 1:
        return [0]
    if not g.is_path_graph():
        raise GraphError("path_order requires a path graph")
    start = min(v for v in g.vertices() if g.degree(v) == 1)
    order = [start]
    prev = -1
    cur = start
    while True:
        nxt = [u for u in g.neighbors(cur) if u != prev]
        if not nxt:
            break
        prev, cur = cur, nxt[0]
        order.append(cur)
    return order


def path_endpoints(g: WeightedGraph) -> tuple[int, int]:
    """The two degree-1 endpoints of a path graph (sorted)."""
    if not g.is_path_graph():
        raise GraphError("path_endpoints requires a path graph")
    ends = [v for v in g.vertices() if g.degree(v) == 1]
    return (ends[0], ends[1])


def cut_ring_at(g: WeightedGraph, v: int, w1, w2) -> tuple[WeightedGraph, int, int]:
    """Split ring vertex ``v`` into two path endpoints ``v1``/``v2``.

    Returns the path ``P_v(w1, w2)`` of the paper plus the new ids of
    ``v1`` (weight ``w1``) and ``v2`` (weight ``w2``).  ``v1`` attaches to
    the smaller-id neighbor of ``v`` and ``v2`` to the larger one; the
    interior of the path keeps the original vertices' weights and labels.

    Layout of the returned path, in path order::

        v1 -- u_a -- ... -- u_b -- v2

    where ``u_a < u_b`` are the ring neighbors of ``v``.  New ids: interior
    vertices come first in ring order starting from ``u_a``, then ``v1`` is
    id ``n-1`` and ``v2`` is id ``n``?  No -- we keep it simpler: id 0 is
    ``v1``, ids ``1..n-1`` are the ring vertices other than ``v`` in ring
    order from ``u_a`` to ``u_b``, and id ``n`` is ``v2``.
    """
    if not g.is_ring():
        raise GraphError("cut_ring_at requires a ring graph")
    u_a, u_b = ring_neighbors(g, v)
    # ring order starting at v heading toward u_a first:
    order = ring_order(g, start=v)
    if order[1] != u_a:
        order = [v] + order[1:][::-1]
    assert order[1] == u_a and order[-1] == u_b
    interior = order[1:]  # u_a ... u_b, the n-1 honest vertices
    n = g.n
    weights = [w1] + [g.weights[u] for u in interior] + [w2]
    labels = (
        [f"{g.labels[v]}^1"]
        + [g.labels[u] for u in interior]
        + [f"{g.labels[v]}^2"]
    )
    edges = [(i, i + 1) for i in range(n)]
    return WeightedGraph(n + 1, edges, weights, labels), 0, n


def cut_index_map(g: WeightedGraph, v: int) -> dict[int, int]:
    """Original-id -> path-id map for the path of :func:`cut_ring_at`.

    ``cut_ring_at`` relabels every honest vertex: the interior of the
    returned path is the ring order from ``v``'s smaller-id neighbor, so
    original id ``u`` generally does *not* keep its index.  Any caller that
    reads a bystander's utility off the post-split allocation must
    translate through this map; indexing the path by original ids silently
    reads some other vertex's utility (the stale-index bug the composed
    attacks in :mod:`repro.attack.combined` regression-test against).

    ``v`` itself is absent from the map -- it becomes the two endpoints
    ``0`` and ``n`` of the path.
    """
    if not g.is_ring():
        raise GraphError("cut_index_map requires a ring graph")
    u_a, _u_b = ring_neighbors(g, v)
    # Must mirror cut_ring_at's ordering exactly: ring order starting at v
    # heading toward the smaller-id neighbor first.
    order = ring_order(g, start=v)
    if order[1] != u_a:
        order = [v] + order[1:][::-1]
    return {u: i for i, u in enumerate(order[1:], start=1)}


def honest_ids_after_cut(n: int) -> list[int]:
    """Ids of the non-manipulative vertices on the path from
    :func:`cut_ring_at` applied to a ring of ``n`` vertices."""
    return list(range(1, n))
