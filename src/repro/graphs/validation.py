"""Structural validation helpers shared by tests and experiments.

These are the *post-construction* validators: they must hold even for
graphs built through the trusted fast path
(``WeightedGraph(..., validate=False)``), so they re-derive every property
from the structures themselves rather than trusting constructor
invariants.  The fuzz harness leans on exactly this: a graph smuggled past
the constructor must still be caught here, with a typed error.
"""

from __future__ import annotations

import math

from ..exceptions import GraphError, InvalidWeightError
from .weighted_graph import WeightedGraph

__all__ = ["require_positive_weights", "require_finite_weights",
           "require_ring", "require_simple", "check_no_isolated"]


def require_positive_weights(g: WeightedGraph) -> None:
    """Raise unless every weight is strictly positive (and finite).

    The paper's original instances have ``w_v > 0``; zeros appear only on
    split/misreported vertices.  Experiments that sample "honest" instances
    call this to guard their generators.  ``NaN`` fails ``w > 0`` by IEEE
    semantics and ``inf`` is rejected explicitly, so weights that bypassed
    constructor validation still die here with a typed error.
    """
    for v, w in enumerate(g.weights):
        if not w > 0 or (isinstance(w, float) and not math.isfinite(w)):
            raise InvalidWeightError(f"vertex {v} has non-positive or "
                                     f"non-finite weight {w!r}")


def require_finite_weights(g: WeightedGraph) -> None:
    """Raise unless every weight is a finite number ``>= 0`` (zeros allowed,
    as on split/misreported vertices)."""
    for v, w in enumerate(g.weights):
        try:
            neg = w < 0
        except TypeError as exc:
            raise InvalidWeightError(
                f"vertex {v} weight is not a number: {w!r}") from exc
        if neg or (isinstance(w, float) and not math.isfinite(w)):
            raise InvalidWeightError(
                f"vertex {v} weight must be finite and >= 0, got {w!r}")


def require_simple(g: WeightedGraph) -> None:
    """Raise unless the adjacency structure is a simple graph.

    A graph built through the ``validate=False`` fast path can carry
    self-loops or parallel edges in its adjacency lists; the total degree
    then disagrees with ``2 * m`` (each duplicate or loop inflates it), so
    the check is independent of how the graph was constructed.
    """
    total_degree = sum(g.degree(v) for v in g.vertices())
    if total_degree != 2 * g.m:
        raise GraphError(
            f"graph is not simple: adjacency lists carry {total_degree} arc "
            f"endpoints for {g.m} undirected edges (self-loop or multi-edge)"
        )
    for v in g.vertices():
        if len(set(g.neighbors(v))) != g.degree(v):
            raise GraphError(f"vertex {v} has parallel edges")
        if v in g.neighbors(v):
            raise GraphError(f"vertex {v} has a self-loop")


def require_ring(g: WeightedGraph) -> None:
    require_simple(g)
    if not g.is_ring():
        raise GraphError("expected a ring graph")


def check_no_isolated(g: WeightedGraph) -> None:
    """Isolated vertices have no one to exchange with; Gamma(S) arguments
    break down.  The decomposition refuses them explicitly rather than
    producing a pair with an empty neighbor set."""
    for v in g.vertices():
        if g.degree(v) == 0:
            raise GraphError(f"vertex {v} is isolated; resource sharing is undefined")
