"""Structural validation helpers shared by tests and experiments."""

from __future__ import annotations

from ..exceptions import GraphError, InvalidWeightError
from .weighted_graph import WeightedGraph

__all__ = ["require_positive_weights", "require_ring", "check_no_isolated"]


def require_positive_weights(g: WeightedGraph) -> None:
    """Raise unless every weight is strictly positive.

    The paper's original instances have ``w_v > 0``; zeros appear only on
    split/misreported vertices.  Experiments that sample "honest" instances
    call this to guard their generators.
    """
    for v, w in enumerate(g.weights):
        if not w > 0:
            raise InvalidWeightError(f"vertex {v} has non-positive weight {w!r}")


def require_ring(g: WeightedGraph) -> None:
    if not g.is_ring():
        raise GraphError("expected a ring graph")


def check_no_isolated(g: WeightedGraph) -> None:
    """Isolated vertices have no one to exchange with; Gamma(S) arguments
    break down.  The decomposition refuses them explicitly rather than
    producing a pair with an empty neighbor set."""
    for v in g.vertices():
        if g.degree(v) == 0:
            raise GraphError(f"vertex {v} is isolated; resource sharing is undefined")
