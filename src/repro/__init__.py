"""repro: resource sharing over rings -- proportional response, bottleneck
decomposition, and Sybil-attack incentive ratios.

A computational companion to Cheng, Deng & Li, "Tightening Up the Incentive
Ratio for Resource Sharing Over the Rings" (IPDPS 2020).  See README.md for
a guided tour and DESIGN.md for the paper -> module map.

Public API highlights
---------------------
Graphs:      :class:`~repro.graphs.WeightedGraph`, :func:`~repro.graphs.ring`
Mechanism:   :func:`~repro.core.bottleneck_decomposition`,
             :func:`~repro.core.bd_allocation`,
             :func:`~repro.core.proportional_response`
Attacks:     :func:`~repro.attack.split_ring`, :func:`~repro.attack.best_split`,
             :func:`~repro.attack.incentive_ratio`,
             :func:`~repro.attack.lower_bound_ring`
Engine:      :class:`~repro.engine.EngineContext` (solver choice, caching,
             counters -- thread one through any of the calls above)
Theory:      :mod:`repro.theory` (executable propositions/lemmas)
Experiments: :func:`repro.experiments.run_experiment` / the ``repro-exp`` CLI
"""

from ._version import __version__
from .numeric import EXACT, FLOAT, Backend, make_float_backend
from .engine import EngineContext, EngineSpec, SOLVERS
from .exceptions import ReproError
from .graphs import WeightedGraph, ring, path, random_ring
from .core import (
    bottleneck_decomposition,
    bd_allocation,
    proportional_response,
    BottleneckDecomposition,
    Allocation,
)
from .attack import (
    split_ring,
    best_split,
    incentive_ratio,
    lower_bound_ring,
    lower_bound_series,
)

__all__ = [
    "__version__",
    "EXACT",
    "FLOAT",
    "Backend",
    "make_float_backend",
    "EngineContext",
    "EngineSpec",
    "SOLVERS",
    "ReproError",
    "WeightedGraph",
    "ring",
    "path",
    "random_ring",
    "bottleneck_decomposition",
    "bd_allocation",
    "proportional_response",
    "BottleneckDecomposition",
    "Allocation",
    "split_ring",
    "best_split",
    "incentive_ratio",
    "lower_bound_ring",
    "lower_bound_series",
]
