"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses map to the major
subsystems (graphs, flow, decomposition, allocation, attack search) so
tests can assert on the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidWeightError",
    "FlowError",
    "InfeasibleFlowError",
    "DecompositionError",
    "AllocationError",
    "ConvergenceError",
    "AttackError",
    "EngineError",
    "ExperimentError",
    "AuditError",
    "CorpusError",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class GraphError(ReproError):
    """Malformed graph structure (bad vertex ids, duplicate edges, ...)."""


class InvalidWeightError(GraphError):
    """A vertex weight is negative, NaN, or otherwise unusable."""


class FlowError(ReproError):
    """A flow computation failed or produced an inconsistent result."""


class InfeasibleFlowError(FlowError):
    """A flow that theory guarantees to saturate did not saturate.

    Raised by the BD allocation when the max flow fails to saturate every
    source and sink edge of a bottleneck pair network -- with exact
    arithmetic this indicates the claimed set was not a bottleneck.
    """


class DecompositionError(ReproError):
    """The bottleneck decomposition could not be computed or verified."""


class AllocationError(ReproError):
    """The BD allocation violates feasibility (negative / over-budget)."""


class ConvergenceError(ReproError):
    """Proportional response dynamics failed to converge within budget."""


class AttackError(ReproError):
    """A Sybil attack / best-response computation was ill-posed."""


class EngineError(ReproError):
    """Engine misconfiguration (unknown solver name, bad context spec)."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed internally."""


class AuditError(ReproError):
    """An oracle audit caught a violated invariant or solver disagreement.

    Carries the path of the corpus record serialized for the failure (when
    a corpus is configured) so the message alone is enough to replay it.
    """

    def __init__(self, message: str, record_path: str | None = None) -> None:
        super().__init__(message if record_path is None
                         else f"{message} [corpus record: {record_path}]")
        self.record_path = record_path


class CorpusError(ReproError):
    """A failure-corpus record is missing, malformed, or unreplayable."""
