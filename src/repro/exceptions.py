"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses map to the major
subsystems (graphs, flow, decomposition, allocation, attack search) so
tests can assert on the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidWeightError",
    "MalformedInputError",
    "FlowError",
    "InfeasibleFlowError",
    "DecompositionError",
    "AllocationError",
    "ConvergenceError",
    "NumericalInstabilityError",
    "AttackError",
    "EngineError",
    "ExperimentError",
    "SimError",
    "AuditError",
    "CorpusError",
    "RuntimeSupervisionError",
    "ResourceExhaustedError",
    "InjectedFault",
    "WorkerTimeoutError",
    "WorkerCrashError",
    "RemoteCellError",
    "CellFailedError",
    "CheckpointError",
    "ServeError",
    "OverloadedError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "ShutdownTimeoutError",
    "ServeRequestError",
    "DurabilityError",
    "CrashLoopError",
    "is_retryable",
    "is_escalatable",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class GraphError(ReproError):
    """Malformed graph structure (bad vertex ids, duplicate edges, ...)."""


class InvalidWeightError(GraphError):
    """A vertex weight is negative, NaN, or otherwise unusable."""


class MalformedInputError(ReproError):
    """Untrusted input rejected at a serialization/ingestion boundary.

    Raised by :mod:`repro.guard.validate` and the :mod:`repro.io` loaders
    for inputs that are wrong *before* any graph exists: non-finite,
    negative, or non-numeric scalars, malformed ``"p/q"`` fraction strings
    (including zero denominators), JSON payloads of the wrong shape, and
    absurd sizes that would exhaust memory just being materialized.  Kept
    distinct from :class:`GraphError` (a structurally inconsistent graph)
    so callers can tell "the bytes were garbage" from "the graph was bad".
    """


class FlowError(ReproError):
    """A flow computation failed or produced an inconsistent result."""


class InfeasibleFlowError(FlowError):
    """A flow that theory guarantees to saturate did not saturate.

    Raised by the BD allocation when the max flow fails to saturate every
    source and sink edge of a bottleneck pair network -- with exact
    arithmetic this indicates the claimed set was not a bottleneck.
    """


class DecompositionError(ReproError):
    """The bottleneck decomposition could not be computed or verified."""


class AllocationError(ReproError):
    """The BD allocation violates feasibility (negative / over-budget)."""


class ConvergenceError(ReproError):
    """An iterative solve exceeded its iteration budget.

    Raised by the proportional response dynamics and the Dinkelbach
    parametric iteration.  Structured so the runtime supervisor can act on
    it: ``signature`` identifies the instance (a stable content hash,
    re-derivable from the graph), ``residual`` is the last observed
    convergence gap, and ``iterations`` the budget that was exhausted.
    The error is *retryable* and *escalatable* (see :func:`is_retryable` /
    :func:`is_escalatable`): a cell that fails to converge in floats is
    re-run under the exact ``Fraction`` backend.
    """

    def __init__(
        self,
        message: str,
        signature: str | None = None,
        residual: float | None = None,
        iterations: int | None = None,
    ) -> None:
        detail = message
        if signature is not None:
            detail += f" [instance {signature}]"
        if residual is not None:
            detail += f" (residual {residual:g})"
        super().__init__(detail)
        self.signature = signature
        self.residual = residual
        self.iterations = iterations


class NumericalInstabilityError(ReproError):
    """A NaN or infinity surfaced where the theory guarantees a finite value.

    The canonical producer is float overflow on extreme instances (weights
    near ``1e308`` overflow the parametric capacities ``lambda * w`` and the
    weight sums, so the decomposition silently computes ``alpha = nan`` --
    see ``corpus/decomposition-*`` for the witnessed class).  The engine
    raises this *typed* error at the flow boundary instead of letting the
    NaN propagate into results; the supervisor treats it as escalatable and
    retries the cell under exact arithmetic, where no overflow exists.
    """

    def __init__(self, message: str, signature: str | None = None) -> None:
        super().__init__(message if signature is None
                         else f"{message} [instance {signature}]")
        self.signature = signature


class AttackError(ReproError):
    """A Sybil attack / best-response computation was ill-posed."""


class EngineError(ReproError):
    """Engine misconfiguration (unknown solver name, bad context spec)."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed internally."""


class SimError(ReproError):
    """A population scenario is ill-posed or a simulation run failed.

    Raised by :mod:`repro.sim` for invalid scenario parameters (unknown
    strategy names, infeasible population bounds) and for runner-level
    misuse; attack/engine failures inside a simulation keep their own
    typed classes so the runtime supervisor's retry/escalation rules see
    them unchanged.
    """


class AuditError(ReproError):
    """An oracle audit caught a violated invariant or solver disagreement.

    Carries the path of the corpus record serialized for the failure (when
    a corpus is configured) so the message alone is enough to replay it.
    """

    def __init__(self, message: str, record_path: str | None = None) -> None:
        super().__init__(message if record_path is None
                         else f"{message} [corpus record: {record_path}]")
        self.record_path = record_path


class CorpusError(ReproError):
    """A failure-corpus record is missing, malformed, or unreplayable."""


# ---------------------------------------------------------------------------
# runtime supervision (see repro.runtime)
# ---------------------------------------------------------------------------

class RuntimeSupervisionError(ReproError):
    """Base class for the supervised-execution layer's own failures."""


class InjectedFault(RuntimeSupervisionError):
    """A deterministic fault fired by :mod:`repro.runtime.faults`.

    Only ever raised when fault injection is explicitly configured
    (``--inject-faults``); retryable so a supervised run recovers and
    produces output bit-identical to a fault-free run.
    """

    def __init__(self, message: str, site: str = "", rule: str = "") -> None:
        super().__init__(message)
        self.site = site
        self.rule = rule


class ResourceExhaustedError(RuntimeSupervisionError):
    """A cell hit its resource envelope (RLIMIT_AS / RLIMIT_CPU / size cap).

    Raised in three places: a worker whose allocation fails under the
    per-worker ``RLIMIT_AS`` envelope translates the resulting
    :class:`MemoryError` into this typed error; the brute-force oracles
    refuse instances above the configured enumeration cap before starting
    a ``2^n`` loop; and the serial guarded path translates in-process
    ``MemoryError``.  Retryable *and* escalatable, so a supervised sweep
    takes the standard recovery ladder -- backoff retry, then the
    escalation hook (which runs in the supervisor process, outside the
    envelope) -- instead of OOM-killing the pool.  ``resource`` names which
    envelope tripped (``"memory"``, ``"cpu"``, or ``"size"``).
    """

    def __init__(self, message: str, resource: str = "memory") -> None:
        super().__init__(message)
        self.resource = resource


class WorkerTimeoutError(RuntimeSupervisionError):
    """A cell exceeded its wall-clock budget and its worker was killed."""


class WorkerCrashError(RuntimeSupervisionError):
    """A worker process died (OOM kill, segfault, injected kill) mid-cell."""


class RemoteCellError(RuntimeSupervisionError):
    """A worker-side exception, reconstructed on the supervisor side.

    Worker exceptions cross the result queue as plain metadata (type name,
    message, retryability flags) rather than pickled objects, so a failure
    in *any* exception type -- including ones that do not pickle -- is
    reported faithfully.
    """

    def __init__(self, type_name: str, message: str,
                 retryable: bool, escalatable: bool) -> None:
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.retryable = retryable
        self.escalatable = escalatable


class CellFailedError(RuntimeSupervisionError):
    """A cell failed permanently: retries (and escalation) exhausted."""

    def __init__(self, index: int, cause: Exception) -> None:
        super().__init__(f"cell {index} failed after retries: "
                         f"{type(cause).__name__}: {cause}")
        self.index = index
        self.cause = cause


class CheckpointError(RuntimeSupervisionError):
    """A checkpoint journal is unreadable or belongs to a different sweep."""


# ---------------------------------------------------------------------------
# serving overload semantics (see repro.serve.resilience)
# ---------------------------------------------------------------------------

class ServeError(ReproError):
    """Base class for the serving layer's overload/lifecycle failures."""


class OverloadedError(ServeError):
    """A request was shed by admission control: the intake queue is full.

    Carries ``retry_after_ms``, the server's estimate of when capacity
    frees up (derived from the flush-duration EWMA and the backlog depth).
    Shedding is a *typed response on a live connection* -- never a dropped
    socket -- and the request performed no work, so a client retry after
    the hint is safe and idempotent by the canonical-fingerprint contract.
    Deliberately **not** supervisor-retryable: the retry decision belongs
    to the client (which knows its deadline), not the worker ladder.
    """

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class DeadlineExceededError(ServeError):
    """A request's ``deadline_ms`` budget expired before a result landed.

    Raised server-side when the propagated deadline runs out anywhere in
    the ladder (queue wait, batch linger, supervised solve incl. retries)
    and client-side by :class:`repro.serve.client.ResilientClient` when
    the overall budget is exhausted across retries.  Not retryable: by
    construction there is no time left to retry in.
    """


class CircuitOpenError(ServeError):
    """A shard's circuit breaker is in cache-only brownout; the miss was
    fast-failed without solving.  ``retry_after_ms`` reports the remaining
    cooldown of the breaker's current open window."""

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ShutdownTimeoutError(ServeError):
    """A graceful server stop did not complete within its timeout.

    Raised by :meth:`repro.serve.ServeHandle.stop` when the server thread
    fails to join -- a hung shutdown used to return silently and leak the
    thread; now the caller (tests, CI, the CLI) sees it loudly.
    """


class DurabilityError(ServeError):
    """The crash-durability state (request journal / cache snapshot) is
    unusable: mid-file corruption, a foreign structure fingerprint, or an
    unwritable configured path.

    Torn *tail* lines are never this error -- they are the write in
    flight at kill time and recovery truncates them silently, exactly
    like :class:`CheckpointError` recovery in sweep journals.  This error
    means the bytes on disk cannot be trusted past the torn-tail model,
    and the durable server must fast-fail (or cold-start, where the
    config says recovery is preferred) rather than serve stale state.
    """


class CrashLoopError(ServeError):
    """The ``repro-serve supervise`` watchdog gave up restarting.

    Raised after ``max_crash_loops`` consecutive child deaths (exit or
    missed-heartbeat hang) without an intervening healthy period -- a
    daemon that cannot stay up is a configuration or environment problem
    a restart loop will never fix, and looping forever hides it.  Carries
    ``restarts`` (total respawns performed) and ``last_exit`` (the final
    child's exit code, or ``None`` when it was killed for a hang).
    """

    def __init__(self, message: str, restarts: int = 0,
                 last_exit: int | None = None) -> None:
        super().__init__(message)
        self.restarts = restarts
        self.last_exit = last_exit


class ServeRequestError(ServeError):
    """A typed error envelope received by a serve *client*, rehydrated.

    The wire carries ``error.type``/``error.message`` rather than pickled
    exceptions (mirroring :class:`RemoteCellError` at the worker boundary);
    the resilient client raises this for terminal non-retryable envelopes
    so callers can dispatch on ``type_name``.
    """

    def __init__(self, type_name: str, message: str) -> None:
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name


#: Exception types a supervised retry can plausibly fix: injected faults
#: and infrastructure failures (timeout, crash) are transient by
#: construction; the numeric family is deterministic but *escalatable*.
_RETRYABLE = (
    ConvergenceError,
    NumericalInstabilityError,
    AuditError,
    InjectedFault,
    WorkerTimeoutError,
    WorkerCrashError,
    ResourceExhaustedError,
)

#: The subset of retryable failures where a plain retry cannot help but a
#: precision escalation (exact ``Fraction`` backend) can: the failure is a
#: deterministic artifact of float arithmetic or a violated invariant.
_ESCALATABLE = (
    ConvergenceError,
    NumericalInstabilityError,
    AuditError,
    # The escalation hook runs in the supervisor process with no rlimit
    # envelope, so a cell that blew its worker's memory/CPU budget gets one
    # unconstrained rerun before the sweep gives up on it.
    ResourceExhaustedError,
)


def is_retryable(exc: BaseException) -> bool:
    """True when the supervisor should re-run the failed cell."""
    if isinstance(exc, RemoteCellError):
        return exc.retryable
    return isinstance(exc, _RETRYABLE)


def is_escalatable(exc: BaseException) -> bool:
    """True when the failed cell should be re-run under exact arithmetic."""
    if isinstance(exc, RemoteCellError):
        return exc.escalatable
    return isinstance(exc, _ESCALATABLE)
