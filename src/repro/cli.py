"""Command-line entry point: ``repro-exp``.

Usage::

    repro-exp list                     # enumerate experiments
    repro-exp run EXP-T8 [--scale default] [--seed 0] [--json out.json]
    repro-exp all [--scale smoke]      # run the full suite

Engine flags (``run`` / ``all``): ``--solver`` picks the max-flow
implementation, ``--no-cache`` disables the decomposition cache, and
``--stats`` prints engine counters (flow calls, cache hits, phase timings)
after each experiment.

Audit flags: ``--audit LEVEL`` (``off``/``cheap``/``differential``/
``paranoid``) attaches the :mod:`repro.oracle` audit layer so every flow
solve, decomposition, allocation, and best-response sweep of the run is
validated as it happens; violations are serialized into ``--corpus DIR``
(default ``corpus/``) for later ``repro-oracle replay``.

Runtime flags (``run`` / ``all``): ``--workers N`` runs sweep cells across
N processes; ``--timeout S``, ``--retries K``, and ``--start-method``
configure the :mod:`repro.runtime` supervisor (per-cell wall-clock budget,
capped-backoff retries, explicit multiprocessing start method);
``--checkpoint PATH`` journals completed work so a killed run resumes
bit-identically; ``--inject-faults SPEC`` arms deterministic fault
injection (e.g. ``"cell:exc@3;worker:kill@5;flow:nan@40"``) for chaos
testing every recovery path.
"""

from __future__ import annotations

import argparse
import sys

from .engine import DEFAULT_CACHE_SIZE, SOLVERS, EngineContext, using_context
from .exceptions import ReproError
from .experiments import run_all, run_experiment
from .io import dump_result
from .runtime import (
    START_METHODS,
    RuntimePolicy,
    clear_injector,
    install_injector,
    parse_fault_spec,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Reproduction experiments for 'Tightening Up the Incentive "
                    "Ratio for Resource Sharing Over the Rings' (IPDPS 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("exp_id", help="experiment id, e.g. EXP-T8")
    _common(run_p)

    all_p = sub.add_parser("all", help="run the whole suite")
    _common(all_p)
    return parser


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", default="default", choices=["smoke", "default", "full"],
                   help="sweep size (smoke ~ seconds, full ~ minutes)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", default=None, help="also dump structured results to this path")
    p.add_argument("--solver", default=None, choices=sorted(SOLVERS.names()),
                   help="max-flow solver (default: dinic)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the bottleneck-decomposition cache")
    p.add_argument("--engine", default="columnar",
                   choices=["columnar", "classic"],
                   help="numeric substrate: columnar (CSR templates, "
                        "warm-started Dinkelbach, segment reuse in "
                        "best-response sweeps; bit-identical results) or "
                        "classic (per-call network builds; the reference "
                        "path the differential auditor cross-checks)")
    p.add_argument("--stats", action="store_true",
                   help="print engine counters (flow calls, cache hits, timings)")
    p.add_argument("--trace", action="store_true",
                   help="attach a hierarchical span tracer to the engine; "
                        "implies a span breakdown in the --stats report "
                        "(worker spans are merged back for parallel sweeps)")
    p.add_argument("--audit", default="off",
                   choices=["off", "cheap", "differential", "paranoid"],
                   help="validate every engine operation as it runs "
                        "(cheap: certificates; differential: + sampled "
                        "re-solves against independent oracles; paranoid: "
                        "everything, every call)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="failure-corpus directory for audit violations "
                        "(default: corpus/; implies nothing unless a "
                        "violation is found)")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="processes for parallel sweep cells (0 = serial)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-cell wall-clock budget in seconds; a worker "
                        "exceeding it is killed and the cell retried")
    p.add_argument("--retries", type=int, default=0, metavar="K",
                   help="retry budget for retryable cell failures "
                        "(worker deaths, injected faults, typed numeric "
                        "errors; exhausted numeric failures escalate to "
                        "the exact backend)")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="append-only resume journal; a rerun of the same "
                        "(seed, scale, engine) suite replays completed "
                        "work bit-identically")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault-injection spec, clauses "
                        "site:kind@n[:param] joined by ';' "
                        "(sites exp/cell/worker/flow; e.g. "
                        "'cell:exc@3;worker:kill@5;flow:nan@40')")
    p.add_argument("--start-method", default="fork", choices=list(START_METHODS),
                   help="multiprocessing start method for worker pools")
    p.add_argument("--max-memory", type=float, default=None, metavar="MB",
                   help="per-worker address-space cap in MiB "
                        "(RLIMIT_AS; a worker exceeding it fails its cell "
                        "with a typed, retryable ResourceExhaustedError "
                        "and the sweep degrades per --retries)")
    p.add_argument("--max-cpu", type=float, default=None, metavar="S",
                   help="per-worker CPU-seconds cap (RLIMIT_CPU; overruns "
                        "kill the worker and requeue its cell)")
    p.add_argument("--max-bruteforce", type=int, default=None, metavar="N",
                   help="largest active-set size brute-force oracles may "
                        "enumerate (default: 18); larger requests raise "
                        "ResourceExhaustedError instead of running 2^n")


def _engine_context(args: argparse.Namespace) -> EngineContext:
    """A fresh context per invocation, so ``--stats`` counts only this run."""
    ctx = EngineContext(
        solver=args.solver or "dinic",
        cache_size=0 if args.no_cache else DEFAULT_CACHE_SIZE,
        workers=args.workers,
        engine=args.engine,
    )
    if args.trace:
        from .obs import Tracer

        ctx.tracer = Tracer()
    if args.audit != "off":
        from .oracle import DEFAULT_CORPUS_DIR, attach_auditor

        attach_auditor(ctx, level=args.audit,
                       corpus_dir=args.corpus or DEFAULT_CORPUS_DIR)
    # --checkpoint journals at *experiment* granularity (passed to the
    # runner, not the policy): one file cannot serve as both the suite
    # journal and every inner sweep's cell journal.  Sweep-level cell
    # journals remain available programmatically via
    # ``parallel_incentive_sweep(checkpoint=...)``.
    policy = RuntimePolicy(
        timeout=args.timeout,
        retries=args.retries,
        start_method=args.start_method,
        faults=args.inject_faults,
        max_memory_mb=args.max_memory,
        max_cpu_seconds=args.max_cpu,
        max_bruteforce_n=args.max_bruteforce,
    )
    ctx.runtime = policy
    if args.inject_faults:
        install_injector(parse_fault_spec(args.inject_faults),
                         counters=ctx.counters)
    return ctx


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            from .experiments import EXPERIMENTS

            for exp_id, mod in EXPERIMENTS.items():
                print(f"{exp_id:10s} {mod.TITLE}")
            return 0
        if args.command == "run":
            ctx = _engine_context(args)
            try:
                with using_context(ctx):
                    out = run_experiment(args.exp_id, seed=args.seed,
                                         scale=args.scale, ctx=ctx,
                                         checkpoint=args.checkpoint)
            finally:
                clear_injector()
            print(out.render(stats=args.stats))
            if args.json:
                dump_result({"exp_id": out.exp_id, "ok": out.ok, "data": out.data}, args.json)
            return 0 if out.ok else 1
        if args.command == "all":
            ctx = _engine_context(args)
            try:
                with using_context(ctx):
                    outs = run_all(seed=args.seed, scale=args.scale, ctx=ctx,
                                   checkpoint=args.checkpoint)
            finally:
                clear_injector()
            for out in outs:
                print(out.render(stats=args.stats))
                print()
            failed = [o.exp_id for o in outs if not o.ok]
            print(f"== suite summary: {len(outs) - len(failed)}/{len(outs)} passed"
                  + (f"; failed: {', '.join(failed)}" if failed else " =="))
            if args.json:
                dump_result(
                    {o.exp_id: {"ok": o.ok, "data": o.data} for o in outs}, args.json
                )
            return 0 if not failed else 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
