"""The ``repro-bench`` harness: a versioned, machine-readable perf baseline.

Every future optimisation PR is judged against a committed
``BENCH_<tag>.json``, so the report format is deliberately boring and
stable:

* ``format`` names the schema (bump :data:`BENCH_FORMAT` on breaking
  changes; ``compare`` refuses to mix formats);
* per-benchmark entries carry the **wall time** (best of ``rounds``), the
  full **counter snapshot** (deterministic for a fixed seed -- the
  regression signal that never jitters), and the **span breakdown** from a
  tracer attached for the run;
* a ``fingerprint`` block records the python/platform/package versions the
  numbers were taken on, because a wall-time diff across machines is noise
  pretending to be signal.

The suite itself mirrors ``benchmarks/``: the core primitives every
experiment is built from (decomposition float/exact, allocation, dynamics,
best response, the three max-flow solvers) plus two end-to-end experiment
smoke runs.  Workloads are pure functions of fixed seeds; each measurement
runs on a fresh :class:`~repro.engine.EngineContext` so cache warm-up
cannot leak between cases.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from .. import __version__ as _repro_version
from ..engine import DEFAULT_SOLVER, EngineContext, using_context
from ..exceptions import ReproError
from .tracer import Tracer

__all__ = [
    "BENCH_FORMAT",
    "BenchCase",
    "BENCH_SUITE",
    "bench_names",
    "select_cases",
    "run_bench",
    "save_report",
    "load_report",
    "compare_reports",
    "format_compare",
]

#: Schema tag written into every report; ``compare`` requires both sides
#: to match it exactly.
BENCH_FORMAT = "repro-bench/1"

#: Default regression threshold for ``compare``, in percent of the
#: baseline wall time.
DEFAULT_THRESHOLD_PCT = 25.0


class BenchError(ReproError):
    """A malformed bench report or an unknown benchmark selection."""


@dataclass(frozen=True)
class BenchCase:
    """One named workload.

    ``setup()`` builds the instance data once (not timed) and returns the
    callable that is timed; the callable receives the fresh, traced
    :class:`~repro.engine.EngineContext` of its measurement round.
    """

    name: str
    group: str
    setup: Callable[[], Callable[[EngineContext], object]]


def _ring(n: int, seed: int = 0, dist: str = "loguniform", lo=0.1, hi=10):
    from ..graphs import random_ring

    return random_ring(n, np.random.default_rng(seed), dist, lo, hi)


def _decompose_case(n: int, exact: bool) -> Callable[[], Callable]:
    def setup() -> Callable[[EngineContext], object]:
        from ..core import bottleneck_decomposition
        from ..numeric import EXACT, FLOAT

        backend = EXACT if exact else FLOAT
        g = _ring(n, 0, "integer", 1, 100) if exact else _ring(n)

        def run(ctx: EngineContext):
            return bottleneck_decomposition(g, backend, ctx)

        return run

    return setup


def _allocation_case(n: int) -> Callable[[], Callable]:
    def setup() -> Callable[[EngineContext], object]:
        from ..core import bd_allocation, bottleneck_decomposition
        from ..numeric import FLOAT

        g = _ring(n)
        decomp = bottleneck_decomposition(g, FLOAT, EngineContext())

        def run(ctx: EngineContext):
            return bd_allocation(g, decomp, FLOAT, ctx)

        return run

    return setup


def _dynamics_case(n: int) -> Callable[[], Callable]:
    def setup() -> Callable[[EngineContext], object]:
        from ..core import proportional_response

        g = _ring(n, 1, "uniform", 0.5, 2.0)

        def run(ctx: EngineContext):
            # mixing on a ring is diffusive (~n^2 steps): same budget rule
            # as benchmarks/bench_core.py
            return proportional_response(g, 40 * n * n, 1e-8, 0.3, ctx=ctx)

        return run

    return setup


def _best_response_case(n: int) -> Callable[[], Callable]:
    def setup() -> Callable[[EngineContext], object]:
        from ..attack import best_split

        g = _ring(n, 2)

        def run(ctx: EngineContext):
            return best_split(g, 0, grid=24, ctx=ctx)

        return run

    return setup


def _best_response_warm_case(n: int) -> Callable[[], Callable]:
    """Best response with the columnar engine pinned explicitly.

    ``best_response_n12`` runs whatever engine the measurement context
    defaults to; this case always exercises the warm-start + segment-reuse
    path (template instantiation, Dinkelbach seeding, reconstruction), so
    a default-engine change can never silently drop the coverage."""

    def setup() -> Callable[[EngineContext], object]:
        from ..attack import best_split

        g = _ring(n, 2)

        def run(ctx: EngineContext):
            warm_ctx = EngineContext(engine="columnar")
            warm_ctx.counters = ctx.counters
            warm_ctx.tracer = ctx.tracer
            return best_split(g, 0, grid=24, ctx=warm_ctx)

        return run

    return setup


def _maxflow_case(solver: str, n: int = 40) -> Callable[[], Callable]:
    def setup() -> Callable[[EngineContext], object]:
        from ..flow import FlowNetwork

        rng = np.random.default_rng(0)
        base = FlowNetwork(2 + 2 * n)
        for i in range(n):
            base.add_edge(0, 2 + i, float(rng.uniform(0.5, 2)))
            base.add_edge(2 + n + i, 1, float(rng.uniform(0.5, 2)))
            for j in range(n):
                if rng.random() < 0.2:
                    base.add_edge(2 + i, 2 + n + j, float("inf"))

        def run(ctx: EngineContext):
            solver_ctx = EngineContext(solver=solver, cache_size=0)
            solver_ctx.counters = ctx.counters
            solver_ctx.tracer = ctx.tracer
            return solver_ctx.max_flow(base.clone(), 0, 1)

        return run

    return setup


def _experiment_case(exp_id: str, scale: str = "smoke") -> Callable[[], Callable]:
    def setup() -> Callable[[EngineContext], object]:
        from ..experiments import run_experiment

        def run(ctx: EngineContext):
            with using_context(ctx):
                return run_experiment(exp_id, seed=0, scale=scale, ctx=ctx)

        return run

    return setup


def _sim_epoch_case(n: int, epochs: int = 3) -> Callable[[], Callable]:
    """One adaptive swap-churn scenario run serially.

    The scenario is EXP-S4's regime at size ``n``: constant ring size,
    rotating membership, narrow weight range -- the configuration where
    consecutive epochs reconstruct the previous decomposition instead of
    re-solving.  The warm-hint store is reset every round so each
    measurement performs identical work regardless of round count."""

    def setup() -> Callable[[EngineContext], object]:
        from ..sim import Scenario, reset_warm_store, run_scenario

        scenario = Scenario(
            name="bench-sim", strategies=("adaptive",), adversaries=2,
            n0=n, n_min=max(3, n - 2), n_max=n + 2, epochs=epochs,
            churn_rate=1.0, swap_churn=True, w_lo=0.5, w_hi=2.0, grid=12,
        )

        def run(ctx: EngineContext):
            reset_warm_store()
            return run_scenario(scenario, ctx=ctx, processes=0)

        return run

    return setup


#: The benchmark suite, in reporting order.  Names are stable identifiers:
#: renaming one orphans its baseline entry, so extend rather than rename.
BENCH_SUITE: tuple[BenchCase, ...] = (
    BenchCase("decompose_float_n8", "core", _decompose_case(8, exact=False)),
    BenchCase("decompose_float_n32", "core", _decompose_case(32, exact=False)),
    BenchCase("decompose_float_n128", "core", _decompose_case(128, exact=False)),
    BenchCase("decompose_exact_n8", "core", _decompose_case(8, exact=True)),
    BenchCase("decompose_exact_n32", "core", _decompose_case(32, exact=True)),
    BenchCase("allocation_n32", "core", _allocation_case(32)),
    BenchCase("allocation_n128", "core", _allocation_case(128)),
    BenchCase("dynamics_n16", "core", _dynamics_case(16)),
    BenchCase("dynamics_n64", "core", _dynamics_case(64)),
    BenchCase("best_response_n6", "attack", _best_response_case(6)),
    BenchCase("best_response_n12", "attack", _best_response_case(12)),
    BenchCase("maxflow_dinic_n40", "flow", _maxflow_case("dinic")),
    BenchCase("maxflow_edmonds_karp_n40", "flow", _maxflow_case("edmonds_karp")),
    BenchCase("maxflow_push_relabel_n40", "flow", _maxflow_case("push_relabel")),
    BenchCase("experiment_EXP-F1_smoke", "experiment", _experiment_case("EXP-F1")),
    BenchCase("experiment_EXP-T8_smoke", "experiment", _experiment_case("EXP-T8")),
    # Appended (never reordered: names are the baseline join key).
    BenchCase("best_response_warm_n12", "attack", _best_response_warm_case(12)),
    BenchCase("dynamics_vectorized_n128", "core", _dynamics_case(128)),
    BenchCase("sim_epoch_n12", "sim", _sim_epoch_case(12)),
    BenchCase("experiment_EXP-S1_smoke", "experiment", _experiment_case("EXP-S1")),
)


def bench_names() -> list[str]:
    return [c.name for c in BENCH_SUITE]


def select_cases(only: Optional[Sequence[str]]) -> list[BenchCase]:
    """Suite subset by substring filters (OR across filters); the full
    suite when ``only`` is empty.  Unknown filters fail loudly rather than
    silently benchmarking nothing."""
    if not only:
        return list(BENCH_SUITE)
    selected = [c for c in BENCH_SUITE if any(pat in c.name for pat in only)]
    if not selected:
        raise BenchError(
            f"no benchmark matches {list(only)!r}; known: {', '.join(bench_names())}"
        )
    return selected


def _fingerprint() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "repro": _repro_version,
    }


def run_bench(
    tag: str = "local",
    only: Optional[Sequence[str]] = None,
    rounds: int = 1,
    solver: str = DEFAULT_SOLVER,
) -> dict:
    """Run the suite (or the ``only`` subset) and return the report dict.

    Each round of each case gets a **fresh** context with a tracer
    attached, so counter totals are a pure function of the workload (and
    identical across rounds -- the deterministic half of the baseline),
    while ``wall_s`` takes the best of ``rounds`` to shave scheduler noise
    off the non-deterministic half.
    """
    if rounds < 1:
        raise BenchError(f"rounds must be >= 1, got {rounds}")
    cases = select_cases(only)
    benchmarks: dict[str, dict] = {}
    for case in cases:
        run = case.setup()
        best_wall = None
        counters: dict = {}
        spans: dict = {}
        for _ in range(rounds):
            ctx = EngineContext(solver=solver)
            ctx.tracer = Tracer()
            start = time.perf_counter()
            run(ctx)
            wall = time.perf_counter() - start
            if best_wall is None or wall < best_wall:
                best_wall = wall
            counters = ctx.counters.snapshot()
            spans = ctx.tracer.snapshot()
        phase_seconds = counters.pop("phase_seconds", {})
        benchmarks[case.name] = {
            "group": case.group,
            "wall_s": best_wall,
            "counters": counters,
            "phase_seconds": phase_seconds,
            "spans": spans,
        }
    totals: dict[str, object] = {"wall_s": sum(b["wall_s"] for b in benchmarks.values())}
    counter_totals: dict[str, int] = {}
    for b in benchmarks.values():
        for key, value in b["counters"].items():
            counter_totals[key] = counter_totals.get(key, 0) + value
    totals["counters"] = counter_totals
    return {
        "format": BENCH_FORMAT,
        "tag": tag,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rounds": rounds,
        "solver": solver,
        "fingerprint": _fingerprint(),
        "benchmarks": benchmarks,
        "totals": totals,
    }


def save_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchError(f"cannot read bench report {path!r}: {exc}") from exc
    if not isinstance(report, dict) or report.get("format") != BENCH_FORMAT:
        raise BenchError(
            f"{path!r} is not a {BENCH_FORMAT} report "
            f"(format={report.get('format') if isinstance(report, dict) else None!r})"
        )
    return report


def compare_reports(
    base: dict,
    new: dict,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    fail_on_counters: bool = False,
    allow_missing: bool = False,
) -> dict:
    """Diff two reports; the result dict says whether the gate passes.

    A benchmark **regresses** when its new wall time exceeds the baseline
    by more than ``threshold_pct`` percent.  Counter drift (any integer
    counter changing for the same benchmark) is always *reported* --
    it means the algorithmic work changed, not just the machine's mood --
    but only fails the gate with ``fail_on_counters`` (an intentional
    optimisation legitimately changes work counts; its PR updates the
    baseline in the same commit).

    Baseline benchmarks absent from ``new`` fail the gate unless
    ``allow_missing`` -- a full-suite rerun losing a benchmark is a
    regression, but a deliberate ``--only`` subset (CI's bench-smoke job)
    legitimately covers less than the committed baseline.
    """
    for side, rep in (("base", base), ("new", new)):
        if rep.get("format") != BENCH_FORMAT:
            raise BenchError(f"{side} report has format {rep.get('format')!r}, "
                             f"want {BENCH_FORMAT!r}")
    rows = []
    regressions = []
    counter_drift = []
    base_b = base.get("benchmarks", {})
    new_b = new.get("benchmarks", {})
    for name in sorted(set(base_b) & set(new_b)):
        b, n = base_b[name], new_b[name]
        delta_pct = (
            (n["wall_s"] - b["wall_s"]) / b["wall_s"] * 100.0
            if b["wall_s"] > 0 else 0.0
        )
        regressed = delta_pct > threshold_pct
        drifted = sorted(
            key
            for key in set(b.get("counters", {})) | set(n.get("counters", {}))
            if b.get("counters", {}).get(key, 0) != n.get("counters", {}).get(key, 0)
        )
        rows.append({
            "name": name,
            "base_wall_s": b["wall_s"],
            "new_wall_s": n["wall_s"],
            "delta_pct": delta_pct,
            "regressed": regressed,
            "counter_drift": drifted,
        })
        if regressed:
            regressions.append(name)
        if drifted:
            counter_drift.append(name)
    missing = sorted(set(base_b) - set(new_b))
    added = sorted(set(new_b) - set(base_b))
    ok = (not regressions
          and (allow_missing or not missing)
          and not (fail_on_counters and counter_drift))
    return {
        "ok": ok,
        "threshold_pct": threshold_pct,
        "rows": rows,
        "regressions": regressions,
        "counter_drift": counter_drift,
        "missing": missing,
        "added": added,
    }


def format_compare(result: dict) -> str:
    """Human-readable rendering of a :func:`compare_reports` result."""
    lines = [
        f"{'benchmark':34s} {'base':>10s} {'new':>10s} {'delta':>8s}  flags",
        "-" * 78,
    ]
    for row in result["rows"]:
        flags = []
        if row["regressed"]:
            flags.append("REGRESSED")
        if row["counter_drift"]:
            flags.append("counters: " + ",".join(row["counter_drift"]))
        lines.append(
            f"{row['name']:34s} {row['base_wall_s']:9.4f}s {row['new_wall_s']:9.4f}s "
            f"{row['delta_pct']:+7.1f}%  {' '.join(flags)}"
        )
    for name in result["missing"]:
        lines.append(f"{name:34s} -- missing from the new report --")
    for name in result["added"]:
        lines.append(f"{name:34s} -- new benchmark (no baseline) --")
    verdict = "OK" if result["ok"] else "FAIL"
    lines.append(
        f"== {verdict}: {len(result['regressions'])} regression(s) past "
        f"{result['threshold_pct']:g}%, {len(result['missing'])} missing, "
        f"{len(result['counter_drift'])} with counter drift =="
    )
    return "\n".join(lines)
