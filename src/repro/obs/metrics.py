"""One snapshot/merge protocol for every counter family, across processes.

The library already accumulates three counter families on one
:class:`~repro.engine.Counters` object (engine work, audit checks, runtime
recoveries) plus span statistics on an optional tracer.  What was missing
is the *cross-process* half of the story: contexts rebuilt inside worker
processes (:func:`repro.analysis.parallel._context_for`) did all the work
of a parallel sweep, and their counters died with the worker -- ``--stats``
silently reported near-zero totals for any run with ``--workers N``.

This module closes that gap with a deliberately tiny protocol:

* a worker process **registers** every engine context it rebuilds from a
  spec (:func:`register_worker_context`);
* after each completed cell it **drains** the delta -- counters and spans
  accumulated since the previous drain -- as one plain picklable dict
  (:func:`drain_worker_metrics`) that rides the existing per-worker result
  queue next to the cell's value (never inside it, so checkpoint journals
  and result bit-identity are untouched);
* the supervisor / sweep layer **absorbs** each delta into the parent
  context (:func:`absorb_metrics`).

Deltas, not totals, are load-bearing: worker contexts are memoized for the
life of the process and serve many cells, so shipping totals would
multiply-count earlier cells.  The registry tracks the last-reported
snapshot per source and ships only the difference, which also makes the
protocol safe under ``fork`` -- a child inherits the parent's registry
*and* its last-reported marks, so parent-side work done before the fork is
never re-reported by the child.

Everything here is duck-typed (a source needs ``.counters.snapshot()`` and
optionally ``.tracer.snapshot()``) so ``repro.obs`` stays a leaf package:
``repro.runtime`` can import it without cycles.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

__all__ = [
    "register_worker_context",
    "registered_worker_contexts",
    "begin_metrics_session",
    "end_metrics_session",
    "drain_worker_metrics",
    "sync_worker_metrics",
    "absorb_metrics",
    "diff_counter_snapshots",
    "diff_span_snapshots",
]

#: Process-local registered sources (engine contexts rebuilt in this
#: process from an :class:`~repro.engine.EngineSpec`).
_SOURCES: list = []
#: ``id(source)`` -> last-drained counter / span snapshots.
_LAST_COUNTERS: dict[int, dict] = {}
_LAST_SPANS: dict[int, dict] = {}
#: Serializes snapshot-vs-mark sections so concurrent drains (the serving
#: layer runs one supervised batch per shard on executor threads) each see
#: a delta exactly once.  Two unguarded drains racing on the same source
#: would both diff against the same stale mark and double-report the work.
_DRAIN_LOCK = threading.Lock()

# Quiesce the lock across fork: the serving layer forks worker processes
# from executor threads while *other* threads may be inside a drain, and a
# child forked at that moment would inherit a locked _DRAIN_LOCK with no
# thread left to release it -- its first register_worker_context() would
# deadlock.  Holding the lock over the fork (the same discipline the
# logging module uses for its handler locks) guarantees every child starts
# with it released.
os.register_at_fork(
    before=_DRAIN_LOCK.acquire,
    after_in_parent=_DRAIN_LOCK.release,
    after_in_child=_DRAIN_LOCK.release,
)


def register_worker_context(ctx) -> None:
    """Make ``ctx``'s counters (and tracer, if any) eligible for draining.

    Idempotent per object.  The registry keeps a strong reference -- its
    intended sources are the per-process memoized spec contexts, which live
    for the process anyway.
    """
    with _DRAIN_LOCK:
        if any(src is ctx for src in _SOURCES):
            return
        _SOURCES.append(ctx)


def registered_worker_contexts() -> tuple:
    """The registered sources (test/debug introspection)."""
    return tuple(_SOURCES)


def diff_counter_snapshots(cur: dict, last: Optional[dict]) -> dict:
    """``cur - last`` over a :meth:`~repro.engine.Counters.snapshot` dict.

    Integer counters subtract; the nested ``phase_seconds`` mapping
    subtracts per phase.  Zero entries are dropped so the result stays
    small on the wire; an all-zero delta collapses to ``{}``.
    """
    last = last or {}
    out: dict = {}
    for key, value in cur.items():
        if key == "phase_seconds":
            prev = last.get("phase_seconds", {})
            phases = {
                phase: secs - prev.get(phase, 0.0)
                for phase, secs in value.items()
                if secs - prev.get(phase, 0.0) != 0.0
            }
            if phases:
                out["phase_seconds"] = phases
        else:
            d = value - last.get(key, 0)
            if d:
                out[key] = d
    return out


def diff_span_snapshots(cur: dict, last: Optional[dict]) -> dict:
    """``cur - last`` over a :meth:`~repro.obs.Tracer.snapshot` dict."""
    last = last or {}
    out: dict = {}
    for path, stats in cur.items():
        prev = last.get(path, {})
        d = {
            "count": stats["count"] - prev.get("count", 0),
            "total_s": stats["total_s"] - prev.get("total_s", 0.0),
            "self_s": stats["self_s"] - prev.get("self_s", 0.0),
        }
        if d["count"] or d["total_s"] or d["self_s"]:
            out[path] = d
    return out


def _merge_counter_deltas(into: dict, delta: dict) -> None:
    for key, value in delta.items():
        if key == "phase_seconds":
            phases = into.setdefault("phase_seconds", {})
            for phase, secs in value.items():
                phases[phase] = phases.get(phase, 0.0) + secs
        else:
            into[key] = into.get(key, 0) + value


def _merge_span_deltas(into: dict, delta: dict) -> None:
    for path, stats in delta.items():
        cur = into.get(path)
        if cur is None:
            into[path] = dict(stats)
        else:
            cur["count"] += stats["count"]
            cur["total_s"] += stats["total_s"]
            cur["self_s"] += stats["self_s"]


def drain_worker_metrics() -> Optional[dict]:
    """Everything registered sources accumulated since the last drain.

    Returns ``{"counters": {...}, "spans": {...}}`` with empty parts
    omitted, or ``None`` when nothing changed -- the common case for cells
    that never touch an engine context, which then cost one ``None`` on the
    result queue instead of a dict.

    Draining *advances the marks* whether or not the caller keeps the
    result, which is exactly what the sweep layer wants: draining once
    before spawning workers discards work that belongs to earlier,
    already-reported runs (and synchronizes the marks a ``fork`` child will
    inherit).
    """
    counters_delta: dict = {}
    spans_delta: dict = {}
    with _DRAIN_LOCK:
        for src in _SOURCES:
            key = id(src)
            cur = src.counters.snapshot()
            _merge_counter_deltas(
                counters_delta, diff_counter_snapshots(cur, _LAST_COUNTERS.get(key))
            )
            _LAST_COUNTERS[key] = cur
            tracer = getattr(src, "tracer", None)
            if tracer is not None:
                cur_spans = tracer.snapshot()
                _merge_span_deltas(
                    spans_delta, diff_span_snapshots(cur_spans, _LAST_SPANS.get(key))
                )
                _LAST_SPANS[key] = cur_spans
    out: dict = {}
    if counters_delta:
        out["counters"] = counters_delta
    if spans_delta:
        out["spans"] = spans_delta
    return out or None


def sync_worker_metrics() -> None:
    """Advance the drain marks without reporting -- an explicit, readable
    spelling of 'discard whatever is pending' for sweep-start baselines."""
    drain_worker_metrics()


#: Open drain sessions (supervised maps currently bracketed by
#: begin/end).  Guarded by its own lock; ordering is always session lock
#: -> drain lock, never the reverse.
_ACTIVE_SESSIONS = 0
_SESSION_LOCK = threading.Lock()

os.register_at_fork(
    before=_SESSION_LOCK.acquire,
    after_in_parent=_SESSION_LOCK.release,
    after_in_child=_SESSION_LOCK.release,
)


def begin_metrics_session() -> None:
    """Open one accounting session (a ``supervised_map``'s bracket).

    Only the session that takes the count from 0 to 1 discards pending
    deltas (the sweep-start baseline).  An overlapping session -- the
    serving layer dispatches several shards' maps concurrently -- must
    *not* reset the marks: a sibling session's cells may have incremented
    a source's counters without having drained them yet, and a mark reset
    here would silently swallow that work.  Skipping the reset is safe:
    marks only advance under :data:`_DRAIN_LOCK`, so every increment is
    still reported by exactly one drain (attribution between overlapping
    sessions may shift, totals never do).

    The discard runs while the session lock is held, so a sibling's
    ``begin`` cannot slip work in between the count transition and the
    mark reset.
    """
    global _ACTIVE_SESSIONS
    with _SESSION_LOCK:
        if _ACTIVE_SESSIONS == 0:
            drain_worker_metrics()
        _ACTIVE_SESSIONS += 1


def end_metrics_session() -> None:
    """Close one accounting session opened by :func:`begin_metrics_session`."""
    global _ACTIVE_SESSIONS
    with _SESSION_LOCK:
        _ACTIVE_SESSIONS = max(0, _ACTIVE_SESSIONS - 1)


def absorb_metrics(delta: Optional[dict], counters=None, tracer=None) -> None:
    """Fold one drained delta into a parent's counters and/or tracer.

    ``counters`` takes the ``"counters"`` part via
    :meth:`~repro.engine.Counters.merge_snapshot`; ``tracer`` takes the
    ``"spans"`` part via :meth:`~repro.obs.Tracer.merge_snapshot`.  Either
    target may be ``None`` (that part is dropped), and ``delta=None`` is a
    no-op, so call sites do not need to guard.
    """
    if not delta:
        return
    if counters is not None and "counters" in delta:
        counters.merge_snapshot(delta["counters"])
    if tracer is not None and "spans" in delta:
        tracer.merge_snapshot(delta["spans"])
