"""Hierarchical span tracing on monotonic ``perf_counter`` time.

A :class:`Tracer` aggregates *spans* -- named, nestable wall-clock
intervals -- into per-path statistics.  Nesting is expressed in the
aggregation key: a ``"flow"`` span opened while a ``"decompose"`` span is
active lands under the path ``"decompose/flow"``, so one snapshot reads as
a call-tree profile of the hot loop without storing individual events.

Design constraints, in order:

* **near-zero overhead when disabled** -- call sites go through
  :meth:`repro.engine.EngineContext.span`, which returns a shared no-op
  context manager after a single attribute check when no tracer is
  attached; the tracer itself is only ever touched when tracing is on;
* **nesting-safe reentrancy** -- spans are plain context managers, so the
  ``with`` protocol guarantees balanced enter/exit even when the body
  raises, and recursive re-entry of the same name simply extends the path
  (``"decompose/decompose"``) instead of corrupting shared state;
* **mergeable** -- snapshots are plain dicts of sums, so worker-side span
  statistics ship over a result queue and fold into the parent tracer with
  :meth:`Tracer.merge_snapshot` (the same protocol as
  :meth:`repro.engine.Counters.merge_snapshot`).

Per-path statistics are ``count`` (spans closed), ``total_s`` (inclusive
wall time) and ``self_s`` (exclusive: inclusive minus the time spent in
child spans), all accumulated, never averaged -- rates are derived at
reporting time.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["Tracer", "SPAN_SEP"]

#: Separator between nested span names in an aggregation path.
SPAN_SEP = "/"


class _Span:
    """One active span: a tiny hand-rolled context manager.

    Hand-rolled (rather than ``@contextmanager``) to keep the enabled-path
    cost to two method calls and one list append/pop, and because
    ``__exit__`` runs on *any* unwind -- a raising body can never leave the
    tracer's stack unbalanced.
    """

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        t = self._tracer
        stack = t._stack
        path = stack[-1][0] + SPAN_SEP + self._name if stack else self._name
        # frame: [path, start, child_seconds_accumulator]
        stack.append([path, perf_counter(), 0.0])
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t = self._tracer
        path, start, child_s = t._stack.pop()
        elapsed = perf_counter() - start
        stats = t._spans.get(path)
        if stats is None:
            t._spans[path] = [1, elapsed, elapsed - child_s]
        else:
            stats[0] += 1
            stats[1] += elapsed
            stats[2] += elapsed - child_s
        if t._stack:
            t._stack[-1][2] += elapsed


class _NoopSpan:
    """Shared do-nothing span for a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Aggregating span tracer (see module docstring).

    ``enabled`` is a plain attribute so a caller holding a tracer can still
    switch it off wholesale; :meth:`repro.engine.EngineContext.span` checks
    it once per span and hands back the engine's shared no-op when false,
    and :meth:`span` makes the same check for callers holding the tracer
    directly.
    """

    __slots__ = ("enabled", "_stack", "_spans")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._stack: list[list] = []
        self._spans: dict[str, list] = {}

    def span(self, name: str):
        """Context manager timing one ``name`` span at the current depth
        (a shared no-op while the tracer is disabled)."""
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name)

    @property
    def depth(self) -> int:
        """Number of currently-open spans (0 outside any span)."""
        return len(self._stack)

    def snapshot(self) -> dict:
        """``{path: {"count", "total_s", "self_s"}}`` for every closed span.

        Open spans are not included -- a snapshot taken mid-span reports
        only completed work, so merging snapshots never double-counts.
        """
        return {
            path: {"count": s[0], "total_s": s[1], "self_s": s[2]}
            for path, s in self._spans.items()
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from a worker) into this
        tracer's aggregates.  Paths merge by exact string match."""
        for path, other in snap.items():
            stats = self._spans.get(path)
            if stats is None:
                self._spans[path] = [
                    int(other.get("count", 0)),
                    float(other.get("total_s", 0.0)),
                    float(other.get("self_s", 0.0)),
                ]
            else:
                stats[0] += int(other.get("count", 0))
                stats[1] += float(other.get("total_s", 0.0))
                stats[2] += float(other.get("self_s", 0.0))

    def reset(self) -> None:
        """Drop aggregated statistics (open spans keep timing correctly:
        their frames live on the stack, not in the aggregates)."""
        self._spans = {}
