"""``repro-bench``: run the benchmark suite, emit/compare perf baselines.

Three subcommands::

    repro-bench list                      # show the suite
    repro-bench run  [--tag T] [--only PAT ...] [--rounds N]
                     [--solver S] [--out PATH]
    repro-bench compare BASE NEW [--threshold PCT] [--fail-on-counters]

``run`` writes ``BENCH_<tag>.json`` (schema described in
:mod:`repro.obs.bench`); ``compare`` exits non-zero when any benchmark's
wall time regressed past the threshold or a baseline benchmark went
missing -- the shape CI wants for a perf gate.
"""

from __future__ import annotations

import argparse
import sys

from .bench import (
    BENCH_SUITE,
    DEFAULT_THRESHOLD_PCT,
    BenchError,
    compare_reports,
    format_compare,
    load_report,
    run_bench,
    save_report,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark harness with machine-readable baselines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    run_p = sub.add_parser("run", help="run benchmarks, write BENCH_<tag>.json")
    run_p.add_argument("--tag", default="local",
                       help="baseline tag recorded in the report (default: local)")
    run_p.add_argument("--out", default=None,
                       help="output path (default: BENCH_<tag>.json)")
    run_p.add_argument("--only", action="append", default=None, metavar="PAT",
                       help="substring filter; repeatable, OR semantics")
    run_p.add_argument("--rounds", type=int, default=3,
                       help="measurement rounds per case; wall time is the "
                            "best of them (default: 3)")
    run_p.add_argument("--solver", default=None,
                       help="max-flow solver for the engine contexts "
                            "(default: the engine default)")

    cmp_p = sub.add_parser("compare", help="diff two bench reports, gate on regressions")
    cmp_p.add_argument("base", help="baseline BENCH_*.json")
    cmp_p.add_argument("new", help="candidate BENCH_*.json")
    cmp_p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD_PCT,
                       metavar="PCT",
                       help=f"allowed wall-time regression in percent "
                            f"(default: {DEFAULT_THRESHOLD_PCT:g})")
    cmp_p.add_argument("--fail-on-counters", action="store_true",
                       help="also fail when deterministic counter totals drift")
    cmp_p.add_argument("--allow-missing", action="store_true",
                       help="don't fail when baseline benchmarks are absent "
                            "from the new report (deliberate --only subsets)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for case in BENCH_SUITE:
                print(f"{case.name:36s} [{case.group}]")
            return 0
        if args.command == "run":
            kwargs = {"tag": args.tag, "only": args.only, "rounds": args.rounds}
            if args.solver is not None:
                kwargs["solver"] = args.solver
            report = run_bench(**kwargs)
            out = args.out or f"BENCH_{args.tag}.json"
            save_report(report, out)
            total = report["totals"]["wall_s"]
            print(f"wrote {out}: {len(report['benchmarks'])} benchmark(s), "
                  f"total wall {total:.3f}s, rounds={report['rounds']}, "
                  f"solver={report['solver']}")
            return 0
        # compare
        result = compare_reports(
            load_report(args.base),
            load_report(args.new),
            threshold_pct=args.threshold,
            fail_on_counters=args.fail_on_counters,
            allow_missing=args.allow_missing,
        )
        print(format_compare(result))
        return 0 if result["ok"] else 1
    except BenchError as exc:
        print(f"repro-bench: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
