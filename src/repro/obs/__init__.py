"""Observability layer: span tracing, cross-process metrics, benchmarks.

Three pieces, layered so measurement is trustworthy before it is fast:

* :class:`Tracer` (:mod:`repro.obs.tracer`) -- hierarchical span tracing
  on ``perf_counter``, attached to an :class:`~repro.engine.EngineContext`
  and threaded through the flow/core/attack hot paths.  Disabled cost is
  one attribute check per call site.
* the metrics protocol (:mod:`repro.obs.metrics`) -- one snapshot/merge
  discipline for engine, audit, and runtime counters *across process
  boundaries*: worker contexts register themselves, drain deltas after
  each cell, and the supervisor folds them back into the parent context,
  so ``--stats`` totals from a parallel sweep equal the serial run's.
* the benchmark harness (:mod:`repro.obs.bench` + the ``repro-bench``
  CLI, :mod:`repro.obs.cli`) -- runs a named workload suite under tracing
  and emits a versioned, machine-readable ``BENCH_<tag>.json`` (wall
  times, span breakdown, counter totals, environment fingerprint) plus a
  ``compare`` gate that fails on regression past a threshold.

This ``__init__`` deliberately imports only the leaf modules (``tracer``,
``metrics``): :mod:`repro.runtime` imports the metrics protocol, and the
benchmark harness imports the experiment suite, so eagerly importing
``bench`` here would close an import cycle.  Import it explicitly
(``from repro.obs import bench``) or via the ``repro-bench`` entry point.
"""

from .metrics import (
    absorb_metrics,
    diff_counter_snapshots,
    diff_span_snapshots,
    drain_worker_metrics,
    register_worker_context,
    sync_worker_metrics,
)
from .tracer import SPAN_SEP, Tracer

__all__ = [
    "Tracer",
    "SPAN_SEP",
    "register_worker_context",
    "drain_worker_metrics",
    "sync_worker_metrics",
    "absorb_metrics",
    "diff_counter_snapshots",
    "diff_span_snapshots",
]
