"""Sweeps, instrumentation, and summary statistics for experiments."""

from .sweep import SweepCell, SweepResult, cell_rng, run_sweep
from .stats import Summary, censored_max, geometric_mean, summarize
from .instrumentation import PairEvent, SweepTrace, trace_report_sweep
from .parallel import parallel_incentive_sweep, parallel_map, sweep_fingerprint
from .spectral import (
    SpectralReport,
    dynamics_jacobian,
    predicted_iterations,
    spectral_report,
)

__all__ = [
    "SweepCell",
    "SweepResult",
    "cell_rng",
    "run_sweep",
    "Summary",
    "censored_max",
    "geometric_mean",
    "summarize",
    "PairEvent",
    "SweepTrace",
    "trace_report_sweep",
    "SpectralReport",
    "dynamics_jacobian",
    "predicted_iterations",
    "spectral_report",
    "parallel_incentive_sweep",
    "parallel_map",
    "sweep_fingerprint",
]
