"""Parameter sweep scaffolding for the experiment suite.

Sweeps are grids of (instance-family x size x distribution) cells; each
cell seeds its own RNG from the sweep seed + cell coordinates so cells are
independently reproducible and can be re-run in isolation -- the same
discipline mpi4py-style workloads use for per-rank seeding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["SweepCell", "SweepResult", "run_sweep", "cell_rng"]


def cell_rng(seed: int, *coords) -> np.random.Generator:
    """Deterministic per-cell generator: hash the coordinates into the seed
    sequence so neighboring cells do not share streams."""
    return np.random.default_rng(np.random.SeedSequence([seed, *[hash(c) & 0x7FFFFFFF for c in coords]]))


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: coordinates plus the per-cell measurement dict."""

    coords: tuple
    values: dict


@dataclass
class SweepResult:
    """All cells of one sweep, with helpers for tabular reporting."""

    name: str
    cells: list[SweepCell] = field(default_factory=list)

    def add(self, coords: tuple, values: dict) -> None:
        self.cells.append(SweepCell(coords=coords, values=values))

    def column(self, key: str) -> list:
        return [c.values[key] for c in self.cells]

    def rows(self, keys: Sequence[str]) -> list[list]:
        return [[*c.coords, *[c.values.get(k) for k in keys]] for c in self.cells]

    def max_over(self, key: str):
        return max(self.column(key))


def run_sweep(
    name: str,
    coords_iter: Iterable[tuple],
    measure: Callable[..., dict],
    seed: int = 0,
) -> SweepResult:
    """Run ``measure(rng, *coords)`` over a coordinate grid.

    ``measure`` returns a dict of named measurements for the cell.
    """
    result = SweepResult(name=name)
    for coords in coords_iter:
        rng = cell_rng(seed, name, *coords)
        result.add(coords, measure(rng, *coords))
    return result
