"""Parameter sweep scaffolding for the experiment suite.

Sweeps are grids of (instance-family x size x distribution) cells; each
cell seeds its own RNG from the sweep seed + cell coordinates so cells are
independently reproducible and can be re-run in isolation -- the same
discipline mpi4py-style workloads use for per-rank seeding.

Because each cell is a pure function of ``(seed, name, coords)``, a sweep
is checkpointable at cell granularity: :func:`run_sweep` optionally
journals every completed cell (bit-exact scalar encoding, see
:mod:`repro.runtime.checkpoint`) keyed by its coordinates, and a rerun of
the same sweep against the same journal replays completed cells instead of
recomputing them -- producing exactly the values the uninterrupted run
would have.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from ..runtime import open_journal

__all__ = ["SweepCell", "SweepResult", "run_sweep", "cell_rng"]


def cell_rng(seed: int, *coords) -> np.random.Generator:
    """Deterministic per-cell generator: hash the coordinates into the seed
    sequence so neighboring cells do not share streams."""
    return np.random.default_rng(np.random.SeedSequence([seed, *[hash(c) & 0x7FFFFFFF for c in coords]]))


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: coordinates plus the per-cell measurement dict."""

    coords: tuple
    values: dict


@dataclass
class SweepResult:
    """All cells of one sweep, with helpers for tabular reporting."""

    name: str
    cells: list[SweepCell] = field(default_factory=list)

    def add(self, coords: tuple, values: dict) -> None:
        self.cells.append(SweepCell(coords=coords, values=values))

    def column(self, key: str) -> list:
        return [c.values[key] for c in self.cells]

    def rows(self, keys: Sequence[str]) -> list[list]:
        return [[*c.coords, *[c.values.get(k) for k in keys]] for c in self.cells]

    def max_over(self, key: str):
        return max(self.column(key))


def run_sweep(
    name: str,
    coords_iter: Iterable[tuple],
    measure: Callable[..., dict],
    seed: int = 0,
    checkpoint: Optional[str] = None,
    counters=None,
) -> SweepResult:
    """Run ``measure(rng, *coords)`` over a coordinate grid.

    ``measure`` returns a dict of named measurements for the cell.  With
    ``checkpoint`` set, completed cells are journaled as they land and a
    resumed run (same name, seed, and coordinate grid -- enforced by the
    journal fingerprint) replays them bit-identically instead of
    recomputing.  ``counters`` is an optional
    :class:`~repro.engine.Counters` whose ``checkpoint_hits`` tallies the
    replayed cells.
    """
    result = SweepResult(name=name)
    coords_list = list(coords_iter)
    journal = None
    if checkpoint is not None:
        fp = hashlib.sha256(
            repr((name, seed, coords_list)).encode()
        ).hexdigest()[:16]
        journal = open_journal(checkpoint, fp)
    try:
        for coords in coords_list:
            key = repr(coords)
            if journal is not None and key in journal:
                if counters is not None:
                    counters.checkpoint_hits += 1
                result.add(coords, journal.get(key))
                continue
            rng = cell_rng(seed, name, *coords)
            values = measure(rng, *coords)
            if journal is not None:
                journal.record(key, values)
            result.add(coords, values)
    finally:
        if journal is not None:
            journal.close()
    return result
