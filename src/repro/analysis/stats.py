"""Small statistics helpers shared by experiments (no pandas dependency)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize", "geometric_mean", "censored_max"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_row(self) -> list[float]:
        return [self.n, self.mean, self.std, self.minimum, self.median, self.maximum]


def summarize(xs: Sequence[float]) -> Summary:
    a = np.asarray(list(xs), dtype=np.float64)
    if a.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(a.size),
        mean=float(a.mean()),
        std=float(a.std(ddof=1)) if a.size > 1 else 0.0,
        minimum=float(a.min()),
        median=float(np.median(a)),
        maximum=float(a.max()),
    )


def geometric_mean(xs: Sequence[float]) -> float:
    a = np.asarray(list(xs), dtype=np.float64)
    if np.any(a <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(a))))


def censored_max(xs: Sequence[float], ceiling: float) -> tuple[float, int]:
    """Max of a sample plus the count of entries exceeding a ceiling --
    the Theorem 8 experiments report (max zeta, #violations of 2)."""
    a = np.asarray(list(xs), dtype=np.float64)
    return float(a.max()), int(np.sum(a > ceiling))
