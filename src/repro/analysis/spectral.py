"""Spectral convergence-rate analysis of proportional response.

The synchronous update ``x -> F(x)`` of Definition 1 is smooth around the
equilibrium; its local convergence rate is governed by the spectrum of the
Jacobian ``J = dF/dx`` at the fixed point: asymptotically the residual
shrinks by ``|lambda_2|`` per step (``lambda = 1`` directions correspond to
the conserved quantities / fixed-point manifold and do not contribute to
the residual decay of utilities), so

    iterations-to-tol  ~  log(tol) / log(rho),

with ``rho`` the largest sub-unit eigenvalue modulus.  On bipartite graphs
an eigenvalue at exactly ``-1`` produces the 2-cycles the simulator
detects; damping ``beta`` maps each eigenvalue ``lam`` to
``(1 - beta) lam + beta``... (we damp with ``x <- damping*x + (1-damping)
F(x)``, i.e. ``lam -> damping + (1-damping) lam``), which pulls ``-1``
strictly inside the unit circle -- the quantitative version of the
"damping kills bipartite oscillation" observation of EXP-CNV.

The Jacobian is assembled analytically: with ``U_v = sum_k x_kv``,

    dF_(v,u) / dx_(a,b) = [ (a,b) = (u,v) ] * w_v / U_v
                          - [ b = v ] * x_uv * w_v / U_v^2.

Everything is NumPy-dense; intended for the small/medium instances of the
convergence experiments (2m x 2m matrices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import bd_allocation
from ..core.dynamics import _edge_arrays
from ..exceptions import ReproError
from ..graphs import WeightedGraph
from ..numeric import FLOAT

__all__ = ["SpectralReport", "dynamics_jacobian", "spectral_report", "predicted_iterations"]


def dynamics_jacobian(g: WeightedGraph, x: np.ndarray | None = None) -> np.ndarray:
    """Jacobian of the synchronous update at allocation ``x``.

    ``x`` defaults to the BD equilibrium.  Rows/columns are indexed by the
    directed-edge order of :func:`repro.core.dynamics._edge_arrays`.
    """
    src, dst, rev, index = _edge_arrays(g)
    E = len(src)
    w = np.asarray([float(t) for t in g.weights])
    if x is None:
        alloc = bd_allocation(g, backend=FLOAT)
        x = np.zeros(E)
        for (a, b), i in index.items():
            x[i] = float(alloc.x.get((a, b), 0.0))
    util = np.bincount(dst, weights=x, minlength=g.n)
    if np.any(util[src] <= 0):
        raise ReproError("Jacobian undefined: some vertex receives nothing")

    J = np.zeros((E, E))
    for e in range(E):
        v = src[e]
        Uv = util[v]
        # direct echo term: dF_e / dx_rev(e)
        J[e, rev[e]] += w[v] / Uv
        # normalization term: every edge (b -> v) contributes to U_v
        x_rev = x[rev[e]]
        for f in range(E):
            if dst[f] == v:
                J[e, f] -= x_rev * w[v] / (Uv * Uv)
    return J


@dataclass(frozen=True)
class SpectralReport:
    """Spectrum summary of the linearized dynamics."""

    rho: float                # largest sub-unit eigenvalue modulus
    has_minus_one: bool       # eigenvalue at -1 (bipartite 2-cycle mode)
    unit_multiplicity: int    # eigenvalues on the unit circle at +1
    eigenvalues: np.ndarray

    def damped_rho(self, damping: float) -> float:
        """Convergence factor after mixing ``x <- d*x + (1-d)F(x)``."""
        lams = damping + (1.0 - damping) * self.eigenvalues
        mods = np.abs(lams)
        sub = mods[mods < 1.0 - 1e-9]
        return float(sub.max()) if sub.size else 0.0


def spectral_report(g: WeightedGraph, tol: float = 1e-9) -> SpectralReport:
    """Eigen-decompose the equilibrium Jacobian."""
    J = dynamics_jacobian(g)
    lams = np.linalg.eigvals(J)
    mods = np.abs(lams)
    unit = int(np.sum(np.abs(lams - 1.0) < 1e-7))
    minus_one = bool(np.any(np.abs(lams + 1.0) < 1e-7))
    sub = mods[mods < 1.0 - 1e-7]
    rho = float(sub.max()) if sub.size else 0.0
    return SpectralReport(rho=rho, has_minus_one=minus_one,
                          unit_multiplicity=unit, eigenvalues=lams)


def predicted_iterations(rho: float, tol: float) -> float:
    """``log(tol) / log(rho)`` -- the asymptotic iteration count."""
    if not (0 < rho < 1):
        return float("inf") if rho >= 1 else 1.0
    return float(np.log(tol) / np.log(rho))
