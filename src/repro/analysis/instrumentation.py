"""Event instrumentation for weight sweeps (feeds Figs. 2 and 3).

Records, along a sweep of one agent's weight, the full trace of
``alpha_v(x)``, class labels, and pair merge/split events -- the raw series
behind Fig. 2's curves and Fig. 3's pair-dynamics diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core import bottleneck_decomposition
from ..graphs import WeightedGraph
from ..numeric import Backend, FLOAT, Scalar
from ..theory import decomposition_signature, regimes_of_report

__all__ = ["SweepTrace", "PairEvent", "trace_report_sweep"]


@dataclass(frozen=True)
class PairEvent:
    """One structural event at a breakpoint of the sweep."""

    x: float
    kind: str  # "merge" | "split" | "unit-crossing" | "other"
    pairs_before: int
    pairs_after: int
    alpha_before: float
    alpha_after: float


@dataclass
class SweepTrace:
    """Trace of one agent's report sweep."""

    vertex: int
    xs: list[float] = field(default_factory=list)
    alphas: list[float] = field(default_factory=list)
    utilities: list[float] = field(default_factory=list)
    classes: list[str] = field(default_factory=list)
    events: list[PairEvent] = field(default_factory=list)

    def case_label(self) -> str:
        """Proposition 11 case (B-1/B-2/B-3) implied by the class column."""
        has_c = any(c in ("C", "BC") for c in self.classes)
        has_b = any(c in ("B", "BC") for c in self.classes)
        strict_b = any(c == "B" for c in self.classes)
        strict_c = any(c == "C" for c in self.classes)
        if strict_c and strict_b:
            return "B-3"
        if has_b and not strict_c:
            return "B-2"
        return "B-1"


def trace_report_sweep(
    g: WeightedGraph,
    v: int,
    samples: int = 64,
    probes: int = 33,
    backend: Backend = FLOAT,
) -> SweepTrace:
    """Sample ``alpha_v(x)``, ``U_v(x)`` and classes on a uniform grid, and
    locate merge/split events via the regime machinery."""
    from ..core import bd_allocation

    wv = float(g.weights[v])
    trace = SweepTrace(vertex=v)
    for k in range(1, samples + 1):
        x = wv * k / samples
        gx = g.with_weight(v, backend.scalar(x))
        d = bottleneck_decomposition(gx, backend)
        alloc = bd_allocation(gx, d, backend)
        in_b, in_c = d.in_B(v), d.in_C(v)
        trace.xs.append(x)
        trace.alphas.append(float(d.alpha_of(v)))
        trace.utilities.append(float(alloc.utilities[v]))
        trace.classes.append("BC" if in_b and in_c else ("B" if in_b else "C"))

    regimes = regimes_of_report(g, v, probes=probes, backend=backend)
    span = wv if wv else 1.0
    for i in range(len(regimes) - 1):
        cut = float(regimes[i].hi)
        delta = max(1e-7 * span, 1e-12)
        lo_x = max(float(regimes[i].lo), cut - delta)
        hi_x = min(float(regimes[i + 1].hi), cut + delta)
        d_lo = bottleneck_decomposition(g.with_weight(v, backend.scalar(lo_x)), backend)
        d_hi = bottleneck_decomposition(g.with_weight(v, backend.scalar(hi_x)), backend)
        k_lo, k_hi = d_lo.k, d_hi.k
        a_lo, a_hi = float(d_lo.alpha_of(v)), float(d_hi.alpha_of(v))
        sets_lo = {(p.B, p.C) for p in d_lo.pairs}
        sets_hi = {(p.B, p.C) for p in d_hi.pairs}
        if k_hi > k_lo:
            kind = "split"
        elif k_hi < k_lo:
            kind = "merge"
        elif sets_lo == sets_hi:
            # same pairs, different order: two alpha curves crossed -- the
            # decomposition's *indices* changed but no pair reorganized
            kind = "reorder"
        elif abs(a_lo - 1) < 0.05 and abs(a_hi - 1) < 0.05:
            kind = "unit-crossing"
        else:
            kind = "other"
        trace.events.append(
            PairEvent(x=cut, kind=kind, pairs_before=k_lo, pairs_after=k_hi,
                      alpha_before=a_lo, alpha_after=a_hi)
        )
    return trace
