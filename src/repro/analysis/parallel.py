"""Process-parallel sweep execution.

Incentive-ratio sweeps are embarrassingly parallel: each (instance, agent)
cell is an independent best-response search taking milliseconds to seconds.
This module provides a deterministic ``multiprocessing`` map tailored to
the library's sweep shape:

* work items are (seed, payload) pairs; every worker re-derives its own RNG
  from the seed (never shares generator state across processes -- the same
  per-cell seeding discipline as :func:`repro.analysis.sweep.cell_rng`),
* results come back in submission order regardless of completion order, so
  parallel and serial runs are bit-identical,
* ``processes=0`` (the default) short-circuits to a serial loop, which
  keeps tests fast and avoids fork overhead for small sweeps.

Graphs and results cross process boundaries by pickling; everything in
:mod:`repro.graphs` is plain-data and pickles cheaply.  Engine
configuration crosses as a frozen :class:`~repro.engine.EngineSpec` --
never as a live :class:`~repro.engine.EngineContext`, whose cache and
counters are per-process state -- and each worker memoizes one rebuilt
context per spec so all of its cells share a decomposition cache.  Worker
counters are process-local and discarded; only the serial path accumulates
into the caller's context.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from ..engine import EngineContext, EngineSpec, resolve_context
from ..graphs import WeightedGraph

__all__ = ["parallel_map", "parallel_incentive_sweep"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int = 0,
    chunksize: int = 1,
) -> list[R]:
    """Order-preserving map, serial (``processes=0``) or process-parallel.

    ``fn`` must be picklable (module-level function or functools.partial of
    one).  Uses the ``spawn``-safe ``Pool.map`` so results align with
    ``items``.
    """
    items = list(items)
    if processes <= 0 or len(items) <= 1:
        return [fn(x) for x in items]
    with mp.get_context("fork").Pool(processes=processes) as pool:
        return pool.map(fn, items, chunksize=max(1, chunksize))


#: Per-process memo of contexts rebuilt from specs (one cache per worker).
_WORKER_CONTEXTS: dict[EngineSpec, EngineContext] = {}


def _context_for(spec: EngineSpec | None) -> EngineContext | None:
    if spec is None:
        return None
    ctx = _WORKER_CONTEXTS.get(spec)
    if ctx is None:
        ctx = _WORKER_CONTEXTS.setdefault(spec, spec.build())
    return ctx


def _ratio_cell(args: tuple) -> float:
    """One (graph, vertex) best-response cell; 4th tuple slot (optional)
    is an :class:`EngineSpec` rebuilt into a per-worker context."""
    g, v, grid, *rest = args
    ctx = _context_for(rest[0] if rest else None)
    from ..attack import best_split

    return best_split(g, v, grid=grid, ctx=ctx).ratio


def parallel_incentive_sweep(
    graphs: Iterable[WeightedGraph],
    grid: int = 48,
    processes: Optional[int] = None,
    ctx: EngineContext | None = None,
) -> list[float]:
    """Worst ``zeta_v`` per instance, optionally across processes.

    Expands every (graph, vertex) pair into one work item so load balances
    even when instance sizes vary, then folds the per-vertex ratios back
    into per-instance maxima.  ``processes=None`` defers to ``ctx.workers``
    (serial for the default context); serial runs share ``ctx`` directly so
    its counters and cache see every cell.
    """
    rctx = resolve_context(ctx)
    procs = rctx.resolve_workers(processes)
    graphs = list(graphs)
    cells: list[tuple[WeightedGraph, int]] = []
    offsets: list[int] = []
    for g in graphs:
        offsets.append(len(cells))
        cells.extend((g, v) for v in g.vertices())
    if procs <= 0 or len(cells) <= 1:
        from ..attack import best_split

        flat = [best_split(g, v, grid=grid, ctx=rctx).ratio for g, v in cells]
    else:
        spec = rctx.spec()
        items = [(g, v, grid, spec) for g, v in cells]
        flat = parallel_map(_ratio_cell, items, processes=procs)
    out: list[float] = []
    for i, g in enumerate(graphs):
        start = offsets[i]
        out.append(max(flat[start:start + g.n]))
    return out
