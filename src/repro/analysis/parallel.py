"""Process-parallel sweep execution, with optional supervision.

Incentive-ratio sweeps are embarrassingly parallel: each (instance, agent)
cell is an independent best-response search taking milliseconds to seconds.
This module provides a deterministic ``multiprocessing`` map tailored to
the library's sweep shape:

* work items are (seed, payload) pairs; every worker re-derives its own RNG
  from the seed (never shares generator state across processes -- the same
  per-cell seeding discipline as :func:`repro.analysis.sweep.cell_rng`),
* results come back in submission order regardless of completion order, so
  parallel and serial runs are bit-identical,
* ``processes=0`` (the default) short-circuits to a serial loop, which
  keeps tests fast and avoids fork overhead for small sweeps.

Two execution paths share that contract.  The *legacy* path is a bare
``Pool.map`` with an explicit, configurable start method -- fastest when
nothing can go wrong (tests, smoke runs).  The *supervised* path routes
cells through :func:`repro.runtime.supervised_map` whenever the resolved
:class:`~repro.runtime.RuntimePolicy` asks for timeouts, retries,
checkpointing, or fault injection -- the ``full``-scale overnight
configuration, where a hung Dinkelbach iteration or an OOM-killed worker
must cost one retried cell, not the whole sweep.

Graphs and results cross process boundaries by pickling; everything in
:mod:`repro.graphs` is plain-data and pickles cheaply.  Engine
configuration crosses as a frozen :class:`~repro.engine.EngineSpec` --
never as a live :class:`~repro.engine.EngineContext`, whose cache and
counters are per-process state -- and each worker memoizes one rebuilt
context per spec so all of its cells share a decomposition cache.  Worker
counters and spans are *not* discarded: every rebuilt context registers
with the :mod:`repro.obs.metrics` drain protocol, each cell ships its
delta back (piggybacked on the cell result here, on the supervisor's
result-queue messages in the supervised path), and the parent merges them
into the caller's context -- so a parallel sweep's ``--stats`` totals
match the serial run's (bit-identically so when the per-process
decomposition cache is disabled, i.e. nothing scheduling-dependent can
change how much work each cell performs).
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
from typing import Callable, Iterable, Optional, Sequence, TypeVar

from ..engine import EngineContext, EngineSpec, resolve_context
from ..graphs import WeightedGraph
from ..numeric import EXACT
from ..obs.metrics import (
    absorb_metrics,
    drain_worker_metrics,
    register_worker_context,
    sync_worker_metrics,
)
from ..runtime import RuntimePolicy, open_journal, resolve_policy, supervised_map

__all__ = ["parallel_map", "parallel_incentive_sweep", "sweep_fingerprint"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int = 0,
    chunksize: int = 1,
    start_method: str = "fork",
) -> list[R]:
    """Order-preserving map, serial (``processes=0``) or process-parallel.

    ``fn`` must be picklable (module-level function or functools.partial of
    one).  The multiprocessing start method is explicit and configurable:
    ``"fork"`` (the default, and what this function always actually used)
    is fastest on Linux, ``"spawn"`` is the portable choice, and
    ``"forkserver"`` splits the difference.  Teardown is unconditional --
    on ``KeyboardInterrupt`` (or any other error) the pool is terminated
    and joined before the exception propagates, so an interrupted sweep
    never leaves orphaned workers behind.
    """
    items = list(items)
    if processes <= 0 or len(items) <= 1:
        return [fn(x) for x in items]
    pool = mp.get_context(start_method).Pool(processes=processes)
    try:
        out = pool.map(fn, items, chunksize=max(1, chunksize))
        pool.close()
        pool.join()
        return out
    except BaseException:
        # Covers KeyboardInterrupt: kill the workers *now*, reap them, then
        # re-raise -- no orphans.
        pool.terminate()
        pool.join()
        raise


#: Per-process memo of contexts rebuilt from specs (one cache per worker).
_WORKER_CONTEXTS: dict[EngineSpec, EngineContext] = {}


def _context_for(spec: EngineSpec | None) -> EngineContext | None:
    if spec is None:
        return None
    ctx = _WORKER_CONTEXTS.get(spec)
    if ctx is None:
        ctx = _WORKER_CONTEXTS.setdefault(spec, spec.build())
        # Opt the rebuilt context into the cross-process metrics protocol:
        # the work its counters (and tracer) accumulate is drained as deltas
        # and merged back into whichever context owns the sweep.
        register_worker_context(ctx)
    return ctx


def _cell_with_metrics(fn: Callable[[T], R], args: T) -> tuple[R, Optional[dict]]:
    """Run one cell and pair its value with the worker's metrics delta.

    The legacy ``Pool.map`` path has no side channel next to the result
    (unlike the supervisor's result-queue messages), so the delta rides in
    the return tuple and the parent unwraps it.  Module-level so
    ``functools.partial(_cell_with_metrics, _ratio_cell)`` stays picklable
    under every start method.
    """
    value = fn(args)
    return value, drain_worker_metrics()


def _ratio_cell(args: tuple) -> float:
    """One (graph, vertex) best-response cell; 4th tuple slot (optional)
    is an :class:`EngineSpec` rebuilt into a per-worker context."""
    g, v, grid, *rest = args
    ctx = _context_for(rest[0] if rest else None)
    from ..attack import best_split

    return best_split(g, v, grid=grid, ctx=ctx).ratio


def _ratio_cell_exact(args: tuple) -> float:
    """Precision-escalated twin of :func:`_ratio_cell`: the same cell under
    the exact ``Fraction`` backend, where float overflow, NaN corruption,
    and rounding-induced non-convergence cannot occur.  Used by the
    supervisor after a typed numeric failure exhausts its float retries."""
    g, v, grid, *rest = args
    ctx = _context_for(rest[0] if rest else None)
    from ..attack import best_split

    return best_split(g, v, grid=grid, backend=EXACT, ctx=ctx).ratio


def sweep_fingerprint(
    cells: Sequence[tuple], grid: int, spec: EngineSpec | None
) -> str:
    """Content hash identifying one incentive sweep for checkpoint resume.

    Folds in every input that determines cell values -- the instances
    (weights by exact hex), the vertex per cell, the search grid, and the
    engine configuration -- so a journal can never be resumed against a
    different sweep without tripping the fingerprint check.
    """
    h = hashlib.sha256()
    h.update(f"grid={grid}".encode())
    if spec is not None:
        h.update(
            repr(
                (spec.solver, spec.backend.name, spec.zero_tol, spec.engine)
            ).encode()
        )
    for g, v in cells:
        h.update(f"|{v}|{g.n}".encode())
        for u, w in g.edges:
            h.update(f",{u},{w}".encode())
        for w in g.weights:
            h.update((w.hex() if isinstance(w, float) else repr(w)).encode())
    return h.hexdigest()[:16]


def parallel_incentive_sweep(
    graphs: Iterable[WeightedGraph],
    grid: int = 48,
    processes: Optional[int] = None,
    ctx: EngineContext | None = None,
    policy: Optional[RuntimePolicy] = None,
    checkpoint: Optional[str] = None,
) -> list[float]:
    """Worst ``zeta_v`` per instance, optionally across processes.

    Expands every (graph, vertex) pair into one work item so load balances
    even when instance sizes vary, then folds the per-vertex ratios back
    into per-instance maxima.  ``processes=None`` defers to ``ctx.workers``
    (serial for the default context); serial runs share ``ctx`` directly so
    its counters and cache see every cell, and parallel runs merge every
    worker's counter/span deltas back into ``ctx`` (see
    :mod:`repro.obs.metrics`), so ``--stats`` reports true totals either
    way.

    Supervision: when the resolved policy (explicit ``policy`` argument,
    else ``ctx.runtime``, else the inert default) enables timeouts,
    retries, fault injection, or a checkpoint, cells run under
    :func:`repro.runtime.supervised_map` -- per-cell wall-clock budgets,
    capped-backoff retries, worker respawn, serial degradation, and
    escalation of typed numeric failures to the exact backend.  Results
    remain bit-identical to an unsupervised serial run; a sweep resumed
    from ``checkpoint`` after a kill is bit-identical to an uninterrupted
    one.
    """
    rctx = resolve_context(ctx)
    rpolicy = resolve_policy(rctx, policy)
    checkpoint = checkpoint if checkpoint is not None else rpolicy.checkpoint
    procs = rctx.resolve_workers(processes)
    graphs = list(graphs)
    cells: list[tuple[WeightedGraph, int]] = []
    offsets: list[int] = []
    for g in graphs:
        offsets.append(len(cells))
        cells.extend((g, v) for v in g.vertices())

    supervised = rpolicy.supervised or checkpoint is not None
    if not supervised and (procs <= 0 or len(cells) <= 1):
        from ..attack import best_split

        flat = [best_split(g, v, grid=grid, ctx=rctx).ratio for g, v in cells]
    elif not supervised:
        import functools

        spec = rctx.spec()
        items = [(g, v, grid, spec) for g, v in cells]
        # Discard deltas pending from earlier unrelated work *before* the
        # pool exists, so forked workers inherit up-to-date drain marks and
        # report only their own cells.
        sync_worker_metrics()
        pairs = parallel_map(functools.partial(_cell_with_metrics, _ratio_cell),
                             items, processes=procs,
                             start_method=rpolicy.start_method)
        flat = [value for value, _ in pairs]
        for _, delta in pairs:
            absorb_metrics(delta, counters=rctx.counters,
                           tracer=getattr(rctx, "tracer", None))
    else:
        spec = rctx.spec()
        items = [(g, v, grid, spec) for g, v in cells]
        fingerprint = sweep_fingerprint(cells, grid, spec)
        journal = open_journal(checkpoint, fingerprint)
        try:
            flat = supervised_map(
                _ratio_cell,
                items,
                processes=procs,
                policy=rpolicy,
                counters=rctx.counters,
                escalate_fn=_ratio_cell_exact,
                journal=journal,
                tracer=getattr(rctx, "tracer", None),
            )
        finally:
            if journal is not None:
                journal.close()
    out: list[float] = []
    for i, g in enumerate(graphs):
        start = offsets[i]
        out.append(max(flat[start:start + g.n]))
    return out
