"""Process-parallel sweep execution.

Incentive-ratio sweeps are embarrassingly parallel: each (instance, agent)
cell is an independent best-response search taking milliseconds to seconds.
This module provides a deterministic ``multiprocessing`` map tailored to
the library's sweep shape:

* work items are (seed, payload) pairs; every worker re-derives its own RNG
  from the seed (never shares generator state across processes -- the same
  per-cell seeding discipline as :func:`repro.analysis.sweep.cell_rng`),
* results come back in submission order regardless of completion order, so
  parallel and serial runs are bit-identical,
* ``processes=0`` (the default) short-circuits to a serial loop, which
  keeps tests fast and avoids fork overhead for small sweeps.

Graphs and results cross process boundaries by pickling; everything in
:mod:`repro.graphs` is plain-data and pickles cheaply.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..graphs import WeightedGraph

__all__ = ["parallel_map", "parallel_incentive_sweep"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int = 0,
    chunksize: int = 1,
) -> list[R]:
    """Order-preserving map, serial (``processes=0``) or process-parallel.

    ``fn`` must be picklable (module-level function or functools.partial of
    one).  Uses the ``spawn``-safe ``Pool.map`` so results align with
    ``items``.
    """
    items = list(items)
    if processes <= 0 or len(items) <= 1:
        return [fn(x) for x in items]
    with mp.get_context("fork").Pool(processes=processes) as pool:
        return pool.map(fn, items, chunksize=max(1, chunksize))


def _ratio_cell(args: tuple[WeightedGraph, int, int]) -> float:
    g, v, grid = args
    from ..attack import best_split

    return best_split(g, v, grid=grid).ratio


def parallel_incentive_sweep(
    graphs: Iterable[WeightedGraph],
    grid: int = 48,
    processes: int = 0,
) -> list[float]:
    """Worst ``zeta_v`` per instance, optionally across processes.

    Expands every (graph, vertex) pair into one work item so load balances
    even when instance sizes vary, then folds the per-vertex ratios back
    into per-instance maxima.
    """
    graphs = list(graphs)
    items: list[tuple[WeightedGraph, int, int]] = []
    offsets: list[int] = []
    for g in graphs:
        offsets.append(len(items))
        items.extend((g, v, grid) for v in g.vertices())
    flat = parallel_map(_ratio_cell, items, processes=processes)
    out: list[float] = []
    for i, g in enumerate(graphs):
        start = offsets[i]
        out.append(max(flat[start:start + g.n]))
    return out
