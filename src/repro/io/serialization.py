"""JSON round-trips for instances and experiment results.

Weights serialize as exact strings (``"3/7"`` for Fractions, hex for
floats) so an instance archived by one run reproduces bit-identically in the
next -- essential for regression-tracking worst-case instances discovered by
the search and for the oracle's replayable failure corpus, which archives
both whole graphs and individual :class:`~repro.flow.FlowNetwork` solve
calls (original capacities only; residual state is recomputed on replay).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from ..exceptions import MalformedInputError
from ..flow.network import FlowNetwork
from ..graphs import WeightedGraph
from ..guard import scalar_from_json, validate_graph_dict, validate_network_dict
from ..numeric import Scalar

__all__ = ["graph_to_dict", "graph_from_dict", "dump_graph", "load_graph",
           "network_to_dict", "network_from_dict",
           "dump_result", "load_result", "scalar_to_json"]


def scalar_to_json(w: Scalar) -> Any:
    """Exact JSON encoding of one scalar (hex floats, ``p/q`` Fractions).

    The inverse of :func:`repro.guard.scalar_from_json`; the serving layer
    uses it directly so responses round-trip bit-identically.
    """
    if isinstance(w, Fraction):
        return {"frac": f"{w.numerator}/{w.denominator}"}
    if isinstance(w, float):
        return {"float": w.hex()}
    return w  # int


_scalar_to_json = scalar_to_json


def _scalar_from_json(obj: Any) -> Scalar:
    """Decode one exact-serialized scalar, boundary-validated.

    Delegates to :func:`repro.guard.scalar_from_json`: non-finite,
    negative, and non-numeric encodings (including zero-denominator and
    malformed ``"p/q"`` strings) raise a typed
    :class:`~repro.exceptions.MalformedInputError` here at the boundary
    instead of constructing an invalid instance that fails deep inside the
    decomposition.
    """
    return scalar_from_json(obj)


def graph_to_dict(g: WeightedGraph) -> dict:
    """Structured representation of a graph (edges, weights, labels)."""
    return {
        "n": g.n,
        "edges": [list(e) for e in g.edges],
        "weights": [_scalar_to_json(w) for w in g.weights],
        "labels": list(g.labels),
    }


def graph_from_dict(d: dict) -> WeightedGraph:
    """Construct a graph from an untrusted ``graph_to_dict`` payload.

    The payload shape and every scalar are validated first
    (:func:`repro.guard.validate_graph_dict`); structural problems the
    shape pass cannot see (duplicate edges, self-loops) still raise the
    constructor's :class:`~repro.exceptions.GraphError` taxonomy.
    """
    validate_graph_dict(d)
    return WeightedGraph(
        int(d["n"]),
        [tuple(e) for e in d["edges"]],
        [scalar_from_json(w) for w in d["weights"]],
        d.get("labels"),
    )


def network_to_dict(net: FlowNetwork) -> dict:
    """Structured representation of a flow network's *original* capacities.

    Only forward arcs are stored (reverse arcs are reconstructed by
    ``add_edge``), in construction order so arc ids survive the round-trip.
    Any routed flow is deliberately dropped: a corpus record must replay the
    solve from scratch, not trust the residual state that failed.
    """
    arcs = []
    for arc in range(0, net.num_arcs, 2):
        arcs.append([net.head[arc ^ 1], net.head[arc], _scalar_to_json(net.orig_cap[arc])])
    return {"n": net.n, "arcs": arcs}


def network_from_dict(d: dict) -> FlowNetwork:
    """Construct a flow network from an untrusted ``network_to_dict``
    payload, shape- and scalar-validated first (``+inf`` capacities are
    legitimate -- the unbounded bipartite arcs of Definition 5)."""
    validate_network_dict(d)
    net = FlowNetwork(int(d["n"]))
    for u, v, cap in d["arcs"]:
        net.add_edge(int(u), int(v),
                     scalar_from_json(cap, allow_positive_inf=True))
    return net


def dump_graph(g: WeightedGraph, path: str) -> None:
    with open(path, "w") as f:
        json.dump(graph_to_dict(g), f, indent=2)


def _load_json(path: str, what: str):
    """Read one JSON document with typed boundary errors (bad bytes and
    bad encodings become :class:`MalformedInputError`, not a stack trace
    from ``json``); missing files keep raising ``OSError`` -- absence is
    an environment problem, not malformed input."""
    try:
        with open(path) as f:
            return json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise MalformedInputError(f"{what} {path} is not valid JSON: {exc}") from exc


def load_graph(path: str) -> WeightedGraph:
    return graph_from_dict(_load_json(path, "graph file"))


def dump_result(result: dict, path: str) -> None:
    """Persist an experiment result dict (floats/ints/strings/lists only)."""
    with open(path, "w") as f:
        json.dump(result, f, indent=2, default=_default)


def load_result(path: str) -> dict:
    out = _load_json(path, "result file")
    if not isinstance(out, dict):
        raise MalformedInputError(
            f"result file {path} is not a JSON object: {type(out).__name__}"
        )
    return out


def _default(obj):
    if isinstance(obj, Fraction):
        return float(obj)
    if hasattr(obj, "__dict__"):
        return vars(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__}")
