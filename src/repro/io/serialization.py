"""JSON round-trips for instances and experiment results.

Weights serialize as exact strings (``"3/7"`` for Fractions, hex for
floats) so an instance archived by one run reproduces bit-identically in the
next -- essential for regression-tracking worst-case instances discovered by
the search and for the oracle's replayable failure corpus, which archives
both whole graphs and individual :class:`~repro.flow.FlowNetwork` solve
calls (original capacities only; residual state is recomputed on replay).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from ..exceptions import ReproError
from ..flow.network import FlowNetwork
from ..graphs import WeightedGraph
from ..numeric import Scalar

__all__ = ["graph_to_dict", "graph_from_dict", "dump_graph", "load_graph",
           "network_to_dict", "network_from_dict",
           "dump_result", "load_result"]


def _scalar_to_json(w: Scalar) -> Any:
    if isinstance(w, Fraction):
        return {"frac": f"{w.numerator}/{w.denominator}"}
    if isinstance(w, float):
        return {"float": w.hex()}
    return w  # int


def _scalar_from_json(obj: Any) -> Scalar:
    if isinstance(obj, dict):
        if "frac" in obj:
            num, den = obj["frac"].split("/")
            return Fraction(int(num), int(den))
        if "float" in obj:
            return float.fromhex(obj["float"])
        raise ReproError(f"unknown scalar encoding {obj!r}")
    if isinstance(obj, (int, float)):
        return obj
    raise ReproError(f"unknown scalar encoding {obj!r}")


def graph_to_dict(g: WeightedGraph) -> dict:
    """Structured representation of a graph (edges, weights, labels)."""
    return {
        "n": g.n,
        "edges": [list(e) for e in g.edges],
        "weights": [_scalar_to_json(w) for w in g.weights],
        "labels": list(g.labels),
    }


def graph_from_dict(d: dict) -> WeightedGraph:
    try:
        return WeightedGraph(
            d["n"],
            [tuple(e) for e in d["edges"]],
            [_scalar_from_json(w) for w in d["weights"]],
            d.get("labels"),
        )
    except KeyError as exc:
        raise ReproError(f"missing graph field {exc}") from exc


def network_to_dict(net: FlowNetwork) -> dict:
    """Structured representation of a flow network's *original* capacities.

    Only forward arcs are stored (reverse arcs are reconstructed by
    ``add_edge``), in construction order so arc ids survive the round-trip.
    Any routed flow is deliberately dropped: a corpus record must replay the
    solve from scratch, not trust the residual state that failed.
    """
    arcs = []
    for arc in range(0, net.num_arcs, 2):
        arcs.append([net.head[arc ^ 1], net.head[arc], _scalar_to_json(net.orig_cap[arc])])
    return {"n": net.n, "arcs": arcs}


def network_from_dict(d: dict) -> FlowNetwork:
    try:
        net = FlowNetwork(d["n"])
        for u, v, cap in d["arcs"]:
            net.add_edge(u, v, _scalar_from_json(cap))
        return net
    except KeyError as exc:
        raise ReproError(f"missing network field {exc}") from exc


def dump_graph(g: WeightedGraph, path: str) -> None:
    with open(path, "w") as f:
        json.dump(graph_to_dict(g), f, indent=2)


def load_graph(path: str) -> WeightedGraph:
    with open(path) as f:
        return graph_from_dict(json.load(f))


def dump_result(result: dict, path: str) -> None:
    """Persist an experiment result dict (floats/ints/strings/lists only)."""
    with open(path, "w") as f:
        json.dump(result, f, indent=2, default=_default)


def load_result(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def _default(obj):
    if isinstance(obj, Fraction):
        return float(obj)
    if hasattr(obj, "__dict__"):
        return vars(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__}")
