"""JSON round-trips for instances and experiment results.

Weights serialize as exact strings (``"3/7"`` for Fractions, ``repr`` for
floats) so an instance archived by one run reproduces bit-identically in the
next -- essential for regression-tracking worst-case instances discovered by
the search.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from ..exceptions import ReproError
from ..graphs import WeightedGraph
from ..numeric import Scalar

__all__ = ["graph_to_dict", "graph_from_dict", "dump_graph", "load_graph",
           "dump_result", "load_result"]


def _scalar_to_json(w: Scalar) -> Any:
    if isinstance(w, Fraction):
        return {"frac": f"{w.numerator}/{w.denominator}"}
    if isinstance(w, float):
        return {"float": w.hex()}
    return w  # int


def _scalar_from_json(obj: Any) -> Scalar:
    if isinstance(obj, dict):
        if "frac" in obj:
            num, den = obj["frac"].split("/")
            return Fraction(int(num), int(den))
        if "float" in obj:
            return float.fromhex(obj["float"])
        raise ReproError(f"unknown scalar encoding {obj!r}")
    if isinstance(obj, (int, float)):
        return obj
    raise ReproError(f"unknown scalar encoding {obj!r}")


def graph_to_dict(g: WeightedGraph) -> dict:
    """Structured representation of a graph (edges, weights, labels)."""
    return {
        "n": g.n,
        "edges": [list(e) for e in g.edges],
        "weights": [_scalar_to_json(w) for w in g.weights],
        "labels": list(g.labels),
    }


def graph_from_dict(d: dict) -> WeightedGraph:
    try:
        return WeightedGraph(
            d["n"],
            [tuple(e) for e in d["edges"]],
            [_scalar_from_json(w) for w in d["weights"]],
            d.get("labels"),
        )
    except KeyError as exc:
        raise ReproError(f"missing graph field {exc}") from exc


def dump_graph(g: WeightedGraph, path: str) -> None:
    with open(path, "w") as f:
        json.dump(graph_to_dict(g), f, indent=2)


def load_graph(path: str) -> WeightedGraph:
    with open(path) as f:
        return graph_from_dict(json.load(f))


def dump_result(result: dict, path: str) -> None:
    """Persist an experiment result dict (floats/ints/strings/lists only)."""
    with open(path, "w") as f:
        json.dump(result, f, indent=2, default=_default)


def load_result(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def _default(obj):
    if isinstance(obj, Fraction):
        return float(obj)
    if hasattr(obj, "__dict__"):
        return vars(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__}")
