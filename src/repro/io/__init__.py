"""Table rendering and instance/result serialization."""

from .tables import format_float, format_table
from .serialization import (
    dump_graph,
    dump_result,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_result,
    network_from_dict,
    network_to_dict,
    scalar_to_json,
)

__all__ = [
    "format_float",
    "format_table",
    "dump_graph",
    "dump_result",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "load_result",
    "network_from_dict",
    "network_to_dict",
    "scalar_to_json",
]
