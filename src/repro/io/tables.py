"""Plain-text table rendering for experiment reports.

Experiments print paper-style rows to stdout (and EXPERIMENTS.md records
them); this module renders aligned ASCII tables without any third-party
dependency so the harness works in minimal environments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_float"]


def format_float(x, digits: int = 6) -> str:
    """Compact float formatting: fixed for moderate magnitudes, scientific
    for extreme ones, integers unadorned."""
    if x is None:
        return "-"
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, int):
        return str(x)
    try:
        xf = float(x)
    except (TypeError, ValueError):
        return str(x)
    if xf == 0:
        return "0"
    mag = abs(xf)
    if 1e-4 <= mag < 1e7:
        s = f"{xf:.{digits}g}"
    else:
        s = f"{xf:.{max(2, digits - 2)}e}"
    return s


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    digits: int = 6,
) -> str:
    """Render an aligned table with a header rule.

    Cells are stringified via :func:`format_float`; column widths adapt.
    """
    str_rows = [[format_float(c, digits) if not isinstance(c, str) else c for c in row]
                for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
