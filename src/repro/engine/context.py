"""The engine context: one explicit object for cross-cutting configuration.

Solver choice, numeric backend, flow zero-tolerance, worker count, the
decomposition cache, and the work counters used to travel through the
library ad hoc (or not at all -- ``dinic_max_flow`` was hard-coded).
:class:`EngineContext` bundles them; every layer from ``core`` up through
the CLI takes an optional ``ctx`` and falls back to a shared module-level
default, so existing call sites keep today's behavior bit-for-bit while a
configured context turns solver selection and caching into one-line knobs::

    ctx = EngineContext(solver="push_relabel")
    inst = incentive_ratio(g, ctx=ctx)
    print(ctx.stats())

Process pools cannot usefully share a mutable context, so a frozen
:class:`EngineSpec` carries the *configuration* across pickling boundaries
and each worker rebuilds (and memoizes) its own context from it -- the same
config-threading discipline as sysml_fair_verif's ``ModelConfig``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..exceptions import EngineError, NumericalInstabilityError
from ..flow.network import FlowNetwork
from ..numeric import Backend, FLOAT
from .cache import DecompositionCache
from .counters import Counters
from .registry import DEFAULT_SOLVER, SOLVERS, Solver, SolverRegistry

__all__ = [
    "EngineSpec",
    "EngineContext",
    "NULL_SPAN",
    "default_context",
    "resolve_context",
    "using_context",
    "set_flow_fault_hook",
]

#: Process-global fault-injection hook on the flow boundary, installed by
#: :mod:`repro.runtime.faults` (``None`` = zero overhead beyond one load).
#: Lives here rather than on the context so ``engine`` stays an
#: import-graph leaf while every solve -- whichever context routed it --
#: passes through the same deterministic injection point.
_FLOW_FAULT_HOOK: Optional[Callable] = None


def set_flow_fault_hook(hook: Optional[Callable]) -> None:
    """Install (or clear, with ``None``) the flow-value fault hook.

    The hook receives each solved flow value and returns the (possibly
    corrupted) value to hand back, or raises.  Only the fault-injection
    layer should call this.
    """
    global _FLOW_FAULT_HOOK
    _FLOW_FAULT_HOOK = hook

#: Default LRU capacity; a sweep instance produces tens of distinct
#: decompositions, so 1024 spans many instances without unbounded growth.
DEFAULT_CACHE_SIZE = 1024

#: Flow-template cache bound; a best-response sweep needs a handful of
#: templates per topology (one parametric per active set, one pair network
#: per decomposition pair), so 512 covers full experiments.
TEMPLATE_CACHE_MAX = 512


class _NullSpan:
    """Shared no-op span handed out when no tracer is attached.

    One module-level singleton, no allocation, empty ``__enter__`` /
    ``__exit__`` -- the entire disabled-tracing cost of an instrumented
    call site is the attribute check in :meth:`EngineContext.span`.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class EngineSpec:
    """Frozen, picklable description of an :class:`EngineContext`.

    Carries configuration only -- no cache contents, no counters -- so it is
    tiny on the wire and hashable (worker processes memoize one rebuilt
    context per distinct spec).
    """

    solver: str = DEFAULT_SOLVER
    backend: Backend = FLOAT
    zero_tol: float = 0.0
    cache_size: int = DEFAULT_CACHE_SIZE
    workers: int = 0
    audit: str = "off"
    corpus_dir: Optional[str] = None
    trace: bool = False
    engine: str = "columnar"
    #: Free-form discriminator, not part of the built context.  Two specs
    #: that differ only in ``tag`` build identical contexts but memoize
    #: *separately* in worker processes (``_context_for`` keys on the whole
    #: spec) -- the serving layer tags one spec per shard so concurrent
    #: shard dispatches never share a metrics-drain source.
    tag: str = ""

    def build(self, registry: SolverRegistry | None = None) -> "EngineContext":
        ctx = EngineContext(
            solver=self.solver,
            backend=self.backend,
            zero_tol=self.zero_tol,
            cache_size=self.cache_size,
            workers=self.workers,
            engine=self.engine,
            registry=registry if registry is not None else SOLVERS,
        )
        if self.trace:
            # Lazy import for the same leaf-package reason as the auditor:
            # ``repro.obs`` knows about engine snapshots, not vice versa.
            from ..obs import Tracer

            ctx.tracer = Tracer()
        if self.audit != "off":
            # Lazy import: ``engine`` stays a leaf of the import graph; the
            # oracle layer (which imports core/io) is pulled in only when a
            # spec actually requests auditing.
            from ..oracle import attach_auditor

            attach_auditor(ctx, level=self.audit, corpus_dir=self.corpus_dir)
        return ctx

    def with_cache(self, cache_size: int) -> "EngineSpec":
        return replace(self, cache_size=cache_size)


@dataclass
class EngineContext:
    """Shared engine state threaded through flow -> core -> attack -> CLI.

    Parameters
    ----------
    solver:
        Registry name of the max-flow solver (``"dinic"``,
        ``"edmonds_karp"``, ``"push_relabel"``).
    backend:
        Default numeric backend for call sites that do not pass one
        explicitly.
    zero_tol:
        Residual zero-tolerance handed to the flow solvers.  The default 0.0
        is load-bearing (see ``core.bottleneck``): Dinic saturates arcs
        exactly even in floats, and a positive tolerance would swallow
        genuinely tiny capacities.
    cache_size:
        LRU capacity of the decomposition cache; ``0`` disables caching.
    workers:
        Default process count for parallel sweeps (``0`` = serial).
    engine:
        ``"columnar"`` (default) routes the hot numeric paths through the
        CSR substrate: flow-template instantiation, warm-started
        Dinkelbach, vectorized dynamics arrays, and (auditor-off only)
        segment-reuse in the best-response search.  ``"classic"`` keeps the
        original per-object construction everywhere -- the reference path
        the differential checks compare against.
    """

    solver: str = DEFAULT_SOLVER
    backend: Backend = FLOAT
    zero_tol: float = 0.0
    cache_size: int = DEFAULT_CACHE_SIZE
    workers: int = 0
    engine: str = "columnar"
    registry: SolverRegistry = field(default_factory=lambda: SOLVERS, repr=False)
    cache: DecompositionCache = field(default=None, repr=False)  # type: ignore[assignment]
    counters: Counters = field(default_factory=Counters, repr=False)
    #: Optional audit hook (see :mod:`repro.oracle`).  Typed loosely so the
    #: engine package stays an import-graph leaf; anything with the
    #: ``on_flow`` / ``on_decomposition`` / ``on_allocation`` /
    #: ``on_best_response`` methods qualifies.
    auditor: object = field(default=None, repr=False)
    #: Optional supervised-execution policy (see
    #: :class:`repro.runtime.RuntimePolicy`).  Loosely typed for the same
    #: leaf-package reason as ``auditor``; consumers read it via
    #: ``getattr(ctx, "runtime", None)`` semantics and fall back to the
    #: unsupervised legacy behavior when absent.
    runtime: object = field(default=None, repr=False)
    #: Optional span tracer (see :class:`repro.obs.Tracer`).  Loosely typed
    #: so ``engine`` stays an import-graph leaf; anything with ``enabled``,
    #: ``span(name)``, ``snapshot()`` and ``merge_snapshot(dict)`` works.
    #: ``None`` (the default) keeps instrumented hot paths at one attribute
    #: check of overhead via the shared :data:`NULL_SPAN`.
    tracer: object = field(default=None, repr=False)
    #: Flow-template cache keyed by (shape, structure bytes, member tuples);
    #: bounded by :data:`TEMPLATE_CACHE_MAX` with whole-cache flush on
    #: overflow (entries are cheap to rebuild and keys cluster per
    #: topology, so LRU bookkeeping would cost more than it saves).
    templates: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise EngineError(f"workers must be >= 0, got {self.workers}")
        if self.engine not in ("columnar", "classic"):
            raise EngineError(
                f"unknown engine {self.engine!r} (expected 'columnar' or 'classic')")
        self.registry.get(self.solver)  # fail fast on unknown names
        if self.cache is None:
            self.cache = DecompositionCache(self.cache_size)
        else:
            self.cache_size = self.cache.maxsize

    # -- solver dispatch -------------------------------------------------
    def solver_entry(self, need_arc_flows: bool = False) -> Solver:
        """The configured solver, or the Dinic fallback when the caller
        must read per-arc flows and the configured solver is value-only."""
        entry = self.registry.get(self.solver)
        if need_arc_flows and not entry.supports_arc_flows:
            self.counters.arc_flow_fallbacks += 1
            return self.registry.get(DEFAULT_SOLVER)
        return entry

    def max_flow(
        self,
        net: FlowNetwork,
        s: int,
        t: int,
        zero_tol: float | None = None,
        need_arc_flows: bool = False,
    ):
        """Solve ``net`` with the configured solver; returns the flow value.

        ``need_arc_flows=True`` guarantees the residual state left in
        ``net`` is a genuine max *flow* (conservation at every node), which
        Definition 5 needs to read off per-arc amounts.
        """
        entry = self.solver_entry(need_arc_flows=need_arc_flows)
        self.counters.flow_calls += 1
        tol = self.zero_tol if zero_tol is None else zero_tol
        with self.span("flow"):
            value = entry.fn(net, s, t, tol)
        if _FLOW_FAULT_HOOK is not None:
            value = _FLOW_FAULT_HOOK(value)
        # Graceful-degradation boundary: every solve's value must be finite
        # (source arcs have finite capacity in every network we build), so a
        # NaN/Inf here is float overflow on an extreme instance -- raise the
        # typed, escalatable error instead of letting the NaN propagate into
        # alphas and allocations as a silent wrong answer.
        if isinstance(value, float) and not math.isfinite(value):
            raise NumericalInstabilityError(
                f"max-flow value {value!r} is not finite "
                f"(solver {entry.name}, n={net.n}, s={s}, t={t}); "
                f"the instance needs the exact backend"
            )
        if self.auditor is not None:
            self.auditor.on_flow(self, net, s, t, value, tol, entry)
        return value

    # -- tracing -----------------------------------------------------------
    def span(self, name: str):
        """A timing span under ``name`` -- the instrumentation entry point
        for every hot path (``with ctx.span("decompose"): ...``).

        Returns the attached tracer's span when tracing is on, else the
        shared no-op :data:`NULL_SPAN`; call sites never branch on whether
        tracing is configured.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return NULL_SPAN
        return tracer.span(name)

    # -- audit hooks -------------------------------------------------------
    # No-ops when no auditor is attached; the oracle layer implements the
    # receiving side.  Kept as context methods so core/attack call sites do
    # not need to know whether auditing is configured.
    def audit_decomposition(self, g, decomp) -> None:
        if self.auditor is not None:
            self.auditor.on_decomposition(self, g, decomp)

    def audit_allocation(self, g, decomp, alloc) -> None:
        if self.auditor is not None:
            self.auditor.on_allocation(self, g, decomp, alloc)

    def audit_best_response(self, g, v, result) -> None:
        if self.auditor is not None:
            self.auditor.on_best_response(self, g, v, result)

    # -- flow templates ---------------------------------------------------
    def parametric_template(self, g, active):
        """Cached parametric-network template for ``(g structure, active)``.

        ``active`` must already be the sorted vertex list the Dinkelbach
        loop solves over.  Templates are shared across graphs with the same
        topology (keyed by structure bytes), so every candidate split of a
        best-response sweep reuses the templates built for the first one.

        ``cache_size=0`` -- the "make the work deterministic" knob used by
        the counter-merge regression tests -- disables this cache too:
        per-process caches make hit/build tallies depend on how a sweep is
        partitioned across workers, which uncached runs must not.
        """
        from ..flow.template import parametric_template
        from ..graphs.columnar import graph_structure_bytes

        if self.cache.maxsize == 0:
            self.counters.template_builds += 1
            return parametric_template(g, active)
        key = ("par", graph_structure_bytes(g), tuple(active))
        tpl = self.templates.get(key)
        if tpl is None:
            if len(self.templates) >= TEMPLATE_CACHE_MAX:
                self.templates.clear()
            self.counters.template_builds += 1
            tpl = parametric_template(g, active)
            self.templates[key] = tpl
        else:
            self.counters.template_hits += 1
        return tpl

    def pair_template(self, g, B, C):
        """Cached allocation pair-network template; returns ``(tpl, arc_of)``.

        Uncached when ``cache_size=0``, same as :meth:`parametric_template`.
        """
        from ..flow.template import pair_template
        from ..graphs.columnar import graph_structure_bytes

        if self.cache.maxsize == 0:
            self.counters.template_builds += 1
            return pair_template(g, B, C)
        key = ("pair", graph_structure_bytes(g), tuple(B), tuple(C))
        entry = self.templates.get(key)
        if entry is None:
            if len(self.templates) >= TEMPLATE_CACHE_MAX:
                self.templates.clear()
            self.counters.template_builds += 1
            entry = pair_template(g, B, C)
            self.templates[key] = entry
        else:
            self.counters.template_hits += 1
        return entry

    # -- backend / worker resolution -------------------------------------
    def resolve_backend(self, backend: Optional[Backend]) -> Backend:
        return self.backend if backend is None else backend

    def resolve_workers(self, processes: Optional[int]) -> int:
        return self.workers if processes is None else processes

    # -- spec / pickling --------------------------------------------------
    def spec(self) -> EngineSpec:
        """Configuration-only snapshot (see :class:`EngineSpec`)."""
        return EngineSpec(
            solver=self.solver,
            backend=self.backend,
            zero_tol=self.zero_tol,
            cache_size=self.cache.maxsize,
            workers=self.workers,
            engine=self.engine,
            audit=getattr(self.auditor, "level_name", "off") if self.auditor else "off",
            corpus_dir=getattr(self.auditor, "corpus_dir", None) if self.auditor else None,
            trace=self.tracer is not None,
        )

    # -- instrumentation --------------------------------------------------
    def stats(self) -> dict:
        """Counters + cache statistics + the configuration that produced
        them, as one plain serializable dict."""
        out = self.counters.snapshot()
        out["cache"] = self.cache.stats()
        out["solver"] = self.solver
        out["backend"] = self.backend.name
        out["engine"] = self.engine
        out["spans"] = self.tracer.snapshot() if self.tracer is not None else {}
        return out

    def reset_stats(self) -> None:
        """Zero the counters, span aggregates, and cache hit/miss tallies
        (cache entries are kept)."""
        self.counters.reset()
        if self.tracer is not None:
            self.tracer.reset()
        self.cache.hits = 0
        self.cache.misses = 0
        self.cache.evictions = 0


_DEFAULT_CONTEXT: EngineContext | None = None


def default_context() -> EngineContext:
    """The process-wide default context (created lazily, shared by every
    call site that receives ``ctx=None``)."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = EngineContext()
    return _DEFAULT_CONTEXT


def resolve_context(ctx: Optional[EngineContext]) -> EngineContext:
    """``ctx`` itself, or the shared default when ``None``."""
    return ctx if ctx is not None else default_context()


@contextmanager
def using_context(ctx: EngineContext):
    """Temporarily install ``ctx`` as the process-wide default.

    Everything that receives ``ctx=None`` inside the ``with`` body --
    including experiment modules that have not grown a ``ctx`` parameter --
    resolves to ``ctx``, so the CLI's ``--solver``/``--no-cache`` flags
    reach every solve of a run.  The previous default is restored on exit.
    """
    global _DEFAULT_CONTEXT
    prev = _DEFAULT_CONTEXT
    _DEFAULT_CONTEXT = ctx
    try:
        yield ctx
    finally:
        _DEFAULT_CONTEXT = prev
