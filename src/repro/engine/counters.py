"""Engine instrumentation: cheap counters plus per-phase wall time.

Every :class:`~repro.engine.EngineContext` owns one :class:`Counters`
instance; the refactored core/attack layers increment it as they work, so a
sweep can report exactly how many max-flow solves and Dinkelbach steps it
cost and how much of that the decomposition cache absorbed.  Increments are
plain attribute additions -- no locks, no allocation -- so the hot paths pay
essentially nothing for the bookkeeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Counters"]


@dataclass
class Counters:
    """Work counters accumulated by one engine context.

    ``flow_calls`` counts max-flow solves routed through the context;
    ``arc_flow_fallbacks`` the subset where a value-only solver (push-relabel)
    was swapped for Dinic because the caller needed per-arc flows.
    ``phase_seconds`` maps phase labels (``"decompose"``, ``"allocate"``,
    ``"best_response"``) to cumulative wall time.

    The ``audit_*`` family is written by the :mod:`repro.oracle` audit layer:
    ``audit_flow_checks`` / ``audit_invariant_checks`` count cheap validations
    (flow axioms + min-cut certificates, paper invariants),
    ``audit_differential_checks`` counts re-solves against independent
    oracles, ``audit_disagreements`` the differential mismatches, and
    ``audit_violations`` every failed audit of any kind.

    The runtime family is written by :mod:`repro.runtime`: ``cell_retries``
    counts supervised re-runs of failed cells, ``cell_timeouts`` cells whose
    worker blew the wall-clock budget and was killed, ``worker_respawns``
    replacement workers started after a kill or crash,
    ``precision_escalations`` cells re-run under the exact ``Fraction``
    backend after a typed numeric failure, ``injected_faults`` deterministic
    faults fired by ``--inject-faults``, and ``checkpoint_hits`` cells
    served from a resume journal instead of recomputed.
    """

    flow_calls: int = 0
    dinkelbach_iterations: int = 0
    decompositions: int = 0
    allocations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    arc_flow_fallbacks: int = 0
    audit_flow_checks: int = 0
    audit_invariant_checks: int = 0
    audit_differential_checks: int = 0
    audit_disagreements: int = 0
    audit_violations: int = 0
    cell_retries: int = 0
    cell_timeouts: int = 0
    worker_respawns: int = 0
    precision_escalations: int = 0
    injected_faults: int = 0
    checkpoint_hits: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def timed(self, phase: str):
        """Accumulate the wall time of the ``with`` body under ``phase``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + elapsed

    def snapshot(self) -> dict:
        """Plain-dict copy (stable keys; safe to serialize or diff)."""
        return {
            "flow_calls": self.flow_calls,
            "dinkelbach_iterations": self.dinkelbach_iterations,
            "decompositions": self.decompositions,
            "allocations": self.allocations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "arc_flow_fallbacks": self.arc_flow_fallbacks,
            "audit_flow_checks": self.audit_flow_checks,
            "audit_invariant_checks": self.audit_invariant_checks,
            "audit_differential_checks": self.audit_differential_checks,
            "audit_disagreements": self.audit_disagreements,
            "audit_violations": self.audit_violations,
            "cell_retries": self.cell_retries,
            "cell_timeouts": self.cell_timeouts,
            "worker_respawns": self.worker_respawns,
            "precision_escalations": self.precision_escalations,
            "injected_faults": self.injected_faults,
            "checkpoint_hits": self.checkpoint_hits,
            "phase_seconds": dict(self.phase_seconds),
        }

    def reset(self) -> None:
        self.flow_calls = 0
        self.dinkelbach_iterations = 0
        self.decompositions = 0
        self.allocations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.arc_flow_fallbacks = 0
        self.audit_flow_checks = 0
        self.audit_invariant_checks = 0
        self.audit_differential_checks = 0
        self.audit_disagreements = 0
        self.audit_violations = 0
        self.cell_retries = 0
        self.cell_timeouts = 0
        self.worker_respawns = 0
        self.precision_escalations = 0
        self.injected_faults = 0
        self.checkpoint_hits = 0
        self.phase_seconds = {}

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one (per-worker aggregation)."""
        self.flow_calls += other.flow_calls
        self.dinkelbach_iterations += other.dinkelbach_iterations
        self.decompositions += other.decompositions
        self.allocations += other.allocations
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.arc_flow_fallbacks += other.arc_flow_fallbacks
        self.audit_flow_checks += other.audit_flow_checks
        self.audit_invariant_checks += other.audit_invariant_checks
        self.audit_differential_checks += other.audit_differential_checks
        self.audit_disagreements += other.audit_disagreements
        self.audit_violations += other.audit_violations
        self.cell_retries += other.cell_retries
        self.cell_timeouts += other.cell_timeouts
        self.worker_respawns += other.worker_respawns
        self.precision_escalations += other.precision_escalations
        self.injected_faults += other.injected_faults
        self.checkpoint_hits += other.checkpoint_hits
        for phase, secs in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + secs
