"""Engine instrumentation: cheap counters plus per-phase wall time.

Every :class:`~repro.engine.EngineContext` owns one :class:`Counters`
instance; the refactored core/attack layers increment it as they work, so a
sweep can report exactly how many max-flow solves and Dinkelbach steps it
cost and how much of that the decomposition cache absorbed.  Increments are
plain attribute additions -- no locks, no allocation -- so the hot paths pay
essentially nothing for the bookkeeping.

Counters count *work performed*: a retried cell's first attempt stays in
the totals, and worker-side counters are shipped back and merged by the
:mod:`repro.obs.metrics` protocol, so parallel and serial sweeps of the
same work report the same totals (when per-process caching cannot skew the
work, i.e. with the decomposition cache disabled).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Counters", "INT_COUNTER_FIELDS"]

#: Every integer counter, in declaration order.  ``snapshot`` / ``merge`` /
#: ``reset`` iterate this tuple so adding a counter is a two-line change
#: (field + entry here) instead of a four-method hunt.
INT_COUNTER_FIELDS = (
    "flow_calls",
    "dinkelbach_iterations",
    "decompositions",
    "allocations",
    "dynamics_steps",
    "cache_hits",
    "cache_misses",
    "arc_flow_fallbacks",
    "audit_flow_checks",
    "audit_invariant_checks",
    "audit_differential_checks",
    "audit_disagreements",
    "audit_violations",
    "cell_retries",
    "cell_timeouts",
    "worker_respawns",
    "precision_escalations",
    "injected_faults",
    "checkpoint_hits",
    "warm_starts",
    "decomp_reconstructions",
    "reconstruction_fallbacks",
    "template_builds",
    "template_hits",
    "serve_requests",
    "serve_responses",
    "serve_errors",
    "serve_batches",
    "serve_coalesced",
    "serve_cache_hits",
    "serve_cache_misses",
    "serve_shed",
    "serve_deadline_exceeded",
    "serve_read_pauses",
    "breaker_trips",
    "breaker_probes",
    "breaker_fastfails",
    "cell_deadline_expired",
    "serve_journal_admits",
    "serve_journal_settles",
    "serve_journal_replayed",
    "serve_snapshot_saves",
    "serve_snapshot_restored",
    "warm_hint_invalidations",
    "sim_epochs",
    "sim_attacks",
    "sim_churn_events",
    "sim_zeta_violations",
)


@dataclass
class Counters:
    """Work counters accumulated by one engine context.

    ``flow_calls`` counts max-flow solves routed through the context;
    ``arc_flow_fallbacks`` the subset where a value-only solver (push-relabel)
    was swapped for Dinic because the caller needed per-arc flows;
    ``dynamics_steps`` proportional-response update steps.
    ``phase_seconds`` maps phase labels (``"decompose"``, ``"allocate"``,
    ``"best_response"``) to cumulative wall time.

    The ``audit_*`` family is written by the :mod:`repro.oracle` audit layer:
    ``audit_flow_checks`` / ``audit_invariant_checks`` count cheap validations
    (flow axioms + min-cut certificates, paper invariants),
    ``audit_differential_checks`` counts re-solves against independent
    oracles, ``audit_disagreements`` the differential mismatches, and
    ``audit_violations`` every failed audit of any kind.

    The runtime family is written by :mod:`repro.runtime`: ``cell_retries``
    counts supervised re-runs of failed cells, ``cell_timeouts`` cells whose
    worker blew the wall-clock budget and was killed, ``worker_respawns``
    replacement workers started after a kill or crash,
    ``precision_escalations`` cells re-run under the exact ``Fraction``
    backend after a typed numeric failure, ``injected_faults`` deterministic
    faults fired by ``--inject-faults``, and ``checkpoint_hits`` cells
    served from a resume journal instead of recomputed.
    """

    flow_calls: int = 0
    dinkelbach_iterations: int = 0
    decompositions: int = 0
    allocations: int = 0
    dynamics_steps: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    arc_flow_fallbacks: int = 0
    audit_flow_checks: int = 0
    audit_invariant_checks: int = 0
    audit_differential_checks: int = 0
    audit_disagreements: int = 0
    audit_violations: int = 0
    cell_retries: int = 0
    cell_timeouts: int = 0
    worker_respawns: int = 0
    precision_escalations: int = 0
    injected_faults: int = 0
    checkpoint_hits: int = 0
    #: Columnar-engine family (see repro.core.incremental): Dinkelbach
    #: solves seeded below the cold start, decompositions rebuilt from a
    #: same-segment hint instead of solved, hints that failed certification
    #: and fell back to a full solve, and flow-template cache traffic.
    warm_starts: int = 0
    decomp_reconstructions: int = 0
    reconstruction_fallbacks: int = 0
    template_builds: int = 0
    template_hits: int = 0
    #: Serving family (see repro.serve): requests accepted off the wire,
    #: responses written back, typed error responses, batches dispatched to
    #: the worker pool, requests coalesced onto an already-in-flight
    #: identical solve, and canonical-fingerprint response-cache traffic.
    serve_requests: int = 0
    serve_responses: int = 0
    serve_errors: int = 0
    serve_batches: int = 0
    serve_coalesced: int = 0
    serve_cache_hits: int = 0
    serve_cache_misses: int = 0
    #: Overload-resilience family (see repro.serve.resilience): requests
    #: shed by admission control (typed ``overloaded`` envelope, no work
    #: performed), requests answered with ``deadline_exceeded``, times the
    #: connection read gate paused intake at the high watermark, circuit
    #: breaker trips into a degraded mode, half-open probe dispatches,
    #: cache-only fast-fails while a breaker brownout holds, and supervised
    #: cells abandoned because their propagated deadline budget expired.
    serve_shed: int = 0
    serve_deadline_exceeded: int = 0
    serve_read_pauses: int = 0
    breaker_trips: int = 0
    breaker_probes: int = 0
    breaker_fastfails: int = 0
    cell_deadline_expired: int = 0
    #: Crash-durability family (see repro.serve.durability): admissions
    #: appended to the write-ahead request journal, settle records
    #: appended for completed outcomes, unsettled admissions replayed
    #: through the solve path after a restart, response-cache snapshots
    #: written, and cache entries repopulated from a restored snapshot.
    serve_journal_admits: int = 0
    serve_journal_settles: int = 0
    serve_journal_replayed: int = 0
    serve_snapshot_saves: int = 0
    serve_snapshot_restored: int = 0
    #: Cross-instance warm reuse (see repro.core.incremental
    #: ``warm_decomposition``): hints discarded by the topology-fingerprint
    #: guard instead of reused against a churn-resized instance.
    warm_hint_invalidations: int = 0
    #: Simulator family (see repro.sim): epochs advanced, adversary
    #: best-response cells evaluated, churn events applied to the
    #: population, and empirical ratios observed above 2 + slack (each of
    #: which also files a corpus record).
    sim_epochs: int = 0
    sim_attacks: int = 0
    sim_churn_events: int = 0
    sim_zeta_violations: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Open ``timed`` depth per phase label.  Bookkeeping only -- excluded
    #: from snapshots, merges, and resets -- so that re-entering an
    #: already-active phase does not double-count its wall time.
    _active_phases: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @contextmanager
    def timed(self, phase: str):
        """Accumulate the wall time of the ``with`` body under ``phase``.

        Reentrancy-safe: only the *outermost* ``timed(phase)`` of a nested
        stack records elapsed time (an inner re-entry is already covered by
        the outer interval, so adding it again would make ``phase_seconds``
        exceed wall time), and the accounting is exception-safe -- a body
        that raises still closes its interval, and an inner phase raising
        through an outer one leaves the outer phase's elapsed time intact.
        """
        depth = self._active_phases.get(phase, 0)
        self._active_phases[phase] = depth + 1
        start = time.perf_counter() if depth == 0 else 0.0
        try:
            yield self
        finally:
            remaining = self._active_phases[phase] - 1
            if remaining:
                self._active_phases[phase] = remaining
            else:
                del self._active_phases[phase]
                elapsed = time.perf_counter() - start
                self.phase_seconds[phase] = (
                    self.phase_seconds.get(phase, 0.0) + elapsed
                )

    def snapshot(self) -> dict:
        """Plain-dict copy (stable keys; safe to serialize, diff, merge)."""
        out = {name: getattr(self, name) for name in INT_COUNTER_FIELDS}
        out["phase_seconds"] = dict(self.phase_seconds)
        return out

    def reset(self) -> None:
        for name in INT_COUNTER_FIELDS:
            setattr(self, name, 0)
        self.phase_seconds = {}

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one (per-worker aggregation)."""
        self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot`-shaped dict into this counter set.

        This is the wire half of the snapshot/merge protocol: worker
        processes serialize deltas as plain dicts over their result queues
        (see :mod:`repro.obs.metrics`) and the parent folds them in here.
        Unknown keys are ignored so a newer worker snapshot never crashes
        an older parent.
        """
        for name in INT_COUNTER_FIELDS:
            if name in snap:
                setattr(self, name, getattr(self, name) + snap[name])
        for phase, secs in snap.get("phase_seconds", {}).items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + secs
