"""Named max-flow solver registry.

The library ships three independent max-flow implementations
(:mod:`repro.flow`).  Historically every call site hard-coded
``dinic_max_flow``; the registry turns the choice into data so an
:class:`~repro.engine.EngineContext` can select a solver by name and
experiments can sweep solvers with a one-line knob.

All registered callables share the signature
``solver(net, s, t, zero_tol) -> value`` and leave the network in a
residual state from which min cuts can be extracted (for a maximum
*preflow* -- push-relabel without a drain phase -- the complement of the
residual-coreachable set of ``t`` is still the maximal min cut: every
crossing arc of any min cut is saturated and carries no return flow, so the
classic lattice argument goes through unchanged).  Per-arc *flows* are a
stronger demand: push-relabel may strand excess at interior nodes, so its
entry is marked ``supports_arc_flows=False`` and the context falls back to
Dinic where Definition 5 needs the realized flow on each arc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from ..exceptions import EngineError
from ..flow import dinic_max_flow, edmonds_karp_max_flow, push_relabel_max_flow
from ..flow.network import FlowNetwork

__all__ = ["MaxFlowSolver", "Solver", "SolverRegistry", "SOLVERS", "DEFAULT_SOLVER"]

#: Shared solver signature: ``(net, s, t, zero_tol) -> max-flow value``.
MaxFlowSolver = Callable[[FlowNetwork, int, int, float], object]

#: Name of the solver used when nothing else is configured.
DEFAULT_SOLVER = "dinic"


@dataclass(frozen=True)
class Solver:
    """One registry entry: the callable plus its capability flags."""

    name: str
    fn: MaxFlowSolver
    supports_arc_flows: bool = True

    def __call__(self, net: FlowNetwork, s: int, t: int, zero_tol: float = 0.0):
        return self.fn(net, s, t, zero_tol)


class SolverRegistry(Mapping[str, Solver]):
    """Name -> :class:`Solver` mapping with helpful unknown-name errors."""

    def __init__(self, entries: Mapping[str, Solver] | None = None) -> None:
        self._entries: dict[str, Solver] = dict(entries or {})

    def register(
        self, name: str, fn: MaxFlowSolver, supports_arc_flows: bool = True
    ) -> Solver:
        """Register (or replace) a solver under ``name``."""
        if not name:
            raise EngineError("solver name must be a non-empty string")
        entry = Solver(name=name, fn=fn, supports_arc_flows=supports_arc_flows)
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> Solver:
        try:
            return self._entries[name]
        except KeyError:
            raise EngineError(
                f"unknown solver {name!r}; registered: {', '.join(sorted(self._entries))}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, name: str) -> Solver:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SolverRegistry({self.names()})"


def _builtin_registry() -> SolverRegistry:
    reg = SolverRegistry()
    reg.register("dinic", dinic_max_flow)
    reg.register("edmonds_karp", edmonds_karp_max_flow)
    # value + min-cut oracle only: may leave stranded excess (see module docs)
    reg.register("push_relabel", push_relabel_max_flow, supports_arc_flows=False)
    return reg


#: The shared default registry holding the three built-in solvers.
SOLVERS = _builtin_registry()
