"""LRU cache for bottleneck decompositions.

The Sybil sweeps re-solve the *same* instance many times: every
``best_split`` call decomposes the unsplit ring for the truthful utility and
the honest split, ``incentive_ratio`` repeats that for each of the ``n``
agents, and the worst-case coordinate ascent revisits unimproved weight
vectors.  A decomposition is a pure function of ``(graph structure, weight
vector, backend)``, so those repeats are cache hits.

Keys are canonical **CSR buffer bytes** (see
:func:`repro.graphs.columnar.graph_signature_bytes`): the ``indptr`` /
``indices`` arrays over sorted neighbor lists plus the bit-exact weight and
label bytes.  The byte string is cached on the graph and its structural
half survives weight replacement, so a best-response sweep stops paying an
O(E) Python tuple walk (and tuple hash) per cache probe.  Labels are part
of the signature so a cached decomposition's ``.graph`` never swaps the
requester's labelling (the split bookkeeping names fictitious vertices
through labels).  The backend kind ``(name, tol)`` separates exact from
float results -- a ``Fraction`` alpha must never be served where a
tolerance-aware float was requested.

One deliberate sharpening vs. the old tuple key: the old key compared
weights by value (``1 == 1.0 == Fraction(1)`` hash-alike), the byte key by
type-tagged bit pattern.  Equal-valued instances of different scalar types
now occupy separate entries -- a duplicate-solve cost, never a wrong hit.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Hashable, Optional, TYPE_CHECKING

from ..graphs import WeightedGraph
from ..graphs.columnar import graph_signature_bytes
from ..numeric import Backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.bottleneck import BottleneckDecomposition

__all__ = ["DecompositionCache", "decomposition_key", "instance_signature"]


def decomposition_key(g: WeightedGraph, backend: Backend) -> Hashable:
    """Canonical hashable signature of one decomposition request.

    The instance part is the canonical CSR signature bytes, computed once
    per graph (and once per *topology* for the structural half); bytes hash
    caches inside CPython, so repeated probes of the same graph cost two
    attribute loads and a tuple hash.
    """
    return (graph_signature_bytes(g), backend.name, backend.tol)


def instance_signature(g: WeightedGraph, backend: Optional[Backend] = None) -> str:
    """Short stable content hash identifying one instance.

    Carried by structured :class:`~repro.exceptions.ConvergenceError` /
    :class:`~repro.exceptions.NumericalInstabilityError` so a failure
    surfaced deep inside a sweep names the exact instance that produced it
    -- two cells over the same graph report the same signature, and the
    signature survives pickling across worker processes (unlike ``id()``).
    Floats hash by their exact hex form, so one-ulp-distinct instances get
    distinct signatures.
    """
    def canon(x):
        return x.hex() if isinstance(x, float) else repr(x)

    parts = [str(g.n)]
    parts.extend(f"{u},{v}" for u, v in g.edges)
    parts.extend(canon(w) for w in g.weights)
    if backend is not None:
        parts.append(backend.name)
        parts.append(canon(backend.tol))
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()
    return digest[:12]


class DecompositionCache:
    """Bounded LRU mapping decomposition keys to computed decompositions.

    ``maxsize <= 0`` disables the cache entirely (every ``get`` misses and
    ``put`` is a no-op), which is how ``--no-cache`` and the uncached
    baselines are implemented without branching at call sites.
    """

    __slots__ = ("maxsize", "_entries", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 1024) -> None:
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[Hashable, "BottleneckDecomposition"] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional["BottleneckDecomposition"]:
        if not self.enabled:
            self.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: "BottleneckDecomposition") -> None:
        if not self.enabled:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecompositionCache(size={len(self)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
