"""Engine layer: solver registry, decomposition cache, counters, context.

This package is a *leaf* of the library's import graph (it depends only on
``flow``, ``graphs``, ``numeric``, and ``exceptions``) so that ``core``,
``attack``, ``analysis``, ``experiments``, and the CLI can all thread one
:class:`EngineContext` without cycles.
"""

from .cache import DecompositionCache, decomposition_key, instance_signature
from .context import (
    DEFAULT_CACHE_SIZE,
    NULL_SPAN,
    EngineContext,
    EngineSpec,
    default_context,
    resolve_context,
    set_flow_fault_hook,
    using_context,
)
from .counters import INT_COUNTER_FIELDS, Counters
from .registry import DEFAULT_SOLVER, SOLVERS, MaxFlowSolver, Solver, SolverRegistry

__all__ = [
    "Counters",
    "INT_COUNTER_FIELDS",
    "NULL_SPAN",
    "DecompositionCache",
    "decomposition_key",
    "instance_signature",
    "set_flow_fault_hook",
    "DEFAULT_CACHE_SIZE",
    "EngineContext",
    "EngineSpec",
    "default_context",
    "resolve_context",
    "using_context",
    "DEFAULT_SOLVER",
    "SOLVERS",
    "MaxFlowSolver",
    "Solver",
    "SolverRegistry",
]
