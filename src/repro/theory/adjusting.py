"""The paper's Adjusting Technique (Section III-C).

When both fictitious nodes ``v^1``/``v^2`` start in the *same* bottleneck
pair of ``P_v(w_1^0, w_2^0)``, the stage analysis first slides weight from
``v^2`` to ``v^1`` along the neutral direction -- ``(w_1^0 + z, w_2^0 - z)``
-- as far as the decomposition stays combinatorially unchanged.  Along that
slide the pair's alpha and both utilities are invariant (the paper verifies
this identity around Lemma 15), so the slide endpoint can replace the
initial path.  Past the critical ``z`` the shared pair splits in two, one
pair per fictitious node, which is what Lemmas 15/21 need.

This module computes the critical ``z`` by bisection on the decomposition
signature and checks the invariance identity along the way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import bottleneck_decomposition
from ..exceptions import AttackError
from ..graphs import WeightedGraph, cut_ring_at
from ..numeric import Backend, FLOAT, Scalar
from .breakpoints import decomposition_signature

__all__ = ["AdjustedStart", "adjusting_technique", "same_pair"]


@dataclass(frozen=True)
class AdjustedStart:
    """Result of the Adjusting Technique.

    ``w1``/``w2`` are the adjusted initial weights (equal to the inputs when
    no adjustment applies); ``z`` is the slide amount; ``utility_invariant``
    records whether the attacker's total utility stayed fixed along the
    slide (the identity the paper proves; checked numerically here).
    """

    w1: Scalar
    w2: Scalar
    z: Scalar
    applied: bool
    utility_invariant: bool


def same_pair(g: WeightedGraph, v: int, w1: Scalar, w2: Scalar, backend: Backend = FLOAT) -> bool:
    """True iff ``v^1`` and ``v^2`` share a bottleneck pair on
    ``P_v(w1, w2)``."""
    p, v1, v2 = cut_ring_at(g, v, backend.scalar(w1), backend.scalar(w2))
    d = bottleneck_decomposition(p, backend)
    return d.pair_of(v1) is d.pair_of(v2)


def adjusting_technique(
    g: WeightedGraph,
    v: int,
    w1_0: Scalar,
    w2_0: Scalar,
    w2_star: Scalar,
    iters: int = 80,
    backend: Backend = FLOAT,
) -> AdjustedStart:
    """Slide ``(w1_0 + z, w2_0 - z)`` to the last ``z`` with an unchanged
    decomposition (``z in [0, w2_0 - w2_star]``).

    If the endpoints are not in the same pair initially, or the whole slide
    keeps the decomposition unchanged (the paper's "cannot improve" branch),
    the technique returns the respective boundary unchanged/fully-slid.
    """
    w1_0 = backend.scalar(w1_0)
    w2_0 = backend.scalar(w2_0)
    w2_star = backend.scalar(w2_star)
    if w2_star > w2_0:
        raise AttackError("adjusting technique expects w2* <= w2^0")

    def outcome(z: Scalar):
        p, v1, v2 = cut_ring_at(g, v, w1_0 + z, w2_0 - z)
        return p, v1, v2, bottleneck_decomposition(p, backend)

    _, v1, v2, d0 = outcome(backend.scalar(0))
    sig0 = decomposition_signature(d0)
    pair = d0.pair_of(v1)
    if pair is not d0.pair_of(v2):
        return AdjustedStart(w1=w1_0, w2=w2_0, z=backend.scalar(0), applied=False,
                             utility_invariant=True)
    # The slide is only neutral when both endpoints sit on the *same side*
    # of the shared pair (both C in Case C-3, both B in Case D-1): mixed
    # membership -- e.g. a zero-weight endpoint absorbed into B while the
    # other is in C (Case C-2 shape) -- trades utility along the slide.
    both_b = v1 in pair.B and v2 in pair.B
    both_c = v1 in pair.C and v2 in pair.C
    if not (both_b or both_c):
        return AdjustedStart(w1=w1_0, w2=w2_0, z=backend.scalar(0), applied=False,
                             utility_invariant=True)

    z_max = w2_0 - w2_star

    def unchanged(z: Scalar) -> bool:
        _, _, _, d = outcome(z)
        return decomposition_signature(d) == sig0

    if unchanged(z_max):
        # whole slide neutral: the paper's no-gain situation
        return AdjustedStart(w1=w1_0 + z_max, w2=w2_star, z=z_max, applied=True,
                             utility_invariant=_utility_invariant(g, v, w1_0, w2_0, z_max, backend))

    lo, hi = backend.scalar(0), z_max
    for _ in range(iters):
        mid = (lo + hi) / 2
        if unchanged(mid):
            lo = mid
        else:
            hi = mid
        if not backend.is_exact and float(hi - lo) <= 1e-13 * max(1.0, float(z_max)):
            break
    z = lo
    return AdjustedStart(
        w1=w1_0 + z, w2=w2_0 - z, z=z, applied=True,
        utility_invariant=_utility_invariant(g, v, w1_0, w2_0, z, backend),
    )


def _utility_invariant(
    g: WeightedGraph, v: int, w1_0: Scalar, w2_0: Scalar, z: Scalar, backend: Backend
) -> bool:
    """Check the slide identity: total attacker utility at z equals at 0."""
    from ..attack.sybil import split_ring

    # use relaxed float equality; exact backend compares exactly
    u0 = split_ring(g, v, w1_0, w2_0, backend).attacker_utility
    uz = split_ring(g, v, w1_0 + z, w2_0 - z, backend).attacker_utility
    if backend.is_exact:
        return u0 == uz
    return abs(float(u0) - float(uz)) <= 1e-7 * max(1.0, abs(float(u0)))
