"""Executable counterparts of the paper's structural results."""

from .breakpoints import (
    Regime,
    decomposition_signature,
    regimes_of_report,
    regimes_of_split,
    sweep_regimes,
)
from .adjusting import AdjustedStart, adjusting_technique, same_pair
from .stages import InitialForm, StageReport, classify_initial_form, ring_class_of, stage_report
from .propositions import (
    CheckResult,
    check_proposition3,
    check_proposition6,
    check_proposition11,
    check_proposition12,
)
from .lemmas import (
    check_lemma9,
    check_lemma13,
    check_lemma15,
    check_stage_lemmas,
    check_theorem8,
    check_theorem10,
)

__all__ = [
    "Regime",
    "decomposition_signature",
    "regimes_of_report",
    "regimes_of_split",
    "sweep_regimes",
    "AdjustedStart",
    "adjusting_technique",
    "same_pair",
    "InitialForm",
    "StageReport",
    "classify_initial_form",
    "ring_class_of",
    "stage_report",
    "CheckResult",
    "check_proposition3",
    "check_proposition6",
    "check_proposition11",
    "check_proposition12",
    "check_lemma9",
    "check_lemma13",
    "check_lemma15",
    "check_stage_lemmas",
    "check_theorem8",
    "check_theorem10",
]
