"""Stage decomposition of the Sybil deviation (Sections III-C and III-D).

The paper bounds ``U_v(w_1^*, w_2^*) - U_v`` by moving from the honest split
``P_v(w_1^0, w_2^0)`` to the optimum in two stages that each change one
endpoint's weight:

* ``v`` C class on the ring (Section III-C):
  Stage C-1 lowers ``w_{v^2}: w_2^0 -> w_2^*`` (claims
  ``delta_{v^1}^{(1)} <= 0``, ``delta_{v^2}^{(1)} <= 0``, Lemma 16);
  Stage C-2 raises ``w_{v^1}: w_1^0 -> w_1^*`` (claims
  ``delta_{v^1}^{(2)} <= U_v`` and ``delta_{v^2}^{(2)} <= 0``, Lemmas 18/19).

* ``v`` B class (Section III-D):
  Stage D-1 raises ``w_{v^1}`` (claims ``Delta_{v^1}^{(1)} <= U_v``,
  ``Delta_{v^2}^{(1)} = 0``, Lemma 22);
  Stage D-2 lowers ``w_{v^2}`` (claims both ``Delta^{(2)} <= 0``, Lemma 24).

This module measures every one of those deltas on concrete instances.
Orientation follows the paper's w.l.o.g.: ``v^1`` is the side whose weight
*increases* at the optimum; when the optimum moves the other endpoint we
relabel so the bookkeeping matches the proof.  It also classifies the
initial decomposition into the Fig. 4 cases (Lemmas 14 and 20).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..attack.best_response import best_split
from ..attack.sybil import honest_split
from ..core import VertexClass, bottleneck_decomposition, refine_unit_pair
from ..graphs import WeightedGraph, require_ring
from ..numeric import Backend, FLOAT

__all__ = ["InitialForm", "StageReport", "classify_initial_form", "stage_report", "ring_class_of"]


class InitialForm(Enum):
    """The Fig. 4 classification of ``B(w_1^0, w_2^0)`` (Lemmas 14 / 20)."""

    C1 = "C-1"  # single pair, v1 in B, v2 in C, alternating classes
    C2 = "C-2"  # v1 in B with w1 = 0, v2 in C with w2 = w_v
    C3 = "C-3"  # both split nodes in C class
    D1 = "D-1"  # both split nodes in B class (v B class on the ring)
    MIXED = "mixed"  # anything else (e.g. one endpoint in a unit pair)


def ring_class_of(g: WeightedGraph, v: int, backend: Backend = FLOAT) -> VertexClass:
    """Class of ``v`` on the original ring, with the paper's convention that
    a both-class vertex (unit pair) is treated as C class via the
    alternation refinement seeded at ``v``."""
    require_ring(g)
    d = bottleneck_decomposition(g, backend)
    labels = refine_unit_pair(d, prefer_c=v)
    label = labels[v]
    if label is VertexClass.BOTH:
        return VertexClass.C  # paper: "assume v is a C class vertex if alpha_v = 1"
    return label


def classify_initial_form(
    g: WeightedGraph,
    v: int,
    w1_0,
    w2_0,
    swapped: bool = False,
    backend: Backend = FLOAT,
) -> InitialForm:
    """Classify ``B(w_1^0, w_2^0)`` per Lemma 14 (C cases) / Lemma 20 (D-1).

    ``w1_0``/``w2_0`` are in the paper's *oriented* labelling (``v^1`` is
    the side whose weight increases toward the optimum); ``swapped`` says
    whether that orientation is the reverse of ``cut_ring_at``'s canonical
    one.
    """
    from ..core import bottleneck_decomposition as _bd
    from ..graphs import cut_ring_at

    a, b = (w2_0, w1_0) if swapped else (w1_0, w2_0)
    p, pa, pb = cut_ring_at(g, v, backend.scalar(a), backend.scalar(b))
    v1, v2 = (pb, pa) if swapped else (pa, pb)
    d = _bd(p, backend)
    labels = refine_unit_pair(d, prefer_c=v2)
    c1, c2 = labels[v1], labels[v2]

    if VertexClass.BOTH in (c1, c2):
        return InitialForm.MIXED
    if c1 is VertexClass.B and c2 is VertexClass.B:
        return InitialForm.D1
    if c1 is VertexClass.C and c2 is VertexClass.C:
        return InitialForm.C3
    if c1 is VertexClass.B and c2 is VertexClass.C:
        if d.k == 1:
            return InitialForm.C1
        if _is_zero(w1_0, backend):
            return InitialForm.C2
    return InitialForm.MIXED


def _is_zero(x, backend: Backend) -> bool:
    return x == 0 if backend.is_exact else abs(float(x)) <= backend.tol


@dataclass(frozen=True)
class StageReport:
    """All stage quantities for one attacker on one ring.

    ``delta_v1_stage1`` etc. are the paper's deltas (C-class naming) or
    Deltas (B-class naming), depending on ``ring_class``.  The ``*_ok``
    flags evaluate the corresponding lemma inequalities with a numeric
    slack.
    """

    vertex: int
    ring_class: VertexClass
    initial_form: InitialForm
    honest_utility: float
    w1_0: float
    w2_0: float
    w1_star: float
    w2_star: float
    swapped: bool
    adjusted: bool
    delta_v1_stage1: float
    delta_v2_stage1: float
    delta_v1_stage2: float
    delta_v2_stage2: float
    total_gain: float

    def lemma_bounds(self, slack: float = 1e-7) -> dict[str, bool]:
        """Evaluate the per-stage inequalities of Lemmas 16/18/22/24.

        For a C-class attacker: delta^{(1)} <= 0 for both nodes (Lemma 16),
        delta_{v^2}^{(2)} <= w_1^* <= U_v slack-wise and delta_{v^1}^{(2)}
        <= U_v (Lemmas 18/19 combined; the Lemma 19 route allows
        delta_{v^2}^{(2)} > 0 only up to eq. (3)'s w_1^* bound).
        For a B-class attacker: Delta_{v^1}^{(1)} <= U_v, Delta_{v^2}^{(1)}
        = 0, Delta^{(2)} <= 0 (Lemmas 22/24).
        """
        s = slack * max(1.0, abs(self.honest_utility))
        U = self.honest_utility
        if self.ring_class is VertexClass.C:
            return {
                "delta_v1_stage1<=0": self.delta_v1_stage1 <= s,
                "delta_v2_stage1<=0": self.delta_v2_stage1 <= s,
                "delta_v1_stage2<=Uv": self.delta_v1_stage2 <= U + s,
                "delta_v2_stage2<=w1*": self.delta_v2_stage2 <= self.w1_star + s,
                "total<=Uv": self.total_gain <= U + s,
            }
        return {
            "Delta_v1_stage1<=Uv": self.delta_v1_stage1 <= U + s,
            "Delta_v2_stage1==0": abs(self.delta_v2_stage1) <= s,
            "Delta_v1_stage2<=0": self.delta_v1_stage2 <= s,
            "Delta_v2_stage2<=0": self.delta_v2_stage2 <= s,
            "total<=Uv": self.total_gain <= U + s,
        }


def stage_report(
    g: WeightedGraph,
    v: int,
    grid: int = 48,
    backend: Backend = FLOAT,
) -> StageReport:
    """Measure the stage decomposition for attacker ``v`` on ring ``g``.

    Runs the best-response search, orients the copies so the paper's
    w.l.o.g. (``w_1^* > w_1^0``) holds, evaluates the two stages in the
    order dictated by the ring class of ``v``, and returns every delta.
    """
    require_ring(g)
    cls = ring_class_of(g, v, backend)
    w1_0, w2_0 = honest_split(g, v, backend)
    w1_0f, w2_0f = float(w1_0), float(w2_0)

    br = best_split(g, v, grid=grid, backend=backend)
    w1_s, w2_s = br.w1, br.w2

    # orient: v^1 is the increasing side
    swapped = False
    if w1_s < w1_0f:
        swapped = True
        w1_0f, w2_0f = w2_0f, w1_0f
        w1_s, w2_s = w2_s, w1_s

    # Adjusting Technique (Section III-C): slide the neutral direction first
    # when the fictitious nodes start in one shared pair, so the stage
    # inequalities of Lemmas 16/18/22/24 apply to the adjusted start.
    w1_0f, w2_0f, adjusted = _adjusted_start(
        g, v, w1_0f, w2_0f, w2_s, swapped, backend
    )

    def util(w1: float, w2: float) -> tuple[float, float]:
        return _split_oriented(g, v, w1, w2, swapped, backend)

    u1_00, u2_00 = util(w1_0f, w2_0f)

    if cls is VertexClass.C:
        # Stage C-1: w2 drops first
        u1_mid, u2_mid = util(w1_0f, w2_s)
        d1_1 = u1_mid - u1_00
        d2_1 = u2_mid - u2_00
        u1_ss, u2_ss = util(w1_s, w2_s)
        d1_2 = u1_ss - u1_mid
        d2_2 = u2_ss - u2_mid
    else:
        # Stage D-1: w1 rises first
        u1_mid, u2_mid = util(w1_s, w2_0f)
        d1_1 = u1_mid - u1_00
        d2_1 = u2_mid - u2_00
        u1_ss, u2_ss = util(w1_s, w2_s)
        d1_2 = u1_ss - u1_mid
        d2_2 = u2_ss - u2_mid

    honest = br.honest_utility
    form = classify_initial_form(g, v, w1_0f, w2_0f, swapped=swapped, backend=backend)
    return StageReport(
        vertex=v,
        ring_class=cls,
        initial_form=form,
        honest_utility=honest,
        w1_0=w1_0f,
        w2_0=w2_0f,
        w1_star=w1_s,
        w2_star=w2_s,
        swapped=swapped,
        adjusted=adjusted,
        delta_v1_stage1=d1_1,
        delta_v2_stage1=d2_1,
        delta_v1_stage2=d1_2,
        delta_v2_stage2=d2_2,
        total_gain=(u1_ss + u2_ss) - honest,
    )


def _oriented_path(
    g: WeightedGraph, v: int, w1, w2, swapped: bool, backend: Backend
):
    """Split path plus endpoint ids in the *oriented* labelling."""
    from ..graphs import cut_ring_at

    a, b = (w2, w1) if swapped else (w1, w2)
    p, pa, pb = cut_ring_at(g, v, backend.scalar(a), backend.scalar(b))
    return (p, pb, pa) if swapped else (p, pa, pb)


def _split_oriented(
    g: WeightedGraph, v: int, w1: float, w2: float, swapped: bool, backend: Backend
) -> tuple[float, float]:
    """Utilities (U_{v^1}, U_{v^2}) in the *oriented* labelling.

    Intermediate stage points do not preserve ``w1 + w2 = w_v``, so this
    builds the path directly instead of going through ``split_ring``'s
    conservation check.
    """
    from ..core import bd_allocation

    p, v1, v2 = _oriented_path(g, v, w1, w2, swapped, backend)
    alloc = bd_allocation(p, backend=backend)
    return float(alloc.utilities[v1]), float(alloc.utilities[v2])


def _adjusted_start(
    g: WeightedGraph,
    v: int,
    w1_0: float,
    w2_0: float,
    w2_star: float,
    swapped: bool,
    backend: Backend,
    iters: int = 60,
) -> tuple[float, float, bool]:
    """Apply the Adjusting Technique in oriented coordinates.

    When ``v^1`` and ``v^2`` share a bottleneck pair at the honest split,
    slide ``(w1_0 + z, w2_0 - z)`` to the last ``z <= w2_0 - w2_star`` with
    an unchanged decomposition (the slide is utility-neutral; Section
    III-C).  Returns the adjusted ``(w1_0, w2_0)`` plus whether any
    adjustment was applied.
    """
    from ..core import bottleneck_decomposition as _bd
    from .breakpoints import decomposition_signature

    def snapshot(z: float):
        p, v1, v2 = _oriented_path(g, v, w1_0 + z, w2_0 - z, swapped, backend)
        d = _bd(p, backend)
        return d, v1, v2

    z_max = w2_0 - w2_star
    if z_max <= 0:
        return w1_0, w2_0, False

    # Probe infinitesimally inside the slide: the honest split frequently
    # sits exactly on a regime boundary (e.g. two tied pairs that merge the
    # moment the weights move), so the shared-pair test and the reference
    # signature are taken at z = eps, matching the paper's open-interval
    # bookkeeping <a_i, b_i>.
    eps = min(1e-9 * max(1.0, float(w2_0)), 1e-3 * z_max)
    d_eps, v1, v2 = snapshot(eps)
    pair1, pair2 = d_eps.pair_of(v1), d_eps.pair_of(v2)
    if pair1 is not pair2:
        return w1_0, w2_0, False
    both_b = v1 in pair1.B and v2 in pair1.B
    both_c = v1 in pair1.C and v2 in pair1.C
    if not (both_b or both_c):
        # mixed membership makes the diagonal slide non-neutral; the paper's
        # same-pair cases (C-3 / D-1) are always both-C or both-B
        return w1_0, w2_0, False
    sig_ref = decomposition_signature(d_eps)

    def unchanged(z: float) -> bool:
        d, _, _ = snapshot(z)
        return decomposition_signature(d) == sig_ref

    if unchanged(z_max):
        return w1_0 + z_max, w2_star, True
    lo, hi = eps, z_max
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        if unchanged(mid):
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-13 * max(1.0, z_max):
            break
    return w1_0 + lo, w2_0 - lo, True
