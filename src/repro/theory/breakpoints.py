"""Interval partition of a weight sweep into constant-decomposition regimes.

Section III-B observes that as an agent's reported weight ``x`` sweeps
``[0, w_v]``, the bottleneck decomposition ``B(x)`` is piecewise constant:
the interval splits into finitely many regimes ``<a_i, b_i>`` with a fixed
combinatorial structure ``B^i`` inside each, and Propositions 11/12 and
Lemma 13 describe what may change across a breakpoint.

This module recovers that partition numerically: sample a probe grid,
detect signature changes, and bisect each change down to a tolerance.
With the exact backend the bisection runs on Fractions (breakpoints of
these instances are rationals, being solutions of linear equations between
ratios of affine functions of ``x``), so the bracket is exact to any
requested width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core import BottleneckDecomposition, bottleneck_decomposition
from ..graphs import WeightedGraph
from ..numeric import Backend, FLOAT, Scalar

__all__ = ["Regime", "decomposition_signature", "sweep_regimes", "regimes_of_report"]


def decomposition_signature(d: BottleneckDecomposition) -> tuple:
    """Hashable combinatorial fingerprint of a decomposition: the ordered
    tuple of (sorted B_i, sorted C_i).  Alpha values are deliberately
    excluded -- they vary continuously inside a regime."""
    return tuple((tuple(sorted(p.B)), tuple(sorted(p.C))) for p in d.pairs)


@dataclass(frozen=True)
class Regime:
    """One maximal interval on which the decomposition is constant.

    ``lo``/``hi`` bracket the regime; boundaries are refined to within
    ``gap`` of the true breakpoints (the regime is open or closed at each
    end depending on degenerate single-point regimes, which the sampler
    reports when a probe at the boundary itself disagrees with both sides).
    """

    lo: Scalar
    hi: Scalar
    signature: tuple
    representative: Scalar


def sweep_regimes(
    evaluate: Callable[[Scalar], tuple],
    lo: Scalar,
    hi: Scalar,
    probes: int = 48,
    gap: float = 1e-9,
    backend: Backend = FLOAT,
    zero_tol: float | None = None,
) -> list[Regime]:
    """Generic regime sweep of a signature-valued function on ``[lo, hi]``.

    ``evaluate(x)`` must return a hashable signature.  Adjacent probes with
    different signatures are bisected until the bracket width drops below
    ``gap`` (relative to the interval length), then the breakpoint is placed
    at the bracket midpoint.

    ``zero_tol`` controls the near-tie endpoint dedupe: when a breakpoint
    sits within float noise of a probe point (or of ``lo``/``hi``), two
    refinements can land essentially on top of each other, and the
    resulting sliver regime is narrower than the bisection resolution --
    its midpoint evaluation then flaps between the neighbors' signatures.
    Interior cuts within ``zero_tol`` (relative to the interval length) of
    the previously kept cut or of ``hi`` are dropped.  Defaults to ``gap``
    (the bisection resolution: anything closer is indistinguishable
    anyway); exact backends drop exact duplicates only.
    """
    if probes < 2:
        raise ValueError("need at least 2 probes")
    lo = backend.scalar(lo)
    hi = backend.scalar(hi)
    span = hi - lo
    if span <= 0:
        raise ValueError("empty sweep interval")

    xs = [lo + span * k / (probes - 1) for k in range(probes)]
    if backend.is_exact:
        from fractions import Fraction

        xs = [lo + span * Fraction(k, probes - 1) for k in range(probes)]
    sigs = [evaluate(x) for x in xs]

    # refine each change
    cuts: list[Scalar] = [lo]
    for i in range(len(xs) - 1):
        if sigs[i] == sigs[i + 1]:
            continue
        a, b = xs[i], xs[i + 1]
        sa = sigs[i]
        # bisect until narrow
        while float(b - a) > gap * max(1.0, float(span)):
            mid = (a + b) / 2
            if evaluate(mid) == sa:
                a = mid
            else:
                b = mid
        cuts.append((a + b) / 2)
    cuts.append(hi)

    tol = 0.0 if backend.is_exact else (gap if zero_tol is None else zero_tol)
    scaled = tol * max(1.0, float(span))
    deduped: list[Scalar] = [cuts[0]]
    for c in cuts[1:-1]:
        if float(c - deduped[-1]) <= scaled or float(hi - c) <= scaled:
            continue
        deduped.append(c)
    deduped.append(hi)
    cuts = deduped

    regimes: list[Regime] = []
    for i in range(len(cuts) - 1):
        a, b = cuts[i], cuts[i + 1]
        mid = (a + b) / 2
        regimes.append(Regime(lo=a, hi=b, signature=evaluate(mid), representative=mid))
    # merge accidental duplicates (a probe straddling a degenerate point)
    merged: list[Regime] = []
    for r in regimes:
        if merged and merged[-1].signature == r.signature:
            prev = merged[-1]
            merged[-1] = Regime(lo=prev.lo, hi=r.hi, signature=prev.signature,
                                representative=prev.representative)
        else:
            merged.append(r)
    return merged


def regimes_of_report(
    g: WeightedGraph,
    v: int,
    probes: int = 48,
    gap: float = 1e-9,
    backend: Backend = FLOAT,
    zero_tol: float | None = None,
) -> list[Regime]:
    """Constant-decomposition regimes of the misreport sweep ``x in [0, w_v]``
    (the ``{<a_i, b_i>}`` partition of Section III-B)."""

    def evaluate(x: Scalar) -> tuple:
        return decomposition_signature(
            bottleneck_decomposition(g.with_weight(v, x), backend)
        )

    return sweep_regimes(
        evaluate, 0, g.weights[v], probes=probes, gap=gap, backend=backend,
        zero_tol=zero_tol,
    )


def regimes_of_split(
    g: WeightedGraph,
    v: int,
    moving: str = "w1",
    fixed_value: Scalar = 0,
    probes: int = 48,
    gap: float = 1e-9,
    backend: Backend = FLOAT,
    zero_tol: float | None = None,
) -> list[Regime]:
    """Regimes of the split-path decomposition as one endpoint weight sweeps.

    ``moving`` selects which fictitious node's weight varies over
    ``[0, w_v - fixed_value]`` while the other stays at ``fixed_value``.
    Used by the stage analysis (Stages C-1/C-2/D-1/D-2 each move one
    endpoint's weight only).
    """
    from ..graphs import cut_ring_at

    wv = backend.scalar(g.weights[v])
    fixed = backend.scalar(fixed_value)
    if moving not in ("w1", "w2"):
        raise ValueError("moving must be 'w1' or 'w2'")

    def evaluate(x: Scalar) -> tuple:
        w1, w2 = (x, fixed) if moving == "w1" else (fixed, x)
        p, _, _ = cut_ring_at(g, v, w1, w2)
        return decomposition_signature(bottleneck_decomposition(p, backend))

    return sweep_regimes(
        evaluate, 0, wv - fixed, probes=probes, gap=gap, backend=backend,
        zero_tol=zero_tol,
    )
