"""Executable checks for the propositions the proof machinery rests on.

Each check returns a :class:`CheckResult` carrying a verdict plus the
measured data, so experiments can both assert and report.  The checks are
*numerical witnesses*, not proofs: they certify the implementation exhibits
exactly the structure the paper's citations ([15], [7]) claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from ..core import (
    bd_allocation,
    bottleneck_decomposition,
    closed_form_utilities,
    proportional_response,
)
from ..graphs import WeightedGraph
from ..numeric import Backend, EXACT, FLOAT, Scalar
from .breakpoints import Regime, regimes_of_report

__all__ = [
    "CheckResult",
    "check_proposition3",
    "check_proposition6",
    "check_proposition11",
    "check_proposition12",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one structural check."""

    name: str
    ok: bool
    details: str = ""
    data: dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_proposition3(g: WeightedGraph, backend: Backend = EXACT) -> CheckResult:
    """Proposition 3: alpha monotone in (0,1], unit pair last with B=C,
    independence of B_i below alpha=1, and the cross-pair edge rules."""
    d = bottleneck_decomposition(g, backend)
    alphas = d.alphas()
    problems: list[str] = []
    if not all(a > 0 for a in alphas):
        problems.append("alpha <= 0")
    if not all(alphas[i] < alphas[i + 1] for i in range(len(alphas) - 1)):
        problems.append("alphas not strictly increasing")
    if alphas and alphas[-1] > 1:
        problems.append("alpha_k > 1")
    for i, p in enumerate(d.pairs):
        if backend.eq(p.alpha, backend.scalar(1)):
            if i != len(d.pairs) - 1:
                problems.append(f"unit pair at index {p.index} is not last")
            if p.B != p.C:
                problems.append(f"unit pair {p.index} has B != C")
        else:
            if not g.is_independent(p.B):
                problems.append(f"B_{p.index} not independent")
            if p.B & p.C:
                problems.append(f"B_{p.index} intersects C_{p.index}")
    for p in d.pairs:
        for u in p.B:
            for x in g.neighbors(u):
                q = d.pair_of(x)
                if x in q.B and not (q.is_unit or p.is_unit) and q is not p:
                    problems.append(f"edge between B_{p.index} and B_{q.index}")
                if x in q.C and q.index > p.index:
                    problems.append(f"edge B_{p.index} -> C_{q.index} with j > i")
    return CheckResult(
        name="Proposition 3",
        ok=not problems,
        details="; ".join(problems) or "all invariants hold",
        data={"alphas": [float(a) for a in alphas], "k": d.k},
    )


def check_proposition6(
    g: WeightedGraph,
    tol: float = 1e-10,
    damping: float = 0.3,
    max_iters: int = 200_000,
    rel: float = 1e-5,
) -> CheckResult:
    """Proposition 6: the dynamics' limit utilities equal equation (2)."""
    res = proportional_response(g, max_iters=max_iters, tol=tol, damping=damping)
    d = bottleneck_decomposition(g, FLOAT)
    closed = closed_form_utilities(d)
    worst = 0.0
    for v in g.vertices():
        cf = closed[v]
        if cf is None:
            continue
        err = abs(res.utility_of(v) - float(cf)) / max(1.0, abs(float(cf)))
        worst = max(worst, err)
    ok = res.converged and worst <= rel
    return CheckResult(
        name="Proposition 6",
        ok=ok,
        details=f"converged={res.converged} in {res.iterations} iters, max rel err {worst:.2e}",
        data={"iterations": res.iterations, "max_rel_err": worst,
              "oscillating": res.oscillating},
    )


def check_proposition11(
    g: WeightedGraph,
    v: int,
    samples: int = 33,
    backend: Backend = EXACT,
) -> CheckResult:
    """Proposition 11: alpha_v(x) follows Case B-1, B-2, or B-3.

    Samples the curve, determines the case, and verifies the claimed
    monotonicity plus the class of ``v`` on each side.
    """
    wv = backend.scalar(g.weights[v])
    if backend.is_exact:
        xs: list[Scalar] = [wv * Fraction(k, samples - 1) for k in range(1, samples)]
    else:
        xs = [float(wv) * k / (samples - 1) for k in range(1, samples)]

    alphas = []
    in_c = []
    in_b = []
    for x in xs:
        d = bottleneck_decomposition(g.with_weight(v, x), backend)
        alphas.append(d.alpha_of(v))
        in_c.append(d.in_C(v))
        in_b.append(d.in_B(v))

    def nondecr(seq) -> bool:
        return all(not backend.gt(seq[i], seq[i + 1]) for i in range(len(seq) - 1))

    def nonincr(seq) -> bool:
        return all(not backend.lt(seq[i], seq[i + 1]) for i in range(len(seq) - 1))

    if all(in_c) and nondecr(alphas):
        case, ok = "B-1", True
    elif all(in_b) and nonincr(alphas):
        case, ok = "B-2", True
    else:
        # B-3: a C phase with rising alpha, then a B phase with falling
        # alpha; the crossing x* (alpha = 1) usually falls between samples,
        # so the split point is the first strictly-B sample.
        case = "B-3"
        strict_b = [i for i in range(len(xs)) if in_b[i] and not in_c[i]]
        if not strict_b:
            ok = False
        else:
            t = strict_b[0]
            before_ok = all(in_c[:t]) and nondecr(alphas[:t])
            after_ok = all(in_b[t:]) and nonincr(alphas[t:])
            below_one = all(float(a) <= 1 + 1e-12 for a in alphas)
            ok = before_ok and after_ok and below_one
    return CheckResult(
        name="Proposition 11",
        ok=ok,
        details=f"case {case}",
        data={"case": case, "alphas": [float(a) for a in alphas]},
    )


def check_proposition12(
    g: WeightedGraph,
    v: int,
    probes: int = 33,
    backend: Backend = FLOAT,
    gap: float = 1e-9,
) -> CheckResult:
    """Proposition 12: across each breakpoint the pair containing ``v``
    either merges with an adjacent pair or splits into two, with ``v``'s
    class preserved."""
    regimes = regimes_of_report(g, v, probes=probes, gap=gap, backend=backend)
    problems: list[str] = []
    transitions: list[str] = []

    def snapshot(x) -> tuple[frozenset, frozenset, bool, bool, float]:
        d = bottleneck_decomposition(g.with_weight(v, x), backend)
        p = d.pair_of(v)
        return p.B, p.C, d.in_B(v), d.in_C(v), float(p.alpha)

    for i in range(len(regimes) - 1):
        cut = float(regimes[i].hi)
        span = float(regimes[-1].hi) - float(regimes[0].lo)
        delta = max(gap * 100 * max(1.0, span), 1e-12)
        lo_x = max(float(regimes[i].lo), cut - delta)
        hi_x = min(float(regimes[i + 1].hi), cut + delta)
        B0, C0, b0, c0, a0 = snapshot(lo_x)
        B1, C1, b1, c1, a1 = snapshot(hi_x)
        if (B0, C0) == (B1, C1):
            transitions.append("unchanged")
            continue
        crossing_unit = abs(a0 - 1.0) < 0.01 and abs(a1 - 1.0) < 0.01
        # Prop 12-(1): v keeps its class across a breakpoint.  The only
        # legal flip path is through the alpha = 1 unit pair (a single-point
        # regime in the paper's bookkeeping), where v is both classes.
        strict_flip = (b0 and not c0 and c1 and not b1) or (c0 and not b0 and b1 and not c1)
        if strict_flip and not crossing_unit:
            problems.append(
                f"breakpoint {i}: class flip away from alpha=1 "
                f"(alpha {a0:.4f} -> {a1:.4f})"
            )
            transitions.append("illegal-flip")
            continue
        if crossing_unit and strict_flip:
            transitions.append("unit-crossing")
            continue
        # Prop 12-(2)/(3): the pair containing v merges with a neighbor pair
        # or splits into two -- memberships nest across the breakpoint.
        if B1 <= B0 and C1 <= C0:
            transitions.append("split")
        elif B0 <= B1 and C0 <= C1:
            transitions.append("merge")
        else:
            problems.append(
                f"breakpoint {i}: pair of v changed non-monotonically "
                f"(B {sorted(B0)}->{sorted(B1)})"
            )
            transitions.append("other")
    return CheckResult(
        name="Proposition 12",
        ok=not problems,
        details="; ".join(problems) or f"{len(regimes)} regimes, transitions ok",
        data={"num_regimes": len(regimes), "transitions": transitions},
    )
