"""Executable checks for the paper's lemmas and theorems.

Companion to :mod:`.propositions`: these cover the ring-specific results --
Lemma 9 (honest split neutrality), Lemma 13 (unimpacted pairs), Lemmas
14/20 (initial forms), the stage inequalities of Lemmas 16/18/19/22/24 (via
:mod:`.stages`), Theorem 10 (truthful monotone utility) and Theorem 8 (the
headline ratio bound).
"""

from __future__ import annotations

from fractions import Fraction

from ..attack import best_split, honest_split, split_ring, utility_curve
from ..core import bd_allocation, bottleneck_decomposition
from ..graphs import WeightedGraph, require_ring
from ..numeric import Backend, EXACT, FLOAT
from .propositions import CheckResult
from .stages import StageReport, stage_report

__all__ = [
    "check_lemma9",
    "check_lemma13",
    "check_lemma15",
    "check_theorem8",
    "check_theorem10",
    "check_stage_lemmas",
]


def check_lemma9(g: WeightedGraph, v: int, backend: Backend = EXACT) -> CheckResult:
    """Lemma 9: splitting at the equilibrium flow amounts is utility-neutral."""
    require_ring(g)
    w1, w2 = honest_split(g, v, backend)
    out = split_ring(g, v, w1, w2, backend)
    truthful = bd_allocation(g, backend=backend).utilities[v]
    got = out.attacker_utility
    if backend.is_exact:
        ok = got == truthful
    else:
        ok = abs(float(got) - float(truthful)) <= 1e-9 * max(1.0, abs(float(truthful)))
    return CheckResult(
        name="Lemma 9",
        ok=ok,
        details=f"U_v = {float(truthful):.6g}, split sum = {float(got):.6g}",
        data={"truthful": float(truthful), "split": float(got),
              "w1_0": float(w1), "w2_0": float(w2)},
    )


def check_lemma13(
    g: WeightedGraph,
    v: int,
    a,
    b,
    backend: Backend = EXACT,
) -> CheckResult:
    """Lemma 13 on the report sweep: while ``v`` stays one class on
    ``[a, b]``, the pairs on the protected side of ``alpha_v`` are not
    impacted.

    Concretely: if ``v`` is C class at both ends, the pairs of ``B(a)``
    with alpha < alpha_v(a) must appear unchanged in ``B(b)``; if B class,
    the pairs of ``B(a)`` with alpha > alpha_v(a).  (Increasing direction;
    call with ``a > b`` for the decreasing statement -- the roles of the
    endpoints swap symmetrically.)
    """
    da = bottleneck_decomposition(g.with_weight(v, backend.scalar(a)), backend)
    db = bottleneck_decomposition(g.with_weight(v, backend.scalar(b)), backend)
    va_c, vb_c = da.in_C(v), db.in_C(v)
    va_b, vb_b = da.in_B(v), db.in_B(v)
    if not ((va_c and vb_c) or (va_b and vb_b)):
        return CheckResult("Lemma 13", True, "precondition empty: v changes class", {})
    alpha_va = da.alpha_of(v)
    pairs_b = {(p.B, p.C) for p in db.pairs}
    problems = []
    protected = []
    for p in da.pairs:
        if va_c and vb_c and backend.lt(p.alpha, alpha_va):
            protected.append(p)
        elif va_b and vb_b and not va_c and backend.gt(p.alpha, alpha_va):
            protected.append(p)
    for p in protected:
        if (p.B, p.C) not in pairs_b:
            problems.append(f"pair {p.index} (alpha={float(p.alpha):.4g}) impacted")
    # other agents' classes persist too
    for u in g.vertices():
        if u == v:
            continue
        if da.in_B(u) and not da.in_C(u) and db.in_C(u) and not db.in_B(u):
            problems.append(f"vertex {u} flipped B->C")
        if da.in_C(u) and not da.in_B(u) and db.in_B(u) and not db.in_C(u):
            problems.append(f"vertex {u} flipped C->B")
    return CheckResult(
        name="Lemma 13",
        ok=not problems,
        details="; ".join(problems) or f"{len(protected)} protected pairs intact",
        data={"protected": len(protected)},
    )


def check_theorem10(
    g: WeightedGraph, v: int, samples: int = 17, backend: Backend = EXACT
) -> CheckResult:
    """Theorem 10: U_v(x) continuous (numerically: small jumps on a fine
    grid) and monotonically non-decreasing."""
    wv = g.weights[v]
    if backend.is_exact:
        xs = [Fraction(k) * wv / (samples - 1) for k in range(samples)]
    else:
        xs = [float(wv) * k / (samples - 1) for k in range(samples)]
    curve = utility_curve(g, v, xs, backend)
    mono = all(not backend.gt(curve[i], curve[i + 1]) for i in range(len(curve) - 1))
    return CheckResult(
        name="Theorem 10",
        ok=mono,
        details="monotone" if mono else "monotonicity violated",
        data={"curve": [float(u) for u in curve]},
    )


def check_theorem8(
    g: WeightedGraph, grid: int = 48, backend: Backend = FLOAT, slack: float = 1e-6
) -> CheckResult:
    """Theorem 8 (headline): every agent's Sybil incentive ratio <= 2."""
    require_ring(g)
    worst = 0.0
    worst_v = -1
    for v in g.vertices():
        r = best_split(g, v, grid=grid, backend=backend)
        if r.ratio > worst:
            worst, worst_v = r.ratio, v
    return CheckResult(
        name="Theorem 8",
        ok=worst <= 2.0 + slack,
        details=f"max zeta_v = {worst:.6f} at v={worst_v}",
        data={"zeta": worst, "vertex": worst_v},
    )


def check_stage_lemmas(
    g: WeightedGraph, v: int, grid: int = 48, backend: Backend = FLOAT, slack: float = 1e-6
) -> tuple[StageReport, CheckResult]:
    """Evaluate the stage inequalities (Lemmas 16/18/19 or 22/24) for one
    attacker; returns the full report plus a verdict."""
    report = stage_report(g, v, grid=grid, backend=backend)
    bounds = report.lemma_bounds(slack=slack)
    bad = [k for k, okay in bounds.items() if not okay]
    return report, CheckResult(
        name=f"Stage lemmas ({report.ring_class.value} class)",
        ok=not bad,
        details="; ".join(bad) or f"all {len(bounds)} inequalities hold",
        data={"bounds": bounds, "form": report.initial_form.value},
    )


def check_lemma15(
    g: WeightedGraph,
    v: int,
    backend: Backend = FLOAT,
    eps_frac: float = 1e-6,
) -> CheckResult:
    """Lemma 15 (and its mirror, Lemma 21): infinitesimal-split behaviour.

    When the two fictitious nodes share a bottleneck pair at the honest
    split, perturbing the moving endpoint by a sufficiently small eps must
    split that pair in two, with

    * C class (Lemma 15): ``alpha_{v^2}(w1, w2 - eps) < alpha_{v^1}(w1,
      w2 - eps) = alpha_{v^1}(w1, w2)``;
    * B class (Lemma 21): ``alpha_{v^1}(w1 + eps, w2) < alpha_{v^2}(w1 +
      eps, w2) = alpha_{v^2}(w1, w2)``.

    Returns a passing precondition-empty result when the endpoints are not
    in a shared pair.
    """
    from ..attack import honest_split
    from ..graphs import cut_ring_at
    from ..core import bottleneck_decomposition as _bd
    from ..core.classes import VertexClass
    from .breakpoints import decomposition_signature
    from .stages import ring_class_of

    w1_0, w2_0 = honest_split(g, v, backend)
    w1_0, w2_0 = float(w1_0), float(w2_0)
    cls = ring_class_of(g, v, backend)
    wv = float(g.weights[v])
    eps = eps_frac * max(wv, 1.0)

    def snapshot(w1: float, w2: float):
        p, q1, q2 = cut_ring_at(g, v, backend.scalar(w1), backend.scalar(w2))
        return _bd(p, backend), q1, q2

    d0, v1, v2 = snapshot(w1_0, w2_0)
    pair = d0.pair_of(v1)
    if pair is not d0.pair_of(v2):
        return CheckResult("Lemma 15/21", True, "precondition empty: different pairs", {})
    both_c = v1 in pair.C and v2 in pair.C
    both_b = v1 in pair.B and v2 in pair.B
    if cls is VertexClass.C and not both_c:
        return CheckResult("Lemma 15/21", True,
                           "precondition empty: endpoints not both C (Case C-2 shape)", {})
    if cls is VertexClass.B and not both_b:
        return CheckResult("Lemma 15/21", True,
                           "precondition empty: endpoints not both B", {})

    # Adjusting Technique: slide (w1_0 + z, w2_0 - z) to the critical z
    # where the shared-pair structure is about to change (the lemma's
    # stated starting point).  If the whole slide is neutral, the paper's
    # "cannot improve" branch applies and the lemma has nothing to say.
    sig0 = decomposition_signature(d0)
    z_max = w2_0

    def unchanged(z: float) -> bool:
        d, _, _ = snapshot(w1_0 + z, w2_0 - z)
        return decomposition_signature(d) == sig0

    if unchanged(z_max):
        return CheckResult("Lemma 15/21", True,
                           "precondition empty: slide neutral to the end", {})
    lo, hi = 0.0, z_max
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if unchanged(mid):
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-14 * max(1.0, z_max):
            break
    w1a, w2a = w1_0 + lo, w2_0 - lo
    da, a1, a2 = snapshot(w1a, w2a)
    if da.pair_of(a1) is not da.pair_of(a2):
        return CheckResult("Lemma 15/21", True,
                           "precondition empty: pair already split at critical z", {})
    base_alpha = float(da.alpha_of(a1))

    if cls is VertexClass.C:
        # Lemma 15: decrease w2 by eps -> pair splits, moved side smaller
        if not w2a > eps:
            return CheckResult("Lemma 15/21", True,
                               "precondition empty: no weight left to move", {})
        d1, q1, q2 = snapshot(w1a, w2a - eps)
        moved, still = q2, q1
    else:
        # Lemma 21: increase w1 by eps (weight conservation is not required
        # off the strategy manifold; the stage analysis does the same)
        d1, q1, q2 = snapshot(w1a + eps, w2a)
        moved, still = q1, q2
    split_apart = d1.pair_of(q1) is not d1.pair_of(q2)
    a_moved = float(d1.alpha_of(moved))
    a_still = float(d1.alpha_of(still))
    ok = (
        split_apart
        and a_moved < a_still + 1e-9
        and abs(a_still - base_alpha) <= 1e-4 * max(1.0, base_alpha)
    )
    return CheckResult(
        name="Lemma 15/21",
        ok=ok,
        details=(f"{cls.value}-class at critical z={lo:.3g}: split={split_apart}, "
                 f"alpha_moved={a_moved:.6g} vs alpha_still={a_still:.6g} "
                 f"(base {base_alpha:.6g})"),
        data={"alpha_moved": a_moved, "alpha_still": a_still, "z": lo},
    )
