"""Command-line entry point: ``repro-fuzz``.

Usage::

    repro-fuzz [--iterations N] [--seed S] [--corpus DIR] [--audit LEVEL]
               [--grid K] [--iter-timeout SECS] [--solver NAME] [--json]

Runs the seeded structure-aware fuzz campaign (:mod:`repro.guard.fuzz`)
against the public pipeline and exits 0 when every iteration upheld the
hardening contract (typed error or audited-correct finite result), 1 when
any crash/hang/NaN escaped (survivors are shrunk and filed into the
corpus when ``--corpus`` is given, ready for ``repro-oracle replay``),
and 2 on operator error.

CI pins ``repro-fuzz --iterations 300 --seed 0 --corpus corpus`` as a
deterministic smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..exceptions import ReproError

__all__ = ["main", "build_parser"]

AUDIT_LEVELS = ("off", "cheap", "differential", "paranoid")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Structure-aware fuzzing of the load/decompose/allocate/"
                    "best-response pipeline",
    )
    parser.add_argument("--iterations", type=int, default=300, metavar="N",
                        help="fuzz iterations to run (default: 300)")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="deterministic campaign seed (default: 0)")
    parser.add_argument("--corpus", default=None, metavar="DIR",
                        help="file shrunk survivors into this failure corpus")
    parser.add_argument("--audit", choices=AUDIT_LEVELS, default="off",
                        help="attach the oracle auditor at this level; "
                             "'paranoid' makes every accepted result an "
                             "audited-correct one (default: off)")
    parser.add_argument("--grid", type=int, default=6, metavar="K",
                        help="best-response grid resolution (default: 6)")
    parser.add_argument("--iter-timeout", type=float, default=30.0,
                        metavar="SECS",
                        help="per-iteration wall-clock budget; exceeding it "
                             "is a 'hang' escape (0 disables; default: 30)")
    parser.add_argument("--solver", default="dinic", metavar="NAME",
                        help="max-flow solver registry name (default: dinic)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the full report as JSON on stdout")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.iterations <= 0:
        print("error: --iterations must be positive", file=sys.stderr)
        return 2
    from .fuzz import fuzz  # lazy: pulls in the whole public API

    try:
        report = fuzz(
            iterations=args.iterations,
            seed=args.seed,
            corpus_dir=args.corpus,
            audit=args.audit,
            grid=args.grid,
            iter_timeout=args.iter_timeout or None,
            solver=args.solver,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        json.dump(report.to_dict(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(f"repro-fuzz: {report.summary()}")
        if report.rejected_by:
            for name in sorted(report.rejected_by):
                print(f"  rejected by {name}: {report.rejected_by[name]}")
        for _, out in report.survivors:
            print(f"  SURVIVOR [{out.status}] at {out.stage}: {out.detail}")
        for path in report.corpus_paths:
            print(f"  filed: {path}")
    if report.ok:
        if not args.as_json:
            print("repro-fuzz: contract held (typed error or audited-correct "
                  "result on every iteration)")
        return 0
    print(f"repro-fuzz: {len(report.survivors)} escape(s) -- see survivors "
          "above", file=sys.stderr)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
