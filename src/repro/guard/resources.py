"""Resource envelopes: per-worker rlimits and combinatorial size caps.

An adversarial (or merely degenerate) instance must cost one cell, not the
host.  Three envelopes, all carried by
:class:`~repro.runtime.RuntimePolicy` and applied by the supervisor:

* **address space** (``RLIMIT_AS``) -- a worker whose cell balloons past
  ``max_memory_mb`` gets a ``MemoryError`` from the allocator, which the
  worker loop translates into a typed, retryable
  :class:`~repro.exceptions.ResourceExhaustedError` instead of being
  OOM-killed (taking the pool's shared queues with it);
* **CPU time** (``RLIMIT_CPU``) -- a runaway cell is SIGKILLed by the
  kernel at ``max_cpu_seconds`` of *CPU* time (wall-clock hangs are the
  supervisor ``timeout``'s job); the supervisor observes a dead worker and
  requeues the cell through the normal crash path;
* **enumeration size** -- the brute-force oracles refuse instances above
  :func:`bruteforce_limit` *before* entering a ``2^n`` loop, so the cap is
  enforced even on the serial path where rlimits cannot be applied
  (limiting the supervisor's own process would take down the host run).

Rlimits are process-wide and irreversible downward, so they are applied
only inside freshly spawned worker processes, never in the caller.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import EngineError, ResourceExhaustedError

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = [
    "DEFAULT_BRUTEFORCE_LIMIT",
    "RLIMITS_AVAILABLE",
    "apply_rlimits",
    "envelope_from_policy",
    "bruteforce_limit",
    "set_bruteforce_limit",
    "check_bruteforce_size",
    "translate_resource_errors",
]

#: ``resource.setrlimit`` is available (POSIX); on other platforms the
#: memory/CPU envelopes are silently inert and only the size caps apply.
RLIMITS_AVAILABLE = _resource is not None

#: Default cap on brute-force enumeration (``2^n`` subsets): matches the
#: historical ``_BRUTE_LIMIT`` of :mod:`repro.core.bruteforce`.
DEFAULT_BRUTEFORCE_LIMIT = 18

_BRUTEFORCE_LIMIT = DEFAULT_BRUTEFORCE_LIMIT


def apply_rlimits(
    max_memory_mb: Optional[float] = None,
    max_cpu_seconds: Optional[float] = None,
) -> list[str]:
    """Apply rlimits to *this* process; returns the limits actually set.

    Call only from a worker process that exists to run guarded cells --
    rlimits cannot be raised back by an unprivileged process.  Limits the
    platform refuses (or that ``resource`` cannot express) are skipped
    rather than fatal: the typed-translation and size-cap layers still
    hold, just without kernel enforcement.
    """
    applied: list[str] = []
    if _resource is None:
        return applied
    if max_memory_mb is not None:
        limit = int(max_memory_mb * 1024 * 1024)
        try:
            _resource.setrlimit(_resource.RLIMIT_AS, (limit, limit))
            applied.append(f"RLIMIT_AS={limit}")
        except (ValueError, OSError):  # pragma: no cover - platform-dependent
            pass
    if max_cpu_seconds is not None:
        limit = max(1, int(max_cpu_seconds))
        try:
            # Identical soft and hard limits: the kernel sends SIGXCPU at
            # the soft limit, whose default action already terminates the
            # worker; the supervisor sees a crash and requeues the cell.
            _resource.setrlimit(_resource.RLIMIT_CPU, (limit, limit))
            applied.append(f"RLIMIT_CPU={limit}")
        except (ValueError, OSError):  # pragma: no cover - platform-dependent
            pass
    return applied


def envelope_from_policy(policy) -> Optional[tuple]:
    """Picklable ``(max_memory_mb, max_cpu_seconds)`` for a worker, or
    ``None`` when the policy sets no envelope (zero overhead)."""
    mem = getattr(policy, "max_memory_mb", None)
    cpu = getattr(policy, "max_cpu_seconds", None)
    if mem is None and cpu is None:
        return None
    return (mem, cpu)


def bruteforce_limit() -> int:
    """Current cap on brute-force enumeration sizes (vertex count)."""
    return _BRUTEFORCE_LIMIT


def set_bruteforce_limit(limit: Optional[int]) -> int:
    """Set the process-wide brute-force cap; returns the previous value.

    ``None`` restores the default.  The supervisor installs the policy's
    ``max_bruteforce_n`` in each worker (and around serial guarded runs)
    so the cap travels with the envelope.
    """
    global _BRUTEFORCE_LIMIT
    old = _BRUTEFORCE_LIMIT
    if limit is None:
        _BRUTEFORCE_LIMIT = DEFAULT_BRUTEFORCE_LIMIT
    else:
        if limit < 1:
            raise EngineError(f"brute-force limit must be >= 1, got {limit}")
        _BRUTEFORCE_LIMIT = int(limit)
    return old


def check_bruteforce_size(n: int, what: str = "brute force") -> None:
    """Refuse a ``2^n`` enumeration above the configured cap -- typed."""
    if n > _BRUTEFORCE_LIMIT:
        raise ResourceExhaustedError(
            f"{what} over {n} vertices exceeds the size cap "
            f"{_BRUTEFORCE_LIMIT} (2^{n} subsets); raise the cap explicitly "
            f"or use the parametric path",
            resource="size",
        )


def translate_resource_errors(exc: BaseException) -> BaseException:
    """Map raw exhaustion signals onto the typed taxonomy.

    ``MemoryError`` (the allocator under ``RLIMIT_AS``, or genuine host
    pressure) and ``RecursionError`` (adversarial structure blowing the
    interpreter stack) become :class:`ResourceExhaustedError` so the
    supervisor's retry/escalate ladder applies; anything else is returned
    unchanged.
    """
    if isinstance(exc, MemoryError):
        return ResourceExhaustedError(
            "cell exhausted its memory envelope (MemoryError under "
            "RLIMIT_AS or host memory pressure)", resource="memory",
        )
    if isinstance(exc, RecursionError):
        return ResourceExhaustedError(
            "cell exhausted the interpreter stack (RecursionError)",
            resource="size",
        )
    return exc
