"""Input-boundary hardening: validation, resource envelopes, fuzzing.

Three coupled layers (see DESIGN.md, "Error taxonomy & hardening"):

* :mod:`repro.guard.validate` -- the typed validation pass every public
  entry point (``repro.io`` loaders, corpus/checkpoint deserialization,
  the CLIs) runs over untrusted input before any math sees it;
* :mod:`repro.guard.resources` -- per-worker ``setrlimit`` envelopes and
  combinatorial size caps, wired through
  :class:`~repro.runtime.RuntimePolicy` into the supervisor;
* :mod:`repro.guard.fuzz` -- the seeded structure-aware fuzzer behind the
  ``repro-fuzz`` CLI that drives the public API with corrupted instances
  and asserts *typed error or audited-correct result, never
  crash/hang/NaN*, shrinking survivors into the replayable corpus.

Import discipline: this ``__init__`` (and ``validate``/``resources``)
depends only on :mod:`repro.exceptions` and :mod:`repro.numeric`, so the
graphs/flow/io layers can call into the guard without cycles.  The fuzzer
sits *above* the whole public API and is imported lazily
(``repro.guard.fuzz``), never from here.
"""

from .resources import (
    DEFAULT_BRUTEFORCE_LIMIT,
    RLIMITS_AVAILABLE,
    apply_rlimits,
    bruteforce_limit,
    check_bruteforce_size,
    envelope_from_policy,
    set_bruteforce_limit,
    translate_resource_errors,
)
from .validate import (
    MAX_EDGES,
    MAX_VERTICES,
    SERVE_OPS,
    check_scalar,
    scalar_from_json,
    set_validation,
    validate_graph_dict,
    validate_network_dict,
    validate_request_dict,
    validation_enabled,
)

__all__ = [
    "MAX_VERTICES",
    "MAX_EDGES",
    "SERVE_OPS",
    "check_scalar",
    "scalar_from_json",
    "validate_graph_dict",
    "validate_network_dict",
    "validate_request_dict",
    "set_validation",
    "validation_enabled",
    "DEFAULT_BRUTEFORCE_LIMIT",
    "RLIMITS_AVAILABLE",
    "apply_rlimits",
    "envelope_from_policy",
    "bruteforce_limit",
    "set_bruteforce_limit",
    "check_bruteforce_size",
    "translate_resource_errors",
]
