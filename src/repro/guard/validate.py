"""Boundary validation: one typed pass over every untrusted input shape.

The math layers (decomposition, allocation, best response) assume
well-formed instances -- finite non-negative weights, simple graphs,
consistent sizes.  Anything that enters from *outside* the process (JSON
files, corpus records, checkpoint journals, CLI arguments, fuzzed bytes)
goes through the predicates here first, so malformed input dies at the
boundary with a :class:`~repro.exceptions.MalformedInputError` instead of
surfacing deep inside the parametric machinery as a ``ZeroDivisionError``,
an ``IndexError``, or -- worst -- a silently computed ``alpha = nan``.

Every predicate is pure and cheap (no graph is constructed here); the
constructors in :mod:`repro.graphs` and :mod:`repro.flow` keep their own
structural checks and this layer handles the representation-level garbage
those checks were never meant to see.

A process-wide switch (:func:`set_validation` / :func:`validation_enabled`)
lets trusted hot paths opt out of the deep scalar re-checks; the default is
on, and the fuzz harness asserts the on-path never crashes.
"""

from __future__ import annotations

import math
import re
from fractions import Fraction
from operator import index as _as_index
from typing import Any

from ..exceptions import MalformedInputError
from ..numeric import Scalar

__all__ = [
    "MAX_VERTICES",
    "MAX_EDGES",
    "SERVE_OPS",
    "check_scalar",
    "scalar_from_json",
    "validate_graph_dict",
    "validate_network_dict",
    "validate_request_dict",
    "set_validation",
    "validation_enabled",
]

#: Hard ceiling on vertex counts accepted from untrusted input.  Large
#: enough for any sweep this library runs (the full-scale experiments top
#: out at n = 64), small enough that an adversarial ``"n": 10**18`` is
#: rejected before a single adjacency list is allocated.
MAX_VERTICES = 1 << 22

#: Matching ceiling on edge/arc list lengths.
MAX_EDGES = 1 << 24

_FRACTION_RE = re.compile(r"^(-?\d+)/(\d+)$")

#: Process-wide validation switch (see :func:`set_validation`).
_VALIDATION = True


def set_validation(enabled: bool) -> bool:
    """Toggle deep boundary validation process-wide; returns the old value.

    The fast path (``enabled=False``) is for trusted internal
    reconstructions -- e.g. re-materializing thousands of checkpointed
    cells whose scalars were validated when first computed.  Public entry
    points never consult this switch for *shape* checks, only for the
    per-scalar re-checks.
    """
    global _VALIDATION
    old = _VALIDATION
    _VALIDATION = bool(enabled)
    return old


def validation_enabled() -> bool:
    return _VALIDATION


def _reject(what: str, obj: Any) -> MalformedInputError:
    return MalformedInputError(f"{what}: {obj!r}")


def check_scalar(
    value: Any,
    *,
    what: str = "scalar",
    allow_negative: bool = False,
    allow_positive_inf: bool = False,
) -> Scalar:
    """Validate one in-memory scalar; returns it unchanged.

    Rejects non-numeric types (strings, None, bools, containers), NaN,
    infinities (``allow_positive_inf`` admits ``+inf`` for the flow
    networks' unbounded bipartite arcs), and -- unless ``allow_negative``
    -- negative values.  ``bool`` is rejected explicitly even though it
    subclasses ``int``: a weight of ``True`` is always a serialization bug
    upstream.
    """
    if not _VALIDATION:
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float, Fraction)):
        raise _reject(f"{what} is not a number", value)
    if isinstance(value, float) and not math.isfinite(value):
        if not (allow_positive_inf and value == math.inf):
            raise _reject(f"{what} is not finite", value)
    if not allow_negative and value < 0:
        raise _reject(f"{what} is negative", value)
    return value


def scalar_from_json(obj: Any, *, what: str = "scalar",
                     allow_negative: bool = False,
                     allow_positive_inf: bool = False) -> Scalar:
    """Decode one exact-serialized scalar with full boundary validation.

    Accepts the three encodings :mod:`repro.io.serialization` writes --
    plain int/float, ``{"frac": "p/q"}``, ``{"float": "<hex>"}`` -- and
    raises :class:`MalformedInputError` for everything else: unknown
    encodings, malformed or zero-denominator fraction strings, hex strings
    that decode to NaN/Inf, and negative values where the consumer
    (weights, capacities) requires non-negative.
    """
    if isinstance(obj, dict):
        if len(obj) != 1:
            # {"frac": ..., "float": ...} is ambiguous; which encoding wins
            # would depend on key-check order, so refuse outright.
            raise _reject(f"{what} encoding must have exactly one key", obj)
        if "frac" in obj:
            text = obj["frac"]
            if not isinstance(text, str):
                raise _reject(f"{what} fraction encoding is not a string", text)
            m = _FRACTION_RE.match(text)
            if m is None:
                raise _reject(f"{what} is not a 'p/q' fraction", text)
            num, den = int(m.group(1)), int(m.group(2))
            if den == 0:
                raise _reject(f"{what} has a zero denominator", text)
            return check_scalar(Fraction(num, den), what=what,
                                allow_negative=allow_negative,
                                allow_positive_inf=allow_positive_inf)
        if "float" in obj:
            text = obj["float"]
            if not isinstance(text, str):
                raise _reject(f"{what} float encoding is not a hex string", text)
            try:
                value = float.fromhex(text)
            except (ValueError, OverflowError) as exc:
                raise MalformedInputError(
                    f"{what} is not a valid float hex string: {text!r} ({exc})"
                ) from exc
            return check_scalar(value, what=what, allow_negative=allow_negative,
                                allow_positive_inf=allow_positive_inf)
        raise _reject(f"unknown {what} encoding", obj)
    return check_scalar(obj, what=what, allow_negative=allow_negative,
                        allow_positive_inf=allow_positive_inf)


def _check_count(obj: Any, what: str, limit: int) -> int:
    """An exact non-negative integer bounded by ``limit``."""
    if isinstance(obj, bool):
        raise _reject(f"{what} is not an integer", obj)
    try:
        n = _as_index(obj)
    except TypeError as exc:
        raise _reject(f"{what} is not an integer", obj) from exc
    if n < 0:
        raise _reject(f"{what} is negative", n)
    if n > limit:
        raise MalformedInputError(
            f"{what} {n} exceeds the boundary limit {limit}; refusing to "
            f"materialize"
        )
    return n


def _check_endpoint(obj: Any, n: int, what: str) -> int:
    if isinstance(obj, bool):
        raise _reject(f"{what} endpoint is not an integer", obj)
    try:
        u = _as_index(obj)
    except TypeError as exc:
        raise _reject(f"{what} endpoint is not an integer", obj) from exc
    if not 0 <= u < n:
        raise MalformedInputError(f"{what} endpoint {u} out of range for n={n}")
    return u


def validate_graph_dict(d: Any) -> dict:
    """Shape-validate a ``graph_to_dict`` payload; returns ``d`` unchanged.

    Checks everything that must hold *before* ``WeightedGraph`` is asked to
    construct: the payload is a dict with integer ``n`` (bounded by
    :data:`MAX_VERTICES`), ``edges`` is a sequence of in-range integer
    pairs, ``weights`` is a sequence of exactly ``n`` valid non-negative
    scalars, and ``labels`` (if present) is ``n`` strings.  Structural
    graph errors (duplicate edges, self-loops) are left to the constructor,
    which raises the established :class:`~repro.exceptions.GraphError`
    taxonomy.
    """
    if not isinstance(d, dict):
        raise _reject("graph payload is not an object", type(d).__name__)
    for key in ("n", "edges", "weights"):
        if key not in d:
            raise MalformedInputError(f"graph payload is missing field {key!r}")
    n = _check_count(d["n"], "vertex count", MAX_VERTICES)
    edges = d["edges"]
    if not isinstance(edges, (list, tuple)):
        raise _reject("graph edges is not a list", edges)
    if len(edges) > MAX_EDGES:
        raise MalformedInputError(
            f"edge count {len(edges)} exceeds the boundary limit {MAX_EDGES}"
        )
    for e in edges:
        if not isinstance(e, (list, tuple)) or len(e) != 2:
            raise _reject("graph edge is not a (u, v) pair", e)
        _check_endpoint(e[0], n, "edge")
        _check_endpoint(e[1], n, "edge")
    weights = d["weights"]
    if not isinstance(weights, (list, tuple)):
        raise _reject("graph weights is not a list", weights)
    if len(weights) != n:
        raise MalformedInputError(
            f"graph payload has {len(weights)} weights for n={n}"
        )
    if _VALIDATION:
        for i, w in enumerate(weights):
            scalar_from_json(w, what=f"weight of vertex {i}")
    labels = d.get("labels")
    if labels is not None:
        if not isinstance(labels, (list, tuple)) or len(labels) != n:
            raise _reject(f"graph labels is not a list of {n} strings", labels)
        for lab in labels:
            if not isinstance(lab, str):
                raise _reject("graph label is not a string", lab)
    return d


#: Operations the ``repro-serve`` wire protocol accepts.  ``solve`` is the
#: workload; the rest are control-plane (liveness probe, counters snapshot,
#: graceful drain, immediate shutdown).
SERVE_OPS = ("solve", "ping", "stats", "drain", "shutdown")

#: Ceiling on request-id length; ids are opaque client correlation tokens
#: echoed back verbatim, so an adversarial megabyte id must die here, not
#: get copied into every response.
_MAX_REQUEST_ID_LEN = 256

#: Ceiling on a request's ``deadline_ms`` budget (24 h): a deadline is a
#: *bound* on how long the client will wait, so absurd values signal a
#: confused client (seconds vs milliseconds, say) rather than intent.
_MAX_DEADLINE_MS = 24 * 3600 * 1000


def validate_request_dict(d: Any) -> dict:
    """Shape-validate one ``repro-serve`` request envelope; returns ``d``.

    Checks the *envelope* only: the payload is a dict, ``op`` names a known
    operation, ``id`` (if present) is a bounded string/int correlation
    token, and ``deadline_ms`` (if present) is a finite positive budget in
    milliseconds.  A ``solve`` request must carry a ``graph`` field, but the graph
    payload itself is validated by :func:`validate_graph_dict` at
    construction time -- same two-stage discipline as every other boundary.
    """
    if not isinstance(d, dict):
        raise _reject("request is not an object", type(d).__name__)
    op = d.get("op")
    if not isinstance(op, str):
        raise _reject("request op is not a string", op)
    if op not in SERVE_OPS:
        raise MalformedInputError(
            f"unknown request op {op!r}; expected one of {', '.join(SERVE_OPS)}"
        )
    req_id = d.get("id")
    if req_id is not None and not isinstance(req_id, (str, int)):
        raise _reject("request id is not a string or integer", req_id)
    if isinstance(req_id, bool):
        raise _reject("request id is not a string or integer", req_id)
    if isinstance(req_id, str) and len(req_id) > _MAX_REQUEST_ID_LEN:
        raise MalformedInputError(
            f"request id length {len(req_id)} exceeds {_MAX_REQUEST_ID_LEN}"
        )
    if op == "solve" and "graph" not in d:
        raise MalformedInputError("solve request is missing field 'graph'")
    deadline_ms = d.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise _reject("request deadline_ms is not a number", deadline_ms)
        if not math.isfinite(deadline_ms) or deadline_ms <= 0:
            raise MalformedInputError(
                f"request deadline_ms must be a finite positive number of "
                f"milliseconds, got {deadline_ms!r}"
            )
        if deadline_ms > _MAX_DEADLINE_MS:
            raise MalformedInputError(
                f"request deadline_ms {deadline_ms:g} exceeds the "
                f"{_MAX_DEADLINE_MS} ms ceiling"
            )
    return d


def validate_network_dict(d: Any) -> dict:
    """Shape-validate a ``network_to_dict`` payload; returns ``d`` unchanged.

    Mirrors :func:`validate_graph_dict` for flow networks: integer ``n``
    with at least a source and a sink, and ``arcs`` as a bounded sequence
    of ``[u, v, capacity]`` triples with in-range endpoints and valid
    non-negative capacity encodings.
    """
    if not isinstance(d, dict):
        raise _reject("network payload is not an object", type(d).__name__)
    for key in ("n", "arcs"):
        if key not in d:
            raise MalformedInputError(f"network payload is missing field {key!r}")
    n = _check_count(d["n"], "node count", MAX_VERTICES)
    if n < 2:
        raise MalformedInputError(
            f"network payload needs at least a source and a sink, got n={n}"
        )
    arcs = d["arcs"]
    if not isinstance(arcs, (list, tuple)):
        raise _reject("network arcs is not a list", arcs)
    if len(arcs) > MAX_EDGES:
        raise MalformedInputError(
            f"arc count {len(arcs)} exceeds the boundary limit {MAX_EDGES}"
        )
    for a in arcs:
        if not isinstance(a, (list, tuple)) or len(a) != 3:
            raise _reject("network arc is not a [u, v, cap] triple", a)
        _check_endpoint(a[0], n, "arc")
        _check_endpoint(a[1], n, "arc")
        if _VALIDATION:
            scalar_from_json(a[2], what="arc capacity", allow_positive_inf=True)
    return d
