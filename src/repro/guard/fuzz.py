"""Structure-aware fuzz harness for the public API (``repro-fuzz``).

The harness generates well-formed instances, corrupts them with mutations
modeled on the paper's own hard cases and on real serialization damage --
scalar corruption (NaN/Inf/negative/huge/tiny/non-numeric), edge rewiring,
ring breaking, 1-ulp weight near-ties (the degenerate split regimes of
Prop. 3), magnitude extremes, and JSON shape mangling -- then drives the
full public pipeline (load -> decompose -> allocate -> best-response),
optionally under the paranoid auditor, and asserts the hardening
contract:

    **typed error or audited-correct result -- never crash, hang, or
    NaN/Inf escape.**

A *rejection* (any :class:`~repro.exceptions.ReproError`) is the system
working.  A *survivor* -- an untyped exception, a non-finite value inside
an accepted result, or an iteration that blows its wall-clock budget -- is
shrunk with the corpus delta-debugger and filed as a ``fuzz``-kind
:class:`~repro.oracle.FailureRecord`, so every fuzz finding becomes a
replayable regression test (``repro-oracle replay``).

Everything is seeded: the same ``(seed, iterations)`` produces the same
instances, mutations, and verdicts, which is what lets CI pin
``repro-fuzz --iterations 300 --seed 0`` as a deterministic gate.
"""

from __future__ import annotations

import math
import signal
import threading
from dataclasses import dataclass, field
from fractions import Fraction
from random import Random
from typing import Any, Callable, Optional

from ..engine import EngineContext
from ..exceptions import ReproError
from ..graphs import WeightedGraph
from ..io.serialization import graph_from_dict, graph_to_dict

__all__ = [
    "FuzzOutcome",
    "FuzzReport",
    "MUTATORS",
    "base_instance",
    "mutate",
    "run_pipeline",
    "fuzz",
]

#: Escape statuses (everything except ``ok``/``rejected`` is a survivor).
ESCAPE_STATUSES = ("crash", "nonfinite", "hang")


@dataclass(frozen=True)
class FuzzOutcome:
    """Verdict of one fuzz iteration.

    ``status`` is one of ``ok`` (accepted, audited, finite), ``rejected``
    (typed error at some stage -- the contract holding), ``crash`` (untyped
    exception escaped), ``nonfinite`` (NaN/Inf inside an accepted result),
    or ``hang`` (iteration wall-clock budget exceeded).  ``stage`` names
    the pipeline stage that produced the verdict.
    """

    status: str
    stage: str
    detail: str = ""

    @property
    def escaped(self) -> bool:
        return self.status in ESCAPE_STATUSES


@dataclass
class FuzzReport:
    """Aggregate result of one :func:`fuzz` run."""

    iterations: int
    seed: int
    counts: dict = field(default_factory=dict)
    rejected_by: dict = field(default_factory=dict)
    survivors: list = field(default_factory=list)  # (payload, FuzzOutcome)
    corpus_paths: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no iteration escaped the typed-error contract."""
        return not self.survivors

    def summary(self) -> str:
        parts = [f"{self.iterations} iterations (seed {self.seed})"]
        for status in ("ok", "rejected", *ESCAPE_STATUSES):
            if self.counts.get(status):
                parts.append(f"{status}={self.counts[status]}")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "seed": self.seed,
            "counts": dict(self.counts),
            "rejected_by": dict(self.rejected_by),
            "survivors": [
                {"status": out.status, "stage": out.stage, "detail": out.detail}
                for _, out in self.survivors
            ],
            "corpus_paths": list(self.corpus_paths),
            "ok": self.ok,
        }


# ---------------------------------------------------------------------------
# instance generation
# ---------------------------------------------------------------------------

def _weight_family(rng: Random, n: int) -> list:
    """One weight vector from a family chosen to stress distinct regimes."""
    kind = rng.randrange(5)
    if kind == 0:       # plain uniform floats
        return [rng.uniform(0.5, 4.0) for _ in range(n)]
    if kind == 1:       # small integers (exact ties everywhere)
        return [rng.randrange(1, 6) for _ in range(n)]
    if kind == 2:       # exact rationals
        return [Fraction(rng.randrange(1, 9), rng.randrange(1, 9))
                for _ in range(n)]
    if kind == 3:       # near-tie cluster: all weights within a few ulps
        base = rng.uniform(1.0, 2.0)
        out = []
        for _ in range(n):
            w = base
            for _ in range(rng.randrange(3)):
                w = math.nextafter(w, math.inf)
            out.append(w)
        return out
    # extreme magnitudes (the overflow regime witnessed in the corpus)
    return [rng.choice([1e-30, 1e-6, 1.0, 1e6, 1e30]) * rng.uniform(1, 2)
            for _ in range(n)]


def base_instance(rng: Random) -> dict:
    """A well-formed instance payload (ring, path, or complete graph)."""
    n = rng.randrange(3, 9)
    shape = rng.randrange(3)
    if shape == 0 or n < 4:     # ring (the paper's home turf)
        edges = [[i, (i + 1) % n] for i in range(n)]
    elif shape == 1:            # path
        edges = [[i, i + 1] for i in range(n - 1)]
    else:                       # complete
        edges = [[i, j] for i in range(n) for j in range(i + 1, n)]
    g = WeightedGraph(n, [tuple(e) for e in edges], _weight_family(rng, n))
    return graph_to_dict(g)


# ---------------------------------------------------------------------------
# mutations (all operate on the JSON payload dict, returning a new dict)
# ---------------------------------------------------------------------------

def _copy_payload(d: dict) -> dict:
    out = dict(d)
    if isinstance(out.get("edges"), list):
        out["edges"] = [list(e) if isinstance(e, list) else e for e in out["edges"]]
    if isinstance(out.get("weights"), list):
        out["weights"] = [dict(w) if isinstance(w, dict) else w for w in out["weights"]]
    if isinstance(out.get("labels"), list):
        out["labels"] = list(out["labels"])
    return out


_BAD_SCALARS = (
    {"float": float("nan").hex()},          # NaN survives hex round-trips
    {"float": "inf"},                       # fromhex accepts "inf"
    {"float": "-inf"},
    {"float": (-1.5).hex()},                # negative weight
    {"float": (1e308).hex()},               # overflow-prone magnitude
    {"float": (5e-324).hex()},              # smallest subnormal
    {"float": "0x1.gp0"},                   # malformed hex
    {"float": 42},                          # wrong encoding type
    {"frac": "1/0"},                        # zero denominator
    {"frac": "-3/7"},                       # negative rational
    {"frac": "banana"},                     # not p/q at all
    {"frac": "1/0x2"},
    {"mystery": 1},                         # unknown encoding
    "七",                                    # plain non-numeric
    None,
    True,
    [1, 2],
    -3,
    float("nan"),                           # raw JSON nan (json.loads allows it)
)


def _mut_scalar_corruption(rng: Random, d: dict) -> dict:
    """Replace one weight with a corrupted scalar encoding."""
    d = _copy_payload(d)
    ws = d.get("weights")
    if isinstance(ws, list) and ws:
        ws[rng.randrange(len(ws))] = rng.choice(_BAD_SCALARS)
    return d


def _mut_near_tie(rng: Random, d: dict) -> dict:
    """Set one weight 1 ulp away from another: the alpha near-tie class."""
    d = _copy_payload(d)
    ws = d.get("weights")
    if isinstance(ws, list) and len(ws) >= 2:
        i, j = rng.sample(range(len(ws)), 2)
        src = ws[i]
        if isinstance(src, dict) and isinstance(src.get("float"), str):
            try:
                w = float.fromhex(src["float"])
            except ValueError:
                return d
            ws[j] = {"float": math.nextafter(w, math.inf).hex()}
        elif isinstance(src, (int, float)):
            ws[j] = {"float": math.nextafter(float(src), math.inf).hex()}
    return d


def _mut_magnitude(rng: Random, d: dict) -> dict:
    """Scale one weight by an extreme factor (overflow/underflow probing)."""
    d = _copy_payload(d)
    ws = d.get("weights")
    if isinstance(ws, list) and ws:
        i = rng.randrange(len(ws))
        w = ws[i]
        factor = rng.choice([1e308, 1e-308, 1e200, 1e-200])
        if isinstance(w, dict) and isinstance(w.get("float"), str):
            try:
                ws[i] = {"float": (float.fromhex(w["float"]) * factor).hex()}
            except (ValueError, OverflowError):
                pass
        elif isinstance(w, (int, float)):
            ws[i] = {"float": (float(w) * factor).hex()}
    return d


def _mut_edge_rewire(rng: Random, d: dict) -> dict:
    """Redirect one endpoint: may create self-loops, duplicates, or
    out-of-range ids (including negative and non-integer)."""
    d = _copy_payload(d)
    edges = d.get("edges")
    n = d.get("n") if isinstance(d.get("n"), int) else 0
    if isinstance(edges, list) and edges:
        e = edges[rng.randrange(len(edges))]
        if isinstance(e, list) and len(e) == 2:
            e[rng.randrange(2)] = rng.choice(
                [rng.randrange(max(1, n)), n, n + 7, -1, 1.5, "v0"])
    return d


def _mut_ring_break(rng: Random, d: dict) -> dict:
    """Drop an edge or add a chord (breaks ring-ness, may isolate)."""
    d = _copy_payload(d)
    edges = d.get("edges")
    n = d.get("n") if isinstance(d.get("n"), int) else 0
    if isinstance(edges, list) and edges:
        if rng.random() < 0.5 or n < 4:
            edges.pop(rng.randrange(len(edges)))
        else:
            u, v = rng.sample(range(n), 2)
            edges.append([u, v])
    return d


def _mut_shape_mangle(rng: Random, d: dict) -> dict:
    """JSON shape damage: missing/retyped fields, length mismatches,
    absurd sizes, nested garbage."""
    d = _copy_payload(d)
    kind = rng.randrange(8)
    if kind == 0 and d:
        d.pop(rng.choice(list(d)))
    elif kind == 1:
        d["n"] = rng.choice(["3", -1, 3.5, None, True, 10**18, [3]])
    elif kind == 2:
        d["edges"] = rng.choice([None, "edges", 17, {"0": [0, 1]},
                                 [[0]], [[0, 1, 2]], [0, 1]])
    elif kind == 3:
        d["weights"] = rng.choice([None, "heavy", 3, {"0": 1}])
    elif kind == 4 and isinstance(d.get("weights"), list) and d["weights"]:
        d["weights"] = d["weights"][:-1]           # length mismatch
    elif kind == 5 and isinstance(d.get("weights"), list):
        d["weights"] = d["weights"] + [1]          # length mismatch (over)
    elif kind == 6:
        d["labels"] = rng.choice([[1, 2, 3], "abc", [None], [["x"]]])
    else:
        d[rng.choice(["extra", "n ", "N"])] = {"deep": [{"er": None}]}
    return d


#: Named mutation registry, applied by :func:`mutate`.
MUTATORS: tuple[tuple[str, Callable[[Random, dict], dict]], ...] = (
    ("scalar_corruption", _mut_scalar_corruption),
    ("near_tie", _mut_near_tie),
    ("magnitude", _mut_magnitude),
    ("edge_rewire", _mut_edge_rewire),
    ("ring_break", _mut_ring_break),
    ("shape_mangle", _mut_shape_mangle),
)


def mutate(rng: Random, d: dict, rounds: int = 1) -> dict:
    """Apply ``rounds`` randomly chosen mutations to a payload copy."""
    for _ in range(rounds):
        _, fn = MUTATORS[rng.randrange(len(MUTATORS))]
        d = fn(rng, d)
    return d


# ---------------------------------------------------------------------------
# the guarded pipeline
# ---------------------------------------------------------------------------

def _nonfinite_in(values) -> Optional[float]:
    for v in values:
        if isinstance(v, float) and not math.isfinite(v):
            return v
    return None


class _IterationTimeout(Exception):
    """Internal: one fuzz iteration blew its wall-clock budget."""


def run_pipeline(payload: Any, ctx: Optional[EngineContext] = None,
                 grid: int = 6) -> FuzzOutcome:
    """Drive the public pipeline on one (possibly malformed) payload.

    Stages: ``load`` (boundary validation + construction), ``decompose``,
    ``allocate``, and -- for rings -- ``best_response``.  Returns a
    :class:`FuzzOutcome`; never raises for input-dependent failures (only
    for harness bugs, which is exactly what the fuzz loop wants to
    surface as ``crash``).
    """
    from ..core import bd_allocation, bottleneck_decomposition

    ctx = ctx if ctx is not None else EngineContext()
    stage = "load"
    try:
        g = graph_from_dict(payload)
        stage = "decompose"
        decomp = bottleneck_decomposition(g, ctx.backend, ctx)
        bad = _nonfinite_in(float(p.alpha) if isinstance(p.alpha, Fraction)
                            else p.alpha for p in decomp.pairs)
        if bad is not None:
            return FuzzOutcome("nonfinite", stage, f"pair alpha = {bad!r}")
        stage = "allocate"
        alloc = bd_allocation(g, backend=ctx.backend, ctx=ctx)
        bad = _nonfinite_in(u for u in alloc.utilities if isinstance(u, float))
        if bad is not None:
            return FuzzOutcome("nonfinite", stage, f"utility = {bad!r}")
        stage = "best_response"
        if g.is_ring() and g.n <= 12:
            from ..attack import best_split

            attacker = max(g.vertices(), key=lambda v: (float(g.weights[v]), -v))
            br = best_split(g, attacker, grid=grid, refine_iters=12, ctx=ctx)
            bad = _nonfinite_in((br.w1, br.w2, br.utility,
                                 br.honest_utility, br.ratio))
            if bad is not None:
                return FuzzOutcome("nonfinite", stage,
                                   f"best response carries {bad!r}")
        return FuzzOutcome("ok", stage)
    except ReproError as exc:
        return FuzzOutcome("rejected", stage,
                           f"{type(exc).__name__}: {exc}")
    except _IterationTimeout:
        raise
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 - the whole point
        return FuzzOutcome("crash", stage, f"{type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# survivor filing
# ---------------------------------------------------------------------------

def _shrink_payload(payload: dict, outcome: FuzzOutcome,
                    ctx: EngineContext, grid: int) -> dict:
    """Minimize a surviving payload when it still constructs a graph.

    Payloads that fail before construction (shape mangling) are filed
    as-is: the delta-debugger needs a graph to work on, and shape damage
    is already minimal in practice.
    """
    from ..oracle.corpus import shrink_graph

    try:
        g = graph_from_dict(payload)
    except Exception:
        return payload

    def still_escapes(candidate) -> bool:
        out = run_pipeline(graph_to_dict(candidate), ctx, grid=grid)
        return out.status == outcome.status

    small = shrink_graph(g, still_escapes, max_evals=60)
    return graph_to_dict(small)


def _file_survivor(payload: dict, outcome: FuzzOutcome, ctx: EngineContext,
                   corpus_dir: str, grid: int, level: str) -> str:
    from ..oracle.corpus import (
        FailureCorpus,
        FailureRecord,
        backend_to_dict,
        now_stamp,
    )

    shrunk = _shrink_payload(payload, outcome, ctx, grid)
    rec = FailureRecord(
        kind="fuzz",
        problems=(f"{outcome.status} at {outcome.stage}: {outcome.detail}",),
        context={
            "solver": ctx.solver,
            "backend": backend_to_dict(ctx.backend),
            "zero_tol": ctx.zero_tol,
            "level": level,
        },
        payload={"graph": shrunk, "grid": grid},
        created=now_stamp(),
    )
    return str(FailureCorpus(corpus_dir).add(rec))


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------

def fuzz(
    iterations: int = 300,
    seed: int = 0,
    corpus_dir: Optional[str] = None,
    audit: str = "off",
    grid: int = 6,
    iter_timeout: Optional[float] = 30.0,
    solver: str = "dinic",
) -> FuzzReport:
    """Run the seeded fuzz campaign; returns a :class:`FuzzReport`.

    ``audit`` attaches the :mod:`repro.oracle` auditor at that level
    (``paranoid`` re-checks every solve against independent oracles, so an
    *accepted* result is an audited-correct one).  ``iter_timeout`` is the
    per-iteration wall-clock budget (SIGALRM-based, main thread only;
    ``None`` disables); a blown budget is a ``hang`` escape.  Survivors are
    shrunk and filed into ``corpus_dir`` when given.
    """
    rng = Random(seed)
    ctx = EngineContext(solver=solver)
    if audit != "off":
        from ..oracle import attach_auditor

        # No corpus_dir here on purpose: an audit violation on a *mutated*
        # instance raises AuditError, which the pipeline classifies as a
        # typed rejection -- expected float degradation on adversarial
        # magnitudes, not a contract escape.  Filing is reserved for true
        # survivors (crash/hang/nonfinite), below.
        attach_auditor(ctx, level=audit)
    report = FuzzReport(iterations=iterations, seed=seed)
    counts = report.counts

    use_alarm = (
        iter_timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    old_handler = None
    if use_alarm:
        def _on_alarm(signum, frame):
            raise _IterationTimeout()

        old_handler = signal.signal(signal.SIGALRM, _on_alarm)

    try:
        for i in range(iterations):
            payload = base_instance(rng)
            if rng.random() > 0.15:  # keep ~15% clean as a sanity stream
                payload = mutate(rng, payload, rounds=1 + rng.randrange(3))
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, iter_timeout)
            try:
                outcome = run_pipeline(payload, ctx, grid=grid)
            except _IterationTimeout:
                outcome = FuzzOutcome(
                    "hang", "pipeline",
                    f"iteration {i} exceeded {iter_timeout:g}s wall clock")
            finally:
                if use_alarm:
                    signal.setitimer(signal.ITIMER_REAL, 0.0)
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
            if outcome.status == "rejected":
                key = outcome.detail.split(":", 1)[0]
                report.rejected_by[key] = report.rejected_by.get(key, 0) + 1
            if outcome.escaped:
                report.survivors.append((payload, outcome))
                if corpus_dir is not None:
                    report.corpus_paths.append(_file_survivor(
                        payload, outcome, ctx, corpus_dir, grid, audit))
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
    return report
