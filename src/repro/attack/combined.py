"""Combined attacks: Sybil split plus weight under-reporting.

Definition 7 constrains the identities' weights to sum to ``w_v``.  A
natural stronger adversary could *also* under-report -- choose
``w_1 + w_2 < w_v``, hiding part of its endowment.  Theorem 10 says hiding
weight never helps an *unsplit* agent; whether it can help a split one is
not formally addressed by the paper, so the library answers empirically:
the EXP-CMB ablation optimizes over the full triangle

    {(w_1, w_2) : w_1, w_2 >= 0, w_1 + w_2 <= w_v}

and compares with the Definition 7 optimum on the diagonal edge.  On every
instance family we sweep, the unconstrained optimum sits on the diagonal
(hiding weight is never strictly profitable), extending the truthfulness
intuition to the split setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import bd_allocation
from ..exceptions import AttackError
from ..graphs import WeightedGraph, cut_index_map, cut_ring_at, require_ring
from ..numeric import Backend, FLOAT, Scalar
from .misreport import report_weight
from .multi_split import split_multi

__all__ = [
    "CombinedBestResponse",
    "combined_attacker_utility",
    "best_combined_split",
    "ComposedAttack",
    "misreport_then_split",
    "misreport_then_cut",
    "best_misreport_split",
]


def combined_attacker_utility(
    g: WeightedGraph, v: int, w1: float, w2: float, backend: Backend = FLOAT
) -> float:
    """Attacker utility for an arbitrary (possibly under-reporting) split."""
    wv = float(g.weights[v])
    if w1 < 0 or w2 < 0 or w1 + w2 > wv * (1 + 1e-12):
        raise AttackError(f"({w1}, {w2}) outside the feasible triangle for w_v={wv}")
    p, v1, v2 = cut_ring_at(g, v, backend.scalar(w1), backend.scalar(w2))
    alloc = bd_allocation(p, backend=backend)
    return float(alloc.utilities[v1] + alloc.utilities[v2])


@dataclass(frozen=True)
class CombinedBestResponse:
    """Optimum over the full (w1, w2) triangle vs the Definition 7 edge."""

    vertex: int
    w1: float
    w2: float
    utility: float
    diagonal_utility: float  # best with w1 + w2 = w_v (Definition 7)
    honest_utility: float
    evaluations: int

    @property
    def ratio(self) -> float:
        if self.honest_utility == 0:
            return 1.0
        return self.utility / self.honest_utility

    @property
    def hiding_gain(self) -> float:
        """How much strictly under-reporting beats the Definition 7 optimum
        (0 when the diagonal is optimal)."""
        return max(0.0, self.utility - self.diagonal_utility)


@dataclass(frozen=True)
class ComposedAttack:
    """One solved misreport-then-Sybil composition, with its index map.

    The composition first replaces ``v``'s weight by its report ``x``
    (:func:`repro.attack.misreport.report_weight`), then splits the
    reporting vertex into ``k`` identities.  The post-attack instance does
    **not** preserve vertex indices in general: a ring cut relabels every
    bystander, and a k-way ``split_multi`` mints ``k - 1`` fresh ids next
    to the reused one.  ``index_map`` is therefore the only sanctioned way
    to read a surviving original vertex's utility off ``allocation-like``
    data of ``graph`` -- reading by original index is exactly the stale-map
    bug this type exists to make impossible.  ``utility`` already sums the
    allocation over **all** ``copies`` (not just the identity that kept
    ``v``'s id, which under-counts every k > 2 attack).
    """

    graph: WeightedGraph
    vertex: int
    report: Scalar
    copies: tuple[int, ...]
    index_map: dict[int, int]
    utility: Scalar
    utilities: dict[int, Scalar]

    def utility_of(self, u: int) -> Scalar:
        """Post-attack utility of original vertex ``u`` (the attacker's
        identities are aggregated under ``u == vertex``)."""
        if u == self.vertex:
            return self.utility
        return self.utilities[u]


def misreport_then_split(
    g: WeightedGraph,
    v: int,
    x: Scalar,
    groups,
    weights,
    backend: Backend = FLOAT,
) -> ComposedAttack:
    """Compose a weight report ``x <= w_v`` with a k-way Sybil split.

    ``groups`` partitions ``Gamma(v)`` into ``k`` nonempty parts and
    ``weights`` (summing to ``x``) endows the ``k`` identities -- the
    Definition 7 constraint applied to the *reported* weight.  Works on any
    graph; ``split_multi`` keeps bystander ids, so here the index map is
    the identity on survivors, while the attacker maps to ``copies``
    ``[v, n, n+1, ...]`` whose utilities are all folded into ``utility``.
    """
    reported = report_weight(g, v, x, backend)
    ms = split_multi(reported, v, groups, weights, backend)
    alloc = bd_allocation(ms.graph, backend=backend)
    index_map = {u: u for u in g.vertices() if u != v}
    utilities = {u: alloc.utilities[u] for u in index_map}
    return ComposedAttack(
        graph=ms.graph, vertex=v, report=backend.scalar(x), copies=ms.copies,
        index_map=index_map, utility=ms.utility, utilities=utilities,
    )


def misreport_then_cut(
    g: WeightedGraph,
    v: int,
    x: Scalar,
    w1: Scalar,
    w2: Scalar,
    backend: Backend = FLOAT,
) -> ComposedAttack:
    """Ring specialisation: report ``x``, then cut the ring at ``v``.

    ``w1 + w2`` must equal the report ``x``.  Unlike
    :func:`misreport_then_split`, the cut *relabels every honest vertex*
    (see :func:`repro.graphs.cut_index_map`), so the returned
    ``index_map`` is non-trivial -- coalition evaluations that read a
    partner's post-attack utility must go through it.
    """
    require_ring(g)
    xs = backend.scalar(x)
    ws1, ws2 = backend.scalar(w1), backend.scalar(w2)
    total = ws1 + ws2
    ok = (total == xs) if backend.is_exact else (
        abs(float(total) - float(xs)) <= backend.tol * max(1.0, float(xs)))
    if not ok:
        raise AttackError(f"split weights {w1!r} + {w2!r} must sum to the report {x!r}")
    reported = report_weight(g, v, xs, backend)
    p, v1, v2 = cut_ring_at(reported, v, ws1, ws2)
    alloc = bd_allocation(p, backend=backend)
    index_map = cut_index_map(g, v)
    utilities = {u: alloc.utilities[pu] for u, pu in index_map.items()}
    return ComposedAttack(
        graph=p, vertex=v, report=xs, copies=(v1, v2),
        index_map=index_map,
        utility=alloc.utilities[v1] + alloc.utilities[v2],
        utilities=utilities,
    )


def best_misreport_split(
    g: WeightedGraph,
    v: int,
    m: int = 2,
    x_steps: int = 6,
    w_steps: int = 6,
    backend: Backend = FLOAT,
) -> ComposedAttack:
    """Grid search over (report fraction) x (partition) x (weight simplex).

    Small exhaustive search for the combined misreport-then-Sybil strategy
    on general graphs; the simulator's ``combined`` role and the
    differential tests use it on ``n <= 8`` instances.  Reports sweep
    ``x = w_v * t/x_steps`` for ``t = 1..x_steps`` (a zero report on a
    positive-weight vertex makes the outcome trivially dominated).
    """
    from .multi_split import _simplex_grid, set_partitions

    if g.degree(v) < m:
        raise AttackError(f"vertex {v} has degree {g.degree(v)} < m = {m}")
    wv = float(g.weights[v])
    if wv == 0:
        return misreport_then_split(
            g, v, 0, [sorted(g.neighbors(v))], [0], backend)
    best: ComposedAttack | None = None
    nbrs = sorted(g.neighbors(v))
    for t in range(1, max(1, x_steps) + 1):
        x = wv * t / x_steps
        for groups in set_partitions(nbrs, m):
            for ws in _simplex_grid(x, m, w_steps):
                cand = misreport_then_split(g, v, x, groups, list(ws), backend)
                if best is None or cand.utility > best.utility:
                    best = cand
    assert best is not None
    return best


def best_combined_split(
    g: WeightedGraph,
    v: int,
    grid: int = 24,
    refine: int = 2,
    backend: Backend = FLOAT,
) -> CombinedBestResponse:
    """Grid + local-refinement search over the feasible triangle.

    The triangle is scanned on a barycentric lattice; the incumbent's
    neighborhood is then re-scanned at half resolution ``refine`` times.
    The diagonal ``w1 + w2 = w_v`` is scanned at full resolution separately
    so the comparison against Definition 7 is not disadvantaged.
    """
    require_ring(g)
    wv = float(g.weights[v])
    honest = float(bd_allocation(g, backend=backend).utilities[v])
    evals = 0

    def U(w1: float, w2: float) -> float:
        nonlocal evals
        evals += 1
        w1 = min(max(w1, 0.0), wv)
        w2 = min(max(w2, 0.0), wv - w1)
        return combined_attacker_utility(g, v, w1, w2, backend)

    if wv == 0:
        return CombinedBestResponse(vertex=v, w1=0.0, w2=0.0, utility=0.0,
                                    diagonal_utility=0.0, honest_utility=honest,
                                    evaluations=0)

    # diagonal (Definition 7) optimum via the dedicated refined search, so
    # the comparison is not skewed by resolution differences
    from .best_response import best_split

    diag = best_split(g, v, grid=max(grid, 48), backend=backend)
    diag_best = diag.utility

    # full triangle scan
    best_w, best_val = (wv, 0.0), -np.inf
    for i in range(grid + 1):
        for j in range(grid + 1 - i):
            w1 = wv * i / grid
            w2 = wv * j / grid
            val = U(w1, w2)
            if val > best_val:
                best_w, best_val = (w1, w2), val
    step = wv / grid
    for _ in range(refine):
        step /= 2
        cx, cy = best_w
        for dx in (-2, -1, 0, 1, 2):
            for dy in (-2, -1, 0, 1, 2):
                w1 = min(max(cx + dx * step, 0.0), wv)
                w2 = min(max(cy + dy * step, 0.0), wv - w1)
                val = U(w1, w2)
                if val > best_val:
                    best_w, best_val = (w1, w2), val
    # the diagonal is part of the triangle: fold its (better-refined)
    # optimum into the incumbent so the reported optimum is the true max
    if diag_best > best_val:
        best_w, best_val = (diag.w1, diag.w2), diag_best
    return CombinedBestResponse(
        vertex=v, w1=best_w[0], w2=best_w[1], utility=float(best_val),
        diagonal_utility=float(diag_best), honest_utility=honest,
        evaluations=evals,
    )
