"""Combined attacks: Sybil split plus weight under-reporting.

Definition 7 constrains the identities' weights to sum to ``w_v``.  A
natural stronger adversary could *also* under-report -- choose
``w_1 + w_2 < w_v``, hiding part of its endowment.  Theorem 10 says hiding
weight never helps an *unsplit* agent; whether it can help a split one is
not formally addressed by the paper, so the library answers empirically:
the EXP-CMB ablation optimizes over the full triangle

    {(w_1, w_2) : w_1, w_2 >= 0, w_1 + w_2 <= w_v}

and compares with the Definition 7 optimum on the diagonal edge.  On every
instance family we sweep, the unconstrained optimum sits on the diagonal
(hiding weight is never strictly profitable), extending the truthfulness
intuition to the split setting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import bd_allocation
from ..exceptions import AttackError
from ..graphs import WeightedGraph, cut_ring_at, require_ring
from ..numeric import Backend, FLOAT

__all__ = ["CombinedBestResponse", "combined_attacker_utility", "best_combined_split"]


def combined_attacker_utility(
    g: WeightedGraph, v: int, w1: float, w2: float, backend: Backend = FLOAT
) -> float:
    """Attacker utility for an arbitrary (possibly under-reporting) split."""
    wv = float(g.weights[v])
    if w1 < 0 or w2 < 0 or w1 + w2 > wv * (1 + 1e-12):
        raise AttackError(f"({w1}, {w2}) outside the feasible triangle for w_v={wv}")
    p, v1, v2 = cut_ring_at(g, v, backend.scalar(w1), backend.scalar(w2))
    alloc = bd_allocation(p, backend=backend)
    return float(alloc.utilities[v1] + alloc.utilities[v2])


@dataclass(frozen=True)
class CombinedBestResponse:
    """Optimum over the full (w1, w2) triangle vs the Definition 7 edge."""

    vertex: int
    w1: float
    w2: float
    utility: float
    diagonal_utility: float  # best with w1 + w2 = w_v (Definition 7)
    honest_utility: float
    evaluations: int

    @property
    def ratio(self) -> float:
        if self.honest_utility == 0:
            return 1.0
        return self.utility / self.honest_utility

    @property
    def hiding_gain(self) -> float:
        """How much strictly under-reporting beats the Definition 7 optimum
        (0 when the diagonal is optimal)."""
        return max(0.0, self.utility - self.diagonal_utility)


def best_combined_split(
    g: WeightedGraph,
    v: int,
    grid: int = 24,
    refine: int = 2,
    backend: Backend = FLOAT,
) -> CombinedBestResponse:
    """Grid + local-refinement search over the feasible triangle.

    The triangle is scanned on a barycentric lattice; the incumbent's
    neighborhood is then re-scanned at half resolution ``refine`` times.
    The diagonal ``w1 + w2 = w_v`` is scanned at full resolution separately
    so the comparison against Definition 7 is not disadvantaged.
    """
    require_ring(g)
    wv = float(g.weights[v])
    honest = float(bd_allocation(g, backend=backend).utilities[v])
    evals = 0

    def U(w1: float, w2: float) -> float:
        nonlocal evals
        evals += 1
        w1 = min(max(w1, 0.0), wv)
        w2 = min(max(w2, 0.0), wv - w1)
        return combined_attacker_utility(g, v, w1, w2, backend)

    if wv == 0:
        return CombinedBestResponse(vertex=v, w1=0.0, w2=0.0, utility=0.0,
                                    diagonal_utility=0.0, honest_utility=honest,
                                    evaluations=0)

    # diagonal (Definition 7) optimum via the dedicated refined search, so
    # the comparison is not skewed by resolution differences
    from .best_response import best_split

    diag = best_split(g, v, grid=max(grid, 48), backend=backend)
    diag_best = diag.utility

    # full triangle scan
    best_w, best_val = (wv, 0.0), -np.inf
    for i in range(grid + 1):
        for j in range(grid + 1 - i):
            w1 = wv * i / grid
            w2 = wv * j / grid
            val = U(w1, w2)
            if val > best_val:
                best_w, best_val = (w1, w2), val
    step = wv / grid
    for _ in range(refine):
        step /= 2
        cx, cy = best_w
        for dx in (-2, -1, 0, 1, 2):
            for dy in (-2, -1, 0, 1, 2):
                w1 = min(max(cx + dx * step, 0.0), wv)
                w2 = min(max(cy + dy * step, 0.0), wv - w1)
                val = U(w1, w2)
                if val > best_val:
                    best_w, best_val = (w1, w2), val
    # the diagonal is part of the triangle: fold its (better-refined)
    # optimum into the incumbent so the reported optimum is the true max
    if diag_best > best_val:
        best_w, best_val = (diag.w1, diag.w2), diag_best
    return CombinedBestResponse(
        vertex=v, w1=best_w[0], w2=best_w[1], utility=float(best_val),
        diagonal_utility=float(diag_best), honest_utility=honest,
        evaluations=evals,
    )
