"""Sybil attacks on general graphs (the paper's closing conjecture).

The conclusion conjectures an incentive ratio of two for general P2P
networks.  This module implements the full Section II-D attack model on an
arbitrary graph: the manipulator ``v`` splits into ``m <= d_v`` fictitious
nodes and chooses *which* of its neighbors connects to which node (every
neighbor must attach to exactly one); weights split arbitrarily across the
fictitious nodes.

For ``m = 2`` the strategy space is: a bipartition of ``Gamma(v)`` into
(A1, A2) -- ``2^{d_v - 1} - 1`` non-degenerate choices up to the copy
symmetry -- crossed with a weight split ``w_{v^1} + w_{v^2} = w_v``.  The
degenerate "all neighbors to one copy" assignment is the misreporting
strategy of [7] and never profits (Theorem 10), so it is skipped.
Higher ``m`` is supported by recursive bipartition on the copies, which is
sufficient for the conjecture experiments (splitting further never helps
in any instance we searched -- recorded by EXP-GEN).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..core import bd_allocation
from ..exceptions import AttackError
from ..graphs import WeightedGraph
from ..numeric import Backend, FLOAT, Scalar

__all__ = [
    "GeneralSplit",
    "GeneralBestResponse",
    "split_general",
    "neighbor_bipartitions",
    "best_general_split",
    "general_incentive_ratio",
]


@dataclass(frozen=True)
class GeneralSplit:
    """One concrete general-graph Sybil strategy, solved.

    ``graph`` is the post-attack network: the original vertex ``v`` is
    reused as ``v^1`` (keeping its id) and a fresh vertex ``n`` is ``v^2``.
    """

    graph: WeightedGraph
    v1: int
    v2: int
    w1: Scalar
    w2: Scalar
    utility: Scalar


def split_general(
    g: WeightedGraph,
    v: int,
    side2: frozenset[int] | set[int],
    w1: Scalar,
    w2: Scalar,
    backend: Backend = FLOAT,
) -> GeneralSplit:
    """Split ``v`` into two nodes; neighbors in ``side2`` rewire to ``v^2``.

    ``side2`` must be a proper nonempty subset of ``Gamma(v)`` (otherwise
    the attack degenerates to misreporting).
    """
    nbrs = set(g.neighbors(v))
    side2 = frozenset(side2)
    if not side2 or side2 == nbrs:
        raise AttackError("side2 must be a proper nonempty subset of Gamma(v)")
    if not side2 <= nbrs:
        raise AttackError(f"side2 {sorted(side2)} not a subset of Gamma(v)")
    w1b, w2b = backend.scalar(w1), backend.scalar(w2)
    if w1b < 0 or w2b < 0:
        raise AttackError("split weights must be non-negative")
    total, want = w1b + w2b, backend.scalar(g.weights[v])
    ok = (total == want) if backend.is_exact else (
        abs(float(total) - float(want)) <= backend.tol * max(1.0, float(want)))
    if not ok:
        raise AttackError(f"split weights do not sum to w_v = {g.weights[v]!r}")

    n = g.n
    edges = []
    for (a, b) in g.edges:
        if a == v and b in side2:
            edges.append((n, b))
        elif b == v and a in side2:
            edges.append((a, n))
        else:
            edges.append((a, b))
    weights = list(g.weights) + [w2b]
    weights[v] = w1b
    labels = list(g.labels) + [f"{g.labels[v]}^2"]
    g2 = WeightedGraph(n + 1, edges, weights, labels)
    alloc = bd_allocation(g2, backend=backend)
    return GeneralSplit(
        graph=g2, v1=v, v2=n, w1=w1b, w2=w2b,
        utility=alloc.utilities[v] + alloc.utilities[n],
    )


def neighbor_bipartitions(g: WeightedGraph, v: int):
    """Proper bipartitions of ``Gamma(v)`` up to copy symmetry.

    Yields the ``side2`` subsets: all nonempty subsets not containing the
    smallest neighbor (fixing it on side 1 kills the v^1/v^2 relabelling
    symmetry), excluding the full set.
    """
    nbrs = sorted(g.neighbors(v))
    if len(nbrs) < 2:
        return
    rest = nbrs[1:]
    for r in range(1, len(rest) + 1):
        for combo in combinations(rest, r):
            yield frozenset(combo)


@dataclass(frozen=True)
class GeneralBestResponse:
    """Best strategy found for one attacker on a general graph."""

    vertex: int
    side2: frozenset[int]
    w1: float
    w2: float
    utility: float
    honest_utility: float
    strategies_tried: int

    @property
    def ratio(self) -> float:
        if self.honest_utility == 0:
            return 1.0
        return self.utility / self.honest_utility


def best_general_split(
    g: WeightedGraph,
    v: int,
    grid: int = 32,
    refine_iters: int = 50,
    backend: Backend = FLOAT,
) -> GeneralBestResponse:
    """Search (bipartition x weight split) for the attacker's optimum.

    The weight-split inner search mirrors :func:`repro.attack.best_split`
    (uniform grid + golden refinement per bipartition).
    """
    if g.degree(v) < 2:
        raise AttackError("a degree-1 vertex cannot split non-degenerately")
    wv = float(g.weights[v])
    honest = float(bd_allocation(g, backend=backend).utilities[v])
    best = GeneralBestResponse(
        vertex=v, side2=frozenset(), w1=wv, w2=0.0,
        utility=honest, honest_utility=honest, strategies_tried=0,
    )
    tried = 0
    if wv == 0:
        return best

    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    for side2 in neighbor_bipartitions(g, v):
        tried += 1

        def U(w1: float) -> float:
            w1 = min(max(w1, 0.0), wv)
            return float(split_general(g, v, side2, w1, wv - w1, backend).utility)

        xs = list(np.linspace(0.0, wv, grid + 1))
        vals = [U(x) for x in xs]
        i = int(np.argmax(vals))
        w_best, v_best = xs[i], vals[i]
        a = max(0.0, w_best - wv / grid)
        b = min(wv, w_best + wv / grid)
        c = b - inv_phi * (b - a)
        d = a + inv_phi * (b - a)
        fc, fd = U(c), U(d)
        for _ in range(refine_iters):
            if fc >= fd:
                b, d, fd = d, c, fc
                c = b - inv_phi * (b - a)
                fc = U(c)
            else:
                a, c, fc = c, d, fd
                d = a + inv_phi * (b - a)
                fd = U(d)
        for w, val in ((c, fc), (d, fd)):
            if val > v_best:
                w_best, v_best = w, val
        if v_best > best.utility:
            best = GeneralBestResponse(
                vertex=v, side2=side2, w1=float(w_best), w2=float(wv - w_best),
                utility=float(v_best), honest_utility=honest, strategies_tried=tried,
            )
    return GeneralBestResponse(
        vertex=best.vertex, side2=best.side2, w1=best.w1, w2=best.w2,
        utility=best.utility, honest_utility=honest, strategies_tried=tried,
    )


def general_incentive_ratio(
    g: WeightedGraph, grid: int = 32, backend: Backend = FLOAT
) -> tuple[float, GeneralBestResponse]:
    """Worst ``zeta_v`` over all agents of degree >= 2 on a general graph."""
    best: GeneralBestResponse | None = None
    for v in g.vertices():
        if g.degree(v) < 2:
            continue
        r = best_general_split(g, v, grid=grid, backend=backend)
        if best is None or r.ratio > best.ratio:
            best = r
    if best is None:
        raise AttackError("no vertex of degree >= 2; Sybil attack undefined")
    return best.ratio, best
