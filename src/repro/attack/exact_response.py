"""Exact (rational-arithmetic) best response for small rings.

The float search in :mod:`.best_response` samples + golden-sections; this
module computes the optimum *exactly* for instances with rational weights,
by exploiting the piecewise structure Section III-B establishes:

1. the interval of split choices ``w_1 in [0, w_v]`` partitions into
   finitely many *regimes* on which the path's bottleneck decomposition is
   combinatorially constant (located by exact-bisection signature sweeps);
2. inside a regime every pair's alpha is a ratio of affine functions of
   ``w_1`` (the split weights enter one side of a pair linearly, and
   ``w_2 = w_v - w_1``), so each endpoint utility is
   ``(affine) * alpha`` or ``(affine) / alpha`` and the attacker's total

       U(w_1) = U_{v^1}(w_1) + U_{v^2}(w_1)

   is a rational function of degree at most (3, 2) -- two (2,1)-pieces over
   distinct affine denominators.  The coefficients are recovered by *exact
   interpolation* from samples inside the regime and verified on held-out
   points, so a mis-specified form is detected, never silently wrong;
3. each piece is maximized in closed form: candidates are the regime
   endpoints plus the real stationary points (roots of the exact
   derivative-numerator polynomial; rational roots found exactly,
   irrational ones isolated by rational bisection to 2^-60 of the regime
   -- and since every candidate is *evaluated*, an approximate stationary
   point can only underestimate the max, never corrupt it).

The result is certified: an exact utility value at an exact split point,
which the tests compare against the float search.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import isqrt
from typing import Callable, Sequence

from ..core import bd_allocation, bottleneck_decomposition
from ..engine import EngineContext
from ..graphs import WeightedGraph, cut_ring_at, require_ring
from ..numeric import EXACT
from ..theory.breakpoints import decomposition_signature, sweep_regimes

__all__ = ["ExactBestResponse", "exact_best_split", "exact_attacker_utility"]

_P_DEG = 3  # numerator degree bound
_Q_DEG = 2  # denominator degree bound


@dataclass(frozen=True)
class ExactBestResponse:
    """Certified optimum of the Sybil split for one attacker."""

    vertex: int
    w1: Fraction
    w2: Fraction
    utility: Fraction
    honest_utility: Fraction
    regimes: int

    @property
    def ratio(self) -> Fraction:
        if self.honest_utility == 0:
            return Fraction(1)
        return self.utility / self.honest_utility


def exact_attacker_utility(
    g: WeightedGraph, v: int, w1: Fraction, ctx: EngineContext | None = None
) -> Fraction:
    """U(w1) with exact arithmetic (w2 = w_v - w1)."""
    wv = Fraction(g.weights[v])
    p, v1, v2 = cut_ring_at(g, v, w1, wv - w1)
    alloc = bd_allocation(p, backend=EXACT, ctx=ctx)
    return alloc.utilities[v1] + alloc.utilities[v2]


# ---------------------------------------------------------------------------
# exact polynomial helpers
# ---------------------------------------------------------------------------

def _poly_eval(coeffs: Sequence[Fraction], w: Fraction) -> Fraction:
    acc = Fraction(0)
    for c in reversed(coeffs):
        acc = acc * w + c
    return acc


def _poly_mul(a: Sequence[Fraction], b: Sequence[Fraction]) -> list[Fraction]:
    out = [Fraction(0)] * (len(a) + len(b) - 1)
    for i, x in enumerate(a):
        for j, y in enumerate(b):
            out[i + j] += x * y
    return out


def _poly_diff(a: Sequence[Fraction]) -> list[Fraction]:
    return [c * k for k, c in enumerate(a)][1:] or [Fraction(0)]


def _poly_sub(a: Sequence[Fraction], b: Sequence[Fraction]) -> list[Fraction]:
    n = max(len(a), len(b))
    a = list(a) + [Fraction(0)] * (n - len(a))
    b = list(b) + [Fraction(0)] * (n - len(b))
    return [x - y for x, y in zip(a, b)]


@dataclass(frozen=True)
class _Rational:
    """p(w)/q(w) with exact Fraction coefficients (low-to-high order)."""

    p: tuple[Fraction, ...]
    q: tuple[Fraction, ...]

    def __call__(self, w: Fraction) -> Fraction:
        den = _poly_eval(self.q, w)
        if den == 0:
            raise ZeroDivisionError("pole inside regime")
        return _poly_eval(self.p, w) / den

    def derivative_numerator(self) -> list[Fraction]:
        """Coefficients of ``p'q - pq'`` (the sign of the derivative)."""
        return _poly_sub(_poly_mul(_poly_diff(self.p), self.q),
                         _poly_mul(self.p, _poly_diff(self.q)))


def _interpolate_rational(
    f: Callable[[Fraction], Fraction], lo: Fraction, hi: Fraction
) -> _Rational | None:
    """Fit f as a (deg<=3)/(deg<=2) rational function on [lo, hi].

    Solves the homogeneous system ``p(w_i) - f_i q(w_i) = 0`` (7 unknowns)
    on 8 interior samples by exact Gaussian elimination and verifies on 2
    held-out points; returns None when no such function matches (callers
    fall back to dense sampling)."""
    span = hi - lo
    if span <= 0:
        return None
    n_unknowns = (_P_DEG + 1) + (_Q_DEG + 1)
    pts = [lo + span * Fraction(k, n_unknowns + 3) for k in range(1, n_unknowns + 3)]
    train, test = pts[: n_unknowns + 1], pts[n_unknowns + 1:]

    rows = []
    for w in train:
        fv = f(w)
        row = [w**k for k in range(_P_DEG + 1)]
        row += [-fv * w**k for k in range(_Q_DEG + 1)]
        rows.append(row)

    sol = _nullspace_vector(rows, n_unknowns)
    if sol is None:
        return None
    rat = _Rational(p=tuple(sol[: _P_DEG + 1]), q=tuple(sol[_P_DEG + 1:]))
    if all(c == 0 for c in rat.q):
        return None
    try:
        for w in test:
            if rat(w) != f(w):
                return None
    except ZeroDivisionError:
        return None
    return rat


def _nullspace_vector(rows: list[list[Fraction]], ncols: int) -> list[Fraction] | None:
    """One nonzero nullspace vector of an exact rational matrix."""
    m = [row[:] for row in rows]
    pivots: list[int] = []
    r = 0
    for c in range(ncols):
        pivot = next((i for i in range(r, len(m)) if m[i][c] != 0), None)
        if pivot is None:
            continue
        m[r], m[pivot] = m[pivot], m[r]
        inv = 1 / m[r][c]
        m[r] = [x * inv for x in m[r]]
        for i in range(len(m)):
            if i != r and m[i][c] != 0:
                factor = m[i][c]
                m[i] = [a - factor * b for a, b in zip(m[i], m[r])]
        pivots.append(c)
        r += 1
        if r == len(m):
            break
    free = [c for c in range(ncols) if c not in pivots]
    if not free:
        return None
    fc = free[0]
    sol = [Fraction(0)] * ncols
    sol[fc] = Fraction(1)
    for row, pc in zip(m, pivots):
        sol[pc] = -row[fc]
    return sol


# ---------------------------------------------------------------------------
# exact maximization of one piece
# ---------------------------------------------------------------------------

def _maximize_piece(rat: _Rational, lo: Fraction, hi: Fraction) -> tuple[Fraction, Fraction]:
    """Exact max of a rational function on [lo, hi]."""
    candidates = [lo, hi] + _roots_in(rat.derivative_numerator(), lo, hi)
    best_w, best_val = lo, rat(lo)
    for w in candidates:
        val = rat(w)
        if val > best_val:
            best_w, best_val = w, val
    return best_w, best_val


def _roots_in(coeffs: Sequence[Fraction], lo: Fraction, hi: Fraction) -> list[Fraction]:
    """Real roots of an exact polynomial inside [lo, hi].

    Degree <= 2 handled exactly (perfect-square discriminants give exact
    rational roots); everything else by sign-change isolation + rational
    bisection.  Approximate roots are safe: they are only *candidates*.
    """
    # trim trailing zeros
    cs = list(coeffs)
    while cs and cs[-1] == 0:
        cs.pop()
    if not cs or len(cs) == 1:
        return []
    if len(cs) == 2:
        root = -cs[0] / cs[1]
        return [root] if lo <= root <= hi else []
    if len(cs) == 3:
        c0, c1, c2 = cs
        disc = c1 * c1 - 4 * c2 * c0
        if disc < 0:
            return []
        s = _exact_sqrt(disc)
        if s is not None:
            return [r for r in ((-c1 + s) / (2 * c2), (-c1 - s) / (2 * c2))
                    if lo <= r <= hi]
    return _bisect_roots(lambda w: _poly_eval(cs, w), lo, hi)


def _exact_sqrt(x: Fraction) -> Fraction | None:
    """sqrt(x) when x is a perfect rational square, else None."""
    if x < 0:
        return None
    num, den = x.numerator, x.denominator
    rn, rd = isqrt(num), isqrt(den)
    if rn * rn == num and rd * rd == den:
        return Fraction(rn, rd)
    return None


def _bisect_roots(f, lo: Fraction, hi: Fraction, pieces: int = 24, iters: int = 60) -> list[Fraction]:
    """Sign-change bisection root isolation on [lo, hi]."""
    roots: list[Fraction] = []
    span = hi - lo
    xs = [lo + span * Fraction(k, pieces) for k in range(pieces + 1)]
    vals = [f(x) for x in xs]
    for i in range(pieces):
        a, b = xs[i], xs[i + 1]
        fa, fb = vals[i], vals[i + 1]
        if fa == 0:
            roots.append(a)
            continue
        if fa * fb < 0:
            for _ in range(iters):
                mid = (a + b) / 2
                fm = f(mid)
                if fm == 0:
                    a = b = mid
                    break
                if fa * fm < 0:
                    b, fb = mid, fm
                else:
                    a, fa = mid, fm
            roots.append((a + b) / 2)
    if vals[-1] == 0:
        roots.append(xs[-1])
    return roots


# ---------------------------------------------------------------------------
# the exact best response
# ---------------------------------------------------------------------------

def exact_best_split(
    g: WeightedGraph,
    v: int,
    probes: int = 33,
    gap: float = 1e-9,
    ctx: EngineContext | None = None,
) -> ExactBestResponse:
    """Exact best response of attacker ``v`` on a rational-weight ring.

    Cost is dominated by the regime sweep (each probe is an exact
    decomposition), so this targets small instances (n <= ~10); it exists
    to *certify* the float search, which the tests do instance by instance.
    """
    require_ring(g)
    wv = Fraction(g.weights[v])
    honest = Fraction(bd_allocation(g, backend=EXACT, ctx=ctx).utilities[v])
    if wv == 0:
        return ExactBestResponse(vertex=v, w1=Fraction(0), w2=Fraction(0),
                                 utility=Fraction(0), honest_utility=honest, regimes=0)

    def signature_at(w1) -> tuple:
        p, _, _ = cut_ring_at(g, v, Fraction(w1), wv - Fraction(w1))
        return decomposition_signature(bottleneck_decomposition(p, EXACT, ctx))

    regimes = sweep_regimes(signature_at, Fraction(0), wv, probes=probes,
                            gap=gap, backend=EXACT)

    U = lambda w1: exact_attacker_utility(g, v, w1, ctx)

    def maximize_interval(lo: Fraction, hi: Fraction, depth: int) -> tuple[Fraction, Fraction]:
        """Best (w, U(w)) on [lo, hi]: fit-and-maximize, or subdivide.

        A failed fit means the sweep missed an interior breakpoint (two
        changes between adjacent probes) -- halving isolates it; at the
        depth limit, dense exact sampling bounds the piece.
        """
        margin = (hi - lo) / 64
        ilo, ihi = lo + margin, hi - margin
        rat = _interpolate_rational(U, ilo, ihi) if ihi > ilo else None
        if rat is not None:
            w, val = _maximize_piece(rat, ilo, ihi)
        elif depth > 0 and hi > lo:
            mid = (lo + hi) / 2
            w, val = max(
                maximize_interval(lo, mid, depth - 1),
                maximize_interval(mid, hi, depth - 1),
                key=lambda t: t[1],
            )
        else:
            pts = [lo + (hi - lo) * Fraction(k, 16) for k in range(17)]
            w, val = max(((p, U(p)) for p in pts), key=lambda t: t[1])
        # interval boundaries themselves are candidates too (margins shaved)
        for cand in (lo, hi):
            cv = U(cand)
            if cv > val:
                w, val = cand, cv
        return w, val

    best_w, best_val = Fraction(0), U(Fraction(0))
    for reg in regimes:
        w, val = maximize_interval(Fraction(reg.lo), Fraction(reg.hi), depth=6)
        if val > best_val:
            best_w, best_val = w, val
    return ExactBestResponse(
        vertex=v, w1=best_w, w2=wv - best_w, utility=best_val,
        honest_utility=honest, regimes=len(regimes),
    )
